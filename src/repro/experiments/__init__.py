"""Experiment drivers: one function per paper table/figure family.

These are the single source of truth shared by ``benchmarks/`` (which times
and prints them) and ``examples/`` (which narrates them).  Expensive PoocH
optimizations are memoized per-process in :mod:`repro.experiments.cache` so
that e.g. Fig. 17 and Table 3 share the ResNet-50/batch-512 search.
"""

from repro.experiments.ablation import ablation_rows, ABLATION_METHODS
from repro.experiments.cache import clear_cache, optimize_cached, profile_cached
from repro.experiments.memusage import memory_curve, resnet50_memory_curve, resnext3d_memory_curve
from repro.experiments.perf import MethodResult, performance_sweep
from repro.experiments.table3 import classification_table

__all__ = [
    "profile_cached",
    "optimize_cached",
    "clear_cache",
    "memory_curve",
    "resnet50_memory_curve",
    "resnext3d_memory_curve",
    "ablation_rows",
    "ABLATION_METHODS",
    "performance_sweep",
    "MethodResult",
    "classification_table",
]
