"""Per-process memoization of profiling runs and PoocH optimizations.

Keys are (model key, machine name, config fingerprint) — graphs themselves
are rebuilt cheaply, but a PoocH search over ResNet-50 costs tens of seconds,
and several benchmarks share the same search (Fig. 15 / Fig. 17 / Table 3).
"""

from __future__ import annotations

from typing import Callable

from repro.graph import NNGraph
from repro.hw import MachineSpec
from repro.pooch import PoocH, PoochConfig, PoochResult
from repro.runtime.profiler import Profile, run_profiling

_profiles: dict[tuple, Profile] = {}
_results: dict[tuple, PoochResult] = {}


def _config_key(config: PoochConfig | None) -> tuple:
    cfg = config or PoochConfig()
    return (
        cfg.policy.value,
        cfg.max_exact_li,
        cfg.step1_sim_budget,
        cfg.abs_tolerance,
        cfg.rel_tolerance,
        cfg.verify_flips,
        cfg.capacity_margin,
        cfg.forward_refetch_gap,
    )


def profile_cached(
    model_key: str, build: Callable[[], NNGraph], machine: MachineSpec
) -> tuple[NNGraph, Profile]:
    """Build (or re-build) the graph and return its cached profile."""
    key = (model_key, machine.name)
    graph = build()
    if key not in _profiles:
        _profiles[key] = run_profiling(graph, machine)
    return graph, _profiles[key]


def optimize_cached(
    model_key: str,
    build: Callable[[], NNGraph],
    machine: MachineSpec,
    config: PoochConfig | None = None,
) -> PoochResult:
    """PoocH-optimize a model on a machine, reusing any cached search."""
    key = (model_key, machine.name, _config_key(config))
    if key not in _results:
        graph, profile = profile_cached(model_key, build, machine)
        _results[key] = PoocH(machine, config).optimize(graph, profile=profile)
    return _results[key]


def clear_cache() -> None:
    """Drop all memoized results (tests use this for isolation)."""
    _profiles.clear()
    _results.clear()
