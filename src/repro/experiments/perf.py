"""Throughput sweeps — the engine behind Figs. 17-22.

``performance_sweep`` runs a set of methods (in-core / superneurons / PoocH /
PoocH-with-foreign-plan / extra baselines) over a set of problem sizes on one
machine and reports #images/s or the failure, which is exactly the content of
each performance figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.baselines import (
    plan_incore,
    plan_superneurons,
)
from repro.common.errors import OutOfMemoryError
from repro.experiments.cache import optimize_cached
from repro.graph import NNGraph
from repro.hw import MachineSpec
from repro.pooch import PoochConfig
from repro.runtime.executor import execute, images_per_second


@dataclass(frozen=True)
class MethodResult:
    """One figure point: a method at a problem size."""

    method: str
    size_label: str
    batch: int
    images_per_second: float | None  # None => failed
    failure: str = ""

    @property
    def ok(self) -> bool:
        return self.images_per_second is not None


def _run(plan, graph: NNGraph, machine: MachineSpec, batch: int,
         method: str, label: str) -> MethodResult:
    try:
        result = plan.execute(graph, machine)
        return MethodResult(method, label, batch,
                            images_per_second(result, batch))
    except OutOfMemoryError as e:
        return MethodResult(method, label, batch, None, failure=str(e)[:120])


def performance_sweep(
    model_key: str,
    sizes: list[tuple[str, int, Callable[[], NNGraph]]],
    machine: MachineSpec,
    methods: tuple[str, ...] = ("in-core", "superneurons", "pooch"),
    config: PoochConfig | None = None,
    cross_machine: MachineSpec | None = None,
) -> list[MethodResult]:
    """Run ``methods`` over ``sizes`` on ``machine``.

    ``sizes`` entries are ``(label, batch, build)``; ``batch`` is the divisor
    for img/s (1 for the 3D input-size sweeps).  ``cross_machine`` adds the
    paper's plan-portability line: optimize on that machine, execute here
    (method name ``pooch[<other>-plan]``).
    """
    rows: list[MethodResult] = []
    for label, batch, build in sizes:
        graph = build()
        for method in methods:
            if method == "in-core":
                rows.append(_run(plan_incore(graph), graph, machine, batch,
                                 method, label))
            elif method == "superneurons":
                rows.append(_run(plan_superneurons(graph, machine), graph,
                                 machine, batch, method, label))
            elif method == "pooch":
                try:
                    res = optimize_cached(f"{model_key}:{label}", build,
                                          machine, config)
                except OutOfMemoryError as e:
                    rows.append(MethodResult(method, label, batch, None,
                                             failure=str(e)[:120]))
                    continue
                try:
                    gt = res.execute(machine)
                    rows.append(MethodResult(method, label, batch,
                                             images_per_second(gt, batch)))
                except OutOfMemoryError as e:
                    rows.append(MethodResult(method, label, batch, None,
                                             failure=str(e)[:120]))
            else:
                raise ValueError(f"unknown method {method!r}")
        if cross_machine is not None:
            method = f"pooch[{cross_machine.name}-plan]"
            try:
                foreign = optimize_cached(f"{model_key}:{label}", build,
                                          cross_machine, config)
                gt = foreign.execute(machine)
                rows.append(MethodResult(method, label, batch,
                                         images_per_second(gt, batch)))
            except OutOfMemoryError as e:
                rows.append(MethodResult(method, label, batch, None,
                                         failure=str(e)[:120]))
    return rows
