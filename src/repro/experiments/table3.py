"""Classification-count comparison — the paper's Table 3.

For ResNet-50 (batch 512) on both machines: how many feature maps PoocH and
SuperNeurons put in each class.  The paper's headline observations, which the
asserts in ``benchmarks/test_bench_table3_classification.py`` check:

* PoocH chooses *more recompute on the x86 machine* (slow PCIe) than on the
  POWER9 machine (fast NVLink);
* SuperNeurons' static, type-based classification is *identical* on the two
  machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.baselines import plan_superneurons
from repro.experiments.cache import optimize_cached
from repro.graph import NNGraph
from repro.hw import MachineSpec
from repro.pooch import PoochConfig
from repro.runtime.plan import MapClass


@dataclass(frozen=True)
class ClassificationRow:
    method: str
    machine: str
    keep: int
    swap: int
    recompute: int


def classification_table(
    model_key: str,
    build: Callable[[], NNGraph],
    machines: tuple[MachineSpec, ...],
    config: PoochConfig | None = None,
) -> list[ClassificationRow]:
    """Rows in the paper's Table 3 layout (PoocH and superneurons per
    machine)."""
    rows: list[ClassificationRow] = []
    for machine in machines:
        res = optimize_cached(model_key, build, machine, config)
        c = res.classification.counts()
        rows.append(
            ClassificationRow("PoocH", machine.name, c[MapClass.KEEP],
                              c[MapClass.SWAP], c[MapClass.RECOMPUTE])
        )
    for machine in machines:
        graph = build()
        c = plan_superneurons(graph, machine).classification.counts()
        rows.append(
            ClassificationRow("superneurons", machine.name, c[MapClass.KEEP],
                              c[MapClass.SWAP], c[MapClass.RECOMPUTE])
        )
    return rows
