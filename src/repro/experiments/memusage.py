"""Memory-requirement curves — the paper's Figs. 3 and 4.

The paper plots the training-memory requirement of ResNet-50 against batch
size (crossing the 16 GB V100 line around batch 160-192 and reaching >50 GB
at 640) and of 3D-ResNeXt-101 against input volume at batch 1 (reaching
~58 GB).  We report the same static estimate the graph carries plus the
simulator-measured in-core peak where it fits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.errors import OutOfMemoryError
from repro.common.units import GiB
from repro.graph import NNGraph
from repro.hw import MachineSpec, X86_V100
from repro.runtime.executor import execute
from repro.runtime.plan import Classification
from repro.models.resnet import resnet50
from repro.models.resnext3d import resnext101_3d


@dataclass(frozen=True)
class MemoryPoint:
    label: str
    estimate_bytes: int  # static liveness estimate (what Figs. 3/4 plot)
    measured_peak: int | None  # simulator in-core peak, None if it OOMs
    fits_16gb: bool

    @property
    def estimate_gib(self) -> float:
        return self.estimate_bytes / GiB


def memory_curve(
    points: list[tuple[str, Callable[[], NNGraph]]],
    machine: MachineSpec = X86_V100,
    measure: bool = True,
) -> list[MemoryPoint]:
    """Estimate (and, where feasible, measure) training memory for each
    labelled graph."""
    rows: list[MemoryPoint] = []
    for label, build in points:
        graph = build()
        est = graph.training_memory_bytes()
        measured: int | None = None
        if measure:
            try:
                result = execute(graph, Classification.all_keep(graph), machine)
                measured = result.device_peak
            except OutOfMemoryError:
                measured = None
        rows.append(
            MemoryPoint(
                label=label,
                estimate_bytes=est,
                measured_peak=measured,
                fits_16gb=est <= machine.usable_gpu_memory,
            )
        )
    return rows


#: Fig. 3's sweep (batch sizes; paper marks in-core failure from 256 up)
RESNET50_BATCHES = (32, 64, 128, 192, 256, 384, 512, 640)

#: Fig. 4's sweep ((frames, height, width) at batch 1, growing input volume)
RESNEXT3D_SIZES = (
    (16, 112, 112),
    (32, 224, 224),
    (64, 224, 224),
    (64, 320, 320),
    (64, 448, 448),
    (96, 512, 512),
    (128, 640, 640),
)


def resnet50_memory_curve(
    batches: tuple[int, ...] = RESNET50_BATCHES, measure: bool = True
) -> list[MemoryPoint]:
    """Fig. 3: ResNet-50 memory vs batch size."""
    return memory_curve(
        [(f"batch={b}", (lambda b=b: resnet50(b))) for b in batches],
        measure=measure,
    )


def resnext3d_memory_curve(
    sizes: tuple[tuple[int, int, int], ...] = RESNEXT3D_SIZES,
    measure: bool = True,
) -> list[MemoryPoint]:
    """Fig. 4: 3D-ResNeXt-101 memory vs input size (batch 1)."""
    return memory_curve(
        [
            (f"{t}x{h}x{w}", (lambda s=(t, h, w): resnext101_3d(s)))
            for t, h, w in sizes
        ],
        measure=measure,
    )
