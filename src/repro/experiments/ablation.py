"""Per-optimization ablation — the paper's Figs. 15 and 16.

Four methods, cumulative: swap-all without the improved swap-in schedule,
swap-all with it, step-1-only classification (swap-opt), and full PoocH.
Speedups are reported relative to the first, matching the figures' y-axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.baselines import plan_swap_all, plan_swap_all_unscheduled
from repro.baselines.common import BaselinePlan
from repro.baselines.swapopt import plan_swap_opt
from repro.common.errors import OutOfMemoryError
from repro.experiments.cache import optimize_cached, profile_cached
from repro.graph import NNGraph
from repro.hw import MachineSpec
from repro.pooch import PoochConfig
from repro.runtime.executor import images_per_second

ABLATION_METHODS = (
    "swap-all(w/o scheduling)",
    "swap-all",
    "swap-opt",
    "pooch",
)


@dataclass(frozen=True)
class AblationRow:
    model: str
    method: str
    images_per_second: float | None
    speedup: float | None  # vs swap-all(w/o scheduling)
    failure: str = ""

    @property
    def ok(self) -> bool:
        return self.images_per_second is not None


def ablation_rows(
    model_key: str,
    build: Callable[[], NNGraph],
    batch: int,
    machine: MachineSpec,
    config: PoochConfig | None = None,
) -> list[AblationRow]:
    """Measure the four ablation points for one model on one machine."""
    graph = build()
    plans: list[tuple[str, BaselinePlan | None]] = [
        ("swap-all(w/o scheduling)", plan_swap_all_unscheduled(graph)),
        ("swap-all", plan_swap_all(graph)),
    ]
    _, profile = profile_cached(model_key, build, machine)
    plans.append(
        ("swap-opt", plan_swap_opt(graph, machine, profile=profile,
                                   config=config))
    )
    pooch_res = optimize_cached(model_key, build, machine, config)

    rows: list[AblationRow] = []
    base_ips: float | None = None
    for name, plan in plans:
        try:
            result = plan.execute(graph, machine)
            ips = images_per_second(result, batch)
        except OutOfMemoryError as e:
            rows.append(AblationRow(graph.name, name, None, None, str(e)[:120]))
            continue
        if base_ips is None:
            base_ips = ips
        rows.append(AblationRow(graph.name, name, ips,
                                ips / base_ips if base_ips else None))
    try:
        gt = pooch_res.execute(machine)
        ips = images_per_second(gt, batch)
        rows.append(AblationRow(graph.name, "pooch", ips,
                                ips / base_ips if base_ips else None))
    except OutOfMemoryError as e:
        rows.append(AblationRow(graph.name, "pooch", None, None, str(e)[:120]))
    return rows
