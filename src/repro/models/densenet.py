"""DenseNet (Huang et al., CVPR 2017) — an extension workload beyond the
paper's three networks.

Dense connectivity makes every layer's input the concatenation of all
previous features in the block, so activation memory grows quadratically
with depth inside a block — a famously memory-hungry family (the official
implementation needed the "memory-efficient DenseNet" rewrite) and therefore
a natural stress test for out-of-core classification: many medium-sized,
cheap-to-recompute concat/BN maps.
"""

from __future__ import annotations

from repro.common.errors import GraphError
from repro.graph import GraphBuilder, NNGraph

_CONFIGS: dict[int, tuple[int, ...]] = {
    121: (6, 12, 24, 16),
    169: (6, 12, 32, 32),
    201: (6, 12, 48, 32),
}


def _dense_layer(b: GraphBuilder, x: int, growth: int, prefix: str) -> int:
    """BN-ReLU-Conv1x1(4k) -> BN-ReLU-Conv3x3(k), returns the new features."""
    h = b.batchnorm(x, activation="relu", name=f"{prefix}_bn1")
    h = b.conv(h, 4 * growth, ksize=1, bias=False, name=f"{prefix}_conv1")
    h = b.batchnorm(h, activation="relu", name=f"{prefix}_bn2")
    return b.conv(h, growth, ksize=3, pad=1, bias=False, name=f"{prefix}_conv2")


def densenet(
    depth: int,
    batch: int,
    growth: int = 32,
    num_classes: int = 1000,
    fuse_activations: bool = True,
) -> NNGraph:
    """Build DenseNet-121/169/201 for ``(batch, 3, 224, 224)`` inputs."""
    if depth not in _CONFIGS:
        raise GraphError(f"unsupported DenseNet depth {depth}; choose {sorted(_CONFIGS)}")
    repeats = _CONFIGS[depth]
    b = GraphBuilder(f"densenet{depth}_b{batch}", fuse_activations)
    x = b.input((batch, 3, 224, 224))
    h = b.conv(x, 2 * growth, ksize=7, stride=2, pad=3, bias=False, name="conv1")
    h = b.batchnorm(h, activation="relu", name="bn1")
    h = b.pool(h, ksize=3, stride=2, pad=1, name="pool1")

    channels = 2 * growth
    for stage, n_layers in enumerate(repeats):
        features = h
        for i in range(n_layers):
            new = _dense_layer(b, features, growth, f"d{stage}l{i}")
            features = b.concat([features, new], name=f"d{stage}l{i}_cat")
            channels += growth
        h = features
        if stage < len(repeats) - 1:  # transition: compress + downsample
            h = b.batchnorm(h, activation="relu", name=f"t{stage}_bn")
            channels //= 2
            h = b.conv(h, channels, ksize=1, bias=False, name=f"t{stage}_conv")
            h = b.pool(h, ksize=2, stride=2, mode="avg", name=f"t{stage}_pool")

    h = b.batchnorm(h, activation="relu", name="bn_final")
    h = b.global_avg_pool(h, name="gap")
    h = b.linear(h, num_classes, name="fc")
    b.loss(h, name="loss")
    return b.build()


def densenet121(batch: int, **kw) -> NNGraph:
    return densenet(121, batch, **kw)


def densenet169(batch: int, **kw) -> NNGraph:
    return densenet(169, batch, **kw)
