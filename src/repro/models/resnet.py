"""ResNet family (He et al., CVPR 2016) — the paper's headline workload.

ResNet's many batch-norm / elementwise layers with large feature maps and
small compute make it the network where the hybrid method matters most: on a
slow interconnect their swap traffic cannot be hidden, and recomputing them is
nearly free (§5.1 of the paper).
"""

from __future__ import annotations

from repro.common.errors import GraphError
from repro.graph import GraphBuilder, NNGraph

#: (block kind, repeats per stage) for the standard depths
_CONFIGS: dict[int, tuple[str, tuple[int, int, int, int]]] = {
    18: ("basic", (2, 2, 2, 2)),
    34: ("basic", (3, 4, 6, 3)),
    50: ("bottleneck", (3, 4, 6, 3)),
    101: ("bottleneck", (3, 4, 23, 3)),
    152: ("bottleneck", (3, 8, 36, 3)),
}

_STAGE_WIDTHS = (64, 128, 256, 512)


def _basic_block(b: GraphBuilder, x: int, width: int, stride: int,
                 prefix: str) -> int:
    identity = x
    h = b.conv(x, width, ksize=3, stride=stride, pad=1, bias=False,
               name=f"{prefix}_conv1")
    h = b.batchnorm(h, activation="relu", name=f"{prefix}_bn1")
    h = b.conv(h, width, ksize=3, pad=1, bias=False, name=f"{prefix}_conv2")
    h = b.batchnorm(h, name=f"{prefix}_bn2")
    if stride != 1 or b.spec(identity).channels != width:
        identity = b.conv(identity, width, ksize=1, stride=stride, bias=False,
                          name=f"{prefix}_down")
        identity = b.batchnorm(identity, name=f"{prefix}_down_bn")
    return b.add([h, identity], activation="relu", name=f"{prefix}_add")


def _bottleneck_block(b: GraphBuilder, x: int, width: int, stride: int,
                      prefix: str, groups: int = 1,
                      group_width: int | None = None) -> int:
    """Standard (ResNet) or aggregated (ResNeXt, via groups/group_width)
    bottleneck: 1x1 reduce -> 3x3 (grouped) -> 1x1 expand, + identity."""
    mid = width if group_width is None else group_width
    out_channels = width * 4
    identity = x
    h = b.conv(x, mid, ksize=1, bias=False, name=f"{prefix}_conv1")
    h = b.batchnorm(h, activation="relu", name=f"{prefix}_bn1")
    h = b.conv(h, mid, ksize=3, stride=stride, pad=1, groups=groups,
               bias=False, name=f"{prefix}_conv2")
    h = b.batchnorm(h, activation="relu", name=f"{prefix}_bn2")
    h = b.conv(h, out_channels, ksize=1, bias=False, name=f"{prefix}_conv3")
    h = b.batchnorm(h, name=f"{prefix}_bn3")
    if stride != 1 or b.spec(identity).channels != out_channels:
        identity = b.conv(identity, out_channels, ksize=1, stride=stride,
                          bias=False, name=f"{prefix}_down")
        identity = b.batchnorm(identity, name=f"{prefix}_down_bn")
    return b.add([h, identity], activation="relu", name=f"{prefix}_add")


def resnet(
    depth: int,
    batch: int,
    num_classes: int = 1000,
    fuse_activations: bool = True,
    groups: int = 1,
    base_group_width: int | None = None,
    name: str | None = None,
) -> NNGraph:
    """Build a ResNet/ResNeXt-style network of the given ``depth`` for
    ``(batch, 3, 224, 224)`` inputs.

    ``groups``/``base_group_width`` turn bottleneck stages into ResNeXt's
    aggregated transforms (``base_group_width`` is the stage-1 grouped-conv
    width, doubled per stage, e.g. 32x4d → ``groups=32, base_group_width=128``).
    """
    if depth not in _CONFIGS:
        raise GraphError(f"unsupported ResNet depth {depth}; choose {sorted(_CONFIGS)}")
    kind, repeats = _CONFIGS[depth]
    if groups != 1 and kind != "bottleneck":
        raise GraphError("grouped (ResNeXt) variants need a bottleneck depth")

    b = GraphBuilder(name or f"resnet{depth}_b{batch}", fuse_activations)
    x = b.input((batch, 3, 224, 224))
    h = b.conv(x, 64, ksize=7, stride=2, pad=3, bias=False, name="conv1")
    h = b.batchnorm(h, activation="relu", name="bn1")
    h = b.pool(h, ksize=3, stride=2, pad=1, name="pool1")

    for stage, (width, n_blocks) in enumerate(zip(_STAGE_WIDTHS, repeats)):
        gw = base_group_width * (2**stage) if base_group_width else None
        for block in range(n_blocks):
            stride = 2 if (stage > 0 and block == 0) else 1
            prefix = f"s{stage + 2}b{block}"
            if kind == "basic":
                h = _basic_block(b, h, width, stride, prefix)
            else:
                h = _bottleneck_block(b, h, width, stride, prefix,
                                      groups=groups, group_width=gw)

    h = b.global_avg_pool(h, name="gap")
    h = b.linear(h, num_classes, name="fc")
    b.loss(h, name="loss")
    return b.build()


def resnet18(batch: int, **kw) -> NNGraph:
    return resnet(18, batch, **kw)


def resnet34(batch: int, **kw) -> NNGraph:
    return resnet(34, batch, **kw)


def resnet50(batch: int, **kw) -> NNGraph:
    return resnet(50, batch, **kw)


def resnet101(batch: int, **kw) -> NNGraph:
    return resnet(101, batch, **kw)


def resnet152(batch: int, **kw) -> NNGraph:
    return resnet(152, batch, **kw)
