"""Model zoo: graph builders for the networks the paper evaluates.

Every function returns an :class:`~repro.graph.NNGraph` parameterised by
batch size (and input size for the 3D network).  ``fuse_activations=True``
(default) folds ReLUs into the producing ops, matching the feature-map count
scale of the paper's Table 3; pass ``False`` for Chainer-faithful per-op maps.
"""

from repro.models.alexnet import alexnet
from repro.models.densenet import densenet, densenet121, densenet169
from repro.models.googlenet import googlenet
from repro.models.mobilenet import mobilenet_v1
from repro.models.resnet import resnet, resnet18, resnet34, resnet50, resnet101, resnet152
from repro.models.resnext import resnext50_32x4d, resnext101_32x4d
from repro.models.resnext3d import resnext101_3d
from repro.models.toys import linear_chain, mlp, poster_example, small_cnn
from repro.models.transformer import transformer_encoder
from repro.models.unet import unet
from repro.models.vgg import vgg16
from repro.models.zoo import MODEL_ZOO, build_model

__all__ = [
    "alexnet",
    "densenet",
    "densenet121",
    "densenet169",
    "transformer_encoder",
    "unet",
    "mobilenet_v1",
    "vgg16",
    "googlenet",
    "resnet",
    "resnet18",
    "resnet34",
    "resnet50",
    "resnet101",
    "resnet152",
    "resnext50_32x4d",
    "resnext101_32x4d",
    "resnext101_3d",
    "mlp",
    "small_cnn",
    "linear_chain",
    "poster_example",
    "MODEL_ZOO",
    "build_model",
]
