"""AlexNet (Krizhevsky et al., NIPS 2012), the paper's compute-heavy workload.

Large convolution kernels and huge fully-connected layers give AlexNet a high
FLOP-per-activation-byte ratio, which is why the paper finds swap traffic is
almost fully hidden and PoocH rarely chooses recompute for it (Figs. 19/20).
"""

from __future__ import annotations

from repro.graph import GraphBuilder, NNGraph


def alexnet(
    batch: int,
    num_classes: int = 1000,
    fuse_activations: bool = True,
    with_dropout: bool = True,
) -> NNGraph:
    """Build AlexNet for ``(batch, 3, 227, 227)`` inputs.

    Uses the original two-tower grouping on conv2/4/5 and LRN after
    conv1/conv2, matching the network the paper benchmarked.
    """
    b = GraphBuilder(f"alexnet_b{batch}", fuse_activations)
    x = b.input((batch, 3, 227, 227))
    h = b.conv(x, 96, ksize=11, stride=4, activation="relu", name="conv1")
    h = b.lrn(h, name="lrn1")
    h = b.pool(h, ksize=3, stride=2, name="pool1")
    h = b.conv(h, 256, ksize=5, pad=2, groups=2, activation="relu", name="conv2")
    h = b.lrn(h, name="lrn2")
    h = b.pool(h, ksize=3, stride=2, name="pool2")
    h = b.conv(h, 384, ksize=3, pad=1, activation="relu", name="conv3")
    h = b.conv(h, 384, ksize=3, pad=1, groups=2, activation="relu", name="conv4")
    h = b.conv(h, 256, ksize=3, pad=1, groups=2, activation="relu", name="conv5")
    h = b.pool(h, ksize=3, stride=2, name="pool5")
    h = b.linear(h, 4096, activation="relu", name="fc6")
    if with_dropout:
        h = b.dropout(h, name="drop6")
    h = b.linear(h, 4096, activation="relu", name="fc7")
    if with_dropout:
        h = b.dropout(h, name="drop7")
    h = b.linear(h, num_classes, name="fc8")
    b.loss(h, name="loss")
    return b.build()
