"""MobileNet-V1 (Howard et al., 2017) — an extension workload.

Depthwise-separable convolutions have the *lowest* FLOP-per-activation-byte
ratio of the common CNNs: the depthwise stage (groups == channels) does ~9
FLOPs per element while producing a full-size feature map.  That is the
opposite corner from AlexNet — on a slow interconnect almost nothing can
hide behind computation, so MobileNet is where the hybrid method's
recompute arm should dominate hardest.
"""

from __future__ import annotations

from repro.graph import GraphBuilder, NNGraph

#: (output channels, stride) per depthwise-separable block
_CFG = (
    (64, 1), (128, 2), (128, 1), (256, 2), (256, 1), (512, 2),
    (512, 1), (512, 1), (512, 1), (512, 1), (512, 1), (1024, 2), (1024, 1),
)


def _separable(b: GraphBuilder, x: int, out_channels: int, stride: int,
               prefix: str) -> int:
    in_c = b.spec(x).channels
    h = b.conv(x, in_c, ksize=3, stride=stride, pad=1, groups=in_c,
               bias=False, name=f"{prefix}_dw")
    h = b.batchnorm(h, activation="relu", name=f"{prefix}_dw_bn")
    h = b.conv(h, out_channels, ksize=1, bias=False, name=f"{prefix}_pw")
    return b.batchnorm(h, activation="relu", name=f"{prefix}_pw_bn")


def mobilenet_v1(
    batch: int,
    num_classes: int = 1000,
    width_mult: float = 1.0,
    fuse_activations: bool = True,
) -> NNGraph:
    """Build MobileNet-V1 for ``(batch, 3, 224, 224)`` inputs."""
    def c(ch: int) -> int:
        return max(8, int(ch * width_mult))

    b = GraphBuilder(f"mobilenet_v1_b{batch}", fuse_activations)
    x = b.input((batch, 3, 224, 224))
    h = b.conv(x, c(32), ksize=3, stride=2, pad=1, bias=False, name="conv1")
    h = b.batchnorm(h, activation="relu", name="bn1")
    for i, (ch, stride) in enumerate(_CFG):
        h = _separable(b, h, c(ch), stride, prefix=f"blk{i}")
    h = b.global_avg_pool(h, name="gap")
    h = b.linear(h, num_classes, name="fc")
    b.loss(h, name="loss")
    return b.build()
