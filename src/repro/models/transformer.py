"""Transformer encoder (Vaswani et al., 2017) — an extension workload.

Long sequences make the ``(B, H, L, L)`` attention-score tensors the memory
bottleneck (quadratic in L), a profile very different from CNN activations:
scores are cheap to recompute from Q/K but expensive to swap, so on slow
interconnects the classifier should lean on recomputation — the same Table-3
logic on a modern workload the paper predates.

The graph uses post-norm encoder blocks:

    x ──► Q,K,V ─ QK^T ─ softmax ─ ·V ─ proj ─ +x ─ LN ─ FF(4D) ─ FF(D) ─ +  ─ LN

and a mean-pool + classifier head so it trains end-to-end through the
numeric backend like every other model.
"""

from __future__ import annotations

from repro.graph import GraphBuilder, NNGraph


def _encoder_block(b: GraphBuilder, x: int, d_model: int, heads: int,
                   d_ff: int, prefix: str) -> int:
    q = b.token_linear(x, d_model, name=f"{prefix}_q")
    k = b.token_linear(x, d_model, name=f"{prefix}_k")
    v = b.token_linear(x, d_model, name=f"{prefix}_v")
    scores = b.attention_scores(q, k, heads=heads, name=f"{prefix}_qk")
    weights = b.softmax(scores, name=f"{prefix}_sm")
    ctx = b.attention_apply(weights, v, name=f"{prefix}_av")
    ctx = b.token_linear(ctx, d_model, name=f"{prefix}_proj")
    h = b.add([ctx, x], name=f"{prefix}_res1")
    h = b.layernorm(h, name=f"{prefix}_ln1")
    ff = b.token_linear(h, d_ff, activation="relu", name=f"{prefix}_ff1")
    ff = b.token_linear(ff, d_model, name=f"{prefix}_ff2")
    h2 = b.add([ff, h], name=f"{prefix}_res2")
    return b.layernorm(h2, name=f"{prefix}_ln2")


def transformer_encoder(
    batch: int = 8,
    seq_len: int = 512,
    d_model: int = 512,
    heads: int = 8,
    n_layers: int = 6,
    d_ff: int | None = None,
    num_classes: int = 2,
    fuse_activations: bool = True,
) -> NNGraph:
    """Build an ``n_layers``-block encoder over ``(batch, seq_len, d_model)``
    inputs with a mean-pool classification head."""
    d_ff = d_ff or 4 * d_model
    b = GraphBuilder(
        f"transformer_L{n_layers}_s{seq_len}_d{d_model}_b{batch}",
        fuse_activations,
    )
    h = b.input((batch, seq_len, d_model))
    for i in range(n_layers):
        h = _encoder_block(b, h, d_model, heads, d_ff, prefix=f"blk{i}")
    # classification head: flatten (B, L, D) and project to the classes
    h = b.linear(h, num_classes, name="head")
    b.loss(h, name="loss")
    return b.build()
