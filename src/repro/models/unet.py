"""U-Net (Ronneberger et al., 2015) — segmentation, an extension workload.

U-Net is the canonical *skip-connection* stress test for out-of-core
training: every encoder stage's feature map must survive until the matching
decoder stage consumes it — the longest feature-map lifetimes of any common
architecture.  Those skips are the ideal swap candidates (produced early,
needed late, with the whole bottleneck's compute available to hide the
round-trip), which makes U-Net a showcase for the paper's classification:
PoocH should swap the skips and keep/recompute the short-lived decoder maps.

The head is global-pool + classifier so the graph trains end-to-end through
the numeric backend like every other model (a dense segmentation loss would
only change the head).
"""

from __future__ import annotations

from repro.graph import GraphBuilder, NNGraph


def _double_conv(b: GraphBuilder, x: int, channels: int, prefix: str) -> int:
    h = b.conv(x, channels, ksize=3, pad=1, bias=False, name=f"{prefix}_conv1")
    h = b.batchnorm(h, activation="relu", name=f"{prefix}_bn1")
    h = b.conv(h, channels, ksize=3, pad=1, bias=False, name=f"{prefix}_conv2")
    return b.batchnorm(h, activation="relu", name=f"{prefix}_bn2")


def unet(
    batch: int,
    image: int = 256,
    base_channels: int = 64,
    depth: int = 4,
    num_classes: int = 10,
    fuse_activations: bool = True,
) -> NNGraph:
    """Build a depth-``depth`` U-Net for ``(batch, 3, image, image)`` inputs.

    ``image`` must be divisible by ``2**depth``.
    """
    b = GraphBuilder(f"unet_d{depth}_i{image}_b{batch}", fuse_activations)
    x = b.input((batch, 3, image, image))

    skips: list[int] = []
    h = x
    ch = base_channels
    for d in range(depth):
        h = _double_conv(b, h, ch, f"enc{d}")
        skips.append(h)
        h = b.pool(h, ksize=2, stride=2, name=f"down{d}")
        ch *= 2

    h = _double_conv(b, h, ch, "bottleneck")

    for d in reversed(range(depth)):
        ch //= 2
        h = b.upsample(h, scale=2, name=f"up{d}")
        h = b.conv(h, ch, ksize=1, bias=False, name=f"up{d}_proj")
        h = b.concat([skips[d], h], name=f"skip{d}")
        h = _double_conv(b, h, ch, f"dec{d}")

    h = b.global_avg_pool(h, name="gap")
    h = b.linear(h, num_classes, name="head")
    b.loss(h, name="loss")
    return b.build()
