"""3D ResNeXt-101 for video (Hara et al., CVPR 2018) — the paper's
"memory blows up even at batch size 1" workload (Figs. 4, 21, 22).

Structure follows Hara's 3D ResNeXt: a 7x7x7 stem with temporal stride 1,
3x3x3 max-pool, four stages of grouped 3D bottlenecks [3, 4, 23, 3] with
cardinality 32, global spatio-temporal average pooling and a classifier.
Memory scales with the 3D input volume, so the evaluation sweeps input size
at batch 1 instead of batch size.
"""

from __future__ import annotations

from repro.graph import GraphBuilder, NNGraph

_REPEATS = (3, 4, 23, 3)
_STAGE_WIDTHS = (128, 256, 512, 1024)  # grouped-conv widths (32x4d scale)
_STAGE_OUT = (256, 512, 1024, 2048)


def _bottleneck3d(b: GraphBuilder, x: int, mid: int, out_channels: int,
                  stride: int, groups: int, prefix: str) -> int:
    identity = x
    h = b.conv(x, mid, ksize=1, bias=False, name=f"{prefix}_conv1")
    h = b.batchnorm(h, activation="relu", name=f"{prefix}_bn1")
    h = b.conv(h, mid, ksize=3, stride=stride, pad=1, groups=groups,
               bias=False, name=f"{prefix}_conv2")
    h = b.batchnorm(h, activation="relu", name=f"{prefix}_bn2")
    h = b.conv(h, out_channels, ksize=1, bias=False, name=f"{prefix}_conv3")
    h = b.batchnorm(h, name=f"{prefix}_bn3")
    if stride != 1 or b.spec(identity).channels != out_channels:
        identity = b.conv(identity, out_channels, ksize=1, stride=stride,
                          bias=False, name=f"{prefix}_down")
        identity = b.batchnorm(identity, name=f"{prefix}_down_bn")
    return b.add([h, identity], activation="relu", name=f"{prefix}_add")


def resnext101_3d(
    input_size: tuple[int, int, int] = (16, 112, 112),
    batch: int = 1,
    num_classes: int = 400,
    cardinality: int = 32,
    fuse_activations: bool = True,
) -> NNGraph:
    """Build 3D ResNeXt-101 for ``(batch, 3, T, H, W)`` video clips.

    ``input_size`` is ``(frames, height, width)``; the paper sweeps it with
    ``batch=1`` until memory reaches ~58 GB (Fig. 4).
    """
    t, hh, ww = input_size
    b = GraphBuilder(
        f"resnext101_3d_{t}x{hh}x{ww}_b{batch}", fuse_activations
    )
    x = b.input((batch, 3, t, hh, ww))
    h = b.conv(x, 64, ksize=7, stride=(1, 2, 2), pad=3, bias=False,
               name="conv1")
    h = b.batchnorm(h, activation="relu", name="bn1")
    h = b.pool(h, ksize=3, stride=2, pad=1, name="pool1")

    for stage, (mid, out_c, n_blocks) in enumerate(
        zip(_STAGE_WIDTHS, _STAGE_OUT, _REPEATS)
    ):
        for block in range(n_blocks):
            stride = 2 if (stage > 0 and block == 0) else 1
            h = _bottleneck3d(b, h, mid, out_c, stride, cardinality,
                              prefix=f"s{stage + 2}b{block}")

    h = b.global_avg_pool(h, name="gap")
    h = b.linear(h, num_classes, name="fc")
    b.loss(h, name="loss")
    return b.build()
