"""VGG-16 (Simonyan & Zisserman) — a deep plain CNN used as an extra
workload beyond the paper's three networks (heavy compute, large early
feature maps, no branches)."""

from __future__ import annotations

from repro.graph import GraphBuilder, NNGraph

_CFG = ((64, 2), (128, 2), (256, 3), (512, 3), (512, 3))


def vgg16(
    batch: int,
    num_classes: int = 1000,
    fuse_activations: bool = True,
    with_dropout: bool = True,
) -> NNGraph:
    """Build VGG-16 for ``(batch, 3, 224, 224)`` inputs."""
    b = GraphBuilder(f"vgg16_b{batch}", fuse_activations)
    h = b.input((batch, 3, 224, 224))
    for stage, (width, n_convs) in enumerate(_CFG, start=1):
        for i in range(n_convs):
            h = b.conv(h, width, ksize=3, pad=1, activation="relu",
                       name=f"conv{stage}_{i + 1}")
        h = b.pool(h, ksize=2, stride=2, name=f"pool{stage}")
    h = b.linear(h, 4096, activation="relu", name="fc6")
    if with_dropout:
        h = b.dropout(h, name="drop6")
    h = b.linear(h, 4096, activation="relu", name="fc7")
    if with_dropout:
        h = b.dropout(h, name="drop7")
    h = b.linear(h, num_classes, name="fc8")
    b.loss(h, name="loss")
    return b.build()
