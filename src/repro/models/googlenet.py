"""GoogLeNet / Inception-v1 (Szegedy et al., CVPR 2015).

The paper cites GoogLeNet as the motivating example for *why* swap timing
must be profiled rather than predicted statically: its many-branch inception
modules make the execution timing of swaps hard to model analytically (§4.2).
We include it to exercise branching graphs in the scheduler and classifier.
"""

from __future__ import annotations

from repro.graph import GraphBuilder, NNGraph

#: inception configs: (1x1, 3x3reduce, 3x3, 5x5reduce, 5x5, pool-proj)
_INCEPTION = {
    "3a": (64, 96, 128, 16, 32, 32),
    "3b": (128, 128, 192, 32, 96, 64),
    "4a": (192, 96, 208, 16, 48, 64),
    "4b": (160, 112, 224, 24, 64, 64),
    "4c": (128, 128, 256, 24, 64, 64),
    "4d": (112, 144, 288, 32, 64, 64),
    "4e": (256, 160, 320, 32, 128, 128),
    "5a": (256, 160, 320, 32, 128, 128),
    "5b": (384, 192, 384, 48, 128, 128),
}


def _inception(b: GraphBuilder, x: int, cfg: tuple[int, ...], prefix: str) -> int:
    c1, c3r, c3, c5r, c5, cp = cfg
    b1 = b.conv(x, c1, ksize=1, activation="relu", name=f"{prefix}_1x1")
    b3 = b.conv(x, c3r, ksize=1, activation="relu", name=f"{prefix}_3x3r")
    b3 = b.conv(b3, c3, ksize=3, pad=1, activation="relu", name=f"{prefix}_3x3")
    b5 = b.conv(x, c5r, ksize=1, activation="relu", name=f"{prefix}_5x5r")
    b5 = b.conv(b5, c5, ksize=5, pad=2, activation="relu", name=f"{prefix}_5x5")
    bp = b.pool(x, ksize=3, stride=1, pad=1, name=f"{prefix}_pool")
    bp = b.conv(bp, cp, ksize=1, activation="relu", name=f"{prefix}_proj")
    return b.concat([b1, b3, b5, bp], name=f"{prefix}_out")


def googlenet(
    batch: int, num_classes: int = 1000, fuse_activations: bool = True
) -> NNGraph:
    """Build GoogLeNet (no auxiliary heads) for ``(batch, 3, 224, 224)``."""
    b = GraphBuilder(f"googlenet_b{batch}", fuse_activations)
    h = b.input((batch, 3, 224, 224))
    h = b.conv(h, 64, ksize=7, stride=2, pad=3, activation="relu", name="conv1")
    h = b.pool(h, ksize=3, stride=2, pad=1, name="pool1")
    h = b.lrn(h, name="lrn1")
    h = b.conv(h, 64, ksize=1, activation="relu", name="conv2r")
    h = b.conv(h, 192, ksize=3, pad=1, activation="relu", name="conv2")
    h = b.lrn(h, name="lrn2")
    h = b.pool(h, ksize=3, stride=2, pad=1, name="pool2")
    h = _inception(b, h, _INCEPTION["3a"], "i3a")
    h = _inception(b, h, _INCEPTION["3b"], "i3b")
    h = b.pool(h, ksize=3, stride=2, pad=1, name="pool3")
    for key in ("4a", "4b", "4c", "4d", "4e"):
        h = _inception(b, h, _INCEPTION[key], f"i{key}")
    h = b.pool(h, ksize=3, stride=2, pad=1, name="pool4")
    h = _inception(b, h, _INCEPTION["5a"], "i5a")
    h = _inception(b, h, _INCEPTION["5b"], "i5b")
    h = b.global_avg_pool(h, name="gap")
    h = b.dropout(h, p=0.4, name="drop")
    h = b.linear(h, num_classes, name="fc")
    b.loss(h, name="loss")
    return b.build()
