"""Small synthetic networks: unit-test fixtures, numeric-validation targets
and the 8-layer chain used throughout the paper's worked figures."""

from __future__ import annotations

from repro.graph import GraphBuilder, NNGraph


def mlp(
    batch: int = 8,
    in_features: int = 32,
    hidden: tuple[int, ...] = (64, 64),
    num_classes: int = 10,
    fuse_activations: bool = True,
) -> NNGraph:
    """A plain multi-layer perceptron; the smallest trainable graph."""
    b = GraphBuilder(f"mlp_b{batch}", fuse_activations)
    h = b.input((batch, in_features))
    for i, width in enumerate(hidden):
        h = b.linear(h, width, activation="relu", name=f"fc{i}")
    h = b.linear(h, num_classes, name="head")
    b.loss(h, name="loss")
    return b.build()


def small_cnn(
    batch: int = 4,
    image: int = 16,
    num_classes: int = 10,
    fuse_activations: bool = True,
    with_residual: bool = False,
) -> NNGraph:
    """A tiny CNN (conv/bn/pool/fc) small enough for the numpy numeric
    backend to execute in milliseconds; optionally with one residual add to
    exercise branch handling."""
    b = GraphBuilder(f"small_cnn_b{batch}", fuse_activations)
    x = b.input((batch, 3, image, image))
    h = b.conv(x, 8, ksize=3, pad=1, bias=False, name="conv1")
    h = b.batchnorm(h, activation="relu", name="bn1")
    if with_residual:
        skip = h
        h = b.conv(h, 8, ksize=3, pad=1, bias=False, name="conv2")
        h = b.batchnorm(h, name="bn2")
        h = b.add([h, skip], activation="relu", name="res")
    else:
        h = b.conv(h, 8, ksize=3, pad=1, activation="relu", name="conv2")
    h = b.pool(h, ksize=2, stride=2, name="pool")
    h = b.linear(h, num_classes, name="head")
    b.loss(h, name="loss")
    return b.build()


def linear_chain(
    n_layers: int = 8,
    batch: int = 32,
    channels: int = 64,
    image: int = 56,
    heavy: tuple[int, ...] = (),
    fuse_activations: bool = True,
) -> NNGraph:
    """A chain of ``n_layers`` conv layers over a constant-size feature map.

    Layers whose index is in ``heavy`` use 3x3 kernels (compute-heavy);
    the rest use 1x1 (light).  Useful for constructing scheduler scenarios
    where specific swaps are / are not hidden by computation.
    """
    b = GraphBuilder(f"chain{n_layers}_b{batch}", fuse_activations)
    h = b.input((batch, channels, image, image))
    for i in range(n_layers):
        k, p = (3, 1) if i in heavy else (1, 0)
        h = b.conv(h, channels, ksize=k, pad=p, activation="relu",
                   name=f"layer{i}")
    h = b.global_avg_pool(h, name="gap")
    h = b.linear(h, 10, name="head")
    b.loss(h, name="loss")
    return b.build()


def poster_example(batch: int = 64, fuse_activations: bool = True) -> NNGraph:
    """An 8-layer network shaped like the paper's running example
    (Figs. 2, 7, 10–14): early layers compute-heavy with big maps, late
    layers light — so swap-outs pile up un-hidden at the end of forward and
    the interesting `L_O`/`L_I` structure appears."""
    b = GraphBuilder(f"poster8_b{batch}", fuse_activations)
    h = b.input((batch, 32, 64, 64))
    # layers 0-3: convs heavy enough to hide their own swaps
    for i in range(4):
        h = b.conv(h, 32, ksize=3, pad=1, activation="relu", name=f"layer{i}")
    # layers 4-7: cheap 1x1 / BN-like layers whose swap cannot be hidden
    for i in range(4, 8):
        h = b.conv(h, 32, ksize=1, activation="relu", name=f"layer{i}")
    h = b.global_avg_pool(h, name="gap")
    h = b.linear(h, 10, name="head")
    b.loss(h, name="loss")
    return b.build()
