"""2D ResNeXt variants (Xie et al., CVPR 2017), built on the ResNet
bottleneck machinery with aggregated (grouped) transforms."""

from __future__ import annotations

from repro.graph import NNGraph
from repro.models.resnet import resnet


def resnext50_32x4d(batch: int, **kw) -> NNGraph:
    """ResNeXt-50 (32x4d): cardinality 32, stage-1 grouped width 128."""
    return resnet(50, batch, groups=32, base_group_width=128,
                  name=f"resnext50_32x4d_b{batch}", **kw)


def resnext101_32x4d(batch: int, **kw) -> NNGraph:
    """ResNeXt-101 (32x4d)."""
    return resnet(101, batch, groups=32, base_group_width=128,
                  name=f"resnext101_32x4d_b{batch}", **kw)
