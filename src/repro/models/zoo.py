"""Registry mapping model names to builder callables, for CLI-ish use in
examples and benchmarks."""

from __future__ import annotations

from typing import Callable

from repro.common.errors import GraphError
from repro.graph import NNGraph
from repro.models.alexnet import alexnet
from repro.models.densenet import densenet121, densenet169
from repro.models.googlenet import googlenet
from repro.models.mobilenet import mobilenet_v1
from repro.models.resnet import resnet18, resnet34, resnet50, resnet101, resnet152
from repro.models.resnext import resnext50_32x4d, resnext101_32x4d
from repro.models.resnext3d import resnext101_3d
from repro.models.toys import linear_chain, mlp, poster_example, small_cnn
from repro.models.unet import unet
from repro.models.vgg import vgg16

#: name -> builder(batch, **kwargs).  resnext101_3d takes ``input_size``
#: instead of a meaningful batch (pass ``batch=1``).
MODEL_ZOO: dict[str, Callable[..., NNGraph]] = {
    "alexnet": alexnet,
    "densenet121": densenet121,
    "densenet169": densenet169,
    "unet": unet,
    "vgg16": vgg16,
    "googlenet": googlenet,
    "mobilenet_v1": mobilenet_v1,
    "resnet18": resnet18,
    "resnet34": resnet34,
    "resnet50": resnet50,
    "resnet101": resnet101,
    "resnet152": resnet152,
    "resnext50_32x4d": resnext50_32x4d,
    "resnext101_32x4d": resnext101_32x4d,
    "mlp": mlp,
    "small_cnn": small_cnn,
    "linear_chain": linear_chain,
    "poster_example": poster_example,
}


def build_model(name: str, batch: int = 1, **kwargs) -> NNGraph:
    """Build a zoo model by name.

    ``resnext101_3d`` is special-cased: it is parameterised by ``input_size``
    (frames, height, width) rather than batch.
    """
    if name == "resnext101_3d":
        return resnext101_3d(batch=batch, **kwargs)
    try:
        builder = MODEL_ZOO[name]
    except KeyError:
        known = sorted([*MODEL_ZOO, "resnext101_3d"])
        raise GraphError(f"unknown model {name!r}; known: {known}") from None
    return builder(batch, **kwargs)
