"""N-device data-parallel simulation on a shared host link.

Data-parallel training runs the *same* plan on every device (each replica
computes the same layers over its shard of the batch), so a multi-device
iteration is N copies of one single-device timeline — plus two couplings
the single-device engine cannot see:

* **Host-link contention.**  All replicas' H2D and D2H traffic crosses one
  host interconnect.  The :class:`LinkArbiter` below re-times the transfer
  windows of the N shifted timelines: per direction, the link serves one
  device's transfer at a time; a window that arrives while the link is busy
  waits, and the wait *slips every later event of that device* by the same
  amount (a rigid-slip model: conservative, deterministic, and exactly what
  KARMA's interleaving argument needs — staggered replicas stop queueing
  behind each other).  Same-device windows never self-arbitrate: within one
  device a direction's stream is already serial in the base timeline, so a
  single device passes through the arbiter with zero delay and ``N=1`` is
  bit-identical to the plain engine by construction (the equivalence tests
  assert it zoo-wide).
* **Gradient exchange.**  An allreduce stream per device, modelled as a
  ring allreduce over the parameter gradients (``2(N-1)/N`` of the bytes
  across the slowest hop) that starts when the device's backward phase
  finishes and overlaps whatever compute remains; the iteration ends when
  both the device's timeline and its gradient exchange are done.

The aggregate host bound is enforced here too: N replicas of a plan whose
host-resident swap peak is ``P`` need ``N*P`` bytes of host DRAM — a plan
that fits one device can exceed ``cpu_mem_capacity`` at ``N``, and the
check names the overflowing bytes (see ``MachineSpec.host_swap_capacity``
for the planning-side share that prevents this by construction).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Sequence

from repro.common.errors import OutOfMemoryError, SimulationError
from repro.common.units import format_bytes
from repro.gpusim.engine import RunResult, StreamName, TaskKind, TaskRecord

#: streams whose tasks occupy the host link (the compute stream does not)
_LINK_STREAMS = (StreamName.H2D, StreamName.D2H)


@dataclass(frozen=True)
class TransferGrant:
    """One transfer window after arbitration."""

    device: int
    tid: str
    direction: StreamName
    #: when the device asked for the link (original start + stagger + slip)
    requested: float
    #: when the link actually served it (>= requested)
    granted: float
    end: float

    @property
    def delay(self) -> float:
        return self.granted - self.requested


class LinkArbiter:
    """Serialize overlapping transfer windows of different devices.

    One arbiter instance covers both directions of the shared host link:
    each direction has an independent busy horizon (PCIe and NVLink are
    full duplex — H2D never blocks D2H), but a device's accumulated slip is
    common to both directions, because a delayed transfer pushes back
    everything that device does afterwards.

    Grants are deterministic: requests are served in non-decreasing
    effective-request order with ties broken by (direction, device, task
    id).  Within one device the effective order equals the original order
    (slip is device-uniform), so a lone device — or any device whose
    windows never overlap another's — experiences zero delay.
    """

    def __init__(self, link_shared: bool = True) -> None:
        self.link_shared = link_shared
        self.grants: list[TransferGrant] = []
        #: busy horizon per direction (per (direction, device) when the
        #: link is not shared, which makes contention impossible)
        self._free_at: dict = {}

    def _horizon_key(self, direction: StreamName, device: int):
        return direction if self.link_shared else (direction, device)

    def arbitrate(
        self,
        windows: Sequence[Sequence[TaskRecord]],
        stagger: Sequence[float],
    ) -> list[list[tuple[float, float]]]:
        """Re-time the per-device transfer windows.

        ``windows[d]`` is device ``d``'s transfer records in base-timeline
        order; ``stagger[d]`` shifts the whole device.  Returns, per
        device, the slip breakpoints ``[(base_start, slip_after), ...]`` in
        increasing base-start order — the cumulative delay applying to
        every event of that device at or after ``base_start`` (stagger not
        included).  The full grant list is left in :attr:`grants`.
        """
        n = len(windows)
        slip = [0.0] * n
        breakpoints: list[list[tuple[float, float]]] = [[] for _ in range(n)]
        # per-device cursor into its (time-ordered) transfer list; a heap
        # over effective request times picks the global next grant.  Heap
        # entries are re-validated because a grant can raise its device's
        # slip and therefore every pending request of that device.
        cursors = [0] * n
        heap: list[tuple[float, int, int]] = []

        def push(d: int) -> None:
            i = cursors[d]
            if i < len(windows[d]):
                rec = windows[d][i]
                heapq.heappush(
                    heap, (rec.start + stagger[d] + slip[d], d, i))

        for d in range(n):
            if stagger[d] < 0:
                raise SimulationError(
                    f"stagger offsets must be >= 0, got {stagger[d]!r} "
                    f"for device {d}")
            push(d)
        while heap:
            requested, d, i = heapq.heappop(heap)
            rec = windows[d][i]
            fresh = rec.start + stagger[d] + slip[d]
            if fresh != requested:  # stale: slip grew since the push
                heapq.heappush(heap, (fresh, d, i))
                continue
            key = self._horizon_key(rec.stream, d)
            granted = max(requested, self._free_at.get(key, 0.0))
            self._free_at[key] = granted + rec.duration
            if granted > requested:
                slip[d] = granted - rec.start - stagger[d]
                breakpoints[d].append((rec.start, slip[d]))
            self.grants.append(TransferGrant(
                device=d, tid=rec.tid, direction=rec.stream,
                requested=requested, granted=granted,
                end=granted + rec.duration,
            ))
            cursors[d] = i + 1
            push(d)
        return breakpoints


@dataclass
class DeviceTimeline:
    """One device's view of the multi-device iteration."""

    device: int
    #: deliberate start offset of this replica (the KARMA stagger)
    stagger: float
    #: cumulative link-contention delay at the end of the timeline
    contention_delay: float
    #: shifted completion time of the device's own task timeline
    timeline_end: float
    #: shifted completion of the backward phase (gradient exchange trigger)
    backward_end: float
    #: duration of the ring gradient exchange (0 when N=1)
    allreduce_time: float
    #: slip breakpoints [(base_start, slip_after)] from the arbiter
    slip_breakpoints: list = field(default_factory=list)

    @property
    def done(self) -> float:
        """When this device finishes the iteration, allreduce included."""
        return max(self.timeline_end, self.backward_end + self.allreduce_time)

    def slip_at(self, base_start: float) -> float:
        """Contention slip applying to an event at ``base_start``."""
        s = 0.0
        for t, value in self.slip_breakpoints:
            if t > base_start:
                break
            s = value
        return s

    def shift_of(self, base_start: float) -> float:
        return self.stagger + self.slip_at(base_start)


@dataclass
class MultiDeviceResult:
    """Outcome of one N-device data-parallel iteration."""

    base: RunResult
    devices: int
    per_device: list[DeviceTimeline]
    #: iteration makespan: the slowest device, allreduce included
    makespan: float
    #: sum over devices of their final contention slip
    contention_delay_total: float
    #: the arbiter's full grant list (contention-window forensics)
    grants: list[TransferGrant] = field(default_factory=list)
    #: host DRAM concurrently held by all replicas' swapped bytes
    host_bytes_total: int = 0

    @property
    def allreduce_time(self) -> float:
        return self.per_device[0].allreduce_time if self.per_device else 0.0

    def device_records(self, device: int) -> list[TaskRecord]:
        """The base records re-timed onto device ``device``'s clock."""
        dev = self.per_device[device]
        out = []
        for rec in self.base.records:
            shift = dev.shift_of(rec.start)
            out.append(TaskRecord(
                tid=rec.tid, kind=rec.kind, stream=rec.stream,
                layer=rec.layer, start=rec.start + shift,
                end=rec.end + shift,
            ))
        return out

    def summary(self) -> str:
        lines = [
            f"{self.devices}-device iteration: {self.makespan * 1e3:.2f} ms "
            f"(single device {self.base.makespan * 1e3:.2f} ms)",
        ]
        for dev in self.per_device:
            lines.append(
                f"  device {dev.device}: stagger {dev.stagger * 1e3:.2f} ms, "
                f"contention delay {dev.contention_delay * 1e3:.2f} ms, "
                f"allreduce {dev.allreduce_time * 1e3:.2f} ms, "
                f"done at {dev.done * 1e3:.2f} ms")
        return "\n".join(lines)


def ring_allreduce_time(grad_bytes: int, machine) -> float:
    """Ring-allreduce duration for ``grad_bytes`` of gradients.

    Each device sends and receives ``2*(N-1)/N`` of the bytes across the
    exchange path, in ``2*(N-1)`` latency-bound steps.  0 when ``N == 1``
    or there are no gradients.
    """
    n = machine.devices
    if n <= 1 or grad_bytes <= 0:
        return 0.0
    bandwidth = machine.effective_allreduce_bandwidth
    volume = 2.0 * (n - 1) / n * grad_bytes
    return volume / bandwidth + 2.0 * (n - 1) * machine.copy_latency


def check_host_fit(base: RunResult, machine) -> int:
    """Aggregate host bound: N replicas of ``base``'s host peak must fit
    ``cpu_mem_capacity``.  Returns the total; raises naming the overflow."""
    total = machine.devices * base.host_peak
    if total > machine.cpu_mem_capacity:
        overflow = total - machine.cpu_mem_capacity
        raise OutOfMemoryError(
            f"host swap space exceeds CPU DRAM: {machine.devices} devices x "
            f"{format_bytes(base.host_peak)} host-resident swapped bytes = "
            f"{format_bytes(total)}, capacity "
            f"{format_bytes(machine.cpu_mem_capacity)} "
            f"(over by {format_bytes(overflow)})",
            requested=total,
            free=max(machine.cpu_mem_capacity - total + overflow, 0),
            capacity=machine.cpu_mem_capacity,
            context="multi-device host swap",
        )
    return total


def simulate_multi_device(
    base: RunResult,
    machine,
    *,
    stagger: Sequence[float] | None = None,
    grad_bytes: int = 0,
) -> MultiDeviceResult:
    """Simulate ``machine.devices`` data-parallel replicas of ``base``.

    ``base`` is one device's single-device timeline (every replica runs the
    same plan); ``stagger[d]`` deliberately offsets device ``d``'s start —
    all zeros is the naive contention scenario, increasing offsets are the
    KARMA-style interleave.  ``grad_bytes`` is the per-device gradient
    volume the ring allreduce exchanges (``graph.total_param_bytes``).

    With ``devices == 1`` and the default stagger the result is
    bit-identical to ``base``: no contention is possible (a device never
    self-arbitrates) and the allreduce term vanishes.
    """
    n = machine.devices
    if stagger is None:
        stagger = (0.0,) * n
    stagger = tuple(float(s) for s in stagger)
    if len(stagger) != n:
        raise SimulationError(
            f"stagger has {len(stagger)} offsets for {n} devices")
    host_total = check_host_fit(base, machine)

    transfers = sorted(
        (r for r in base.records if r.stream in _LINK_STREAMS),
        key=lambda r: (r.start, r.tid),
    )
    arbiter = LinkArbiter(link_shared=machine.link_shared)
    breakpoints = arbiter.arbitrate([transfers] * n, stagger)

    ar_time = ring_allreduce_time(grad_bytes, machine)
    per_device: list[DeviceTimeline] = []
    for d in range(n):
        dev = DeviceTimeline(
            device=d,
            stagger=stagger[d],
            contention_delay=(breakpoints[d][-1][1] if breakpoints[d]
                              else 0.0),
            timeline_end=0.0,
            backward_end=0.0,
            allreduce_time=ar_time,
            slip_breakpoints=breakpoints[d],
        )
        # ends shift by the slip in effect at each record's *start* (a
        # window already granted is never preempted), so re-derive both
        # phase ends from the shifted records rather than shifting the max
        timeline_end = backward_end = stagger[d]
        for rec in base.records:
            end = rec.end + dev.shift_of(rec.start)
            if end > timeline_end:
                timeline_end = end
            if rec.kind is TaskKind.BWD and end > backward_end:
                backward_end = end
        dev.timeline_end = timeline_end
        dev.backward_end = backward_end if backward_end > stagger[d] \
            else timeline_end
        per_device.append(dev)

    return MultiDeviceResult(
        base=base,
        devices=n,
        per_device=per_device,
        makespan=max(dev.done for dev in per_device),
        contention_delay_total=sum(dev.contention_delay
                                   for dev in per_device),
        grants=arbiter.grants,
        host_bytes_total=host_total,
    )
