"""Lockstep vectorized replay engine for schedule-candidate *families*.

The classification search evaluates thousands of candidate schedules that
all share one base draft and differ only by keep/swap flips: a kept map
removes its ``SO``/``SI`` transfer pair and rewires the backward readers of
the swapped-in instance onto the surviving forward instance (see
:func:`repro.runtime.schedule.apply_keep_delta`).  :class:`VectorEngine`
exploits that uniformity: it compiles the base draft once into numpy tables
(durations, padded dependency lists, rounded memory needs, per-task free
lists, stream queues) where every flip-dependent task, dependency edge and
free edge carries a *condition* — "active iff map m is kept" / "active iff
map m is swapped" — and then simulates K candidates in lockstep as an array
program: one row of state per candidate, one batched sweep per event round.

Per round, each candidate independently (at its own simulated clock)

1. completes every in-flight task whose finish time equals its next event
   time (the engines batch completions at identical timestamps), releasing
   scratch and decrementing buffer free countdowns;
2. runs one scan pass over the three streams in the deterministic
   compute → D2H → H2D priority order, issuing each idle stream's head when
   its dependencies have completed and its memory needs fit (with the same
   headroom waiver as :class:`~repro.gpusim.engine.Engine`).

Because all engine arithmetic is the same left-fold of IEEE ``+``/``min``
over the same operands, results are bit-identical to
:class:`~repro.gpusim.fastengine.FastEngine` and
:class:`~repro.gpusim.engine.Engine` — same makespans, same per-task
start/end times, same allocator high-water marks, and the same OOM/deadlock
diagnoses at the same simulated instants.  ``tests/test_vecengine.py``
fuzzes exactly that equivalence.

The lockstep formulation covers EAGER-policy drafts without alloc-on-ready
reservations or start-deps (a single scan pass is then a fixpoint: issues
only consume memory and dependency satisfaction needs a completion, so no
issue can unblock another within one instant).  Anything else —
NAIVE/SUPERNEURONS triggers, forward-refetch swap-ins with recompute
interactions, mid-replay resume — raises :class:`VectorUnsupported` at
compile time and the caller falls back to :class:`FastEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import OutOfMemoryError, ScheduleError, SimulationError
from repro.common.units import format_bytes
from repro.gpusim.allocator import round_size
from repro.gpusim.engine import StreamName
from repro.obs import metrics

#: same deterministic scan priority as the event engines
_STREAM_ORDER = (StreamName.COMPUTE, StreamName.D2H, StreamName.H2D)
_N_STREAMS = len(_STREAM_ORDER)

#: free-countdown value of the sentinel buffer column — never reaches zero
_NEVER = 1 << 30


class VectorUnsupported(SimulationError):
    """The draft (or batch) is outside the lockstep engine's expressible
    family; callers fall back to the event-driven engines."""


@dataclass(frozen=True)
class KeepFlip:
    """One map's keep↔swap flip, described purely in engine terms.

    ``removed_tasks``/``removed_buffers`` exist only while the map is
    swapped; when kept, each task in ``rewired_readers`` drops its
    dependency on ``swap_in`` in favour of ``fwd_producer`` and joins the
    free set of ``fwd_buffer`` (whose ``swap_out`` free edge disappears
    with the swap-out task).  Built from a base draft by
    :func:`repro.runtime.schedule.keep_flip_specs`, mirroring
    ``apply_keep_delta`` edge for edge.
    """

    map_id: int
    swap_out: str
    swap_in: str | None
    fwd_buffer: str
    fwd_producer: str
    host_buffer: str
    back_buffer: str | None
    rewired_readers: tuple[str, ...] = ()


@dataclass
class VecOutcome:
    """Result of one candidate's lockstep replay.

    ``error`` carries the exact exception an event engine run would have
    raised (``OutOfMemoryError`` or ``ScheduleError``) — not raised here so
    one infeasible candidate cannot abort its batch.  ``starts``/``ends``
    map tid → time when the batch ran with ``record_times=True``.
    """

    makespan: float
    device_peak: int
    host_peak: int
    error: Exception | None = None
    starts: dict[str, float] | None = None
    ends: dict[str, float] | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


class VectorTables:
    """Numpy tables compiled once from a raw schedule draft (plus the
    conditional edges of an optional keep-flip family).  Immutable; one
    compile serves every :meth:`VectorEngine.run_batch` over the family."""

    def __init__(self, tasks, queues, buffers, device_capacity: int,
                 host_capacity: int | None = None,
                 flips: tuple[KeepFlip, ...] = ()) -> None:
        if device_capacity <= 0:
            raise SimulationError(
                f"pool capacity must be positive, got {device_capacity}")
        self.device_capacity = int(device_capacity)
        self.host_capacity = int(host_capacity or (1 << 62))
        self.flips = tuple(flips)
        self.flip_maps = tuple(f.map_id for f in self.flips)

        tids = list(tasks)
        index = {tid: i for i, tid in enumerate(tids)}
        n = len(tids)
        self.tids = tids
        self.index = index
        self.n = n

        # -- expressibility gate (see module docstring) ---------------------
        for tid in tids:
            t = tasks[tid]
            if not t.memory_gated:
                raise VectorUnsupported(
                    f"task {tid!r} is not memory-gated (SUPERNEURONS-style "
                    "drafts need the event engine)")
            if t.alloc_on_ready:
                raise VectorUnsupported(
                    f"task {tid!r} uses alloc-on-ready reservations")
            if t.start_deps:
                raise VectorUnsupported(
                    f"task {tid!r} has start-deps (NAIVE/SUPERNEURONS "
                    "triggers need the event engine)")

        # flip slot per conditioned tid: slot+1 when active-iff-kept is
        # False (task removed when kept) — tasks are only ever conditioned
        # negatively (SO/SI exist while swapped)
        removed_when_kept: dict[str, int] = {}
        for s, f in enumerate(self.flips):
            if f.swap_out not in index:
                raise VectorUnsupported(
                    f"flip of map {f.map_id} names unknown task "
                    f"{f.swap_out!r}")
            removed_when_kept[f.swap_out] = s
            if f.swap_in is not None:
                removed_when_kept[f.swap_in] = s

        #: 0 = always active, -(s+1) = inactive when keep[s]
        task_cond = np.zeros(n, np.int32)
        for tid, s in removed_when_kept.items():
            task_cond[index[tid]] = -(s + 1)
        self.task_cond = task_cond

        # -- buffers ---------------------------------------------------------
        bids = list(buffers)
        bindex = {bid: i for i, bid in enumerate(bids)}
        nb = len(bids)
        self.bids = bids
        self.nbuf = nb
        buf_size = np.zeros(nb + 1, np.int64)
        buf_host = np.zeros(nb + 1, bool)
        for bid, b in buffers.items():
            buf_size[bindex[bid]] = round_size(b.nbytes)
            buf_host[bindex[bid]] = b.host
        self.buf_size = buf_size
        self.buf_host = buf_host

        # -- dependency slots: one *shared* table for the whole family.
        # A rewired reader carries both the swap-in dep (fires only while
        # swapped — the task vanishes when kept, so its in-degree share is
        # simply not counted then) and the forward-producer dep (always
        # present: while swapped it is transitively implied by the swap-in
        # chain SI → SO → producer, so counting it never delays an issue).
        # The per-candidate part is therefore just the *initial in-degree*,
        # which the batch derives from one matmul over the keep mask.
        dep_slots: list[list[int]] = [
            [index[d] for d in tasks[tid].deps] for tid in tids
        ]
        # -- free edges: (buffer, eff_cond, paired_alt); a buffer is freed
        # when every edge that fires in the candidate has fired.  Most
        # conditioned edges belong to tasks that exist only while swapped
        # (SO/SI) — those stay in the shared table, an inactive task never
        # completes.  The one genuinely per-candidate slot is the rewired
        # reader's pin: backward instance while swapped, forward instance
        # while kept.  It is stored as a *pair* (primary = swapped value,
        # alternate = kept value) and resolved at completion time.
        free_slots: list[list[tuple[int, int, int]]] = [[] for _ in range(n)]
        edges: dict[tuple[int, int], tuple[int, int]] = {}
        for bid, b in buffers.items():
            bi = bindex[bid]
            for tid in (b.writers | b.readers):
                edges[(index[tid], bi)] = (0, -1)

        for s, f in enumerate(self.flips):
            so_i = index[f.swap_out]
            fwd_bi = bindex[f.fwd_buffer]
            fwd_pi = index[f.fwd_producer]
            # swap-out's read of the forward instance exists only while
            # swapped; so do the host instance and its free edge
            edges[(so_i, fwd_bi)] = (-(s + 1), -1)
            edges[(so_i, bindex[f.host_buffer])] = (-(s + 1), -1)
            if f.swap_in is None:
                continue
            si_i = index[f.swap_in]
            back_bi = bindex[f.back_buffer]
            for rid in f.rewired_readers:
                ri = index[rid]
                # kept: reader waits on the forward producer and pins the
                # forward instance; swapped: it waits on the swap-in and
                # pins the swapped-in instance
                dep_slots[ri].append(fwd_pi)
                edges[(ri, back_bi)] = (-(s + 1), fwd_bi)
            edges[(si_i, back_bi)] = (-(s + 1), -1)
            edges[(si_i, bindex[f.host_buffer])] = (-(s + 1), -1)

        for (ti, bi), (cond, alt) in edges.items():
            free_slots[ti].append((bi, cond, alt))

        nf = len(self.flips)
        self.n_flips = nf

        # in-degree seed: a dep slot contributes iff its *dep task* exists
        # in the candidate (float32 so the batch matmul hits BLAS; counts
        # stay far below 2**24, so the sums are exact)
        indeg_base = np.zeros(n + 1, np.float32)
        indeg_swap = np.zeros((nf, n + 1), np.float32)
        for i, slots in enumerate(dep_slots):
            for d in slots:
                c = task_cond[d]
                if c == 0:
                    indeg_base[i] += 1
                else:
                    indeg_swap[-c - 1, i] += 1
        self.indeg_base = indeg_base
        self.indeg_swap = indeg_swap

        # consumer lists: who to count down when a task completes (one
        # entry per dep slot, so duplicate edges stay balanced)
        cons_lists: list[list[int]] = [[] for _ in range(n)]
        for i, slots in enumerate(dep_slots):
            for d in slots:
                cons_lists[d].append(i)
        cmax = max((len(c) for c in cons_lists), default=0)
        consumers_pad = np.full((n, max(cmax, 1)), n, np.int32)
        for i, cons in enumerate(cons_lists):
            consumers_pad[i, : len(cons)] = cons
        self.consumers_pad = consumers_pad

        fmax = max((len(s) for s in free_slots), default=0)
        frees_pad = np.full((n, max(fmax, 1)), nb, np.int32)
        pair_alt = np.full((n, max(fmax, 1)), nb, np.int32)
        pair_flip = np.zeros((n, max(fmax, 1)), np.int32)
        for i, slots in enumerate(free_slots):
            for j, (b, c, alt) in enumerate(slots):
                frees_pad[i, j] = b
                if alt >= 0:
                    pair_alt[i, j] = alt
                    pair_flip[i, j] = -c  # pair conds are always negative
        self.frees_pad = frees_pad
        self.pair_alt = pair_alt
        self.pair_flip = pair_flip
        #: which tasks carry any pair slot — the completion loop only runs
        #: the pair fix-up over those rows
        self.pair_task = (pair_flip != 0).any(axis=1)
        self.has_pairs = bool(self.pair_task.any())

        # free-countdown initialisation: unconditional edge count per
        # buffer, plus per-flip corrections applied via one matmul.  An
        # edge counts iff it fires: task-conditioned edges follow the task,
        # a pair slot counts its swapped side or its kept side.
        free_base = np.zeros(nb + 1, np.float32)
        count_keep = np.zeros((nf, nb + 1), np.float32)
        count_swap = np.zeros((nf, nb + 1), np.float32)
        for (ti, bi), (cond, alt) in edges.items():
            if cond == 0:
                free_base[bi] += 1
            else:
                count_swap[-cond - 1, bi] += 1
                if alt >= 0:
                    count_keep[-cond - 1, alt] += 1
        free_base[nb] = _NEVER
        self.free_base = free_base
        self.count_keep = count_keep
        self.count_swap = count_swap

        # -- per-task scalars (padded with a sentinel slot at index n, so
        # scan-time gathers over sentinel queue heads stay in bounds) -------
        self.duration = np.array([tasks[t].duration for t in tids], np.float64)
        self.scratch_r = np.array(
            [round_size(tasks[t].scratch_bytes) for t in tids], np.int64)
        self.headroom = np.zeros(n + 1, np.int64)
        self.headroom[:n] = [tasks[t].headroom for t in tids]

        need_dev = np.zeros(n + 1, np.int64)
        need_host = np.zeros(n + 1, np.int64)
        host_buf_of = np.full(n + 1, -1, np.int64)
        n_dev_bufs = np.zeros(n + 1, np.int64)
        for bid, b in buffers.items():
            if b.alloc_by is None:
                continue
            i = index[b.alloc_by]
            if b.host:
                if host_buf_of[i] >= 0:
                    raise VectorUnsupported(
                        f"task {b.alloc_by!r} allocates several host buffers")
                host_buf_of[i] = bindex[bid]
                need_host[i] += round_size(b.nbytes)
            else:
                need_dev[i] += round_size(b.nbytes)
                n_dev_bufs[i] += 1
        if np.any((need_host[:n] > 0)
                  & ((need_dev[:n] > 0) | (self.scratch_r > 0))):
            raise VectorUnsupported(
                "a task allocates both host and device memory (host-pool "
                "failure ordering is not expressible)")
        need_dev[:n] += self.scratch_r
        self.need_dev = need_dev
        self.need_host = need_host
        self.host_buf_of = host_buf_of
        #: mirror of FastEngine's _check_full: no memory gate at all when a
        #: task allocates nothing on the device
        self.check = np.zeros(n + 1, bool)
        self.check[:n] = (self.scratch_r > 0) | (n_dev_bufs[:n] > 0)

        # -- stream queues (base order; candidates compact them by mask) -----
        self.queues = [
            np.array([index[t] for t in queues.get(s, [])], np.int32)
            for s in _STREAM_ORDER
        ]
        stream_of = np.zeros(n, np.int32)
        for si, q in enumerate(self.queues):
            stream_of[q] = si
        self.stream_of = stream_of

        # -- preallocated buffers (weights, gradients): resident from t=0.
        # Replay the malloc sequence once — a prealloc overflow fails every
        # candidate identically, with the pool's own error
        self.prealloc_error: OutOfMemoryError | None = None
        dev_use = host_use = 0
        for bid, b in buffers.items():
            if b.alloc_by is not None:
                continue
            size = round_size(b.nbytes)
            cap, in_use, name = (
                (self.host_capacity, host_use, "host") if b.host
                else (self.device_capacity, dev_use, "gpu"))
            if size > cap - in_use:
                self.prealloc_error = OutOfMemoryError(
                    f"{name} pool out of memory allocating {bid!r}: "
                    f"requested {format_bytes(size)}, free "
                    f"{format_bytes(cap - in_use)} of {format_bytes(cap)}"
                    " while prealloc",
                    requested=size, free=cap - in_use, capacity=cap,
                    context="prealloc")
                break
            if b.host:
                host_use += size
            else:
                dev_use += size
        self.prealloc_dev = dev_use
        self.prealloc_host = host_use

    # -- candidate-family helpers ----------------------------------------------

    def active_tasks(self, keep: np.ndarray) -> np.ndarray:
        """(K, n) bool: which tasks exist in each candidate."""
        k = keep.shape[0]
        active = np.ones((k, self.n), bool)
        neg = self.task_cond < 0
        if neg.any():
            active[:, neg] = ~keep[:, -self.task_cond[neg] - 1]
        return active


class VectorEngine:
    """Run batches of candidates against one :class:`VectorTables`."""

    def __init__(self, tables: VectorTables) -> None:
        self.tables = tables

    # -- scalar fallbacks for the rare per-candidate exits ---------------------

    def _diagnose_stall(self, k: int, now: float, qk, cur, indeg_k,
                        dev_use: int, ninf: int) -> Exception:
        """Mirror of the event engines' deadlock diagnosis for candidate k
        (reached with nothing in flight, so the headroom waiver is moot)."""
        t = self.tables
        memory_blocked: list[int] = []
        dep_blocked: list[int] = []
        for s in range(_N_STREAMS):
            h = int(qk[s][k, cur[k, s]])
            if h >= t.n:
                continue
            if indeg_k[h] > 0:
                dep_blocked.append(h)
            elif t.check[h] and t.need_dev[h] > t.device_capacity - dev_use:
                memory_blocked.append(h)
            else:  # issuable head ⇒ the scan would not have stalled
                dep_blocked.append(h)
        free = t.device_capacity - dev_use
        if memory_blocked:
            i = memory_blocked[0]
            need = int(t.need_dev[i])
            metrics.count("engine.stalls_memory")
            return OutOfMemoryError(
                f"memory deadlock at t={now:.6f}: task {t.tids[i]!r} needs "
                f"{format_bytes(need)} (+{format_bytes(int(t.headroom[i]))} "
                f"headroom), free {format_bytes(free)} of "
                f"{format_bytes(t.device_capacity)}, nothing in flight",
                requested=need, free=free, capacity=t.device_capacity,
                context=t.tids[i])
        heads = [t.tids[i] for i in dep_blocked]
        metrics.count("engine.stalls_dependency")
        return ScheduleError(
            f"dependency deadlock at t={now:.6f}: stream heads {heads} "
            "can never issue (cyclic or unsatisfiable deps)")

    def _host_oom(self, i: int, host_use: int) -> OutOfMemoryError:
        """The host pool's own malloc failure (host allocs are ungated)."""
        t = self.tables
        bid = t.bids[int(t.host_buf_of[i])]
        size = int(t.need_host[i])
        free = t.host_capacity - host_use
        return OutOfMemoryError(
            f"host pool out of memory allocating {bid!r}: requested "
            f"{format_bytes(size)}, free {format_bytes(free)} of "
            f"{format_bytes(t.host_capacity)} while {t.tids[i]}",
            requested=size, free=free, capacity=t.host_capacity,
            context=t.tids[i])

    # -- the lockstep loop ------------------------------------------------------

    def run_batch(self, keep: np.ndarray | None = None,
                  record_times: bool = False,
                  durations: np.ndarray | None = None) -> list[VecOutcome]:
        """Simulate K candidates; ``keep`` is a (K, len(flips)) bool matrix
        (``None`` = the base draft alone).  ``durations`` optionally
        overrides the compiled per-task durations with a (K, n) float64
        matrix — one duration table per row — so a batch can sweep K fault
        seeds (or other per-row perturbations) over one compiled draft;
        ``None`` keeps the shared table.  When only ``durations`` is given,
        K is taken from it and every row runs the base draft.  Returns one
        :class:`VecOutcome` per row, in order — infeasible candidates carry
        their exact event-engine exception instead of raising."""
        t = self.tables
        if keep is None:
            rows = 1 if durations is None else np.asarray(durations).shape[0]
            keep = np.zeros((rows, len(t.flips)), bool)
        keep = np.asarray(keep, bool)
        if keep.ndim != 2 or keep.shape[1] != len(t.flips):
            raise SimulationError(
                f"keep matrix must be (K, {len(t.flips)}), got {keep.shape}")
        K = keep.shape[0]
        if durations is not None:
            durations = np.ascontiguousarray(durations, np.float64)
            if durations.shape != (K, t.n):
                raise SimulationError(
                    f"durations matrix must be (K, n) = ({K}, {t.n}), "
                    f"got {durations.shape}")
        n = t.n
        nb1 = t.nbuf + 1
        registry = metrics.active()
        if registry is not None:
            registry.count("engine.vector_runs")
            registry.count("engine.vector_candidates", K)

        if t.prealloc_error is not None:
            return [VecOutcome(float("inf"), t.prealloc_dev, t.prealloc_host,
                               error=t.prealloc_error) for _ in range(K)]

        ar = np.arange(K)
        active_task = t.active_tasks(keep)
        total = active_task.sum(1)

        # per-candidate compacted queues (sentinel-tailed).  A stable
        # actives-first compaction is just a running count of actives: task
        # q[j] lands at column (#actives before j) of its row.
        qk: list[np.ndarray] = []
        for q in t.queues:
            if q.size == 0:
                qk.append(np.full((K, 1), n, np.int32))
                continue
            if not (t.task_cond[q] != 0).any():
                # unconditioned queue (e.g. compute): one shared row
                row = np.concatenate([q, [n]]).astype(np.int32)
                qk.append(np.broadcast_to(row, (K, q.size + 1)))
                continue
            qa = active_task[:, q]
            pos = np.cumsum(qa, axis=1) - 1
            out = np.full((K, q.size + 1), n, np.int32)
            rows, cols = np.nonzero(qa)
            out[rows, pos[rows, cols]] = q[cols]
            qk.append(out)

        # per-candidate countdown seeds via two BLAS matmuls; int64 keeps
        # np.subtract.at on its fast (no-cast) path
        kf = keep.astype(np.float32)
        nkf = np.float32(1.0) - kf
        free_count = (t.free_base[None, :]
                      + kf @ t.count_keep + nkf @ t.count_swap)
        fc_flat = np.ascontiguousarray(free_count, np.int64).reshape(-1)
        indeg = t.indeg_base[None, :] + nkf @ t.indeg_swap
        ind_flat = np.ascontiguousarray(indeg, np.int64).reshape(-1)

        # mutable lockstep state, one row per candidate
        now = np.zeros(K)
        fin = np.full((K, _N_STREAMS), np.inf)
        inflight = np.zeros((K, _N_STREAMS), np.int32)
        cur = np.zeros((K, _N_STREAMS), np.int64)
        ncomp = np.zeros(K, np.int64)
        ninf = np.zeros(K, np.int64)
        dev_use = np.full(K, t.prealloc_dev, np.int64)
        host_use = np.full(K, t.prealloc_host, np.int64)
        dev_peak = dev_use.copy()
        host_peak = host_use.copy()
        running = np.ones(K, bool)
        errors: dict[int, Exception] = {}
        makespan = np.zeros(K)
        starts = np.full((K, n), np.nan) if record_times else None
        ends = np.full((K, n), np.nan) if record_times else None

        duration = t.duration
        # per-row duration tables gather from a flat (K*n) view with row
        # stride n — hh never holds the sentinel (heads are filtered < n)
        dur_flat = None if durations is None else durations.reshape(-1)
        need_dev = t.need_dev
        need_host = t.need_host
        headroom = t.headroom
        check = t.check
        scratch_r = t.scratch_r
        buf_size = t.buf_size
        buf_host = t.buf_host
        dev_cap = t.device_capacity
        host_cap = t.host_capacity

        # flat views + row offsets let the hot loop use ``take`` (contiguous
        # 1-D gathers) instead of multi-axis fancy indexing
        n1 = n + 1
        row_off = ar * n1
        consumers_pad = t.consumers_pad
        frees_pad = t.frees_pad
        pair_alt = t.pair_alt
        pair_flip = t.pair_flip
        pair_task = t.pair_task
        has_pairs = t.has_pairs
        nf = max(t.n_flips, 1)
        keep_flat = np.ascontiguousarray(keep).reshape(-1)

        # head-gather fast paths: a shared (broadcast) queue reads one row,
        # a per-candidate queue reads its flat view with row offsets
        q_shared: list[np.ndarray | None] = []
        q_flat: list[tuple[np.ndarray, np.ndarray] | None] = []
        for qs in qk:
            if qs.strides[0] == 0:
                q_shared.append(qs[0])
                q_flat.append(None)
            else:
                q_shared.append(None)
                q_flat.append((qs.reshape(-1), qs.shape[1]))

        while running.any():
            # ---- scan: one prioritized pass over the three streams --------
            for s in range(_N_STREAMS):
                # compact on "stream open" before the head gather: the take
                # and every later op run on the |ck| open rows, not all K
                ck = np.nonzero(running & np.isinf(fin[:, s]))[0]
                if ck.size == 0:
                    continue
                qrow = q_shared[s]
                if qrow is not None:
                    hc = qrow.take(cur[ck, s])
                else:
                    qf, qw = q_flat[s]
                    hc = qf.take(ck * qw + cur[ck, s])
                open_h = hc < n
                if not open_h.all():
                    ck = ck[open_h]
                    if ck.size == 0:
                        continue
                    hc = hc[open_h]
                ok = ind_flat.take(row_off[ck] + hc) == 0
                ck = ck[ok]
                if ck.size == 0:
                    continue
                hc = hc[ok]
                nd = need_dev[hc]
                free = dev_cap - dev_use[ck]
                ok = (~check[hc]
                      | ((nd <= free)
                         & ((free >= nd + headroom[hc]) | (ninf[ck] == 0))))
                hn = need_host[hc]
                hbad = ok & (hn > host_cap - host_use[ck])
                if hbad.any():
                    for j in np.nonzero(hbad)[0]:
                        k = int(ck[j])
                        errors[k] = self._host_oom(int(hc[j]),
                                                   int(host_use[k]))
                        makespan[k] = np.inf
                        running[k] = False
                    ok &= ~hbad
                kk = ck[ok]
                if kk.size == 0:
                    continue
                hh = hc[ok]
                dev_use[kk] += nd[ok]
                host_use[kk] += hn[ok]
                if dur_flat is None:
                    fin[kk, s] = now[kk] + duration[hh]
                else:
                    fin[kk, s] = now[kk] + dur_flat.take(kk * n + hh)
                inflight[kk, s] = hh
                cur[kk, s] += 1
                ninf[kk] += 1
                if starts is not None:
                    starts[kk, hh] = now[kk]
            np.maximum(dev_peak, dev_use, out=dev_peak)
            np.maximum(host_peak, host_use, out=host_peak)

            # ---- next event time per candidate ----------------------------
            tnext = fin.min(1)
            live = running & np.isfinite(tnext)
            idle = running ^ live
            if idle.any():
                for k in np.nonzero(idle)[0]:
                    if ncomp[k] == total[k]:
                        makespan[k] = now[k]
                    else:
                        errors[k] = self._diagnose_stall(
                            int(k), float(now[k]), qk, cur,
                            ind_flat[k * n1:(k + 1) * n1],
                            int(dev_use[k]), int(ninf[k]))
                        makespan[k] = np.inf
                running &= ~idle
            if not live.any():
                continue

            # ---- batched completions at each candidate's event time -------
            kk, ss = np.nonzero((fin <= tnext[:, None]) & live[:, None])
            ii = inflight[kk, ss]
            fin[kk, ss] = np.inf
            np.copyto(now, tnext, where=live)
            counts = np.bincount(kk, minlength=K)
            ncomp += counts
            ninf -= counts
            # scratch release (rounded like the pool); int64 all the way
            # keeps ufunc.at on its fast path
            np.subtract.at(dev_use, kk, scratch_r[ii])
            if ends is not None:
                ends[kk, ii] = tnext[kk]
            # dependency countdown: each completion counts down its
            # consumers' in-degrees (sentinel slots dropped first)
            cons = consumers_pad[ii]
            cflat = (kk[:, None] * n1 + cons)[cons < n]
            np.subtract.at(ind_flat, cflat, 1)
            # buffer free countdowns; a buffer is released when the last
            # active edge fires.  Pair slots (confined to the few tasks in
            # ``pair_task``) resolve to the kept-side buffer first; sentinel
            # (padding) slots are dropped before the scatter, and several
            # same-instant completions hitting zero together are collapsed
            # into one release by a sort-dedupe.
            fb = frees_pad[ii]
            if has_pairs:
                pr = np.nonzero(pair_task[ii])[0]
                if pr.size:
                    pf = pair_flip[ii[pr]]
                    kept = keep_flat.take(
                        kk[pr, None] * nf + np.maximum(pf, 1) - 1)
                    fb[pr] = np.where((pf > 0) & kept, pair_alt[ii[pr]],
                                      fb[pr])
            flat = (kk[:, None] * nb1 + fb)[fb < t.nbuf]
            np.subtract.at(fc_flat, flat, 1)
            zero = fc_flat[flat] == 0
            if zero.any():
                zf = np.sort(flat[zero])
                if zf.size > 1:
                    zf = zf[np.concatenate(([True], zf[1:] != zf[:-1]))]
                zk = zf // nb1
                zb = zf - zk * nb1
                sizes = buf_size[zb]
                hsel = buf_host[zb]
                np.subtract.at(dev_use, zk[~hsel], sizes[~hsel])
                np.subtract.at(host_use, zk[hsel], sizes[hsel])

        out: list[VecOutcome] = []
        for k in range(K):
            err = errors.get(k)
            o = VecOutcome(
                makespan=float(makespan[k]) if err is None else float("inf"),
                device_peak=int(dev_peak[k]),
                host_peak=int(host_peak[k]),
                error=err)
            if record_times and err is None:
                o.starts = {t.tids[i]: float(starts[k, i])
                            for i in range(n) if not np.isnan(starts[k, i])}
                o.ends = {t.tids[i]: float(ends[k, i])
                          for i in range(n) if not np.isnan(ends[k, i])}
            out.append(o)
        return out


def simulate_draft(tasks, queues, buffers, device_capacity: int,
                   host_capacity: int | None = None,
                   record_times: bool = False) -> VecOutcome:
    """Compile one draft and run it alone (no flip family) — the
    differential-test entry point."""
    tables = VectorTables(tasks, queues, buffers, device_capacity,
                          host_capacity)
    return VectorEngine(tables).run_batch(record_times=record_times)[0]
