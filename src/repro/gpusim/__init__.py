"""Event-driven single-GPU simulator: the "testbed" substrate.

The engine executes a :class:`~repro.gpusim.engine.Schedule` — FIFO task
queues for one compute stream and two DMA copy streams — against a
capacity-limited memory pool, honouring task dependencies and memory gating,
and records a full timeline.  It is used twice, mirroring the paper's
architecture:

* with durations from :class:`repro.hw.CostModel` it is the *ground truth*
  machine (the stand-in for the real V100 testbed);
* with durations from a recorded :class:`repro.runtime.profiler.Profile` it
  is PoocH's internal *timeline predictor* (§4.1.2 of the paper).
"""

from repro.gpusim.allocator import AllocEvent, BlockMemoryPool, MemoryPool
from repro.gpusim.engine import (
    BufferSpec,
    Engine,
    RunResult,
    Schedule,
    StreamName,
    Task,
    TaskKind,
    TaskRecord,
)
from repro.gpusim.multidevice import (
    DeviceTimeline,
    LinkArbiter,
    MultiDeviceResult,
    TransferGrant,
    ring_allreduce_time,
    simulate_multi_device,
)

__all__ = [
    "MemoryPool",
    "BlockMemoryPool",
    "AllocEvent",
    "Task",
    "TaskKind",
    "TaskRecord",
    "StreamName",
    "BufferSpec",
    "Schedule",
    "Engine",
    "RunResult",
    "LinkArbiter",
    "TransferGrant",
    "DeviceTimeline",
    "MultiDeviceResult",
    "simulate_multi_device",
    "ring_allreduce_time",
]
