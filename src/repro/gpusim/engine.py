"""The event-driven execution engine.

Semantics (modelled on CUDA + a framework memory pool):

* Three FIFO *streams* — ``COMPUTE`` (kernels), ``H2D`` and ``D2H`` (the two
  DMA copy engines).  The head task of a stream *issues* when (1) the stream
  is idle, (2) all its ``deps`` have completed, (3) all its ``start_deps``
  have started, and (4) its memory needs are satisfiable.  Issued tasks run
  for ``duration`` seconds of simulated time; streams never preempt or
  reorder (head-of-line blocking is intentional — it is how real copy queues
  stall).
* Memory: every :class:`BufferSpec` names the task that allocates it
  (``alloc_by``; ``None`` = preallocated before time 0) and the set of tasks
  after whose completion it is freed (``free_after``; the buffer is released
  when *all* of them have completed, at the timestamp of the last).  A task
  additionally gets ``scratch_bytes`` of workspace for the span of its
  execution.
* Memory gating: a ``memory_gated`` task whose allocation does not fit simply
  waits (the stream stalls) until frees make room — this is PoocH's
  "swap in when there is room" behaviour and also how forward computation
  naturally throttles against outstanding swap-outs.  A non-gated task
  (modelling SuperNeurons' swap-in, issued without regard to actual memory
  usage) raises :class:`OutOfMemoryError` immediately if it does not fit.
  ``headroom`` demands that many bytes remain free *after* the allocation —
  the predictor-derived reserve PoocH uses to keep prefetch from starving
  computation.
* Deadlock: if no task is in flight and unfinished tasks remain, the engine
  raises :class:`OutOfMemoryError` when at least one stream head is blocked
  purely on memory (every such stall is a memory-capacity failure of the
  plan), otherwise :class:`ScheduleError` (a malformed dependency graph).

The engine knows nothing about neural networks; schedules are produced by
:mod:`repro.runtime.schedule`.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import (
    MissingKeyError,
    OutOfMemoryError,
    ScheduleError,
    SimulationError,
    nearest_keys,
)
from repro.common.units import format_bytes
from repro.gpusim.allocator import BlockMemoryPool, MemoryPool, round_size
from repro.obs import get_logger, metrics

log = get_logger(__name__)


class TaskKind(enum.Enum):
    FWD = "fwd"
    BWD = "bwd"
    RECOMPUTE = "recompute"
    SWAP_OUT = "swap_out"
    SWAP_IN = "swap_in"
    UPDATE = "update"


class StreamName(enum.Enum):
    COMPUTE = "compute"
    D2H = "d2h"
    H2D = "h2d"


#: deterministic scan priority when several streams could issue at one instant
_STREAM_ORDER = (StreamName.COMPUTE, StreamName.D2H, StreamName.H2D)


@dataclass(slots=True)
class Task:
    """One unit of work on one stream.  See module docstring for issue rules.

    ``layer`` is the graph-layer / feature-map index the task concerns
    (-1 when not applicable); it is what profiling keys durations on.
    """

    tid: str
    kind: TaskKind
    stream: StreamName
    duration: float
    layer: int = -1
    deps: tuple[str, ...] = ()
    start_deps: tuple[str, ...] = ()
    reads: tuple[str, ...] = ()
    scratch_bytes: int = 0
    memory_gated: bool = True
    headroom: int = 0
    #: reserve this task's output buffers the moment its deps/start_deps are
    #: satisfied, even while it is still queued behind other transfers —
    #: models DMA destinations allocated at scheduling time.  Combined with
    #: ``memory_gated=False`` this is SuperNeurons' "swap-in scheduled
    #: without considering the actual memory usage": the reservation itself
    #: can OOM.
    alloc_on_ready: bool = False
    payload: Callable[[], None] | None = None


@dataclass(slots=True)
class BufferSpec:
    """A single-lifetime buffer (one malloc, one free).

    A logical feature map that leaves and re-enters GPU memory appears as
    several BufferSpecs (forward instance, backward instance, ...).
    """

    bid: str
    nbytes: int
    alloc_by: str | None  # task id, or None => preallocated
    free_after: frozenset[str] = frozenset()  # empty => lives to end of run
    host: bool = False  # resides in CPU memory (swap destination)


@dataclass
class Schedule:
    """Everything the engine needs: tasks, per-stream FIFO order, buffers."""

    tasks: dict[str, Task]
    queues: dict[StreamName, list[str]]
    buffers: dict[str, BufferSpec]
    #: free-form annotations from the builder (classification, policy, ...)
    meta: dict = field(default_factory=dict)

    def validate(self) -> None:
        """Structural checks: queue/task agreement, dep/read name resolution,
        buffer alloc/free task references."""
        queued: list[str] = []
        for stream, q in self.queues.items():
            for tid in q:
                t = self.tasks.get(tid)
                if t is None:
                    raise ScheduleError(f"queue {stream} references unknown task {tid!r}")
                if t.stream is not stream:
                    raise ScheduleError(f"task {tid!r} queued on {stream} but declares {t.stream}")
                queued.append(tid)
        if len(queued) != len(set(queued)):
            raise ScheduleError("a task appears more than once across queues")
        if set(queued) != set(self.tasks):
            missing = set(self.tasks) - set(queued)
            raise ScheduleError(f"tasks never queued: {sorted(missing)[:5]}")
        for t in self.tasks.values():
            for d in (*t.deps, *t.start_deps):
                if d not in self.tasks:
                    raise ScheduleError(f"task {t.tid!r} depends on unknown task {d!r}")
            for b in t.reads:
                if b not in self.buffers:
                    raise ScheduleError(f"task {t.tid!r} reads unknown buffer {b!r}")
        for b in self.buffers.values():
            if b.alloc_by is not None and b.alloc_by not in self.tasks:
                raise ScheduleError(f"buffer {b.bid!r} allocated by unknown task {b.alloc_by!r}")
            for tid in b.free_after:
                if tid not in self.tasks:
                    raise ScheduleError(f"buffer {b.bid!r} freed after unknown task {tid!r}")


@dataclass(frozen=True)
class TaskRecord:
    """One executed task in the timeline."""

    tid: str
    kind: TaskKind
    stream: StreamName
    layer: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class RunResult:
    """Outcome of one engine run."""

    makespan: float
    records: list[TaskRecord]
    device_peak: int
    host_peak: int
    device_trace: list  # list[AllocEvent]
    meta: dict = field(default_factory=dict)
    #: lazy tid → record index; ``record_of`` is called from overlap
    #: analysis and r(X) scoring loops, where a per-call linear scan over
    #: the records turned every lookup into O(tasks)
    _tid_index: dict[str, TaskRecord] | None = field(
        default=None, repr=False, compare=False)

    def records_by_kind(self, kind: TaskKind) -> list[TaskRecord]:
        return [r for r in self.records if r.kind is kind]

    def record_of(self, tid: str) -> TaskRecord:
        index = self._tid_index
        if index is None:
            index = self._tid_index = {r.tid: r for r in self.records}
        try:
            return index[tid]
        except KeyError:
            near = nearest_keys(tid, index)
            raise MissingKeyError(
                f"run has no record of task {tid!r} "
                f"({len(self.records)} records"
                + (f"; nearest task ids: {list(near)}" if near else "")
                + ")",
                key=tid,
                table="RunResult.records",
                nearest=near,
            ) from None

    def busy_intervals(self, stream: StreamName) -> list[tuple[float, float]]:
        """Merged [start, end) busy intervals of one stream."""
        spans = sorted(
            (r.start, r.end) for r in self.records if r.stream is stream and r.end > r.start
        )
        merged: list[tuple[float, float]] = []
        for s, e in spans:
            if merged and s <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], e))
            else:
                merged.append((s, e))
        return merged


class Engine:
    """Executes one :class:`Schedule`; engines are single-use."""

    def __init__(
        self,
        schedule: Schedule,
        device_capacity: int,
        host_capacity: int | None = None,
        validate: bool = True,
        free_hook: Callable[[str], None] | None = None,
        fragmentation: bool = False,
        device_pool: MemoryPool | None = None,
        host_pool: MemoryPool | None = None,
    ) -> None:
        if validate:
            schedule.validate()
        self.schedule = schedule
        # fragmentation=True swaps in the best-fit block allocator, which can
        # additionally fail when no contiguous block fits (DESIGN.md §5);
        # explicit pools (e.g. the fault layer's spuriously-failing pool)
        # override the default construction and must match the capacities
        pool_cls = BlockMemoryPool if fragmentation else MemoryPool
        self.device = device_pool if device_pool is not None else pool_cls(
            device_capacity, "gpu")
        self.host = host_pool if host_pool is not None else MemoryPool(
            host_capacity or (1 << 62), "host")
        #: called with the buffer id whenever a buffer is freed — lets the
        #: numeric backend invalidate its arrays so that any use-after-free
        #: in a schedule fails loudly instead of silently reusing stale data
        self.free_hook = free_hook
        self._now = 0.0
        self._seq = 0
        self._heap: list[tuple[float, int, str]] = []
        self._started: dict[str, float] = {}
        self._completed: dict[str, float] = {}
        self._records: list[TaskRecord] = []
        # per-stream cursor into the queue and in-flight task id
        self._cursor: dict[StreamName, int] = {s: 0 for s in StreamName}
        self._inflight: dict[StreamName, str | None] = {s: None for s in StreamName}
        # alloc-on-ready bookkeeping
        self._prealloc_pending: list[str] = [
            t.tid for t in schedule.tasks.values() if t.alloc_on_ready
        ]
        self._prealloc_done: set[str] = set()
        # buffer bookkeeping
        self._allocs_by_task: dict[str, list[BufferSpec]] = {}
        self._free_countdown: dict[str, set[str]] = {}
        self._frees_by_task: dict[str, list[str]] = {}
        for b in schedule.buffers.values():
            if b.alloc_by is not None:
                self._allocs_by_task.setdefault(b.alloc_by, []).append(b)
            if b.free_after:
                self._free_countdown[b.bid] = set(b.free_after)
                for tid in b.free_after:
                    self._frees_by_task.setdefault(tid, []).append(b.bid)

    # -- issue machinery ---------------------------------------------------------

    def _pool_of(self, b: BufferSpec) -> MemoryPool:
        return self.host if b.host else self.device

    def _device_need_sizes(self, task: Task) -> list[int]:
        sizes = []
        if task.scratch_bytes:
            sizes.append(task.scratch_bytes)
        if task.tid not in self._prealloc_done:
            for b in self._allocs_by_task.get(task.tid, ()):
                if not b.host:
                    sizes.append(b.nbytes)
        return sizes

    def _device_need(self, task: Task) -> int:
        return sum(round_size(s) for s in self._device_need_sizes(task))

    def _blocked_reason(self, task: Task) -> str | None:
        """None if the task can issue now, else 'deps' | 'memory'."""
        for d in task.deps:
            if d not in self._completed:
                return "deps"
        for d in task.start_deps:
            if d not in self._started:
                return "deps"
        sizes = self._device_need_sizes(task)
        if sizes:
            need = sum(round_size(s) for s in sizes)
            free = self.device.free_bytes
            if not self.device.can_fit_all(sizes):
                return "memory"
            if free < need + task.headroom and self._any_inflight():
                # headroom is a politeness reserve for upcoming computation;
                # when nothing at all is in flight (computation is stalled
                # waiting on this very transfer) insisting on it would
                # deadlock, so it is waived.  Streams are scanned compute
                # first, so computation always gets first claim on memory.
                return "memory"
        return None

    def _any_inflight(self) -> bool:
        return any(tid is not None for tid in self._inflight.values())

    def _issue(self, task: Task) -> None:
        # residency assertion: every read must be in its pool right now —
        # a violation is a schedule-builder bug (use-after-free / missing dep)
        for bid in task.reads:
            b = self.schedule.buffers[bid]
            if not self._pool_of(b).is_resident(bid):
                raise ScheduleError(
                    f"task {task.tid!r} reads buffer {bid!r} which is not resident "
                    f"at t={self._now:.6f} (use-after-free or missing dependency)"
                )
        if task.tid not in self._prealloc_done:
            for b in self._allocs_by_task.get(task.tid, ()):
                self._pool_of(b).malloc(b.bid, b.nbytes, self._now, context=task.tid)
        if task.scratch_bytes:
            self.device.malloc(f"{task.tid}#ws", task.scratch_bytes, self._now,
                               context=task.tid)
        self._started[task.tid] = self._now
        if task.payload is not None:
            task.payload()
        self._seq += 1
        heapq.heappush(self._heap, (self._now + task.duration, self._seq, task.tid))
        self._inflight[task.stream] = task.tid

    def _try_issue_head(self, stream: StreamName) -> bool:
        """Attempt to issue the next task of ``stream``; True if issued."""
        if self._inflight[stream] is not None:
            return False
        q = self.schedule.queues.get(stream, [])
        i = self._cursor[stream]
        if i >= len(q):
            return False
        task = self.schedule.tasks[q[i]]
        reason = self._blocked_reason(task)
        if reason == "memory" and not task.memory_gated:
            need = self._device_need(task)
            raise OutOfMemoryError(
                f"ungated task {task.tid!r} failed allocation at t={self._now:.6f}: "
                f"needs {format_bytes(need)}, free {format_bytes(self.device.free_bytes)}",
                requested=need,
                free=self.device.free_bytes,
                capacity=self.device.capacity,
                context=task.tid,
            )
        if reason is not None:
            return False
        self._cursor[stream] = i + 1
        self._issue(task)
        return True

    def _run_ready_preallocs(self) -> bool:
        """Reserve output buffers of alloc-on-ready tasks whose dependencies
        are satisfied, even while they wait in their queue.  An un-gated
        reservation that does not fit raises (the SuperNeurons failure mode);
        a gated one simply stays pending."""
        progress = False
        still_pending: list[str] = []
        for tid in self._prealloc_pending:
            task = self.schedule.tasks[tid]
            ready = all(d in self._completed for d in task.deps) and all(
                d in self._started for d in task.start_deps
            )
            if not ready or tid in self._started:
                if tid not in self._started:
                    still_pending.append(tid)
                continue
            buf_sizes = [
                b.nbytes for b in self._allocs_by_task.get(tid, ()) if not b.host
            ]
            if task.memory_gated and not self.device.can_fit_all(buf_sizes):
                still_pending.append(tid)
                continue
            for b in self._allocs_by_task.get(tid, ()):
                self._pool_of(b).malloc(b.bid, b.nbytes, self._now,
                                        context=f"{tid} (scheduled reservation)")
            self._prealloc_done.add(tid)
            progress = True
        self._prealloc_pending = still_pending
        return progress

    def _scan(self) -> None:
        """Issue every task that can start at the current instant (fixpoint:
        a start may satisfy another task's start_deps)."""
        progress = True
        while progress:
            progress = False
            if self._prealloc_pending and self._run_ready_preallocs():
                progress = True
            for stream in _STREAM_ORDER:
                if self._try_issue_head(stream):
                    progress = True

    def _complete(self, tid: str) -> None:
        task = self.schedule.tasks[tid]
        self._completed[tid] = self._now
        self._inflight[task.stream] = None
        self._records.append(
            TaskRecord(tid, task.kind, task.stream, task.layer,
                       self._started[tid], self._now)
        )
        if task.scratch_bytes:
            self.device.free(f"{tid}#ws", self._now)
        for bid in self._frees_by_task.get(tid, ()):
            pending = self._free_countdown[bid]
            pending.discard(tid)
            if not pending:
                b = self.schedule.buffers[bid]
                self._pool_of(b).free(bid, self._now)
                if self.free_hook is not None:
                    self.free_hook(bid)

    def _diagnose_stall(self) -> None:
        """Called when the event heap is empty but tasks remain unfinished."""
        memory_blocked: list[Task] = []
        dep_blocked: list[Task] = []
        for stream in _STREAM_ORDER:
            q = self.schedule.queues.get(stream, [])
            i = self._cursor[stream]
            if i >= len(q):
                continue
            task = self.schedule.tasks[q[i]]
            reason = self._blocked_reason(task)
            if reason == "memory":
                memory_blocked.append(task)
            else:
                dep_blocked.append(task)
        if memory_blocked:
            t = memory_blocked[0]
            need = self._device_need(t)
            metrics.count("engine.stalls_memory")
            log.warning(
                "memory deadlock at t=%.6f: task %r needs %s, free %s",
                self._now, t.tid, format_bytes(need),
                format_bytes(self.device.free_bytes),
            )
            raise OutOfMemoryError(
                f"memory deadlock at t={self._now:.6f}: task {t.tid!r} needs "
                f"{format_bytes(need)} (+{format_bytes(t.headroom)} headroom), "
                f"free {format_bytes(self.device.free_bytes)} of "
                f"{format_bytes(self.device.capacity)}, nothing in flight",
                requested=need,
                free=self.device.free_bytes,
                capacity=self.device.capacity,
                context=t.tid,
            )
        heads = [t.tid for t in dep_blocked]
        metrics.count("engine.stalls_dependency")
        log.warning("dependency deadlock at t=%.6f: stream heads %s",
                    self._now, heads)
        raise ScheduleError(
            f"dependency deadlock at t={self._now:.6f}: stream heads {heads} "
            "can never issue (cyclic or unsatisfiable deps)"
        )

    # -- public --------------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute the schedule to completion and return the timeline.

        Raises :class:`OutOfMemoryError` for plan-infeasibility (the simulated
        equivalent of a CUDA allocation failure) and :class:`ScheduleError`
        for builder bugs.
        """
        # preallocated buffers (weights, gradients) occupy memory from t=0
        for b in self.schedule.buffers.values():
            if b.alloc_by is None:
                self._pool_of(b).malloc(b.bid, b.nbytes, 0.0, context="prealloc")
        self._scan()
        while self._heap:
            time, _, tid = heapq.heappop(self._heap)
            self._now = time
            self._complete(tid)
            # batch all completions at identical timestamps before rescanning
            while self._heap and self._heap[0][0] == time:
                _, _, tid2 = heapq.heappop(self._heap)
                self._complete(tid2)
            self._scan()
        if len(self._completed) != len(self.schedule.tasks):
            self._diagnose_stall()
        self._records.sort(key=lambda r: (r.start, r.tid))
        registry = metrics.active()
        if registry is not None:
            registry.count("engine.runs")
            registry.count("engine.tasks", len(self._records))
            by_kind: dict[str, int] = {}
            for rec in self._records:
                by_kind[rec.kind.value] = by_kind.get(rec.kind.value, 0) + 1
            for kind, n in by_kind.items():
                registry.count(f"engine.tasks_{kind}", n)
            registry.gauge("engine.makespan", self._now)
            for pool, side in ((self.device, "device"), (self.host, "host")):
                for name, value in pool.stats().items():
                    registry.gauge_max(f"allocator.{side}_{name}", value)
        return RunResult(
            makespan=self._now,
            records=self._records,
            device_peak=self.device.peak,
            host_peak=self.host.peak,
            device_trace=self.device.trace,
            meta=dict(self.schedule.meta),
        )
