"""GPU memory pool model.

The pool mirrors what PoocH hooks in Chainer: every ``malloc``/``free`` is
recorded with its simulated timestamp, size and buffer id, giving the
profiler the "sizes and order of malloc/free operations" the paper lists as
a profiling input (§4.2).

The model is a *counting* pool (capacity minus bytes in use) with cuDNN-style
512-byte size rounding.  Chainer's best-fit pool can additionally fail from
fragmentation; we deliberately omit fragmentation (noted in DESIGN.md) — all
of the paper's memory effects (in-core OOM, superneurons' ungated swap-in
failure, plan portability failures) are capacity effects, and a counting pool
keeps ground truth and PoocH's predictor exactly consistent.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.common.errors import OutOfMemoryError, SimulationError
from repro.common.units import format_bytes

#: allocation granularity (Chainer's memory pool rounds to 512-byte units)
ALLOC_ROUND: int = 512


def round_size(nbytes: int) -> int:
    """Round a request up to the pool granularity (0 stays 0)."""
    if nbytes <= 0:
        return 0
    return (nbytes + ALLOC_ROUND - 1) // ALLOC_ROUND * ALLOC_ROUND


@dataclass(frozen=True)
class AllocEvent:
    """One entry of the malloc/free trace."""

    time: float
    kind: str  # "malloc" | "free"
    buffer: str
    nbytes: int  # rounded size
    in_use_after: int  # pool bytes in use after this event


class MemoryPool:
    """Capacity-limited counting allocator with a full event trace.

    ``track=False`` disables trace recording (state transitions, peaks and
    failure behaviour are unchanged) — the predictor's search hot loop runs
    hundreds of simulations whose traces nobody reads.
    """

    def __init__(self, capacity: int, name: str = "gpu",
                 track: bool = True) -> None:
        if capacity <= 0:
            raise SimulationError(f"pool capacity must be positive, got {capacity}")
        self.name = name
        self.capacity = int(capacity)
        self.in_use = 0
        self.peak = 0
        self._sizes: dict[str, int] = {}
        self._track = track
        self.trace: list[AllocEvent] = []

    # -- queries ---------------------------------------------------------------

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.in_use

    def is_resident(self, buffer: str) -> bool:
        return buffer in self._sizes

    def size_of(self, buffer: str) -> int:
        """Rounded size of a resident buffer."""
        return self._sizes[buffer]

    def can_fit(self, nbytes: int) -> bool:
        """Whether a request of ``nbytes`` (pre-rounding) would succeed now."""
        return round_size(nbytes) <= self.free_bytes

    def can_fit_all(self, sizes: list[int]) -> bool:
        """Whether all requests could be satisfied simultaneously."""
        return sum(round_size(s) for s in sizes) <= self.free_bytes

    # -- mutation ----------------------------------------------------------------

    def malloc(self, buffer: str, nbytes: int, time: float,
               context: str = "") -> None:
        """Allocate ``buffer``; raises :class:`OutOfMemoryError` on shortfall
        and :class:`SimulationError` on double allocation."""
        if buffer in self._sizes:
            raise SimulationError(f"{self.name}: double malloc of {buffer!r}")
        size = round_size(nbytes)
        if size > self.free_bytes:
            raise OutOfMemoryError(
                f"{self.name} pool out of memory allocating {buffer!r}: "
                f"requested {format_bytes(size)}, free {format_bytes(self.free_bytes)}"
                f" of {format_bytes(self.capacity)}"
                + (f" while {context}" if context else ""),
                requested=size,
                free=self.free_bytes,
                capacity=self.capacity,
                context=context,
            )
        self._sizes[buffer] = size
        self.in_use += size
        if self.in_use > self.peak:
            self.peak = self.in_use
        if self._track:
            self.trace.append(AllocEvent(time, "malloc", buffer, size, self.in_use))

    def free(self, buffer: str, time: float) -> None:
        """Release ``buffer``; raises on unknown/double free."""
        size = self._sizes.pop(buffer, None)
        if size is None:
            raise SimulationError(f"{self.name}: free of non-resident {buffer!r}")
        self.in_use -= size
        if self._track:
            self.trace.append(AllocEvent(time, "free", buffer, size, self.in_use))

    # -- checkpointing -----------------------------------------------------------

    def snapshot_state(self) -> tuple[dict[str, int], int, int]:
        """Copy of (resident sizes, bytes in use, peak) — the full mutable
        state of a counting pool, for mid-simulation engine checkpoints.
        Only meaningful with ``track=False`` (the trace is not captured)."""
        return dict(self._sizes), self.in_use, self.peak

    def restore_state(self, sizes: dict[str, int], in_use: int,
                      peak: int) -> None:
        """Install a state captured by :meth:`snapshot_state`."""
        self._sizes = dict(sizes)
        self.in_use = in_use
        self.peak = peak

    # -- reporting ---------------------------------------------------------------

    def usage_curve(self) -> list[tuple[float, int]]:
        """(time, bytes-in-use) steps derived from the trace."""
        return [(ev.time, ev.in_use_after) for ev in self.trace]

    def stats(self) -> dict[str, float]:
        """Numeric state summary for telemetry (all values are gauges:
        capacity, current/peak occupancy, trace length)."""
        return {
            "capacity_bytes": self.capacity,
            "in_use_bytes": self.in_use,
            "peak_bytes": self.peak,
            "trace_events": len(self.trace),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MemoryPool({self.name}: {format_bytes(self.in_use)} / "
            f"{format_bytes(self.capacity)} in use, peak {format_bytes(self.peak)})"
        )


class BlockMemoryPool(MemoryPool):
    """Address-space best-fit allocator with splitting and coalescing.

    Unlike the counting pool, this models *fragmentation*: an allocation
    fails when no single free block is large enough, even if the total free
    bytes would suffice — the failure mode Chainer's arena allocator adds on
    top of pure capacity.  Opt-in via ``Engine(..., fragmentation=True)``;
    the counting pool remains the default so that PoocH's predictor and the
    ground truth stay exactly consistent (see DESIGN.md §5).
    """

    def __init__(self, capacity: int, name: str = "gpu") -> None:
        super().__init__(capacity, name)
        #: sorted list of free (offset, size) blocks
        self._free_blocks: list[tuple[int, int]] = [(0, self.capacity)]
        self._offsets: dict[str, tuple[int, int]] = {}
        #: size-bucketed index over the same free blocks: the sorted distinct
        #: block sizes plus, per size, the sorted offsets of blocks with that
        #: size.  ``malloc``'s best-fit choice (smallest size >= request,
        #: lowest offset among ties) becomes two bisects instead of a linear
        #: scan of the free list; the block picked is identical.
        self._size_keys: list[int] = [self.capacity]
        self._buckets: dict[int, list[int]] = {self.capacity: [0]}

    # -- size-bucket index -------------------------------------------------

    def _bucket_add(self, off: int, size: int) -> None:
        bucket = self._buckets.get(size)
        if bucket is None:
            bisect.insort(self._size_keys, size)
            self._buckets[size] = [off]
        else:
            bisect.insort(bucket, off)

    def _bucket_remove(self, off: int, size: int) -> None:
        bucket = self._buckets[size]
        if len(bucket) == 1:
            del self._buckets[size]
            del self._size_keys[bisect.bisect_left(self._size_keys, size)]
        else:
            del bucket[bisect.bisect_left(bucket, off)]

    # -- queries -----------------------------------------------------------

    def largest_free_block(self) -> int:
        return self._size_keys[-1] if self._size_keys else 0

    def fragmentation(self) -> float:
        """1 - largest_free_block / free_bytes (0 = unfragmented)."""
        free = self.free_bytes
        if free <= 0:
            return 0.0
        return 1.0 - self.largest_free_block() / free

    def can_fit(self, nbytes: int) -> bool:
        size = round_size(nbytes)
        return bool(self._size_keys) and self._size_keys[-1] >= size

    def stats(self) -> dict[str, float]:
        """Counting-pool stats plus the fragmentation the block model adds
        and the shape of the size-bucket index (free blocks, distinct
        bucket sizes, deepest bucket)."""
        base = super().stats()
        base["largest_free_block_bytes"] = self.largest_free_block()
        base["fragmentation"] = self.fragmentation()
        base["free_blocks"] = len(self._free_blocks)
        base["size_buckets"] = len(self._size_keys)
        base["largest_bucket_blocks"] = max(
            (len(b) for b in self._buckets.values()), default=0
        )
        return base

    def can_fit_all(self, sizes: list[int]) -> bool:
        """Whether all requests could be placed simultaneously (best-fit,
        largest-first trial placement on a copy of the free list)."""
        blocks = sorted((s for _, s in self._free_blocks), reverse=False)
        for size in sorted((round_size(s) for s in sizes), reverse=True):
            if size == 0:
                continue
            for i, s in enumerate(blocks):
                if s >= size:
                    blocks[i] = s - size
                    blocks.sort()
                    break
            else:
                return False
        return True

    # -- mutation ------------------------------------------------------------

    def malloc(self, buffer: str, nbytes: int, time: float,
               context: str = "") -> None:
        if buffer in self._sizes:
            raise SimulationError(f"{self.name}: double malloc of {buffer!r}")
        size = round_size(nbytes)
        # best-fit via the bucket index: the first size key >= request is the
        # smallest qualifying block size, and its bucket's first offset is the
        # lowest-offset block of that size — exactly what a linear best-fit
        # scan of the offset-sorted free list would pick.
        k = bisect.bisect_left(self._size_keys, size)
        if k == len(self._size_keys):
            total_free = self.free_bytes
            raise OutOfMemoryError(
                f"{self.name} pool cannot place {buffer!r}: requested "
                f"{format_bytes(size)}, largest free block "
                f"{format_bytes(self.largest_free_block())} "
                f"(total free {format_bytes(total_free)}"
                f"{', FRAGMENTED' if total_free >= size else ''})"
                + (f" while {context}" if context else ""),
                requested=size,
                free=total_free,
                capacity=self.capacity,
                context=context,
            )
        s = self._size_keys[k]
        off = self._buckets[s][0]
        if size:
            # zero-size requests reserve an address but no block: putting
            # 0-byte blocks on the free list would create duplicate-offset
            # entries that break the sorted invariant free() relies on.
            self._bucket_remove(off, s)
            idx = bisect.bisect_left(self._free_blocks, (off, 0))
            if s == size:
                del self._free_blocks[idx]
            else:
                self._free_blocks[idx] = (off + size, s - size)
                self._bucket_add(off + size, s - size)
        self._offsets[buffer] = (off, size)
        self._sizes[buffer] = size
        self.in_use += size
        if self.in_use > self.peak:
            self.peak = self.in_use
        if self._track:
            self.trace.append(AllocEvent(time, "malloc", buffer, size, self.in_use))

    def free(self, buffer: str, time: float) -> None:
        placed = self._offsets.pop(buffer, None)
        if placed is None:
            raise SimulationError(f"{self.name}: free of non-resident {buffer!r}")
        off, size = placed
        del self._sizes[buffer]
        self.in_use -= size
        if self._track:
            self.trace.append(AllocEvent(time, "free", buffer, size, self.in_use))
        if not size:
            return  # zero-size buffers hold no block (see malloc)
        # insert and coalesce with neighbours, keeping the bucket index in step
        idx = bisect.bisect_left(self._free_blocks, (off, 0))
        self._free_blocks.insert(idx, (off, size))
        self._bucket_add(off, size)
        # merge right
        if idx + 1 < len(self._free_blocks):
            o2, s2 = self._free_blocks[idx + 1]
            if off + size == o2:
                self._bucket_remove(off, size)
                self._bucket_remove(o2, s2)
                size += s2
                self._free_blocks[idx] = (off, size)
                del self._free_blocks[idx + 1]
                self._bucket_add(off, size)
        # merge left
        if idx > 0:
            o0, s0 = self._free_blocks[idx - 1]
            o1, s1 = self._free_blocks[idx]
            if o0 + s0 == o1:
                self._bucket_remove(o0, s0)
                self._bucket_remove(o1, s1)
                self._free_blocks[idx - 1] = (o0, s0 + s1)
                del self._free_blocks[idx]
                self._bucket_add(o0, s0 + s1)
