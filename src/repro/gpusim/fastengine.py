"""Index-based replay engine for the classification search hot loop.

:class:`FastEngine` executes the *same* semantics as
:class:`~repro.gpusim.engine.Engine` — FIFO streams, memory-gated issue,
headroom waiver, alloc-on-ready reservations, identical deadlock/OOM
behaviour — but is built for the predictor's hundreds-per-search replays:

* consumes the schedule builder's *drafts* directly (no ``Task``/
  ``BufferSpec`` finalisation, no structural validation — the builder's
  output is trusted exactly as ``Engine(validate=False)`` trusts it);
* dependency readiness is tracked with countdown counters updated on
  completion instead of re-scanning dependency lists on every issue attempt;
* per-task device memory needs are pre-rounded once;
* streams are dense integers, not enum-keyed dicts;
* no :class:`TaskRecord` timeline, no allocation trace, no residency
  assertions — it returns only (makespan, device peak, host peak).

Equivalence with the full engine — including float-for-float identical
makespans and identical OOM attribution — is enforced by
``tests/test_fastengine.py`` and transitively by every predicted==measured
test in the suite.  Only the counting :class:`MemoryPool` is supported
(the search never simulates the fragmentation allocator).
"""

from __future__ import annotations

import heapq

from repro.common.errors import OutOfMemoryError, ScheduleError
from repro.common.units import format_bytes
from repro.gpusim.allocator import MemoryPool, round_size
from repro.gpusim.engine import StreamName

#: same deterministic scan priority as the full engine
_STREAM_ORDER = (StreamName.COMPUTE, StreamName.D2H, StreamName.H2D)
_N_STREAMS = len(_STREAM_ORDER)


class FastEngine:
    """Single-use replay of one raw schedule; see module docstring.

    Args:
        tasks: task drafts by tid (insertion order = creation order).
        queues: per-stream FIFO task-id lists (keyed by :class:`StreamName`).
        buffers: buffer drafts by bid; ``free_after`` is derived as
            ``writers | readers`` exactly like ``_BufferDraft.to_spec``.
        device_capacity / host_capacity: pool limits in bytes.
    """

    def __init__(
        self,
        tasks: dict,
        queues: dict,
        buffers: dict,
        device_capacity: int,
        host_capacity: int | None = None,
    ) -> None:
        self.device = MemoryPool(device_capacity, "gpu", track=False)
        self.host = MemoryPool(host_capacity or (1 << 62), "host", track=False)

        tids = list(tasks)
        index = {tid: i for i, tid in enumerate(tids)}
        n = len(tids)
        self._tids = tids
        self._duration = [tasks[t].duration for t in tids]
        self._gated = [tasks[t].memory_gated for t in tids]
        self._headroom = [tasks[t].headroom for t in tids]
        self._scratch = [tasks[t].scratch_bytes for t in tids]

        # dependency countdowns + reverse edges
        rem_deps = [0] * n
        rem_starts = [0] * n
        dependents: list[list[int]] = [[] for _ in range(n)]
        start_dependents: list[list[int]] = [[] for _ in range(n)]
        for i, tid in enumerate(tids):
            t = tasks[tid]
            rem_deps[i] = len(t.deps)
            rem_starts[i] = len(t.start_deps)
            for d in t.deps:
                dependents[index[d]].append(i)
            for d in t.start_deps:
                start_dependents[index[d]].append(i)
        self._rem_deps = rem_deps
        self._rem_starts = rem_starts
        self._dependents = dependents
        self._start_dependents = start_dependents

        # buffers: allocation lists per task (creation order), free countdowns
        self._prealloc_buffers: list = []  # alloc_by=None → resident from t=0
        allocs: list[list] = [[] for _ in range(n)]
        self._free_count: dict[str, int] = {}
        frees_by_task: list[list[str]] = [[] for _ in range(n)]
        for b in buffers.values():
            if b.alloc_by is None:
                self._prealloc_buffers.append(b)
            else:
                allocs[index[b.alloc_by]].append(b)
            free_after = b.writers | b.readers
            if free_after:
                self._free_count[b.bid] = len(free_after)
                for tid in free_after:
                    frees_by_task[index[tid]].append(b.bid)
        self._allocs = allocs
        self._frees_by_task = frees_by_task

        # pre-rounded device needs; the *_after variants apply once an
        # alloc-on-ready task's reservation has been placed
        need_full = [0] * n
        need_after = [0] * n
        check_full = [False] * n
        check_after = [False] * n
        for i in range(n):
            scratch = round_size(self._scratch[i])
            dev_bufs = 0
            n_dev = 0
            for b in allocs[i]:
                if not b.host:
                    dev_bufs += round_size(b.nbytes)
                    n_dev += 1
            need_full[i] = scratch + dev_bufs
            need_after[i] = scratch
            check_full[i] = bool(self._scratch[i]) or n_dev > 0
            check_after[i] = bool(self._scratch[i])
        self._need_full = need_full
        self._need_after = need_after
        self._check_full = check_full
        self._check_after = check_after

        # per-stream queues as index lists + cursors + in-flight counts
        self._queues = [[index[tid] for tid in queues.get(s, [])]
                        for s in _STREAM_ORDER]
        self._cursor = [0] * _N_STREAMS
        self._busy = [False] * _N_STREAMS
        self._n_inflight = 0
        stream_of = [0] * n
        for s, q in enumerate(self._queues):
            for i in q:
                stream_of[i] = s
        self._stream_of = stream_of

        self._prealloc_pending = [i for i in range(n)
                                  if tasks[tids[i]].alloc_on_ready]
        self._prealloc_done = [False] * n

        self._started = [False] * n
        self._n_completed = 0
        self._now = 0.0
        self._seq = 0
        self._heap: list[tuple[float, int, int]] = []

    # -- issue machinery ---------------------------------------------------------

    def _blocked_reason(self, i: int) -> str | None:
        """None if task ``i`` can issue now, else 'deps' | 'memory' — the
        same decision procedure as ``Engine._blocked_reason``."""
        if self._rem_deps[i] or self._rem_starts[i]:
            return "deps"
        if self._prealloc_done[i]:
            check, need = self._check_after[i], self._need_after[i]
        else:
            check, need = self._check_full[i], self._need_full[i]
        if check:
            free = self.device.free_bytes
            if need > free:
                return "memory"
            if free < need + self._headroom[i] and self._n_inflight:
                return "memory"
        return None

    def _issue(self, i: int, stream: int) -> None:
        tid = self._tids[i]
        now = self._now
        if not self._prealloc_done[i]:
            for b in self._allocs[i]:
                pool = self.host if b.host else self.device
                pool.malloc(b.bid, b.nbytes, now, context=tid)
        if self._scratch[i]:
            self.device.malloc(f"{tid}#ws", self._scratch[i], now, context=tid)
        self._started[i] = True
        for j in self._start_dependents[i]:
            self._rem_starts[j] -= 1
        self._seq += 1
        heapq.heappush(self._heap, (now + self._duration[i], self._seq, i))
        self._busy[stream] = True
        self._n_inflight += 1

    def _raise_ungated_oom(self, i: int) -> None:
        need = (self._need_after[i] if self._prealloc_done[i]
                else self._need_full[i])
        raise OutOfMemoryError(
            f"ungated task {self._tids[i]!r} failed allocation at "
            f"t={self._now:.6f}: needs {format_bytes(need)}, free "
            f"{format_bytes(self.device.free_bytes)}",
            requested=need,
            free=self.device.free_bytes,
            capacity=self.device.capacity,
            context=self._tids[i],
        )

    def _run_ready_preallocs(self) -> bool:
        progress = False
        still_pending: list[int] = []
        for i in self._prealloc_pending:
            ready = not self._rem_deps[i] and not self._rem_starts[i]
            if not ready or self._started[i]:
                if not self._started[i]:
                    still_pending.append(i)
                continue
            if self._gated[i]:
                dev_need = sum(round_size(b.nbytes)
                               for b in self._allocs[i] if not b.host)
                if dev_need > self.device.free_bytes:
                    still_pending.append(i)
                    continue
            tid = self._tids[i]
            for b in self._allocs[i]:
                pool = self.host if b.host else self.device
                pool.malloc(b.bid, b.nbytes, self._now,
                            context=f"{tid} (scheduled reservation)")
            self._prealloc_done[i] = True
            progress = True
        self._prealloc_pending = still_pending
        return progress

    def _scan(self) -> None:
        """Issue everything issuable: preallocs first, then stream heads in
        deterministic order, to a fixpoint — the full engine's scan."""
        queues = self._queues
        cursor = self._cursor
        busy = self._busy
        rem_deps = self._rem_deps
        rem_starts = self._rem_starts
        prealloc_done = self._prealloc_done
        check_full = self._check_full
        device = self.device
        progress = True
        while progress:
            progress = False
            if self._prealloc_pending and self._run_ready_preallocs():
                progress = True
            for s in range(_N_STREAMS):
                if busy[s]:
                    continue
                q = queues[s]
                c = cursor[s]
                if c >= len(q):
                    continue
                i = q[c]
                if rem_deps[i] or rem_starts[i]:
                    continue
                if prealloc_done[i]:
                    if self._check_after[i]:
                        need = self._need_after[i]
                    else:
                        need = -1
                elif check_full[i]:
                    need = self._need_full[i]
                else:
                    need = -1
                if need >= 0:
                    free = device.capacity - device.in_use
                    if need > free or (
                        free < need + self._headroom[i] and self._n_inflight
                    ):
                        if not self._gated[i]:
                            self._raise_ungated_oom(i)
                        continue
                cursor[s] = c + 1
                self._issue(i, s)
                progress = True

    def _complete(self, i: int) -> None:
        self._n_completed += 1
        self._busy[self._stream_of[i]] = False
        self._n_inflight -= 1
        for j in self._dependents[i]:
            self._rem_deps[j] -= 1
        now = self._now
        if self._scratch[i]:
            self.device.free(f"{self._tids[i]}#ws", now)
        free_count = self._free_count
        for bid in self._frees_by_task[i]:
            remaining = free_count[bid] - 1
            free_count[bid] = remaining
            if not remaining:
                # the pool owning the buffer is determined at malloc time
                if self.device.is_resident(bid):
                    self.device.free(bid, now)
                else:
                    self.host.free(bid, now)

    def _diagnose_stall(self) -> None:
        memory_blocked: list[int] = []
        dep_blocked: list[int] = []
        for s in range(_N_STREAMS):
            q = self._queues[s]
            c = self._cursor[s]
            if c >= len(q):
                continue
            i = q[c]
            if self._blocked_reason(i) == "memory":
                memory_blocked.append(i)
            else:
                dep_blocked.append(i)
        if memory_blocked:
            i = memory_blocked[0]
            need = (self._need_after[i] if self._prealloc_done[i]
                    else self._need_full[i])
            raise OutOfMemoryError(
                f"memory deadlock at t={self._now:.6f}: task "
                f"{self._tids[i]!r} needs {format_bytes(need)} "
                f"(+{format_bytes(self._headroom[i])} headroom), free "
                f"{format_bytes(self.device.free_bytes)} of "
                f"{format_bytes(self.device.capacity)}, nothing in flight",
                requested=need,
                free=self.device.free_bytes,
                capacity=self.device.capacity,
                context=self._tids[i],
            )
        heads = [self._tids[i] for i in dep_blocked]
        raise ScheduleError(
            f"dependency deadlock at t={self._now:.6f}: stream heads {heads} "
            "can never issue (cyclic or unsatisfiable deps)"
        )

    # -- public ------------------------------------------------------------------

    def run(self) -> tuple[float, int, int]:
        """Replay to completion; returns (makespan, device peak, host peak).

        Raises exactly where the full engine would: ``OutOfMemoryError`` for
        plan infeasibility, ``ScheduleError`` for malformed dependencies.
        """
        for b in self._prealloc_buffers:
            pool = self.host if b.host else self.device
            pool.malloc(b.bid, b.nbytes, 0.0, context="prealloc")
        self._scan()
        heap = self._heap
        heappop = heapq.heappop
        complete = self._complete
        scan = self._scan
        while heap:
            time, _, i = heappop(heap)
            self._now = time
            complete(i)
            while heap and heap[0][0] == time:
                complete(heappop(heap)[2])
            scan()
        if self._n_completed != len(self._tids):
            self._diagnose_stall()
        return self._now, self.device.peak, self.host.peak
