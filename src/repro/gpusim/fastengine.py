"""Index-based replay engine for the classification search hot loop.

:class:`FastEngine` executes the *same* semantics as
:class:`~repro.gpusim.engine.Engine` — FIFO streams, memory-gated issue,
headroom waiver, alloc-on-ready reservations, identical deadlock/OOM
behaviour — but is built for the predictor's hundreds-per-search replays:

* consumes the schedule builder's *drafts* directly (no ``Task``/
  ``BufferSpec`` finalisation, no structural validation — the builder's
  output is trusted exactly as ``Engine(validate=False)`` trusts it);
* dependency readiness is tracked with countdown counters updated on
  completion instead of re-scanning dependency lists on every issue attempt;
* per-task device memory needs are pre-rounded once;
* streams are dense integers, not enum-keyed dicts;
* no :class:`TaskRecord` timeline, no allocation trace, no residency
  assertions — it returns only (makespan, device peak, host peak).

Equivalence with the full engine — including float-for-float identical
makespans and identical OOM attribution — is enforced by
``tests/test_fastengine.py`` and transitively by every predicted==measured
test in the suite.  Only the counting :class:`MemoryPool` is supported
(the search never simulates the fragmentation allocator).
"""

from __future__ import annotations

import heapq

from repro.common.errors import OutOfMemoryError, ScheduleError
from repro.common.units import format_bytes
from repro.gpusim.allocator import MemoryPool, round_size
from repro.gpusim.engine import StreamName
from repro.obs import metrics

#: same deterministic scan priority as the full engine
_STREAM_ORDER = (StreamName.COMPUTE, StreamName.D2H, StreamName.H2D)
_N_STREAMS = len(_STREAM_ORDER)


class EngineCheckpoint:
    """Complete mutable state of a :class:`FastEngine` at an event-loop
    fixpoint (post-scan, nothing issuable), keyed by task id so it can be
    replanted onto a *different* engine whose schedule shares the simulated
    prefix.

    Validity for a candidate schedule B, given per-stream divergence
    positions ``P[s]`` — the first queue position whose task (or whose
    engine-visible effect: issue decision, allocation, or free) differs
    from the schedule that recorded the checkpoint: for every stream,
    ``cursors[s] <= P[s]``, and where ``cursors[s] == P[s]`` the head of
    B's queue at that position (if any) must be dependency-blocked against
    ``completed``/``inflight``.  Dependency completion is monotone, so a
    head blocked *at* the checkpoint was blocked at every earlier scan —
    B's from-scratch run provably replays the exact same events, which is
    what makes resumed results bit-identical.  The predictor derives the
    ``P[s]`` in O(1) per flipped map from the shared all-swap base draft
    (see :mod:`repro.pooch.predictor` and DESIGN.md).

    Capture is O(in-flight): pool contents are *not* copied — a resuming
    engine reconstructs residency from its own alloc lists and free
    countdowns, which agree with the recording run on the shared prefix.
    """

    __slots__ = (
        "now", "seq", "completed_src", "progress", "inflight", "cursors",
        "busy", "dev_in_use", "dev_peak", "host_in_use", "host_peak",
        "_completed_set", "_started_set",
    )

    def __init__(self, now, seq, completed_src, progress, inflight, cursors,
                 busy, dev_in_use, dev_peak, host_in_use, host_peak) -> None:
        self.now = now
        self.seq = seq
        #: the recording engine's (append-only) completion-order tid list —
        #: shared across this engine's checkpoints; the first ``progress``
        #: entries are the tasks completed at capture time.  Sharing keeps
        #: capture O(1) in run length.
        self.completed_src = completed_src
        self.progress = progress
        #: (finish_time, seq, tid) of tasks issued but not yet completed
        self.inflight = inflight
        self.cursors = cursors
        self.busy = busy
        #: bytes-in-use / peak watermarks of the device and host pools
        self.dev_in_use = dev_in_use
        self.dev_peak = dev_peak
        self.host_in_use = host_in_use
        self.host_peak = host_peak
        self._completed_set: frozenset | None = None
        self._started_set: frozenset | None = None

    def completed(self) -> list[str]:
        """Completed tids in completion order (a copy)."""
        return self.completed_src[: self.progress]

    def completed_set(self) -> frozenset:
        """Completed tids as a set (built lazily, cached: validity checks
        probe the same checkpoint against many candidates)."""
        s = self._completed_set
        if s is None:
            s = self._completed_set = frozenset(self.completed_src[: self.progress])
        return s

    def started_set(self) -> frozenset:
        """Completed plus in-flight tids — everything issued by capture."""
        s = self._started_set
        if s is None:
            s = self._started_set = self.completed_set() | frozenset(
                tid for _, _, tid in self.inflight
            )
        return s


class FastEngine:
    """Single-use replay of one raw schedule; see module docstring.

    Args:
        tasks: task drafts by tid (insertion order = creation order).
        queues: per-stream FIFO task-id lists (keyed by :class:`StreamName`).
        buffers: buffer drafts by bid; ``free_after`` is derived as
            ``writers | readers`` exactly like ``_BufferDraft.to_spec``.
        device_capacity / host_capacity: pool limits in bytes.
    """

    def __init__(
        self,
        tasks: dict,
        queues: dict,
        buffers: dict,
        device_capacity: int,
        host_capacity: int | None = None,
    ) -> None:
        self.device = MemoryPool(device_capacity, "gpu", track=False)
        self.host = MemoryPool(host_capacity or (1 << 62), "host", track=False)

        tids = list(tasks)
        index = {tid: i for i, tid in enumerate(tids)}
        n = len(tids)
        self._tids = tids
        self._index = index
        self._duration = [tasks[t].duration for t in tids]
        self._gated = [tasks[t].memory_gated for t in tids]
        self._headroom = [tasks[t].headroom for t in tids]
        self._scratch = [tasks[t].scratch_bytes for t in tids]

        # dependency countdowns + reverse edges
        rem_deps = [0] * n
        rem_starts = [0] * n
        dependents: list[list[int]] = [[] for _ in range(n)]
        start_dependents: list[list[int]] = [[] for _ in range(n)]
        for i, tid in enumerate(tids):
            t = tasks[tid]
            rem_deps[i] = len(t.deps)
            rem_starts[i] = len(t.start_deps)
            for d in t.deps:
                dependents[index[d]].append(i)
            for d in t.start_deps:
                start_dependents[index[d]].append(i)
        self._rem_deps = rem_deps
        self._rem_starts = rem_starts
        self._dependents = dependents
        self._start_dependents = start_dependents

        # buffers: allocation lists per task (creation order), free countdowns
        self._prealloc_buffers: list = []  # alloc_by=None → resident from t=0
        allocs: list[list] = [[] for _ in range(n)]
        self._free_count: dict[str, int] = {}
        frees_by_task: list[list[str]] = [[] for _ in range(n)]
        for b in buffers.values():
            if b.alloc_by is None:
                self._prealloc_buffers.append(b)
            else:
                allocs[index[b.alloc_by]].append(b)
            free_after = b.writers | b.readers
            if free_after:
                self._free_count[b.bid] = len(free_after)
                for tid in free_after:
                    frees_by_task[index[tid]].append(b.bid)
        self._allocs = allocs
        self._frees_by_task = frees_by_task

        # pre-rounded device needs; the *_after variants apply once an
        # alloc-on-ready task's reservation has been placed
        need_full = [0] * n
        need_after = [0] * n
        check_full = [False] * n
        check_after = [False] * n
        for i in range(n):
            scratch = round_size(self._scratch[i])
            dev_bufs = 0
            n_dev = 0
            for b in allocs[i]:
                if not b.host:
                    dev_bufs += round_size(b.nbytes)
                    n_dev += 1
            need_full[i] = scratch + dev_bufs
            need_after[i] = scratch
            check_full[i] = bool(self._scratch[i]) or n_dev > 0
            check_after[i] = bool(self._scratch[i])
        self._need_full = need_full
        self._need_after = need_after
        self._check_full = check_full
        self._check_after = check_after

        # per-stream queues as index lists + cursors + in-flight counts
        self._queues = [[index[tid] for tid in queues.get(s, [])]
                        for s in _STREAM_ORDER]
        self._cursor = [0] * _N_STREAMS
        self._busy = [False] * _N_STREAMS
        self._n_inflight = 0
        stream_of = [0] * n
        for s, q in enumerate(self._queues):
            for i in q:
                stream_of[i] = s
        self._stream_of = stream_of

        self._prealloc_pending = [i for i in range(n)
                                  if tasks[tids[i]].alloc_on_ready]
        self._prealloc_done = [False] * n
        #: alloc-on-ready reservations make engine state depend on non-head
        #: tasks, which the checkpoint validity argument does not cover
        self.checkpointable = not self._prealloc_pending

        self._started = [False] * n
        self._n_completed = 0
        self._completed_tids: list[str] = []
        self._now = 0.0
        self._seq = 0
        self._heap: list[tuple[float, int, int]] = []
        #: checkpoints recorded by ``run(checkpoint_every=...)``
        self.checkpoints: list[EngineCheckpoint] = []

    # -- issue machinery ---------------------------------------------------------

    def _blocked_reason(self, i: int) -> str | None:
        """None if task ``i`` can issue now, else 'deps' | 'memory' — the
        same decision procedure as ``Engine._blocked_reason``."""
        if self._rem_deps[i] or self._rem_starts[i]:
            return "deps"
        if self._prealloc_done[i]:
            check, need = self._check_after[i], self._need_after[i]
        else:
            check, need = self._check_full[i], self._need_full[i]
        if check:
            free = self.device.free_bytes
            if need > free:
                return "memory"
            if free < need + self._headroom[i] and self._n_inflight:
                return "memory"
        return None

    def _issue(self, i: int, stream: int) -> None:
        tid = self._tids[i]
        now = self._now
        if not self._prealloc_done[i]:
            for b in self._allocs[i]:
                pool = self.host if b.host else self.device
                pool.malloc(b.bid, b.nbytes, now, context=tid)
        if self._scratch[i]:
            self.device.malloc(f"{tid}#ws", self._scratch[i], now, context=tid)
        self._started[i] = True
        for j in self._start_dependents[i]:
            self._rem_starts[j] -= 1
        self._seq += 1
        heapq.heappush(self._heap, (now + self._duration[i], self._seq, i))
        self._busy[stream] = True
        self._n_inflight += 1

    def _raise_ungated_oom(self, i: int) -> None:
        need = (self._need_after[i] if self._prealloc_done[i]
                else self._need_full[i])
        raise OutOfMemoryError(
            f"ungated task {self._tids[i]!r} failed allocation at "
            f"t={self._now:.6f}: needs {format_bytes(need)}, free "
            f"{format_bytes(self.device.free_bytes)}",
            requested=need,
            free=self.device.free_bytes,
            capacity=self.device.capacity,
            context=self._tids[i],
        )

    def _run_ready_preallocs(self) -> bool:
        progress = False
        still_pending: list[int] = []
        for i in self._prealloc_pending:
            ready = not self._rem_deps[i] and not self._rem_starts[i]
            if not ready or self._started[i]:
                if not self._started[i]:
                    still_pending.append(i)
                continue
            if self._gated[i]:
                dev_need = sum(round_size(b.nbytes)
                               for b in self._allocs[i] if not b.host)
                if dev_need > self.device.free_bytes:
                    still_pending.append(i)
                    continue
            tid = self._tids[i]
            for b in self._allocs[i]:
                pool = self.host if b.host else self.device
                pool.malloc(b.bid, b.nbytes, self._now,
                            context=f"{tid} (scheduled reservation)")
            self._prealloc_done[i] = True
            progress = True
        self._prealloc_pending = still_pending
        return progress

    def _scan(self) -> None:
        """Issue everything issuable: preallocs first, then stream heads in
        deterministic order, to a fixpoint — the full engine's scan."""
        queues = self._queues
        cursor = self._cursor
        busy = self._busy
        rem_deps = self._rem_deps
        rem_starts = self._rem_starts
        prealloc_done = self._prealloc_done
        check_full = self._check_full
        device = self.device
        progress = True
        while progress:
            progress = False
            if self._prealloc_pending and self._run_ready_preallocs():
                progress = True
            for s in range(_N_STREAMS):
                if busy[s]:
                    continue
                q = queues[s]
                c = cursor[s]
                if c >= len(q):
                    continue
                i = q[c]
                if rem_deps[i] or rem_starts[i]:
                    continue
                if prealloc_done[i]:
                    if self._check_after[i]:
                        need = self._need_after[i]
                    else:
                        need = -1
                elif check_full[i]:
                    need = self._need_full[i]
                else:
                    need = -1
                if need >= 0:
                    free = device.capacity - device.in_use
                    if need > free or (
                        free < need + self._headroom[i] and self._n_inflight
                    ):
                        if not self._gated[i]:
                            self._raise_ungated_oom(i)
                        continue
                cursor[s] = c + 1
                self._issue(i, s)
                progress = True

    def _complete(self, i: int) -> None:
        self._n_completed += 1
        self._completed_tids.append(self._tids[i])
        self._busy[self._stream_of[i]] = False
        self._n_inflight -= 1
        for j in self._dependents[i]:
            self._rem_deps[j] -= 1
        now = self._now
        if self._scratch[i]:
            self.device.free(f"{self._tids[i]}#ws", now)
        free_count = self._free_count
        for bid in self._frees_by_task[i]:
            remaining = free_count[bid] - 1
            free_count[bid] = remaining
            if not remaining:
                # the pool owning the buffer is determined at malloc time
                if self.device.is_resident(bid):
                    self.device.free(bid, now)
                else:
                    self.host.free(bid, now)

    def _diagnose_stall(self) -> None:
        memory_blocked: list[int] = []
        dep_blocked: list[int] = []
        for s in range(_N_STREAMS):
            q = self._queues[s]
            c = self._cursor[s]
            if c >= len(q):
                continue
            i = q[c]
            if self._blocked_reason(i) == "memory":
                memory_blocked.append(i)
            else:
                dep_blocked.append(i)
        if memory_blocked:
            i = memory_blocked[0]
            need = (self._need_after[i] if self._prealloc_done[i]
                    else self._need_full[i])
            raise OutOfMemoryError(
                f"memory deadlock at t={self._now:.6f}: task "
                f"{self._tids[i]!r} needs {format_bytes(need)} "
                f"(+{format_bytes(self._headroom[i])} headroom), free "
                f"{format_bytes(self.device.free_bytes)} of "
                f"{format_bytes(self.device.capacity)}, nothing in flight",
                requested=need,
                free=self.device.free_bytes,
                capacity=self.device.capacity,
                context=self._tids[i],
            )
        heads = [self._tids[i] for i in dep_blocked]
        raise ScheduleError(
            f"dependency deadlock at t={self._now:.6f}: stream heads {heads} "
            "can never issue (cyclic or unsatisfiable deps)"
        )

    # -- checkpoint / resume ------------------------------------------------------

    def _checkpoint(self) -> EngineCheckpoint:
        """Capture the mutable state (valid only at a post-scan fixpoint,
        where nothing can issue).  O(in-flight): the pools contribute only
        their scalar watermarks, residency is reconstructed on restore."""
        return EngineCheckpoint(
            now=self._now,
            seq=self._seq,
            completed_src=self._completed_tids,
            progress=self._n_completed,
            inflight=tuple(
                (t, seq, self._tids[i]) for t, seq, i in self._heap
            ),
            cursors=tuple(self._cursor),
            busy=tuple(self._busy),
            dev_in_use=self.device.in_use,
            dev_peak=self.device.peak,
            host_in_use=self.host.in_use,
            host_peak=self.host.peak,
        )

    def _restore(self, cp: EngineCheckpoint) -> None:
        """Replant a checkpoint captured on a schedule sharing the simulated
        prefix: fast-forward dependency countdowns, free counts, stream
        cursors and pool contents without replaying any event.  The caller
        is responsible for validity (see the predictor's prefix matching).

        Pool residency is rebuilt from *this* engine's structures: a buffer
        is resident iff it is preallocated or its allocating task started,
        and its free countdown has not reached zero.  On the shared prefix
        this reproduces the recording engine's pool contents exactly (the
        validity condition guarantees no allocation or free diverged before
        the checkpoint), while the countdowns themselves are this
        schedule's own — so the remainder of the run frees buffers exactly
        when a from-scratch replay would."""
        index = self._index
        self._now = cp.now
        self._seq = cp.seq
        self._cursor = list(cp.cursors)
        self._busy = list(cp.busy)
        rem_deps, rem_starts = self._rem_deps, self._rem_starts
        free_count = self._free_count
        allocs = self._allocs
        dev_sizes: dict[str, int] = {}
        host_sizes: dict[str, int] = {}

        def place(b) -> None:
            if free_count.get(b.bid, 1) > 0:
                sizes = host_sizes if b.host else dev_sizes
                sizes[b.bid] = round_size(b.nbytes)

        completed = cp.completed()
        for tid in completed:
            i = index[tid]
            self._started[i] = True
            for j in self._dependents[i]:
                rem_deps[j] -= 1
            for j in self._start_dependents[i]:
                rem_starts[j] -= 1
            for bid in self._frees_by_task[i]:
                free_count[bid] -= 1
        for b in self._prealloc_buffers:
            place(b)
        for tid in completed:
            for b in allocs[index[tid]]:
                place(b)
        for t, seq, tid in cp.inflight:
            i = index[tid]
            self._started[i] = True
            for j in self._start_dependents[i]:
                rem_starts[j] -= 1
            heapq.heappush(self._heap, (t, seq, i))
            for b in allocs[i]:
                place(b)
            if self._scratch[i]:
                dev_sizes[f"{tid}#ws"] = round_size(self._scratch[i])
        self._n_inflight = len(cp.inflight)
        self._n_completed = len(completed)
        self._completed_tids = completed
        self.device.restore_state(dev_sizes, cp.dev_in_use, cp.dev_peak)
        self.host.restore_state(host_sizes, cp.host_in_use, cp.host_peak)

    # -- public ------------------------------------------------------------------

    def run(
        self,
        checkpoint_every: int = 0,
        resume_from: EngineCheckpoint | None = None,
    ) -> tuple[float, int, int]:
        """Replay to completion; returns (makespan, device peak, host peak).

        Raises exactly where the full engine would: ``OutOfMemoryError`` for
        plan infeasibility, ``ScheduleError`` for malformed dependencies.

        ``checkpoint_every=k`` records an :class:`EngineCheckpoint` into
        :attr:`checkpoints` every ~k completed tasks (skipped when the
        schedule has alloc-on-ready reservations, whose state the checkpoint
        validity argument does not cover).  ``resume_from`` replants a
        checkpoint taken on a prefix-identical schedule instead of starting
        at t=0 — results are then exactly those of a from-scratch run.
        """
        registry = metrics.active()
        if registry is not None:
            registry.count("engine.fast_runs")
            if resume_from is not None:
                registry.count("engine.fast_resumed")
        if resume_from is None:
            for b in self._prealloc_buffers:
                pool = self.host if b.host else self.device
                pool.malloc(b.bid, b.nbytes, 0.0, context="prealloc")
        else:
            self._restore(resume_from)
        self._scan()
        heap = self._heap
        heappop = heapq.heappop
        complete = self._complete
        scan = self._scan
        record = checkpoint_every > 0 and self.checkpointable
        next_mark = self._n_completed + checkpoint_every
        while heap:
            if record and self._n_completed >= next_mark:
                self.checkpoints.append(self._checkpoint())
                next_mark = self._n_completed + checkpoint_every
            time, _, i = heappop(heap)
            self._now = time
            complete(i)
            while heap and heap[0][0] == time:
                complete(heappop(heap)[2])
            scan()
        if self._n_completed != len(self._tids):
            self._diagnose_stall()
        return self._now, self.device.peak, self.host.peak
