"""Stall attribution: where did the iteration time go?

Given a timeline, decompose the makespan into compute-busy time and idle
gaps, and attribute each idle gap to the task whose completion ended it —
the transfer or dependency the computation was actually waiting for.  This
is the quantitative version of the paper's Fig. 7 red boxes, and the view a
performance engineer would want before trusting any classification.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.timeline import idle_intervals
from repro.common.units import format_seconds
from repro.gpusim import RunResult, StreamName, TaskKind


@dataclass(frozen=True)
class Stall:
    """One compute-idle gap and its attributed cause."""

    start: float
    end: float
    blamed_task: str  # task whose completion released the compute stream
    blamed_kind: TaskKind | None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class BottleneckReport:
    """Decomposition of one run's makespan."""

    makespan: float
    compute_busy: float
    stalls: list[Stall] = field(default_factory=list)

    @property
    def total_stall(self) -> float:
        return sum(s.duration for s in self.stalls)

    def stall_by_kind(self) -> dict[str, float]:
        """Idle seconds attributed to each blamed task kind."""
        acc: dict[str, float] = {}
        for s in self.stalls:
            key = s.blamed_kind.value if s.blamed_kind else "startup"
            acc[key] = acc.get(key, 0.0) + s.duration
        return acc

    def top_stalls(self, n: int = 5) -> list[Stall]:
        return sorted(self.stalls, key=lambda s: -s.duration)[:n]

    def render(self) -> str:
        lines = [
            f"makespan {format_seconds(self.makespan)}: compute busy "
            f"{format_seconds(self.compute_busy)} "
            f"({self.compute_busy / self.makespan:.0%}), stalled "
            f"{format_seconds(self.total_stall)} "
            f"({self.total_stall / self.makespan:.0%})",
        ]
        by_kind = self.stall_by_kind()
        if by_kind:
            lines.append("stall attribution: " + ", ".join(
                f"{k}={format_seconds(v)}"
                for k, v in sorted(by_kind.items(), key=lambda kv: -kv[1])
            ))
        for s in self.top_stalls(5):
            lines.append(
                f"  waited {format_seconds(s.duration)} for "
                f"{s.blamed_task or 'iteration start'}"
            )
        return "\n".join(lines)


def analyze_bottlenecks(result: RunResult) -> BottleneckReport:
    """Attribute every compute-idle gap to the task whose completion ended
    it (the completion at/nearest-before the gap's end)."""
    gaps = idle_intervals(result, StreamName.COMPUTE,
                          span=(0.0, result.makespan))
    compute_busy = sum(
        r.duration for r in result.records if r.stream is StreamName.COMPUTE
    )
    # completions sorted by end time, excluding compute tasks themselves
    completions = sorted(
        (r for r in result.records if r.stream is not StreamName.COMPUTE),
        key=lambda r: r.end,
    )
    stalls: list[Stall] = []
    for a, b in gaps:
        blamed, kind = "", None
        for r in completions:
            if a < r.end <= b + 1e-15:
                blamed, kind = r.tid, r.kind  # last completion inside the gap
        stalls.append(Stall(a, b, blamed, kind))
    return BottleneckReport(
        makespan=result.makespan,
        compute_busy=compute_busy,
        stalls=stalls,
    )
