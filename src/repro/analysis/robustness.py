"""Robustness reporting: how gracefully does PoocH degrade under faults?

``robustness_report`` sweeps a list of fault specifications (by default a
noise ladder) over one (graph, machine) pair.  For each spec it re-runs the
whole pipeline — profile (perturbed), classify, execute resiliently — and
records the makespan/throughput degradation relative to the clean run, the
transfer retries spent, and any fallback-chain steps taken.  The resulting
table is the repo's analogue of the paper's "execution fails" columns: where
SuperNeurons' rows would read *fail*, PoocH's rows read *degraded via
swap-all* with a number attached.

Everything is seed-driven and bit-reproducible; the pooch import happens
lazily because :mod:`repro.pooch.overlap` itself imports this package.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import Table
from repro.faults import FaultInjector, FaultSpec, RetryPolicy
from repro.graph import NNGraph
from repro.hw import MachineSpec

#: default sweep: profile+duration noise ladder up to the issue's 10% target
DEFAULT_NOISE_LEVELS = (0.02, 0.05, 0.10)


@dataclass
class RobustnessRow:
    """Outcome of one faulted pipeline run."""

    label: str
    spec: FaultSpec
    makespan: float
    #: relative makespan increase vs the clean run (0.07 = 7% slower)
    degradation: float
    throughput: float
    plan_used: str
    transfer_retries: int = 0
    attempts: int = 1
    fallbacks: int = 0
    fallback_path: str = ""
    #: search cost of this row's (re-)optimization: simulations executed,
    #: split into full replays and prefix-shared resumes, plus wall time
    search_sims: int = 0
    search_sims_full: int = 0
    search_sims_resumed: int = 0
    search_wall_s: float = 0.0


@dataclass
class RobustnessReport:
    """Degradation profile of one (graph, machine) pair under a fault sweep."""

    graph_name: str
    machine_name: str
    batch: int
    seed: int
    clean_makespan: float
    clean_throughput: float
    rows: list[RobustnessRow] = field(default_factory=list)

    def render(self) -> str:
        t = Table(
            f"robustness of {self.graph_name!r} on {self.machine_name} "
            f"(clean: {self.clean_makespan * 1e3:.3f} ms, "
            f"{self.clean_throughput:.1f} img/s, fault seed {self.seed})",
            ["faults", "plan used", "makespan (ms)", "degradation",
             "img/s", "retries", "attempts", "fallbacks",
             "search sims (resumed)", "search s"],
        )
        for r in self.rows:
            t.add(
                r.label,
                r.plan_used + (f" ({r.fallback_path})" if r.fallback_path else ""),
                f"{r.makespan * 1e3:.3f}",
                f"{r.degradation * 100:+.1f}%",
                f"{r.throughput:.1f}",
                r.transfer_retries,
                r.attempts,
                r.fallbacks,
                f"{r.search_sims} ({r.search_sims_resumed})",
                f"{r.search_wall_s:.2f}",
            )
        return t.render()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def _batch_of(graph: NNGraph) -> int:
    return next(iter(graph)).out_spec.batch


def robustness_report(
    graph: NNGraph,
    machine: MachineSpec,
    *,
    specs: list[FaultSpec] | None = None,
    noise_levels: tuple[float, ...] = DEFAULT_NOISE_LEVELS,
    seed: int = 0,
    config=None,
    retry: RetryPolicy | None = None,
) -> RobustnessReport:
    """Run the fault sweep and return the filled report.

    ``specs`` overrides the sweep entirely; otherwise each entry of
    ``noise_levels`` becomes a spec with that much duration *and* profile
    noise plus a small stall probability — the "everything is a bit sick"
    scenario the acceptance criteria target.
    """
    from repro.pooch import PoocH  # lazy: pooch.overlap imports this package

    if specs is None:
        specs = [
            FaultSpec(duration_noise=lvl, profile_noise=lvl,
                      stall_prob=min(lvl / 2, 1.0))
            for lvl in noise_levels
        ]
    batch = _batch_of(graph)

    clean = PoocH(machine, config=config).optimize(graph)
    clean_result = clean.execute()
    clean_makespan = clean_result.makespan
    report = RobustnessReport(
        graph_name=graph.name,
        machine_name=machine.name,
        batch=batch,
        seed=seed,
        clean_makespan=clean_makespan,
        clean_throughput=batch / clean_makespan,
    )

    for spec in specs:
        injector = FaultInjector(spec, seed=seed)
        result = PoocH(machine, config=config, faults=injector).optimize(graph)
        robust = result.execute_resilient(retry=retry)
        report.rows.append(RobustnessRow(
            label=spec.describe(),
            spec=spec,
            makespan=robust.makespan,
            degradation=robust.makespan / clean_makespan - 1.0,
            throughput=batch / robust.makespan,
            plan_used=robust.plan_used,
            transfer_retries=robust.transfer_retries,
            attempts=robust.attempts,
            fallbacks=len(robust.fallbacks),
            fallback_path=" -> ".join(
                s.to_plan for s in robust.fallbacks),
            search_sims=result.stats.sims_full + result.stats.sims_resumed,
            search_sims_full=result.stats.sims_full,
            search_sims_resumed=result.stats.sims_resumed,
            search_wall_s=result.stats.wall_time_s,
        ))
    return report
