"""Robustness reporting: how gracefully does PoocH degrade under faults?

``robustness_report`` sweeps a list of fault specifications (by default a
noise ladder) over one (graph, machine) pair.  For each spec it runs the
planning pipeline once — profile (perturbed), classify — and then executes
the chosen plan under ``fault_seeds`` independent fault seeds via
:func:`repro.faults.fault_seed_sweep`, so each row reports a makespan
*distribution* (P50/P95/P99) plus OOM/fallback/retry **rates** instead of a
single-draw point estimate.  Specs whose execution-side draws are
precomputable (duration noise, degraded bandwidth, shrunken host capacity)
run all seeds in one lockstep :class:`~repro.gpusim.vecengine.VectorEngine`
batch; event-order-dependent specs (stalls, spurious OOMs) take the serial
resilient path per seed.  The resulting table is the repo's analogue of the
paper's "execution fails" columns: where SuperNeurons' rows would read
*fail*, PoocH's rows read *degraded via swap-all* with a rate attached.

Everything is seed-driven and bit-reproducible; the pooch import happens
lazily because :mod:`repro.pooch.overlap` itself imports this package.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.report import Table
from repro.faults import FaultInjector, FaultSpec, RetryPolicy, fault_seed_sweep
from repro.graph import NNGraph
from repro.hw import MachineSpec

#: default sweep: profile+duration noise ladder up to the issue's 10% target
DEFAULT_NOISE_LEVELS = (0.02, 0.05, 0.10)


@dataclass
class RobustnessRow:
    """Outcome of one fault scenario: a seed distribution, not one draw.

    ``makespan`` is the P50 across seeds (so ``throughput`` and
    ``degradation`` keep their single-run meaning when ``fault_seeds=1``);
    the tails live in ``p95``/``p99``.  Rates are fractions of seeds in
    [0, 1].
    """

    label: str
    spec: FaultSpec
    makespan: float
    #: relative P50 makespan increase vs the clean run (0.07 = 7% slower)
    degradation: float
    throughput: float
    plan_used: str
    fault_seeds: int = 1
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0
    #: fraction of seeds that hit a genuine OOM along their fallback chain
    oom_rate: float = 0.0
    #: fraction of seeds that abandoned the chosen plan
    fallback_rate: float = 0.0
    #: fraction of seeds that needed at least one transfer retry
    retry_rate: float = 0.0
    #: seeds whose whole fallback chain was exhausted (makespan = inf)
    failed: int = 0
    transfer_retries: int = 0
    attempts: int = 1
    fallbacks: int = 0
    fallback_path: str = ""
    #: lockstep vs serial split of the sweep's seeds
    rows_vectorized: int = 0
    rows_fallback: int = 0
    #: search cost of this row's (re-)optimization: simulations executed,
    #: split into full replays and prefix-shared resumes, plus wall time
    search_sims: int = 0
    search_sims_full: int = 0
    search_sims_resumed: int = 0
    search_wall_s: float = 0.0


@dataclass
class RobustnessReport:
    """Degradation profile of one (graph, machine) pair under a fault sweep."""

    graph_name: str
    machine_name: str
    batch: int
    seed: int
    fault_seeds: int
    clean_makespan: float
    clean_throughput: float
    #: data-parallel replica count (1 = single-device sweep); with more
    #: than one device the clean plan's staggered multi-device makespan is
    #: reported too (per-seed rows remain per-device timelines)
    devices: int = 1
    multi_clean_makespan: float = 0.0
    rows: list[RobustnessRow] = field(default_factory=list)

    def render(self) -> str:
        def ms(v: float) -> str:
            return "inf" if math.isinf(v) else f"{v * 1e3:.3f}"

        multi = ""
        if self.devices > 1:
            multi = (f", {self.devices} devices: "
                     f"{self.multi_clean_makespan * 1e3:.3f} ms staggered")
        t = Table(
            f"robustness of {self.graph_name!r} on {self.machine_name} "
            f"(clean: {self.clean_makespan * 1e3:.3f} ms, "
            f"{self.clean_throughput:.1f} img/s{multi}, "
            f"{self.fault_seeds} fault seed"
            f"{'s' if self.fault_seeds != 1 else ''} from {self.seed})",
            ["faults", "plan used", "p50 (ms)", "p95 (ms)", "p99 (ms)",
             "degradation", "img/s", "oom", "fallbacks", "retries",
             "vec/serial", "search s"],
        )
        for r in self.rows:
            t.add(
                r.label,
                r.plan_used + (f" ({r.fallback_path})" if r.fallback_path else ""),
                ms(r.p50),
                ms(r.p95),
                ms(r.p99),
                f"{r.degradation * 100:+.1f}%",
                f"{r.throughput:.1f}",
                f"{r.oom_rate * 100:.0f}%",
                f"{r.fallback_rate * 100:.0f}%",
                f"{r.retry_rate * 100:.0f}%",
                f"{r.rows_vectorized}/{r.rows_fallback}",
                f"{r.search_wall_s:.2f}",
            )
        return t.render()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def _batch_of(graph: NNGraph) -> int:
    return next(iter(graph)).out_spec.batch


def _plan_summary(outcomes) -> tuple[str, str]:
    """(dominant plan label, dominant degradation path) across seeds."""
    plans = Counter(o.plan_used or "failed" for o in outcomes)
    plan, count = plans.most_common(1)[0]
    if len(plans) > 1:
        plan = f"{plan} ({count}/{len(outcomes)})"
    paths = Counter(o.fallback_path for o in outcomes if o.fallback_path)
    path = paths.most_common(1)[0][0] if paths else ""
    return plan, path


def robustness_report(
    graph: NNGraph,
    machine: MachineSpec,
    *,
    specs: list[FaultSpec] | None = None,
    noise_levels: tuple[float, ...] = DEFAULT_NOISE_LEVELS,
    seed: int = 0,
    fault_seeds: int = 1,
    config=None,
    retry: RetryPolicy | None = None,
    workers: int = 1,
) -> RobustnessReport:
    """Run the fault sweep and return the filled report.

    ``specs`` overrides the sweep entirely; otherwise each entry of
    ``noise_levels`` becomes a spec with that much duration *and* profile
    noise plus a small stall probability — the "everything is a bit sick"
    scenario the acceptance criteria target.  Each spec plans **once**
    (under fault seed ``seed``, exactly as a single-run report would) and
    then executes the chosen plan under seeds ``seed .. seed +
    fault_seeds - 1``; ``workers`` fans the serial-path seeds across a
    process pool.
    """
    from repro.pooch import PoocH  # lazy: pooch.overlap imports this package
    from repro.runtime.schedule import ScheduleOptions

    if fault_seeds < 1:
        raise ValueError(f"fault_seeds must be >= 1, got {fault_seeds}")
    if specs is None:
        specs = [
            FaultSpec(duration_noise=lvl, profile_noise=lvl,
                      stall_prob=min(lvl / 2, 1.0))
            for lvl in noise_levels
        ]
    batch = _batch_of(graph)
    seeds = range(seed, seed + fault_seeds)

    clean = PoocH(machine, config=config).optimize(graph)
    clean_result = clean.execute()
    clean_makespan = clean_result.makespan
    report = RobustnessReport(
        graph_name=graph.name,
        machine_name=machine.name,
        batch=batch,
        seed=seed,
        fault_seeds=fault_seeds,
        clean_makespan=clean_makespan,
        clean_throughput=batch / clean_makespan,
        devices=machine.devices,
        multi_clean_makespan=(clean.multi.chosen.makespan
                              if clean.multi is not None else 0.0),
    )

    for spec in specs:
        # plan once per scenario — the sweep is evaluation-side only
        injector = FaultInjector(spec, seed=seed)
        result = PoocH(machine, config=config, faults=injector).optimize(graph)
        options = ScheduleOptions(
            policy=result.config.policy,
            forward_refetch_gap=result.config.forward_refetch_gap,
        )
        outcomes = fault_seed_sweep(
            graph, result.classification, machine, spec, seeds,
            retry=retry, options=options, workers=workers,
        )
        makespans = np.array([o.makespan for o in outcomes])
        p50, p95, p99 = (float(np.percentile(makespans, q))
                         for q in (50, 95, 99))
        n = len(outcomes)
        plan, path = _plan_summary(outcomes)
        report.rows.append(RobustnessRow(
            label=spec.describe(),
            spec=spec,
            makespan=p50,
            degradation=p50 / clean_makespan - 1.0,
            throughput=batch / p50 if math.isfinite(p50) else 0.0,
            plan_used=plan,
            fault_seeds=n,
            p50=p50,
            p95=p95,
            p99=p99,
            oom_rate=sum(o.oom for o in outcomes) / n,
            fallback_rate=sum(o.degraded for o in outcomes) / n,
            retry_rate=sum(o.transfer_retries > 0 for o in outcomes) / n,
            failed=sum(o.failed for o in outcomes),
            transfer_retries=sum(o.transfer_retries for o in outcomes),
            attempts=max(o.attempts for o in outcomes),
            fallbacks=sum(o.fallbacks for o in outcomes),
            fallback_path=path,
            rows_vectorized=sum(o.vectorized for o in outcomes),
            rows_fallback=sum(not o.vectorized for o in outcomes),
            search_sims=result.stats.sims_full + result.stats.sims_resumed,
            search_sims_full=result.stats.sims_full,
            search_sims_resumed=result.stats.sims_resumed,
            search_wall_s=result.stats.wall_time_s,
        ))
    return report
