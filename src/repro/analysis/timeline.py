"""Timeline geometry: overlap and idle-time computations plus an ASCII
renderer for simulated runs.

The central question the paper keeps asking of a timeline is *"is this swap
hidden by computation?"* (Figs. 7 and 11).  :func:`hidden_fraction` answers
it for one task record: the fraction of the task's execution during which
the compute stream was busy.  Swaps with a low hidden fraction are the
overhead-causing maps that form ``L_O`` and ``L_I`` (§4.4.2).
"""

from __future__ import annotations

from repro.gpusim import RunResult, StreamName, TaskKind, TaskRecord

Interval = tuple[float, float]


def interval_overlap(span: Interval, intervals: list[Interval]) -> float:
    """Total length of ``span ∩ ∪intervals`` (``intervals`` must be sorted
    and disjoint, as produced by :meth:`RunResult.busy_intervals`)."""
    s, e = span
    total = 0.0
    for a, b in intervals:
        if b <= s:
            continue
        if a >= e:
            break
        total += min(e, b) - max(s, a)
    return total


def compute_busy(result: RunResult) -> list[Interval]:
    """Merged busy intervals of the compute stream."""
    return result.busy_intervals(StreamName.COMPUTE)


def idle_intervals(result: RunResult, stream: StreamName = StreamName.COMPUTE,
                   span: Interval | None = None) -> list[Interval]:
    """Gaps in a stream's busy time within ``span`` (default: the whole run,
    from the stream's first task start to the run's makespan)."""
    busy = result.busy_intervals(stream)
    if not busy:
        return [span] if span else []
    lo = span[0] if span else busy[0][0]
    hi = span[1] if span else result.makespan
    gaps: list[Interval] = []
    cursor = lo
    for a, b in busy:
        if a > cursor:
            gaps.append((cursor, min(a, hi)))
        cursor = max(cursor, b)
        if cursor >= hi:
            break
    if cursor < hi:
        gaps.append((cursor, hi))
    return [(a, b) for a, b in gaps if b > a]


def total_idle(result: RunResult, stream: StreamName = StreamName.COMPUTE) -> float:
    """Summed idle time of a stream over the run."""
    return sum(b - a for a, b in idle_intervals(result, stream))


def idle_overlap(record: TaskRecord, busy: list[Interval]) -> float:
    """Seconds of ``record``'s execution during which ``busy`` (typically the
    compute stream) was idle — the un-hidden part of a swap."""
    return record.duration - interval_overlap((record.start, record.end), busy)


def hidden_fraction(record: TaskRecord, busy: list[Interval]) -> float:
    """Fraction of the task's duration overlapped by ``busy`` (1.0 = fully
    hidden; zero-duration tasks count as hidden)."""
    if record.duration <= 0:
        return 1.0
    return interval_overlap((record.start, record.end), busy) / record.duration


_KIND_GLYPH = {
    TaskKind.FWD: "F",
    TaskKind.BWD: "B",
    TaskKind.RECOMPUTE: "R",
    TaskKind.SWAP_OUT: "o",
    TaskKind.SWAP_IN: "i",
    TaskKind.UPDATE: "U",
}


def render_timeline(result: RunResult, width: int = 100,
                    label_layers: bool = True) -> str:
    """Render the run as fixed-width ASCII art, one row per stream.

    Each task paints its kind glyph over its time span (``F``/``B``/``R`` on
    compute, ``o``/``i`` on the copy streams); '.' is idle.  With
    ``label_layers`` the layer index is written into boxes wide enough to
    hold it — producing pictures directly comparable to the paper's Fig. 7.
    """
    if result.makespan <= 0:
        return "(empty timeline)"
    scale = width / result.makespan
    rows: dict[StreamName, list[str]] = {
        s: ["."] * width for s in StreamName
    }
    for rec in sorted(result.records, key=lambda r: r.start):
        a = int(rec.start * scale)
        b = max(a + 1, int(rec.end * scale))
        b = min(b, width)
        glyph = _KIND_GLYPH[rec.kind]
        row = rows[rec.stream]
        for x in range(a, b):
            row[x] = glyph
        if label_layers and rec.layer >= 0:
            label = str(rec.layer)
            if b - a >= len(label) + 2:
                for off, ch in enumerate(label):
                    row[a + 1 + off] = ch
    name = {StreamName.COMPUTE: "compute", StreamName.D2H: "d2h    ",
            StreamName.H2D: "h2d    "}
    lines = [f"t=0 {'-' * (width - 8)} t={result.makespan:.4g}s"]
    for s in (StreamName.COMPUTE, StreamName.D2H, StreamName.H2D):
        lines.append(f"{name[s]} |{''.join(rows[s])}|")
    return "\n".join(lines)
