"""Small tabular report helpers shared by benchmarks and examples.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Table:
    """An append-only table with aligned text rendering."""

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        return format_table(self.title, self.columns, self.rows)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3g}"
    return str(cell)


def format_table(title: str, columns: list[str], rows: list[list[str]]) -> str:
    widths = [len(c) for c in columns]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(c.ljust(w) for c, w in zip(columns, widths))
    body = [
        " | ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in rows
    ]
    return "\n".join([f"== {title} ==", header, sep, *body])
