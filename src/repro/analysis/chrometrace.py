"""Chrome trace-event export: open simulated timelines in a real profiler.

:func:`to_chrome_trace` converts a :class:`~repro.gpusim.RunResult` into the
Trace Event JSON format that ``chrome://tracing`` and https://ui.perfetto.dev
render — one row per stream, one slice per task, plus a memory counter track
from the allocator trace.  This gives the simulated runs the same tooling a
real GPU profile would get from nsys.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.gpusim import RunResult, StreamName, TaskKind

#: stable thread ids per stream row
_STREAM_TID = {
    StreamName.COMPUTE: 0,
    StreamName.D2H: 1,
    StreamName.H2D: 2,
}

#: trace-viewer colour names per task kind
_KIND_COLOR = {
    TaskKind.FWD: "thread_state_running",
    TaskKind.BWD: "thread_state_runnable",
    TaskKind.RECOMPUTE: "terrible",
    TaskKind.SWAP_OUT: "bad",
    TaskKind.SWAP_IN: "good",
    TaskKind.UPDATE: "grey",
}


def to_chrome_trace(result: RunResult, name: str = "repro") -> dict[str, Any]:
    """Build the trace dict (``traceEvents`` + metadata)."""
    events: list[dict[str, Any]] = [
        {"ph": "M", "pid": 0, "name": "process_name",
         "args": {"name": name}},
    ]
    for stream, tid in _STREAM_TID.items():
        events.append({
            "ph": "M", "pid": 0, "tid": tid, "name": "thread_name",
            "args": {"name": stream.value},
        })
    for rec in result.records:
        events.append({
            "ph": "X",
            "pid": 0,
            "tid": _STREAM_TID[rec.stream],
            "name": rec.tid,
            "cat": rec.kind.value,
            "ts": rec.start * 1e6,  # trace units are microseconds
            "dur": rec.duration * 1e6,
            "cname": _KIND_COLOR.get(rec.kind, "grey"),
            "args": {"layer": rec.layer, "kind": rec.kind.value},
        })
    for ev in result.device_trace:
        events.append({
            "ph": "C",
            "pid": 0,
            "name": "gpu memory",
            "ts": ev.time * 1e6,
            "args": {"bytes_in_use": ev.in_use_after},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(result: RunResult, path: str | pathlib.Path,
                       name: str = "repro") -> None:
    """Write the trace JSON; open it at chrome://tracing or perfetto.dev."""
    pathlib.Path(path).write_text(json.dumps(to_chrome_trace(result, name)))
