"""Chrome trace-event export: open simulated timelines in a real profiler.

:class:`ChromeTraceBuilder` accumulates any mix of simulated runs
(:class:`~repro.gpusim.RunResult` — one row per stream, one slice per task,
plus a memory counter track from the allocator trace) and observability spans
(:class:`~repro.obs.Span` — the phases of the PoocH search itself) into one
Trace Event JSON document that ``chrome://tracing`` and
https://ui.perfetto.dev render.  Thread ids are allocated monotonically, so
several runs coexist in one trace without their rows colliding.

:func:`to_chrome_trace` / :func:`write_chrome_trace` remain the one-result
shorthand (tids 0/1/2, rows named after the streams).
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Iterable

from repro.gpusim import RunResult, StreamName, TaskKind

#: stream row order within one run (also fixes the legacy 0/1/2 tids)
_STREAM_ORDER = (StreamName.COMPUTE, StreamName.D2H, StreamName.H2D)

#: trace-viewer colour names per task kind
_KIND_COLOR = {
    TaskKind.FWD: "thread_state_running",
    TaskKind.BWD: "thread_state_runnable",
    TaskKind.RECOMPUTE: "terrible",
    TaskKind.SWAP_OUT: "bad",
    TaskKind.SWAP_IN: "good",
    TaskKind.UPDATE: "grey",
}

#: colour per span category
_CATEGORY_COLOR = {
    "profile": "thread_state_iowait",
    "search": "thread_state_running",
    "phase": "grey",
}


class ChromeTraceBuilder:
    """Accumulate runs and spans into one multi-row Chrome trace.

    Each :meth:`add_run` claims three fresh thread ids (one per stream) so a
    second run lands on its own rows instead of overwriting the first — the
    bug the fixed-tid exporter had.  :meth:`add_spans` lays observability
    spans out one row per nesting depth.
    """

    def __init__(self, name: str = "repro") -> None:
        self.events: list[dict[str, Any]] = [
            {"ph": "M", "pid": 0, "name": "process_name",
             "args": {"name": name}},
        ]
        self._next_tid = 0

    def _claim_tid(self, label: str) -> int:
        tid = self._next_tid
        self._next_tid += 1
        self.events.append({
            "ph": "M", "pid": 0, "tid": tid, "name": "thread_name",
            "args": {"name": label},
        })
        return tid

    def add_run(self, result: RunResult, name: str | None = None) -> None:
        """Append one simulated run: three stream rows + a memory counter."""
        prefix = f"{name}/" if name else ""
        tids = {stream: self._claim_tid(f"{prefix}{stream.value}")
                for stream in _STREAM_ORDER}
        for rec in result.records:
            self.events.append({
                "ph": "X",
                "pid": 0,
                "tid": tids[rec.stream],
                "name": rec.tid,
                "cat": rec.kind.value,
                "ts": rec.start * 1e6,  # trace units are microseconds
                "dur": rec.duration * 1e6,
                "cname": _KIND_COLOR.get(rec.kind, "grey"),
                "args": {"layer": rec.layer, "kind": rec.kind.value},
            })
        counter = f"{prefix}gpu memory" if name else "gpu memory"
        for ev in result.device_trace:
            self.events.append({
                "ph": "C",
                "pid": 0,
                "name": counter,
                "ts": ev.time * 1e6,
                "args": {"bytes_in_use": ev.in_use_after},
            })

    def add_multi_device_run(self, mresult: Any,
                             name: str | None = None) -> None:
        """Append an N-device iteration: one stream-row group per device.

        ``mresult`` is a :class:`~repro.gpusim.MultiDeviceResult`.  Each
        device's rows carry its re-timed records (stagger plus link-
        contention slip applied) under labels like ``d0/compute``; a device
        with a gradient exchange also gets an ``allreduce`` row covering
        the ring-exchange interval after its backward phase.
        """
        prefix = f"{name}/" if name else ""
        for dev in mresult.per_device:
            tids = {
                stream: self._claim_tid(
                    f"{prefix}d{dev.device}/{stream.value}")
                for stream in _STREAM_ORDER
            }
            for rec in mresult.device_records(dev.device):
                self.events.append({
                    "ph": "X",
                    "pid": 0,
                    "tid": tids[rec.stream],
                    "name": rec.tid,
                    "cat": rec.kind.value,
                    "ts": rec.start * 1e6,
                    "dur": rec.duration * 1e6,
                    "cname": _KIND_COLOR.get(rec.kind, "grey"),
                    "args": {"layer": rec.layer, "kind": rec.kind.value,
                             "device": dev.device},
                })
            if dev.allreduce_time > 0:
                tid = self._claim_tid(f"{prefix}d{dev.device}/allreduce")
                self.events.append({
                    "ph": "X",
                    "pid": 0,
                    "tid": tid,
                    "name": f"allreduce d{dev.device}",
                    "cat": "allreduce",
                    "ts": dev.backward_end * 1e6,
                    "dur": dev.allreduce_time * 1e6,
                    "cname": "thread_state_iowait",
                    "args": {"device": dev.device},
                })

    def add_spans(self, spans: Iterable[Any], name: str = "phases") -> None:
        """Append observability spans, one thread row per nesting depth.

        Accepts any objects with ``name``/``category``/``start_s``/``end_s``/
        ``depth``/``meta`` attributes (:class:`repro.obs.Span`)."""
        depth_tids: dict[int, int] = {}
        for span in spans:
            tid = depth_tids.get(span.depth)
            if tid is None:
                label = name if span.depth == 0 else f"{name} (d{span.depth})"
                tid = self._claim_tid(label)
                depth_tids[span.depth] = tid
            self.events.append({
                "ph": "X",
                "pid": 0,
                "tid": tid,
                "name": span.name,
                "cat": span.category,
                "ts": span.start_s * 1e6,
                "dur": (span.end_s - span.start_s) * 1e6,
                "cname": _CATEGORY_COLOR.get(span.category, "grey"),
                "args": dict(span.meta),
            })

    def build(self) -> dict[str, Any]:
        return {"traceEvents": self.events, "displayTimeUnit": "ms"}

    def write(self, path: str | pathlib.Path) -> None:
        pathlib.Path(path).write_text(json.dumps(self.build()))


def to_chrome_trace(result: RunResult, name: str = "repro") -> dict[str, Any]:
    """Build the trace dict (``traceEvents`` + metadata) for one run."""
    builder = ChromeTraceBuilder(name)
    builder.add_run(result)
    return builder.build()


def write_chrome_trace(result: RunResult, path: str | pathlib.Path,
                       name: str = "repro") -> None:
    """Write the trace JSON; open it at chrome://tracing or perfetto.dev."""
    pathlib.Path(path).write_text(json.dumps(to_chrome_trace(result, name)))
