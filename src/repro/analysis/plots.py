"""Text-mode plots: horizontal bar charts and memory-over-time curves.

The benchmarks regenerate the paper's figures as data tables; these helpers
render the same data as terminal graphics so the *shape* of each figure
(bar orderings, crossovers, the memory staircase) is visible at a glance in
``benchmarks/results/``.
"""

from __future__ import annotations

from repro.common.units import format_bytes, format_seconds
from repro.gpusim import RunResult


def bar_chart(
    title: str,
    rows: list[tuple[str, float | None]],
    width: int = 50,
    unit: str = "",
    fail_label: str = "FAIL",
) -> str:
    """Horizontal bar chart; ``None`` values render as failures.

    >>> print(bar_chart("t", [("a", 2.0), ("b", 1.0), ("c", None)]))
    """
    label_w = max((len(label) for label, _ in rows), default=0)
    values = [v for _, v in rows if v is not None]
    peak = max(values, default=1.0) or 1.0
    lines = [f"== {title} =="]
    for label, value in rows:
        if value is None:
            lines.append(f"{label.ljust(label_w)} | {fail_label}")
            continue
        n = int(round(width * value / peak))
        bar = "#" * max(n, 1 if value > 0 else 0)
        lines.append(f"{label.ljust(label_w)} | {bar} {value:g}{unit}")
    return "\n".join(lines)


def memory_curve_plot(
    result: RunResult,
    capacity: int,
    height: int = 12,
    width: int = 80,
) -> str:
    """Render device memory in use over simulated time as an area plot,
    with the capacity line on top — the picture PoocH's profiling phase
    effectively reconstructs from the malloc/free trace."""
    trace = result.device_trace
    if not trace or result.makespan <= 0:
        return "(no memory trace)"
    # sample the staircase at `width` time points
    samples = [0] * width
    cursor = 0
    current = 0
    events = list(trace)
    for col in range(width):
        t = (col + 1) / width * result.makespan
        while cursor < len(events) and events[cursor].time <= t:
            current = events[cursor].in_use_after
            cursor += 1
        samples[col] = current
    peak = max(max(samples), 1)
    scale_top = max(peak, capacity)
    rows = []
    for level in range(height, 0, -1):
        band_top = scale_top * level / height
        band_low = scale_top * (level - 1) / height
        cap_row = capacity >= band_top > capacity - scale_top / height
        # a cell is filled when usage reaches into this band
        line = "".join(
            "█" if s > band_low else ("-" if cap_row else " ")
            for s in samples
        )
        prefix = format_bytes(band_top).rjust(11)
        marker = " <- capacity" if cap_row else ""
        rows.append(f"{prefix} |{line}|{marker}")
    rows.append(
        " " * 11
        + f" 0{'-' * (width - 10)}t={format_seconds(result.makespan)}"
    )
    return "\n".join(rows)
