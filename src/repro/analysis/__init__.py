"""Timeline analysis and reporting: idle-region extraction, swap-overlap
measurement (the basis of PoocH's `L_O`/`L_I` sets), ASCII timeline rendering
(the paper's Figs. 2/7/10-style pictures), and tabular report helpers."""

from repro.analysis.timeline import (
    compute_busy,
    hidden_fraction,
    idle_intervals,
    idle_overlap,
    interval_overlap,
    render_timeline,
    total_idle,
)
from repro.analysis.bottleneck import BottleneckReport, Stall, analyze_bottlenecks
from repro.analysis.chrometrace import (
    ChromeTraceBuilder,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.analysis.plots import bar_chart, memory_curve_plot
from repro.analysis.report import Table, format_table
from repro.analysis.robustness import (
    RobustnessReport,
    RobustnessRow,
    robustness_report,
)

__all__ = [
    "RobustnessReport",
    "RobustnessRow",
    "robustness_report",
    "bar_chart",
    "memory_curve_plot",
    "analyze_bottlenecks",
    "BottleneckReport",
    "Stall",
    "ChromeTraceBuilder",
    "to_chrome_trace",
    "write_chrome_trace",
    "interval_overlap",
    "compute_busy",
    "idle_intervals",
    "total_idle",
    "idle_overlap",
    "hidden_fraction",
    "render_timeline",
    "Table",
    "format_table",
]
