"""Stdlib HTTP client for the planning service.

Used by the ``repro client`` CLI subcommand, the tests and the serve
benchmark — anything that talks to a :class:`~repro.serve.server.PlannerServer`
does it through this class, so the wire format has exactly one
producer/consumer pair on each side.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Iterator

from repro.common.errors import ReproError


class ServeClientError(ReproError):
    """Transport failure or non-2xx response from the planning service."""

    def __init__(self, message: str, status: int | None = None,
                 body: dict[str, Any] | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.body = body or {}


class PlannerClient:
    """Talks JSON to one planning server."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ---------------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: dict[str, Any] | None = None) -> dict[str, Any]:
        data = None if body is None else json.dumps(body).encode()
        req = urllib.request.Request(
            f"{self.base_url}{path}", data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read() or b"{}")
        except urllib.error.HTTPError as e:
            try:
                payload = json.loads(e.read() or b"{}")
            except json.JSONDecodeError:
                payload = {}
            raise ServeClientError(
                payload.get("error", f"HTTP {e.code} from {path}"),
                status=e.code, body=payload,
            ) from e
        except (urllib.error.URLError, OSError) as e:
            raise ServeClientError(
                f"cannot reach planning server at {self.base_url}: {e}"
            ) from e

    # -- endpoints ---------------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/v1/healthz")

    def stats(self) -> dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def submit(
        self,
        model: str,
        *,
        batch: int = 32,
        machine: str = "x86",
        devices: int = 1,
        tenant: str = "default",
        config: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Submit one optimize request; returns the job document (terminal
        already on a warm cache hit)."""
        body: dict[str, Any] = {
            "tenant": tenant, "model": model, "batch": batch,
            "machine": machine, "devices": devices,
        }
        if config:
            body["config"] = config
        return self._request("POST", "/v1/optimize", body)

    def job(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> bool:
        return bool(
            self._request("POST", f"/v1/jobs/{job_id}/cancel")["cancelled"]
        )

    def wait(self, job_id: str, timeout: float = 120.0,
             poll_s: float = 0.05) -> dict[str, Any]:
        """Poll until the job settles; returns the final job document."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.job(job_id)
            if doc["state"] in ("done", "failed", "cancelled"):
                return doc
            if time.monotonic() >= deadline:
                raise ServeClientError(
                    f"job {job_id} still {doc['state']} after {timeout} s")
            time.sleep(poll_s)

    def result(self, job_id: str, timeout: float = 120.0) -> dict[str, Any]:
        """The result payload of a finished job (raises on failed/cancelled)."""
        doc = self.wait(job_id, timeout=timeout)
        if doc["state"] != "done":
            raise ServeClientError(
                f"job {job_id} {doc['state']}: {doc.get('error')}")
        return doc["result"]

    def events(self, job_id: str, from_seq: int = 0,
               timeout: float | None = None) -> Iterator[dict[str, Any]]:
        """Stream the job's progress events (blocks until it settles)."""
        req = urllib.request.Request(
            f"{self.base_url}/v1/jobs/{job_id}/events?from={from_seq}")
        try:
            with urllib.request.urlopen(
                    req, timeout=timeout or self.timeout) as resp:
                for line in resp:
                    line = line.strip()
                    if line:
                        yield json.loads(line)
        except urllib.error.HTTPError as e:
            raise ServeClientError(f"HTTP {e.code} streaming events",
                                   status=e.code) from e
        except (urllib.error.URLError, OSError) as e:
            raise ServeClientError(f"event stream failed: {e}") from e

    def shutdown_server(self) -> dict[str, Any]:
        return self._request("POST", "/v1/shutdown")
