"""In-flight request coalescing: N identical searches become one.

A *flight* is one in-progress optimization for a given plan key (graph
signature, machine signature, config signature).  The first job to arrive
for a key becomes the flight's **leader** and actually runs the search;
every job that arrives while the flight is open joins as a **follower** and
simply waits — when the leader completes, all members receive the same
result object, so the whole cohort pays for exactly one profiling + search.

Lifecycle rules (all transitions happen under one lock, so membership is
race-free against completion):

* ``join`` — open a new flight (caller is leader) or join an open one.
* ``complete`` — the leader finished (result or error): the flight closes
  and the follower list is returned to the caller for settlement.  Leader
  *errors* settle the cohort with the same error — the request is
  deterministic, so every follower would have failed identically.
* ``leave`` — a member was cancelled.  A follower just drops out; a
  cancelled **leader promotes the oldest follower** to leader instead of
  failing the cohort — the promoted job re-enters the run queue and the
  remaining followers keep waiting, now on the new leader.

The flight's :class:`threading.Event` is for synchronous waiters (tests,
in-process callers); the HTTP server never blocks a handler thread on it —
followers settle through the job manager's completion callback.
"""

from __future__ import annotations

import threading
from typing import Any, Hashable


class Flight:
    """One open coalesced optimization (leader + followers, all job ids)."""

    def __init__(self, key: Hashable, leader: str) -> None:
        self.key = key
        self.leader = leader
        self.followers: list[str] = []
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None

    def members(self) -> list[str]:
        return [self.leader, *self.followers]


class Coalescer:
    """Keyed registry of open flights."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[Hashable, Flight] = {}
        #: followers that ever joined a flight (the benchmark's coalesce-rate
        #: numerator) and flights opened (its denominator's search side)
        self.coalesced_total = 0
        self.flights_opened = 0

    def join(self, key: Hashable, job_id: str) -> tuple[Flight, bool]:
        """Register ``job_id`` under ``key``; returns ``(flight, is_leader)``."""
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = Flight(key, job_id)
                self._flights[key] = flight
                self.flights_opened += 1
                return flight, True
            flight.followers.append(job_id)
            self.coalesced_total += 1
            return flight, False

    def complete(self, key: Hashable, result: Any = None,
                 error: BaseException | None = None) -> list[str]:
        """Close the flight for ``key``; returns the follower ids to settle
        (empty when no flight was open — e.g. a non-coalesced job)."""
        with self._lock:
            flight = self._flights.pop(key, None)
            if flight is None:
                return []
            flight.result = result
            flight.error = error
            followers = list(flight.followers)
        flight.done.set()
        return followers

    def leave(self, key: Hashable, job_id: str) -> str | None:
        """Remove a cancelled member.

        Returns the id of a follower promoted to leader (the caller must
        re-enqueue it for execution), or ``None`` when no promotion happened
        (the member was a follower, or the flight had no followers left and
        was closed).
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                return None
            if flight.leader != job_id:
                try:
                    flight.followers.remove(job_id)
                except ValueError:
                    pass
                return None
            if not flight.followers:
                # a lone cancelled leader closes the flight; the next
                # request for this key starts fresh
                del self._flights[key]
                return None
            promoted = flight.followers.pop(0)
            flight.leader = promoted
            return promoted

    def open_flights(self) -> int:
        with self._lock:
            return len(self._flights)

    def flight_for(self, key: Hashable) -> Flight | None:
        with self._lock:
            return self._flights.get(key)
