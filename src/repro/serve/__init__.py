"""Planner-as-a-service: a long-lived optimization server.

PoocH's premise is that one expensive profiling+search phase is amortized
over many training iterations; this package applies the same argument
*across tenants and runs*.  A :class:`PlannerServer` keeps plans, predictor
outcomes and signatures warm in one process, so N structurally identical
optimize requests pay for exactly one search:

* in-flight duplicates coalesce onto one leader
  (:mod:`repro.serve.coalesce`),
* completed responses answer repeats from a bounded in-memory LRU
  (:mod:`repro.serve.cache`) over the persistent
  :class:`~repro.runtime.plan_io.PlanCache`,
* a bounded job queue with per-tenant quotas fails fast under overload
  (:mod:`repro.serve.jobs`),
* every settled request leaves a JSONL audit record
  (:mod:`repro.serve.audit`).

Plans served are bit-identical to a direct ``PoocH.optimize`` for the same
(graph, machine, config): the entire pipeline is deterministic, and caching
never re-derives — it replays the one result the search produced.
"""

from repro.serve.audit import AuditLog
from repro.serve.cache import (
    TIER_COALESCED,
    TIER_PERSISTENT,
    TIER_SEARCH,
    TIER_WARM,
    CachedResponse,
    LruCache,
    WarmPlanCache,
)
from repro.serve.client import PlannerClient, ServeClientError
from repro.serve.coalesce import Coalescer, Flight
from repro.serve.jobs import (
    AdmissionError,
    BadRequest,
    Job,
    JobCancelled,
    JobManager,
    JobState,
    QueueFull,
    QuotaExceeded,
    ServePlanner,
)
from repro.serve.server import PlannerServer

__all__ = [
    "AuditLog",
    "AdmissionError",
    "BadRequest",
    "CachedResponse",
    "Coalescer",
    "Flight",
    "Job",
    "JobCancelled",
    "JobManager",
    "JobState",
    "LruCache",
    "PlannerClient",
    "PlannerServer",
    "QueueFull",
    "QuotaExceeded",
    "ServeClientError",
    "ServePlanner",
    "TIER_COALESCED",
    "TIER_PERSISTENT",
    "TIER_SEARCH",
    "TIER_WARM",
    "WarmPlanCache",
]
