"""The planner-as-a-service HTTP layer (stdlib only).

A :class:`PlannerServer` wraps one :class:`~repro.serve.jobs.JobManager`
behind a ``ThreadingHTTPServer`` — one thread per connection for the cheap
request/response endpoints, while the actual searches run on the manager's
bounded worker pool.  JSON in, JSON out:

==========================  =====================================================
``POST /v1/optimize``       submit ``{"tenant", "model", "batch", "machine",
                            "devices", "config": {...}}``; 200 with the full
                            job document when it settled synchronously (warm
                            hit), 202 while queued/coalesced/running, 429 with
                            a ``reason`` on admission rejection, 400 on a
                            malformed request.
``GET /v1/jobs/<id>``       job document (result embedded once done).
``GET /v1/jobs/<id>/events``  newline-delimited JSON progress stream; replays
                            recorded events (``?from=N`` to skip) then follows
                            live until the job settles.
``POST /v1/jobs/<id>/cancel``  cancel; queued/coalesced jobs settle at once,
                            running jobs abort at the next phase boundary.
``GET /v1/stats``           serve counters, cache tiers, queue depth, tenants.
``GET /v1/healthz``         liveness probe.
``POST /v1/shutdown``       graceful stop (used by tests and the CI smoke
                            step; disable with ``allow_remote_shutdown=False``).
==========================  =====================================================

The server never trusts request bodies: everything goes through
:meth:`ServePlanner.resolve` validation, and errors map to structured JSON
error bodies, never tracebacks.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro.obs import get_logger
from repro.serve.jobs import (
    AdmissionError,
    BadRequest,
    JobManager,
    TERMINAL_STATES,
)

log = get_logger(__name__)

#: maximum accepted request-body size; optimize requests are tiny, anything
#: bigger is a client bug or abuse
MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto ``self.server.manager`` (a JobManager)."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"

    # -- plumbing ----------------------------------------------------------------

    def log_message(self, fmt: str, *args: Any) -> None:  # noqa: A003
        log.debug("%s %s", self.address_string(), fmt % args)

    def _json(self, status: int, body: dict[str, Any]) -> None:
        data = (json.dumps(body, indent=2) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _error(self, status: int, message: str, **extra: Any) -> None:
        self._json(status, {"error": message, **extra})

    def _body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise BadRequest(f"request body too large ({length} bytes)")
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as e:
            raise BadRequest(f"request body is not valid JSON: {e}") from e
        if not isinstance(body, dict):
            raise BadRequest("request body must be a JSON object")
        return body

    # -- routing -----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        manager: JobManager = self.server.manager  # type: ignore[attr-defined]
        try:
            if parts == ["v1", "healthz"]:
                self._json(200, {"status": "ok"})
            elif parts == ["v1", "stats"]:
                self._json(200, manager.stats())
            elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                self._json(200, manager.get(parts[2]).to_dict())
            elif (len(parts) == 4 and parts[:2] == ["v1", "jobs"]
                    and parts[3] == "events"):
                self._stream_events(manager, parts[2], url.query)
            else:
                self._error(404, f"no such endpoint: GET {url.path}")
        except KeyError as e:
            self._error(404, str(e.args[0]) if e.args else "not found")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        manager: JobManager = self.server.manager  # type: ignore[attr-defined]
        try:
            if parts == ["v1", "optimize"]:
                body = self._body()
                tenant = body.pop("tenant", "default")
                if not isinstance(tenant, str) or not tenant:
                    raise BadRequest("'tenant' must be a non-empty string")
                job = manager.submit(body, tenant=tenant)
                status = 200 if job.state in TERMINAL_STATES else 202
                self._json(status, job.to_dict())
            elif (len(parts) == 4 and parts[:2] == ["v1", "jobs"]
                    and parts[3] == "cancel"):
                cancelled = manager.cancel(parts[2])
                self._json(200, {"id": parts[2], "cancelled": cancelled})
            elif parts == ["v1", "shutdown"]:
                if not getattr(self.server, "allow_remote_shutdown", False):
                    self._error(403, "remote shutdown is disabled")
                    return
                self._json(200, {"status": "shutting down"})
                # shut down from another thread: shutdown() blocks until
                # serve_forever exits, which cannot happen on this thread
                threading.Thread(
                    target=self.server.shutdown, daemon=True  # type: ignore[attr-defined]
                ).start()
            else:
                self._error(404, f"no such endpoint: POST {url.path}")
        except BadRequest as e:
            self._error(400, str(e))
        except AdmissionError as e:
            self._json(429, {"error": str(e), "reason": e.reason,
                             "retry_after_s": 1.0})
        except KeyError as e:
            self._error(404, str(e.args[0]) if e.args else "not found")

    # -- event streaming ---------------------------------------------------------

    def _stream_events(self, manager: JobManager, job_id: str,
                       query: str) -> None:
        job = manager.get(job_id)  # KeyError -> 404 upstream
        start = 0
        qs = parse_qs(query)
        if "from" in qs:
            try:
                start = max(0, int(qs["from"][0]))
            except ValueError:
                start = 0
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        # stream until terminal: length unknown, so close delimits the body
        self.send_header("Connection", "close")
        self.end_headers()
        cursor = start
        while True:
            with job.cond:
                while (cursor >= len(job.events)
                        and job.state not in TERMINAL_STATES):
                    job.cond.wait(timeout=10.0)
                batch = job.events[cursor:]
                cursor += len(batch)
                terminal = job.state in TERMINAL_STATES
            for event in batch:
                self.wfile.write((json.dumps(event) + "\n").encode())
            self.wfile.flush()
            if terminal and cursor >= len(job.events):
                return


class _Httpd(ThreadingHTTPServer):
    daemon_threads = True
    #: socketserver's default listen backlog is 5 — a coalesced burst (the
    #: whole point of this server) arrives as N simultaneous connects and
    #: would see connection resets before the accept loop catches up
    request_queue_size = 128


class PlannerServer:
    """A ThreadingHTTPServer bound to one JobManager.

    Use as a context manager (tests, benchmarks) or via
    :meth:`serve_forever` (the CLI)::

        with PlannerServer(manager=JobManager(...), port=0) as server:
            client = PlannerClient(server.url)
            ...
    """

    def __init__(
        self,
        manager: JobManager | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        allow_remote_shutdown: bool = True,
        **manager_kwargs: Any,
    ) -> None:
        self.manager = manager or JobManager(**manager_kwargs)
        self.httpd = _Httpd((host, port), _Handler)
        self.httpd.manager = self.manager  # type: ignore[attr-defined]
        self.httpd.allow_remote_shutdown = allow_remote_shutdown  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "PlannerServer":
        """Serve on a background thread (returns immediately)."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="serve-http", daemon=True
        )
        self._thread.start()
        log.info("planning server listening on %s", self.url)
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (or the
        ``/v1/shutdown`` endpoint) is invoked."""
        log.info("planning server listening on %s", self.url)
        self.httpd.serve_forever()

    def shutdown(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self.manager.shutdown()

    def __enter__(self) -> "PlannerServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()
