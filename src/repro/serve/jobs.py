"""Job queue, admission control, and the serve-side optimize pipeline.

The :class:`JobManager` is the server's core: it owns the job table, the
bounded run queue, the per-tenant quotas, the in-flight
:class:`~repro.serve.coalesce.Coalescer` and the two cache tiers.  The HTTP
layer (:mod:`repro.serve.server`) is a thin translation of requests onto
this class, so everything here is testable without sockets.

A submitted request travels one of four paths, cheapest first:

1. **warm hit** — the L1 response cache holds a completed response for the
   request's plan key: the job is born ``done``, no queue slot, no thread.
2. **coalesced** — an open flight exists for the key: the job waits as a
   follower and settles when the flight's leader completes (or is promoted
   to leader if the leader is cancelled).
3. **queued → running** — the job becomes a flight leader and runs the
   profiling+search pipeline on a worker thread, with the persistent
   :class:`~repro.runtime.plan_io.PlanCache` attached (tier ``persistent``
   when that short-circuits the search, ``miss-search`` otherwise).
4. **rejected** — tenant quota exceeded or run queue full: admission
   control fails fast (the HTTP layer maps this to 429) instead of letting
   a hot tenant grow the queue without bound.

Cancellation is cooperative for running jobs: the pipeline's progress
callback raises :class:`JobCancelled` at the next phase boundary.  A
cancelled leader never fails its cohort — the coalescer promotes the oldest
follower, which re-enters the queue and runs the search itself.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.common.errors import ReproError
from repro.graph import NNGraph
from repro.hw import MachineSpec, POWER9_V100, X86_V100, multi_gpu
from repro.models import build_model
from repro.obs import get_logger
from repro.pooch import PoocH, PoochConfig
from repro.runtime.plan_io import (
    PlanCache,
    graph_signature,
    machine_signature,
    plan_to_dict,
)
from repro.serve.audit import AuditLog
from repro.serve.cache import (
    TIER_COALESCED,
    TIER_PERSISTENT,
    TIER_SEARCH,
    TIER_WARM,
    CachedResponse,
    LruCache,
    PlanKey,
    WarmPlanCache,
)
from repro.serve.coalesce import Coalescer

log = get_logger(__name__)

MACHINES: dict[str, MachineSpec] = {"x86": X86_V100, "power9": POWER9_V100}


class BadRequest(ReproError):
    """Malformed or unresolvable optimize request (HTTP 400)."""


class AdmissionError(ReproError):
    """Request rejected by admission control (HTTP 429)."""

    reason = "admission"


class QuotaExceeded(AdmissionError):
    reason = "tenant-quota"


class QueueFull(AdmissionError):
    reason = "queue-full"


class JobCancelled(Exception):
    """Raised inside the pipeline's progress callback to abort a search."""


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    COALESCED = "coalesced"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: states that still count against a tenant's quota
ACTIVE_STATES = (JobState.QUEUED, JobState.RUNNING, JobState.COALESCED)
TERMINAL_STATES = (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass
class ResolvedRequest:
    """A validated request, bound to concrete objects and its plan key."""

    model: str
    batch: int
    machine_name: str
    devices: int
    graph: NNGraph
    machine: MachineSpec
    config: PoochConfig
    key: PlanKey


class Job:
    """One tracked request: state machine + ordered event log."""

    def __init__(self, job_id: str, tenant: str, request: dict[str, Any],
                 resolved: ResolvedRequest) -> None:
        self.id = job_id
        self.tenant = tenant
        self.request = request
        self.resolved = resolved
        self.state = JobState.QUEUED
        self.created_s = time.time()
        self.started_s: float | None = None
        self.finished_s: float | None = None
        self.wall_s: float | None = None
        self.cache_tier: str | None = None
        self.coalesced_with: str | None = None
        self.result: dict[str, Any] | None = None
        self.error: str | None = None
        self.cancel_requested = False
        #: ordered progress events; guarded by ``cond`` (the event-stream
        #: endpoint waits on it for new entries or a terminal state)
        self.events: list[dict[str, Any]] = []
        self.cond = threading.Condition()

    @property
    def key(self) -> PlanKey:
        return self.resolved.key

    def emit(self, event: str, info: dict[str, Any] | None = None) -> None:
        with self.cond:
            self.events.append({
                "seq": len(self.events),
                "t_s": round(time.time() - self.created_s, 6),
                "event": event,
                **(info or {}),
            })
            self.cond.notify_all()

    def finish(self, state: JobState, *, result: dict[str, Any] | None = None,
               error: str | None = None, tier: str | None = None,
               coalesced_with: str | None = None) -> None:
        self.state = state
        self.finished_s = time.time()
        self.wall_s = self.finished_s - self.created_s
        if result is not None:
            self.result = result
        if error is not None:
            self.error = error
        if tier is not None:
            self.cache_tier = tier
        if coalesced_with is not None:
            self.coalesced_with = coalesced_with
        self.emit(f"job:{state.value}",
                  {"wall_s": round(self.wall_s, 6),
                   **({"error": error} if error else {})})

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state (True) or times out."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self.cond:
            while self.state not in TERMINAL_STATES:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return False
                self.cond.wait(remaining)
            return True

    def to_dict(self, *, include_result: bool = True) -> dict[str, Any]:
        doc = {
            "id": self.id,
            "tenant": self.tenant,
            "state": self.state.value,
            "request": self.request,
            "graph_signature": self.key[0],
            "machine_signature": self.key[1],
            "config_signature": self.key[2],
            "cache_tier": self.cache_tier,
            "coalesced_with": self.coalesced_with,
            "created_s": self.created_s,
            "wall_s": self.wall_s,
            "events": len(self.events),
            "error": self.error,
        }
        if include_result and self.result is not None:
            doc["result"] = self.result
        return doc


class ServePlanner:
    """Request resolution + the actual optimize pipeline for one server.

    Holds a small LRU of built graphs keyed by (model, batch, input_size):
    repeat requests then reuse one immutable :class:`NNGraph` instance, and
    — with :func:`~repro.runtime.plan_io.graph_signature` memoized on the
    instance — the per-request signature cost collapses to a dict lookup.
    """

    #: PoochConfig knobs a request may set (API name -> constructor kwarg)
    CONFIG_KEYS = {
        "budget": "step1_sim_budget",
        "workers": "workers",
        "max_exact_li": "max_exact_li",
        "capacity_margin": "capacity_margin",
        "prune": "prune",
        "incremental": "incremental",
        "incremental_step2": "incremental_step2",
        "vectorize": "vectorize",
    }

    def __init__(self, plan_cache: PlanCache | str | None = None,
                 graph_cache_size: int = 32) -> None:
        if plan_cache is not None and not isinstance(plan_cache, PlanCache):
            plan_cache = PlanCache(plan_cache, lru_capacity=128)
        self.plan_cache = plan_cache
        self._graphs = LruCache(graph_cache_size)

    # -- request resolution ------------------------------------------------------

    def _graph(self, model: str, batch: int,
               input_size: tuple[int, ...] | None) -> NNGraph:
        key = (model, batch, input_size)
        graph = self._graphs.get(key)
        if graph is None:
            kwargs = {}
            if model == "resnext101_3d" and input_size is not None:
                kwargs["input_size"] = input_size
            graph = build_model(model, batch=batch, **kwargs)
            self._graphs.put(key, graph)
        return graph

    def resolve(self, request: dict[str, Any]) -> ResolvedRequest:
        """Validate a request dict and bind it to graph/machine/config/key."""
        if not isinstance(request, dict):
            raise BadRequest(f"request must be an object, got "
                             f"{type(request).__name__}")
        model = request.get("model")
        if not isinstance(model, str) or not model:
            raise BadRequest("request needs a 'model' name")
        batch = request.get("batch", 32)
        if not isinstance(batch, int) or isinstance(batch, bool) or batch < 1:
            raise BadRequest(f"'batch' must be a positive integer, got {batch!r}")
        machine_name = request.get("machine", "x86")
        if machine_name not in MACHINES:
            raise BadRequest(f"unknown machine {machine_name!r}; "
                             f"known: {sorted(MACHINES)}")
        devices = request.get("devices", 1)
        if not isinstance(devices, int) or isinstance(devices, bool) or devices < 1:
            raise BadRequest(f"'devices' must be a positive integer, "
                             f"got {devices!r}")
        input_size = request.get("input_size")
        if input_size is not None:
            try:
                input_size = tuple(int(v) for v in input_size)
            except (TypeError, ValueError):
                raise BadRequest(f"'input_size' must be a list of integers, "
                                 f"got {input_size!r}") from None
        config_req = request.get("config") or {}
        if not isinstance(config_req, dict):
            raise BadRequest("'config' must be an object")
        unknown = sorted(set(config_req) - set(self.CONFIG_KEYS))
        if unknown:
            raise BadRequest(f"unknown config keys {unknown}; "
                             f"known: {sorted(self.CONFIG_KEYS)}")
        kwargs = {self.CONFIG_KEYS[k]: v for k, v in config_req.items()}
        try:
            config = PoochConfig(**kwargs)
        except (TypeError, ValueError) as e:
            raise BadRequest(f"bad config: {e}") from e
        try:
            graph = self._graph(model, batch, input_size)
        except ReproError as e:
            raise BadRequest(str(e)) from e
        machine = MACHINES[machine_name]
        if devices > 1:
            machine = multi_gpu(machine, devices)
        key = (graph_signature(graph), machine_signature(machine),
               config.signature())
        return ResolvedRequest(
            model=model, batch=batch, machine_name=machine_name,
            devices=devices, graph=graph, machine=machine, config=config,
            key=key,
        )

    # -- the pipeline ------------------------------------------------------------

    def optimize(self, resolved: ResolvedRequest,
                 progress=None) -> tuple[CachedResponse, str]:
        """Run the full pipeline for a leader job.

        Returns the cacheable response and the tier that produced it
        (``persistent`` when the directory-backed PlanCache short-circuited
        the search, ``miss-search`` for a fresh search).
        """
        pooch = PoocH(resolved.machine, resolved.config,
                      plan_cache=self.plan_cache, progress=progress)
        result = pooch.optimize(resolved.graph)
        stats = result.stats
        payload = {
            "model": resolved.model,
            "batch": resolved.batch,
            "machine": resolved.machine.name,
            "devices": resolved.devices,
            "graph_signature": resolved.key[0],
            "machine_signature": resolved.key[1],
            "config_signature": resolved.key[2],
            "plan": plan_to_dict(
                result.classification, resolved.graph,
                machine=resolved.machine.name,
                predicted_time=result.predicted.time,
            ),
            "predicted_time_s": result.predicted.time,
            "search": {
                "plan_cache_hit": stats.plan_cache_hit,
                "sims_step1": stats.sims_step1,
                "sims_step2": stats.sims_step2,
                "sims_full": stats.sims_full,
                "sims_resumed": stats.sims_resumed,
                "leaves_evaluated": stats.leaves_evaluated,
                "wall_time_s": stats.wall_time_s,
            },
        }
        if result.multi is not None:
            payload["multi"] = {
                "devices": resolved.machine.devices,
                "stagger_s": list(result.multi.stagger),
                "makespan_naive_s": result.multi.naive.makespan,
                "makespan_chosen_s": result.multi.chosen.makespan,
            }
        tier = TIER_PERSISTENT if stats.plan_cache_hit else TIER_SEARCH
        return CachedResponse(result.classification, payload), tier


class JobManager:
    """Job table + run queue + admission control + coalescing + caches."""

    def __init__(
        self,
        planner: ServePlanner | None = None,
        *,
        workers: int = 2,
        max_queue: int = 16,
        tenant_quota: int = 4,
        warm_capacity: int = 128,
        audit: AuditLog | str | None = None,
        name: str = "serve",
    ) -> None:
        if workers < 1 or max_queue < 1 or tenant_quota < 1:
            raise ValueError("workers, max_queue and tenant_quota must be >= 1")
        self.planner = planner or ServePlanner()
        self.warm = WarmPlanCache(warm_capacity)
        self.coalescer = Coalescer()
        if audit is not None and not isinstance(audit, AuditLog):
            audit = AuditLog(audit)
        self.audit = audit
        self.max_queue = max_queue
        self.tenant_quota = tenant_quota
        self._cv = threading.Condition()
        self._jobs: dict[str, Job] = {}
        self._pending: deque[str] = deque()
        self._stop = False
        self._seq = itertools.count(1)
        self.counters: dict[str, int] = {
            "requests": 0, "warm_hits": 0, "persistent_hits": 0,
            "searches": 0, "coalesced": 0, "rejected_quota": 0,
            "rejected_queue": 0, "cancelled": 0, "failed": 0, "completed": 0,
        }
        self._threads = [
            threading.Thread(target=self._worker, name=f"{name}-worker-{i}",
                             daemon=True)
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    # -- submission --------------------------------------------------------------

    def submit(self, request: dict[str, Any], tenant: str = "default") -> Job:
        """Admit one optimize request; returns its :class:`Job`.

        Raises :class:`BadRequest` on malformed requests and
        :class:`QuotaExceeded` / :class:`QueueFull` on admission failure.
        """
        resolved = self.planner.resolve(request)
        with self._cv:
            if self._stop:
                raise AdmissionError("server is shutting down")
            self.counters["requests"] += 1
            job = Job(f"job-{next(self._seq):06d}", tenant, dict(request),
                      resolved)
            # L1: a warm response answers without a queue slot or quota
            cached = self.warm.lookup(job.key)
            if cached is not None:
                self.counters["warm_hits"] += 1
                self.counters["completed"] += 1
                self._jobs[job.id] = job
                job.emit("cache:warm-hit")
                job.finish(JobState.DONE,
                           result=cached.response_for(tier=TIER_WARM),
                           tier=TIER_WARM)
                self._audit(job)
                return job
            active = sum(
                1 for j in self._jobs.values()
                if j.tenant == tenant and j.state in ACTIVE_STATES
            )
            if active >= self.tenant_quota:
                self.counters["rejected_quota"] += 1
                raise QuotaExceeded(
                    f"tenant {tenant!r} already has {active} active jobs "
                    f"(quota {self.tenant_quota})")
            flight, is_leader = self.coalescer.join(job.key, job.id)
            if not is_leader:
                self.counters["coalesced"] += 1
                job.state = JobState.COALESCED
                job.coalesced_with = flight.leader
                self._jobs[job.id] = job
                job.emit("coalesce:joined", {"leader": flight.leader})
                return job
            if len(self._pending) >= self.max_queue:
                self.coalescer.leave(job.key, job.id)
                self.counters["rejected_queue"] += 1
                raise QueueFull(
                    f"run queue is full ({self.max_queue} jobs pending)")
            self._jobs[job.id] = job
            self._pending.append(job.id)
            job.emit("queue:admitted", {"depth": len(self._pending)})
            self._cv.notify()
            return job

    # -- lookup / cancellation ---------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._cv:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job {job_id!r}") from None

    def cancel(self, job_id: str) -> bool:
        """Cancel a job; returns False when it already reached a terminal
        state.  Queued/coalesced jobs settle immediately; running jobs are
        flagged and abort at the pipeline's next progress checkpoint."""
        with self._cv:
            job = self.get(job_id)
            if job.state in TERMINAL_STATES:
                return False
            if job.state is JobState.RUNNING:
                job.cancel_requested = True
                job.emit("cancel:requested")
                return True
            promoted = self.coalescer.leave(job.key, job.id)
            self.counters["cancelled"] += 1
            job.finish(JobState.CANCELLED)
            if promoted is not None:
                self._promote_locked(promoted, cancelled_leader=job.id)
            self._audit(job)
            return True

    def _promote_locked(self, job_id: str, cancelled_leader: str) -> None:
        """Re-enqueue a follower promoted to flight leader (holding _cv)."""
        promoted = self._jobs[job_id]
        promoted.state = JobState.QUEUED
        promoted.coalesced_with = None
        self._pending.append(job_id)
        promoted.emit("coalesce:promoted",
                      {"cancelled_leader": cancelled_leader})
        self._cv.notify()

    # -- worker side -------------------------------------------------------------

    def _worker(self) -> None:
        while True:
            with self._cv:
                while not self._pending and not self._stop:
                    self._cv.wait()
                if not self._pending:
                    return  # stopping and drained
                job = self._jobs[self._pending.popleft()]
                if job.state is not JobState.QUEUED:
                    continue  # cancelled while queued; already settled
                job.state = JobState.RUNNING
                job.started_s = time.time()
            job.emit("run:start")
            self._run(job)

    def _run(self, job: Job) -> None:
        def progress(event: str, info: dict[str, Any]) -> None:
            if job.cancel_requested:
                raise JobCancelled(job.id)
            job.emit(event, info)

        try:
            if job.cancel_requested:  # cancelled between pickup and start
                raise JobCancelled(job.id)
            cached, tier = self.planner.optimize(job.resolved,
                                                 progress=progress)
        except JobCancelled:
            with self._cv:
                promoted = self.coalescer.leave(job.key, job.id)
                self.counters["cancelled"] += 1
                job.finish(JobState.CANCELLED)
                if promoted is not None:
                    self._promote_locked(promoted, cancelled_leader=job.id)
            self._audit(job)
        except Exception as e:  # noqa: BLE001 - a leader settles its cohort
            log.warning("job %s failed: %s", job.id, e)
            with self._cv:
                followers = self.coalescer.complete(job.key, error=e)
                self.counters["failed"] += 1 + len(followers)
                job.finish(JobState.FAILED, error=str(e))
                settled = [self._jobs[fid] for fid in followers]
                for fjob in settled:
                    fjob.finish(JobState.FAILED, error=str(e),
                                coalesced_with=job.id)
            for fjob in (job, *settled):
                self._audit(fjob)
        else:
            self.warm.store(job.key, cached)
            with self._cv:
                followers = self.coalescer.complete(job.key, result=cached)
                if tier == TIER_PERSISTENT:
                    self.counters["persistent_hits"] += 1
                else:
                    self.counters["searches"] += 1
                self.counters["completed"] += 1 + len(followers)
                job.finish(JobState.DONE,
                           result=cached.response_for(tier=tier), tier=tier)
                settled = [self._jobs[fid] for fid in followers]
                for fjob in settled:
                    fjob.finish(
                        JobState.DONE,
                        result=cached.response_for(tier=TIER_COALESCED,
                                                   coalesced_with=job.id),
                        tier=TIER_COALESCED, coalesced_with=job.id)
            for fjob in (job, *settled):
                self._audit(fjob)

    # -- bookkeeping -------------------------------------------------------------

    def _audit(self, job: Job) -> None:
        if self.audit is None:
            return
        self.audit.append({
            "job_id": job.id,
            "tenant": job.tenant,
            "state": job.state.value,
            "model": job.resolved.model,
            "batch": job.resolved.batch,
            "machine": job.resolved.machine_name,
            "graph_signature": job.key[0],
            "machine_signature": job.key[1],
            "config_signature": job.key[2],
            "cache_tier": job.cache_tier,
            "coalesced_with": job.coalesced_with,
            "wall_s": job.wall_s,
            "error": job.error,
        })

    def stats(self) -> dict[str, Any]:
        with self._cv:
            counters = dict(self.counters)
            queue_depth = len(self._pending)
            states: dict[str, int] = {}
            tenants: dict[str, int] = {}
            for j in self._jobs.values():
                states[j.state.value] = states.get(j.state.value, 0) + 1
                if j.state in ACTIVE_STATES:
                    tenants[j.tenant] = tenants.get(j.tenant, 0) + 1
        doc = {
            "counters": counters,
            "queue_depth": queue_depth,
            "open_flights": self.coalescer.open_flights(),
            "jobs_by_state": states,
            "active_by_tenant": tenants,
            "warm_cache": self.warm.stats(),
        }
        cache = self.planner.plan_cache
        if cache is not None:
            doc["plan_cache"] = {
                "root": str(cache.root),
                "lru_hits": cache.lru_hits,
                "disk_hits": cache.disk_hits,
                "misses": cache.misses,
            }
        return doc

    def publish_metrics(self) -> None:
        """Mirror the serve counters into the active obs registry (the CLI
        calls this before writing a RunMetrics document)."""
        from repro.obs import metrics

        stats = self.stats()
        for name, value in stats["counters"].items():
            metrics.count(f"serve.{name}", value)
        metrics.gauge("serve.queue_depth", stats["queue_depth"])
        metrics.gauge("serve.warm_cache_size", stats["warm_cache"]["size"])
        if "plan_cache" in stats:
            metrics.gauge("serve.plan_cache_lru_hits",
                          stats["plan_cache"]["lru_hits"])
            metrics.gauge("serve.plan_cache_disk_hits",
                          stats["plan_cache"]["disk_hits"])

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop accepting work, drain the queue, join the workers."""
        with self._cv:
            self._stop = True
            self._cv.notify_all()
        for t in self._threads:
            t.join(timeout)
