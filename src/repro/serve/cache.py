"""The serve-side warm cache: complete optimize responses, in memory.

Two cache levels serve a request (plus coalescing for in-flight overlap):

* **L1 — warm response cache** (:class:`WarmPlanCache`): a bounded
  thread-safe LRU of *complete* optimize responses — the JSON-ready plan
  dict, the deserialized :class:`~repro.runtime.plan.Classification`, the
  predicted outcome and the search-stats summary — keyed by the same
  (graph signature, machine signature, config signature) triple the
  persistent :class:`~repro.runtime.plan_io.PlanCache` uses.  A hit returns
  without profiling, without simulation and without touching JSON: the hot
  path of a duplicate-heavy workload is a dict lookup under a lock.

* **L2 — persistent PlanCache**: the directory-backed store, shared across
  server processes and with the offline CLI.  On an L1 miss the search
  pipeline runs with the PlanCache attached, so a previously *persisted*
  plan still short-circuits the search (profile + one verification
  simulation instead of a full search); the resulting response is then
  promoted into L1.

Everything in a cached response is treated as immutable: the
``Classification`` was produced once by the search (or one JSON parse) and
is shared by reference with every subsequent hit — which is what makes the
bit-identical-plans guarantee trivial, the same object is serialized every
time.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.runtime.plan import Classification

#: cache-tier labels stamped into responses and the audit log
TIER_WARM = "warm-lru"
TIER_PERSISTENT = "persistent"
TIER_SEARCH = "miss-search"
TIER_COALESCED = "coalesced"


class LruCache:
    """A small thread-safe bounded LRU (no TTL — entries are immutable and
    keyed by content signatures, so they can never go stale, only cold)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"LRU capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[Any, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Any, default: Any = None) -> Any:
        with self._lock:
            try:
                value = self._entries.pop(key)
            except KeyError:
                self.misses += 1
                return default
            self._entries[key] = value
            self.hits += 1
            return value

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


#: the coalescing / cache key: (graph signature, machine signature,
#: config signature) — identical to the persistent PlanCache plan key
PlanKey = tuple[str, str, str]


@dataclass
class CachedResponse:
    """One complete optimize result, ready to answer a repeat request."""

    #: the chosen plan, deserialized — shared by reference with every hit
    classification: Classification
    #: JSON-ready response body (plan dict + prediction + search summary);
    #: :meth:`response_for` copies the outer dict before stamping
    #: job-specific fields, the nested plan dict is never mutated
    payload: dict[str, Any]

    def response_for(self, *, tier: str, coalesced_with: str | None = None
                     ) -> dict[str, Any]:
        response = dict(self.payload)
        response["cache_tier"] = tier
        response["coalesced_with"] = coalesced_with
        return response


@dataclass
class WarmPlanCache:
    """The L1 warm response cache plus its tier accounting."""

    capacity: int = 128
    _lru: LruCache = field(init=False)

    def __post_init__(self) -> None:
        self._lru = LruCache(self.capacity)

    def lookup(self, key: PlanKey) -> CachedResponse | None:
        return self._lru.get(key)

    def store(self, key: PlanKey, response: CachedResponse) -> None:
        self._lru.put(key, response)

    def stats(self) -> dict[str, int]:
        return self._lru.stats()
