"""Persisted per-request audit trail: one JSON line per settled job.

Every job that reaches a terminal state appends one record — tenant, plan
signatures, who it coalesced with, which cache tier answered it, wall time,
and the error for failed jobs.  The format is append-only JSONL so the file
is greppable mid-flight, survives crashes up to the last complete line, and
can be tailed by external tooling; writes are serialized by a lock and each
record is a single ``write`` of one line, so concurrent workers never
interleave partial records.

Timestamps are wall-clock (``time.time``) — the audit log is operational
provenance, not part of any bit-reproducibility contract.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time
from typing import Any, Iterator


class AuditLog:
    """Append-only JSONL audit log."""

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.records_written = 0

    def append(self, record: dict[str, Any]) -> None:
        line = json.dumps({"ts": time.time(), **record},
                          separators=(",", ":"), sort_keys=True)
        with self._lock:
            with self.path.open("a", encoding="utf-8") as f:
                f.write(line + "\n")
            self.records_written += 1

    def read(self) -> list[dict[str, Any]]:
        """All complete records (a trailing partial line is skipped)."""
        return list(self)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        if not self.path.exists():
            return
        with self.path.open(encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail from a crash; ignore
