"""Numeric validation backend: run a schedule with real numpy payloads.

This is the strongest correctness oracle in the repository.  It executes a
training iteration *through the simulator* — every forward, swap, recompute
and backward happens as a task payload at its simulated position — while the
engine's ``free_hook`` deletes arrays the instant their buffer is freed.  Any
scheduling bug (use-after-free, missing dependency, wrong recompute chain)
therefore surfaces as a hard :class:`~repro.common.errors.NumericError`
instead of silently producing a plausible timeline.

``verify_against_incore`` runs the same graph in-core and under a candidate
out-of-core plan and demands bit-identical weight gradients: swapping must be
a pure data move and recomputation a pure replay.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import NumericError
from repro.graph import NNGraph
from repro.graph.ops import OpKind
from repro.gpusim import Engine, RunResult, Schedule
from repro.hw import CostModel, MachineSpec
from repro.nn import functional as F
from repro.runtime.durations import CostModelDurations
from repro.runtime.plan import Classification, SwapInPolicy
from repro.runtime.schedule import ScheduleOptions, build_schedule


class NumericExecutor:
    """Owns parameters, the input batch, and the live array stores."""

    def __init__(self, graph: NNGraph, seed: int = 0) -> None:
        self.graph = graph
        self.rng = np.random.default_rng(seed)
        self.params: dict[int, dict[str, np.ndarray]] = {}
        self.weight_grads: dict[int, dict[str, np.ndarray]] = {}
        self.device: dict[str, np.ndarray] = {}
        self.host: dict[str, np.ndarray] = {}
        self.targets: np.ndarray | None = None
        self._init_params()

    # -- initialisation -------------------------------------------------------

    def _params_of(self, layer) -> dict[str, np.ndarray]:
        """Resolve the parameter dict, following split-tile sharing."""
        key = layer.op.attrs.get("param_share_with", layer.index)
        return self.params[key]

    def _init_params(self) -> None:
        for layer in self.graph:
            op = layer.op
            a = op.attrs
            if "param_share_with" in a:
                continue  # split tile sharing another layer's parameters
            if op.kind is OpKind.CONV:
                in_c = self.graph[layer.preds[0]].out_spec.channels
                shape = (a["out_channels"], in_c // a["groups"], *a["ksize"])
                p = {"w": self._weight(shape)}
                if a["bias"]:
                    p["b"] = np.zeros(a["out_channels"], dtype=np.float32)
                self.params[layer.index] = p
            elif op.kind is OpKind.LINEAR:
                in_spec = self.graph[layer.preds[0]].out_spec
                if a.get("token_wise"):
                    in_f = in_spec.shape[-1]
                else:
                    in_f = in_spec.numel // in_spec.batch
                p = {"w": self._weight((a["out_features"], in_f))}
                if a["bias"]:
                    p["b"] = np.zeros(a["out_features"], dtype=np.float32)
                self.params[layer.index] = p
            elif op.kind is OpKind.LAYERNORM:
                d = a["dim"]
                self.params[layer.index] = {
                    "gamma": np.ones(d, dtype=np.float32)
                    + 0.1 * self.rng.standard_normal(d).astype(np.float32),
                    "beta": 0.1 * self.rng.standard_normal(d).astype(np.float32),
                }
            elif op.kind is OpKind.BATCHNORM:
                c = a["channels"]
                self.params[layer.index] = {
                    "gamma": np.ones(c, dtype=np.float32)
                    + 0.1 * self.rng.standard_normal(c).astype(np.float32),
                    "beta": 0.1 * self.rng.standard_normal(c).astype(np.float32),
                }

    def _weight(self, shape: tuple[int, ...]) -> np.ndarray:
        fan_in = int(np.prod(shape[1:]))
        std = (2.0 / max(fan_in, 1)) ** 0.5
        return (std * self.rng.standard_normal(shape)).astype(np.float32)

    # -- array store ------------------------------------------------------------

    def _get(self, store: dict[str, np.ndarray], bid: str, task: str) -> np.ndarray:
        try:
            return store[bid]
        except KeyError:
            raise NumericError(
                f"task {task!r} read buffer {bid!r} which holds no live array "
                "(use-after-free or missing data movement)"
            ) from None

    def on_free(self, bid: str) -> None:
        """Engine free hook: drop the array with the buffer."""
        self.device.pop(bid, None)
        self.host.pop(bid, None)

    # -- payload construction ------------------------------------------------------

    def attach(self, schedule: Schedule) -> None:
        """Install a numpy payload on every task of ``schedule``."""
        io_map: dict[str, dict] = schedule.meta.get("io", {})
        for tid, task in schedule.tasks.items():
            io = io_map.get(tid)
            if not io:
                continue
            if io["op"] == "fwd":
                task.payload = self._make_fwd(tid, io)
            elif io["op"] == "swap_out":
                task.payload = self._make_swap(tid, io, out=True)
            elif io["op"] == "swap_in":
                task.payload = self._make_swap(tid, io, out=False)
            elif io["op"] == "bwd":
                task.payload = self._make_bwd(tid, io)

    def _make_swap(self, tid: str, io: dict, out: bool):
        src_store, dst_store = (
            (self.device, self.host) if out else (self.host, self.device)
        )

        def payload() -> None:
            dst_store[io["dst"]] = self._get(src_store, io["src"], tid).copy()

        return payload

    def _make_fwd(self, tid: str, io: dict):
        layer = self.graph[io["layer"]]

        def payload() -> None:
            xs = [self._get(self.device, bid, tid) for bid in io["ins"]]
            self.device[io["out"]] = self._forward(layer, xs)

        return payload

    def _make_bwd(self, tid: str, io: dict):
        layer = self.graph[io["layer"]]

        def payload() -> None:
            self._backward(layer, io, tid)

        return payload

    # -- op dispatch ------------------------------------------------------------------

    def _forward(self, layer, xs: list[np.ndarray]) -> np.ndarray:
        op = layer.op
        a = op.attrs
        kind = op.kind
        if kind is OpKind.INPUT:
            # deterministic batch per executor instance
            if "input" not in self.__dict__:
                self.input = self.rng.standard_normal(
                    layer.out_spec.shape).astype(np.float32)
            return self.input.copy()
        if kind is OpKind.CONV:
            p = self._params_of(layer)
            y = F.conv_forward(xs[0], p["w"], p.get("b"), a["stride"], a["pad"],
                               a["groups"])
        elif kind is OpKind.LINEAR:
            p = self._params_of(layer)
            if a.get("token_wise"):
                y = F.token_linear_forward(xs[0], p["w"], p.get("b"))
            else:
                y = F.linear_forward(xs[0], p["w"], p.get("b"))
        elif kind is OpKind.BATCHNORM:
            p = self._params_of(layer)
            y = F.batchnorm_forward(xs[0], p["gamma"], p["beta"])
        elif kind is OpKind.MATMUL:
            if a["mode"] == "scores":
                y = F.attention_scores_forward(xs[0], xs[1], a["heads"])
            else:
                y = F.attention_apply_forward(xs[0], xs[1])
        elif kind is OpKind.SOFTMAX:
            y = F.softmax_forward(xs[0])
        elif kind is OpKind.LAYERNORM:
            p = self._params_of(layer)
            y = F.layernorm_forward(xs[0], p["gamma"], p["beta"])
        elif kind is OpKind.RELU:
            y = F.relu_forward(xs[0])
        elif kind is OpKind.POOL_MAX:
            y = F.maxpool_forward(xs[0], a["ksize"], a["stride"], a["pad"])
        elif kind is OpKind.POOL_AVG:
            y = F.avgpool_forward(xs[0], a["ksize"], a["stride"], a["pad"])
        elif kind is OpKind.GLOBAL_AVG_POOL:
            y = F.global_avg_pool_forward(xs[0])
        elif kind is OpKind.ADD:
            y = F.add_forward(xs)
        elif kind is OpKind.CONCAT:
            y = F.concat_forward(xs, a["axis"])
        elif kind is OpKind.LRN:
            y = F.lrn_forward(xs[0], a["size"])
        elif kind is OpKind.UPSAMPLE:
            y = F.upsample_forward(xs[0], a["scale"])
        elif kind is OpKind.SLICE:
            sl = [slice(None)] * xs[0].ndim
            sl[a["axis"]] = slice(a["start"], a["start"] + a["size"])
            y = xs[0][tuple(sl)].copy()
        elif kind is OpKind.DROPOUT:
            # per-layer deterministic mask (a fresh run reuses it, so swap
            # round-trips stay consistent; recompute of dropout is forbidden)
            mask_rng = np.random.default_rng(hash((17, layer.index)) % 2**32)
            mask = mask_rng.random(xs[0].shape) >= a["p"]
            y = xs[0] * mask / (1.0 - a["p"])
        elif kind is OpKind.SOFTMAX_XENT:
            if self.targets is None:
                n = layer.out_spec.batch
                classes = self.graph[layer.preds[0]].out_spec.shape[1]
                self.targets = self.rng.integers(0, classes, size=n)
            y = F.softmax_xent_forward(xs[0], self.targets)
        else:  # pragma: no cover - exhaustive above
            raise NumericError(f"no numeric forward for {kind}")
        if op.fused_activation == "relu":
            y = F.relu_forward(y)
        # device tensors are contiguous (as on a real GPU); this also makes
        # reductions bit-stable across keep / swap-round-trip / recompute
        # paths (numpy's pairwise summation order depends on strides)
        return np.ascontiguousarray(y.astype(np.float32, copy=False))

    def _backward(self, layer, io: dict, tid: str) -> None:
        op = layer.op
        a = op.attrs
        if io["grad_out"] not in self.device and not any(
            self.graph[k].op.has_backward
            for k in self.graph.consumers[layer.index]
        ):
            # sink layer (the loss head): seed d(total loss)/d(loss_i) = 1
            self.device[io["grad_out"]] = np.ones(
                layer.out_spec.shape, dtype=np.float32
            )
        dy = self._get(self.device, io["grad_out"], tid)
        fm_ins = {
            m: self._get(self.device, bid, tid) for m, bid in io["fm_ins"].items()
        }
        y = (
            self._get(self.device, io["fm_out"], tid)
            if io["fm_out"] is not None else None
        )
        if op.fused_activation == "relu":
            if y is None:
                raise NumericError(f"{tid}: fused relu backward needs the output map")
            dy = F.relu_backward(dy, y)

        kind = op.kind
        wg: dict[str, np.ndarray] = {}
        if kind is OpKind.CONV:
            x = fm_ins[layer.preds[0]]
            p = self._params_of(layer)
            dx, dw, db = F.conv_backward(dy, x, p["w"], a["stride"], a["pad"],
                                         a["groups"], a["bias"])
            dxs, wg = [dx], {"w": dw} | ({"b": db} if db is not None else {})
        elif kind is OpKind.LINEAR:
            x = fm_ins[layer.preds[0]]
            p = self._params_of(layer)
            if a.get("token_wise"):
                dx, dw, db = F.token_linear_backward(dy, x, p["w"], a["bias"])
            else:
                dx, dw, db = F.linear_backward(dy, x, p["w"], a["bias"])
            dxs, wg = [dx], {"w": dw} | ({"b": db} if db is not None else {})
        elif kind is OpKind.MATMUL:
            lhs = fm_ins[layer.preds[0]]
            rhs = fm_ins[layer.preds[1]]
            if a["mode"] == "scores":
                dq, dk = F.attention_scores_backward(dy, lhs, rhs, a["heads"])
                dxs = [dq, dk]
            else:
                dscores, dv = F.attention_apply_backward(dy, lhs, rhs)
                dxs = [dscores, dv]
        elif kind is OpKind.SOFTMAX:
            dxs = [F.softmax_backward(dy, y)]
        elif kind is OpKind.LAYERNORM:
            x = fm_ins[layer.preds[0]]
            p = self._params_of(layer)
            dx, dgamma, dbeta = F.layernorm_backward(dy, x, p["gamma"])
            dxs, wg = [dx], {"gamma": dgamma, "beta": dbeta}
        elif kind is OpKind.BATCHNORM:
            x = fm_ins[layer.preds[0]]
            p = self._params_of(layer)
            dx, dgamma, dbeta = F.batchnorm_backward(dy, x, p["gamma"])
            dxs, wg = [dx], {"gamma": dgamma, "beta": dbeta}
        elif kind is OpKind.RELU:
            dxs = [F.relu_backward(dy, y)]
        elif kind is OpKind.POOL_MAX:
            x = fm_ins[layer.preds[0]]
            # undo any fused-activation masking: max-pool backward uses the
            # raw pooled output, which for pooling has no fused activation
            dxs = [F.maxpool_backward(dy, x, y, a["ksize"], a["stride"], a["pad"])]
        elif kind is OpKind.POOL_AVG:
            in_shape = self.graph[layer.preds[0]].out_spec.shape
            dxs = [F.avgpool_backward(dy, in_shape, a["ksize"], a["stride"],
                                      a["pad"])]
        elif kind is OpKind.GLOBAL_AVG_POOL:
            in_shape = self.graph[layer.preds[0]].out_spec.shape
            dxs = [F.global_avg_pool_backward(dy, in_shape)]
        elif kind is OpKind.ADD:
            dxs = F.add_backward(dy, a["n_inputs"])
        elif kind is OpKind.CONCAT:
            sizes = [self.graph[j].out_spec.shape[a["axis"]] for j in layer.preds]
            dxs = F.concat_backward(dy, sizes, a["axis"])
        elif kind is OpKind.LRN:
            x = fm_ins[layer.preds[0]]
            dxs = [F.lrn_backward(dy, x, y, a["size"])]
        elif kind is OpKind.UPSAMPLE:
            dxs = [F.upsample_backward(dy, a["scale"])]
        elif kind is OpKind.SLICE:
            in_shape = self.graph[layer.preds[0]].out_spec.shape
            dx = np.zeros(in_shape, dtype=np.float32)
            sl = [slice(None)] * dx.ndim
            sl[a["axis"]] = slice(a["start"], a["start"] + a["size"])
            dx[tuple(sl)] = dy
            dxs = [dx]
        elif kind is OpKind.DROPOUT:
            dxs = [dy * (y != 0) / (1.0 - a["p"])]
        elif kind is OpKind.SOFTMAX_XENT:
            x = fm_ins[layer.preds[0]]
            dxs = [F.softmax_xent_backward(dy, x, self.targets)]
        else:  # pragma: no cover
            raise NumericError(f"no numeric backward for {kind}")

        if wg:
            key = a.get("param_share_with", layer.index)
            acc = self.weight_grads.get(key)
            if acc is None:
                self.weight_grads[key] = wg
            else:
                for name, g in wg.items():
                    acc[name] = acc[name] + g
        # accumulate into predecessor gradient buffers (INPUT preds carry none)
        grad_targets = io["grad_ins"]
        k = 0
        for j, dx in zip(layer.preds, dxs):
            if not self.graph[j].op.has_backward:
                continue
            bid = grad_targets[k]
            k += 1
            if bid in self.device:
                self.device[bid] += dx.astype(np.float32, copy=False)
            else:
                self.device[bid] = np.ascontiguousarray(
                    dx.astype(np.float32, copy=False)
                )

def run_numeric(
    graph: NNGraph,
    classification: Classification,
    machine: MachineSpec,
    *,
    policy: SwapInPolicy = SwapInPolicy.EAGER,
    seed: int = 0,
    executor: NumericExecutor | None = None,
    durations=None,
) -> tuple[RunResult, NumericExecutor]:
    """Simulate one iteration with numeric payloads; returns the timeline and
    the executor holding the resulting weight gradients.

    ``durations`` substitutes the duration source (e.g. a fault-injected one)
    — the invariant under test is that timing never changes the numerics."""
    ex = executor or NumericExecutor(graph, seed)
    if durations is None:
        durations = CostModelDurations(graph, CostModel(machine))
    schedule = build_schedule(graph, classification, durations,
                              ScheduleOptions(policy=policy))
    ex.attach(schedule)
    engine = Engine(
        schedule,
        device_capacity=machine.usable_gpu_memory,
        host_capacity=machine.host_swap_capacity,
        free_hook=ex.on_free,
    )
    result = engine.run()
    return result, ex


def verify_against_incore(
    graph: NNGraph,
    classification: Classification,
    machine: MachineSpec,
    *,
    policy: SwapInPolicy = SwapInPolicy.EAGER,
    seed: int = 0,
    rtol: float = 0.0,
    atol: float = 0.0,
    durations=None,
) -> None:
    """Assert the plan's weight gradients equal the in-core run's, exactly by
    default.  Raises :class:`NumericError` on any mismatch.

    ``durations`` applies only to the out-of-core run — injected duration
    noise must never change data, so the comparison stays exact."""
    _, ref = run_numeric(graph, Classification.all_keep(graph), machine,
                         seed=seed)
    _, got = run_numeric(graph, classification, machine, policy=policy,
                         seed=seed, durations=durations)
    for layer_idx, grads in ref.weight_grads.items():
        other = got.weight_grads.get(layer_idx)
        if other is None:
            raise NumericError(f"plan produced no gradients for layer {layer_idx}")
        for name, g in grads.items():
            if not np.allclose(g, other[name], rtol=rtol, atol=atol):
                worst = float(np.max(np.abs(g - other[name])))
                raise NumericError(
                    f"gradient mismatch at layer {layer_idx} ({graph[layer_idx].name}) "
                    f"param {name!r}: max abs diff {worst}"
                )
