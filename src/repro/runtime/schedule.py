"""Build an executable task schedule from (graph, classification, policy).

This module encodes the paper's execution semantics:

* **Forward** (§2.1): layers run in topological order on the compute stream;
  each produces its feature map's *forward instance* ``fm{i}@f``.
* **Swap-out** (§3.1, Fig. 5): for a SWAP-classified map, a D2H copy task is
  enqueued that may start once the producing forward *and every forward
  consumer* have finished; the forward instance is freed when the copy and
  the last forward consumer are done.  Forward computation throttles itself
  against outstanding swap-outs purely through memory gating.
* **Recompute** (§3.2, Figs. 8/9): a RECOMPUTE-classified map's forward
  instance is freed after its last forward use; when a backward task needs
  it, a recompute task (cost = the layer's forward time) is inserted on the
  compute stream immediately before the needing task, with its input chain
  resolved *recursively* (a recomputed map whose inputs were also discarded
  triggers their swap-in/recompute first, exactly as the paper describes).
* **Backward** (§2.1): layers run in reverse topological order; the backward
  task of layer *i* reads the gradient buffer ``gr{i}`` (written by its
  consumers' backward tasks, freed right after — the paper's "lifetimes of
  gradient data tend to be short") and whichever feature maps its op needs
  (input maps, and/or its own output).  Swap-ins restoring those maps are
  enqueued on the H2D stream in first-need order, and their start condition
  is the :class:`~repro.runtime.plan.SwapInPolicy`.
* **Update**: a single parameter-update task closes the iteration.

Each logical feature map can appear as up to three single-lifetime buffer
instances: ``fm{i}@f`` (forward), ``fm{i}@b`` (swapped back in), ``fm{i}@r``
(recomputed).  A buffer is freed when its producer and every reader have
completed, which the builder derives exactly from the reader sets it
collects — the engine then enforces residency, so any liveness bug here
fails loudly as a ``ScheduleError`` rather than silently mis-simulating.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ScheduleError
from repro.graph import NNGraph
from repro.graph.ops import OpKind
from repro.gpusim import BufferSpec, Schedule, StreamName, Task, TaskKind
from repro.gpusim.allocator import round_size
from repro.gpusim.vecengine import KeepFlip
from repro.runtime.durations import DurationProvider
from repro.runtime.plan import Classification, MapClass, SwapInPolicy


@dataclass(frozen=True)
class ScheduleOptions:
    """Builder knobs.

    Attributes:
        policy: swap-in start policy (see :class:`SwapInPolicy`).
        include_update: append the optimizer-update task (on by default;
            benchmarks measure full iterations like the paper).
        headroom: bytes that must stay free when an EAGER swap-in issues.
            ``None`` (default) computes the reserve automatically as the
            largest single allocation any backward-phase compute task makes —
            the profiled bound that keeps prefetching from starving
            computation (§4.3: "the amount of free memory ... can be judged
            from profiling result").
        forward_refetch_gap: extension beyond the paper (§3.1 keeps a
            swapped map on the GPU until its *last* forward consumer, which
            pins long skip connections for the whole forward pass).  When
            set, a swapped map whose consecutive forward consumers are more
            than this many layers apart is freed after the earlier group and
            swapped back in just before the later one — U-Net-style skips
            then stop dominating the forward footprint.  ``None`` (default)
            reproduces the paper's conservative rule.
    """

    policy: SwapInPolicy = SwapInPolicy.EAGER
    include_update: bool = True
    headroom: int | None = None
    forward_refetch_gap: int | None = None


@dataclass(slots=True)
class _BufferDraft:
    bid: str
    nbytes: int
    alloc_by: str | None
    host: bool = False
    writers: set[str] = field(default_factory=set)
    readers: set[str] = field(default_factory=set)

    def to_spec(self) -> BufferSpec:
        return BufferSpec(
            bid=self.bid,
            nbytes=self.nbytes,
            alloc_by=self.alloc_by,
            free_after=frozenset(self.writers | self.readers),
            host=self.host,
        )


@dataclass(slots=True)
class _TaskDraft:
    tid: str
    kind: TaskKind
    stream: StreamName
    duration: float
    layer: int
    deps: set[str] = field(default_factory=set)
    start_deps: set[str] = field(default_factory=set)
    reads: set[str] = field(default_factory=set)
    scratch_bytes: int = 0
    memory_gated: bool = True
    headroom: int = 0
    alloc_on_ready: bool = False
    #: io annotation consumed by the numeric backend: input/output instance
    #: ids and the map/gradient ids involved.
    io: dict = field(default_factory=dict)

    def to_task(self) -> Task:
        return Task(
            tid=self.tid,
            kind=self.kind,
            stream=self.stream,
            duration=self.duration,
            layer=self.layer,
            deps=tuple(self.deps),
            start_deps=tuple(self.start_deps),
            reads=tuple(self.reads),
            scratch_bytes=self.scratch_bytes,
            memory_gated=self.memory_gated,
            headroom=self.headroom,
            alloc_on_ready=self.alloc_on_ready,
        )


class ScheduleBuilder:
    """Single-use builder; call :meth:`build`."""

    def __init__(
        self,
        graph: NNGraph,
        classification: Classification,
        durations: DurationProvider,
        options: ScheduleOptions | None = None,
        *,
        validate: bool = True,
    ) -> None:
        self.graph = graph
        self.cls = classification
        self.dur = durations
        self.opt = options or ScheduleOptions()
        if validate:
            classification.validate(graph)

        self._tasks: dict[str, _TaskDraft] = {}
        self._buffers: dict[str, _BufferDraft] = {}
        self._compute_q: list[str] = []
        self._h2d_q: list[str] = []
        self._d2h_q: list[str] = []
        #: map id -> (instance buffer id, producing task id) currently
        #: readable by *forward* tasks (advances across re-fetch segments)
        self._fwd_inst: dict[int, tuple[str, str]] = {}
        #: swap maps with forward re-fetch: remaining consumer segments
        #: (each a list of layer indices, headed by the segment's first
        #: consumer) and the consumers belonging to segment 0
        self._fwd_segments: dict[int, list[list[int]]] = {}
        self._seg0_consumers: dict[int, list[int]] = {}
        #: forward re-fetch SIs that read a host buffer created later (the
        #: SO task block runs after the forward loop)
        self._pending_host_readers: dict[int, set[str]] = {}
        #: map id -> (instance buffer id, producing task id) available for
        #: backward reads at the current point of backward construction
        self._resident: dict[int, tuple[str, str]] = {}
        #: swap-in task id -> tid of the first compute task that reads the
        #: restored instance (for NAIVE / SUPERNEURONS start triggers)
        self._si_first_reader: dict[str, str] = {}

    # -- small helpers -----------------------------------------------------------

    def _add_task(self, draft: _TaskDraft) -> _TaskDraft:
        if draft.tid in self._tasks:
            raise ScheduleError(f"duplicate task {draft.tid!r}")
        self._tasks[draft.tid] = draft
        if draft.stream is StreamName.COMPUTE:
            self._compute_q.append(draft.tid)
        elif draft.stream is StreamName.H2D:
            self._h2d_q.append(draft.tid)
        else:
            self._d2h_q.append(draft.tid)
        return draft

    def _add_buffer(self, draft: _BufferDraft) -> _BufferDraft:
        if draft.bid in self._buffers:
            raise ScheduleError(f"duplicate buffer {draft.bid!r}")
        self._buffers[draft.bid] = draft
        return draft

    def _read(self, task: _TaskDraft, bid: str, producer: str | None) -> None:
        task.reads.add(bid)
        self._buffers[bid].readers.add(task.tid)
        if producer is not None:
            task.deps.add(producer)

    # -- forward phase ---------------------------------------------------------------

    def _plan_forward_segments(self) -> None:
        """Split each swapped map's forward consumers into residency
        segments when ``forward_refetch_gap`` is enabled (extension beyond
        the paper, see :class:`ScheduleOptions`)."""
        gap = self.opt.forward_refetch_gap
        g = self.graph
        for i in g.classifiable_maps():
            if self.cls.of(i) is not MapClass.SWAP:
                continue
            cons = list(g.consumers[i])
            if gap is None or len(cons) == 0:
                self._seg0_consumers[i] = cons
                continue
            seg0: list[int] = []
            later: list[list[int]] = []
            prev = i  # residency starts at the producer
            current = seg0
            for c in cons:
                if c - prev > gap:
                    current = []
                    later.append(current)
                current.append(c)
                prev = c
            self._seg0_consumers[i] = seg0
            if later:
                self._fwd_segments[i] = later

    def _begin_refetch_segments(self, layer_index: int) -> None:
        """Create the forward swap-in for every map whose next residency
        segment starts at ``layer_index`` (called before that layer's F
        task is built)."""
        for j, segments in list(self._fwd_segments.items()):
            if not segments or segments[0][0] != layer_index:
                continue
            seg = segments.pop(0)
            if not segments:
                del self._fwd_segments[j]
            s_idx = len([t for t in self._tasks if t.startswith(f"SI{j}~f")]) + 1
            si = _TaskDraft(
                tid=f"SI{j}~f{s_idx}",
                kind=TaskKind.SWAP_IN,
                stream=StreamName.H2D,
                duration=self.dur.swap_in(j),
                layer=j,
            )
            si.deps.add(f"SO{j}")
            bid = f"fm{j}@f{s_idx}"
            si.io = {"op": "swap_in", "layer": j, "src": f"fm{j}@host",
                     "dst": bid}
            self._add_task(si)
            # the host buffer is created with the SO block after the forward
            # loop; register this reader then
            si.reads.add(f"fm{j}@host")
            self._pending_host_readers.setdefault(j, set()).add(si.tid)
            inst = self._add_buffer(
                _BufferDraft(bid, self.graph[j].out_spec.nbytes,
                             alloc_by=si.tid)
            )
            inst.writers.add(si.tid)
            self._fwd_inst[j] = (bid, si.tid)

    def _build_forward(self) -> None:
        g = self.graph
        self._plan_forward_segments()
        for layer in g:
            i = layer.index
            self._begin_refetch_segments(i)
            is_input = layer.op.kind is OpKind.INPUT
            f = _TaskDraft(
                tid=f"F{i}",
                kind=TaskKind.FWD,
                # the mini-batch upload occupies the H2D copy engine
                stream=StreamName.H2D if is_input else StreamName.COMPUTE,
                duration=(
                    self.dur.input_load(i) if is_input else self.dur.fwd(i)
                ),
                layer=i,
                scratch_bytes=layer.op.workspace_bytes,
            )
            f.io = {"op": "fwd", "layer": i, "ins": [], "out": f"fm{i}@f"}
            self._add_task(f)
            out = self._add_buffer(
                _BufferDraft(f"fm{i}@f", layer.out_spec.nbytes, alloc_by=f.tid)
            )
            out.writers.add(f.tid)
            self._fwd_inst[i] = (f"fm{i}@f", f.tid)
            for j in layer.preds:
                bid, producer = self._fwd_inst[j]
                self._read(f, bid, producer)
                f.io["ins"].append(bid)

        # classification effects on forward instances
        for i in g.classifiable_maps():
            cls = self.cls.of(i)
            if cls is not MapClass.SWAP:
                continue
            layer = g[i]
            so = _TaskDraft(
                tid=f"SO{i}",
                kind=TaskKind.SWAP_OUT,
                stream=StreamName.D2H,
                duration=self.dur.swap_out(i),
                layer=i,
            )
            # the copy may start once the producer and the consumers of the
            # first residency segment are done (all consumers when forward
            # re-fetch is off — the paper's §3.1 rule)
            so.deps.add(f"F{i}")
            for k in self._seg0_consumers.get(i, g.consumers[i]):
                so.deps.add(f"F{k}")
            so.io = {"op": "swap_out", "layer": i, "src": f"fm{i}@f",
                     "dst": f"fm{i}@host"}
            self._add_task(so)
            self._read(so, f"fm{i}@f", None)
            host = self._add_buffer(
                _BufferDraft(f"fm{i}@host", layer.out_spec.nbytes,
                             alloc_by=so.tid, host=True)
            )
            host.writers.add(so.tid)
            host.readers |= self._pending_host_readers.get(i, set())
        # D2H queue order = forward (producer) order, already appended in
        # ascending map order which matches completion order for chains; for
        # branches FIFO order by map index is the Chainer-pool behaviour.

    # -- backward phase -----------------------------------------------------------------

    def _ensure_available(self, m: int, for_task: _TaskDraft) -> None:
        """Make feature map ``m`` resident for ``for_task`` (and register the
        read).  May create swap-in / recompute tasks, recursively."""
        hit = self._resident.get(m)
        if hit is not None:
            bid, producer = hit
            self._read(for_task, bid, producer)
            return
        cls = self.cls.get(m)
        if cls is None:
            # A map with no *direct* backward users can still be needed as an
            # input of a recompute chain (e.g. the pre-add BN output when the
            # residual add is recomputed).  Such maps are not part of the
            # classification; regenerate them if possible, otherwise retain
            # their forward instance (registering the read extends its
            # lifetime exactly to this use).
            if self.graph[m].op.recomputable:
                cls = MapClass.RECOMPUTE
            else:
                self._resident[m] = (f"fm{m}@f", f"F{m}")
                self._read(for_task, f"fm{m}@f", f"F{m}")
                return
        if cls is MapClass.SWAP:
            si = _TaskDraft(
                tid=f"SI{m}",
                kind=TaskKind.SWAP_IN,
                stream=StreamName.H2D,
                duration=self.dur.swap_in(m),
                layer=m,
            )
            si.deps.add(f"SO{m}")
            si.io = {"op": "swap_in", "layer": m, "src": f"fm{m}@host",
                     "dst": f"fm{m}@b"}
            self._add_task(si)
            self._read(si, f"fm{m}@host", f"SO{m}")
            inst = self._add_buffer(
                _BufferDraft(f"fm{m}@b", self.graph[m].out_spec.nbytes,
                             alloc_by=si.tid)
            )
            inst.writers.add(si.tid)
            self._si_first_reader[si.tid] = for_task.tid
            self._resident[m] = (inst.bid, si.tid)
            self._read(for_task, inst.bid, si.tid)
            return
        # RECOMPUTE: resolve the input chain first (recursive), then re-run
        # the producing forward computation on the compute stream.
        layer = self.graph[m]
        r = _TaskDraft(
            tid=f"R{m}",
            kind=TaskKind.RECOMPUTE,
            stream=StreamName.COMPUTE,
            duration=self.dur.fwd(m),
            layer=m,
            scratch_bytes=layer.op.workspace_bytes,
        )
        r.io = {"op": "fwd", "layer": m, "ins": [], "out": f"fm{m}@r"}
        inst = self._add_buffer(
            _BufferDraft(f"fm{m}@r", layer.out_spec.nbytes, alloc_by=r.tid)
        )
        inst.writers.add(r.tid)
        # register before resolving inputs so diamond-shaped chains reuse it;
        # cycles are impossible because preds are strictly earlier layers
        self._resident[m] = (inst.bid, r.tid)
        for j in layer.preds:
            self._ensure_available(j, r)
            r.io["ins"].append(self._resident[j][0])
        # queue the recompute *before* the needing task: the needing task has
        # not been queued yet (builder appends it after its needs), so a
        # plain append preserves "immediately before first use"
        self._add_task(r)
        self._read(for_task, inst.bid, r.tid)

    def _build_backward(self) -> None:
        g = self.graph
        # seed residency with KEEP maps (their forward instances survive into
        # backward; reader registration extends their lifetime exactly)
        for i in g.classifiable_maps():
            if self.cls.of(i) is MapClass.KEEP:
                self._resident[i] = (f"fm{i}@f", f"F{i}")

        grad_first_writer: dict[int, str] = {}
        for i in range(len(g)):
            cons = [k for k in g.consumers[i] if g[k].op.has_backward]
            if cons:
                grad_first_writer[i] = f"B{max(cons)}"

        for layer in reversed(g.layers):
            i = layer.index
            if not layer.op.has_backward:
                continue
            b = _TaskDraft(
                tid=f"B{i}",
                kind=TaskKind.BWD,
                stream=StreamName.COMPUTE,
                duration=self.dur.bwd(i),
                layer=i,
                scratch_bytes=layer.op.workspace_bytes,
            )
            b.io = {"op": "bwd", "layer": i, "grad_out": f"gr{i}",
                    "grad_ins": [], "fm_ins": {}, "fm_out": None}

            # gradient w.r.t. this layer's output: written by consumers'
            # backward tasks (or self-seeded at the loss head)
            first_writer = grad_first_writer.get(i, b.tid)
            if f"gr{i}" not in self._buffers:
                self._add_buffer(
                    _BufferDraft(f"gr{i}", layer.out_spec.nbytes,
                                 alloc_by=first_writer)
                )
            gbuf = self._buffers[f"gr{i}"]
            gbuf.readers.add(b.tid)
            for k in g.consumers[i]:
                if g[k].op.has_backward:
                    b.deps.add(f"B{k}")
            if first_writer == b.tid:
                gbuf.writers.add(b.tid)
            else:
                b.reads.add(f"gr{i}")

            # gradients this backward produces for its predecessors
            for j in layer.preds:
                if not g[j].op.has_backward:
                    continue  # no gradient flows into INPUT
                if f"gr{j}" not in self._buffers:
                    self._add_buffer(
                        _BufferDraft(f"gr{j}", g[j].out_spec.nbytes,
                                     alloc_by=grad_first_writer[j])
                    )
                self._buffers[f"gr{j}"].writers.add(b.tid)
                b.io["grad_ins"].append(f"gr{j}")

            # feature maps the backward computation reads
            needed: list[int] = []
            if layer.op.bwd_needs_input:
                needed.extend(layer.preds)
            if layer.op.bwd_needs_output:
                needed.append(i)
            for m in needed:
                self._ensure_available(m, b)
                if m == i:
                    b.io["fm_out"] = self._resident[m][0]
                else:
                    b.io["fm_ins"][m] = self._resident[m][0]

            self._add_task(b)

        if self.opt.include_update:
            upd = _TaskDraft(
                tid="UPD",
                kind=TaskKind.UPDATE,
                stream=StreamName.COMPUTE,
                duration=self.dur.update(),
                layer=-1,
            )
            if self._compute_q:
                upd.deps.add(self._compute_q[-1])
            self._add_task(upd)
            if "params" in self._buffers:
                self._read(upd, "params", None)
                self._read(upd, "pgrads", None)

    # -- policies & finalisation -------------------------------------------------------

    def _apply_swap_in_policy(self) -> None:
        policy = self.opt.policy

        # determine each swap-in's first reader by *position* in the compute
        # queue, not by creation order: a recompute task created later can be
        # queued earlier than the backward task that requested the swap-in
        # (and may itself read the restored instance), and a trigger derived
        # from the later task would deadlock against it
        si_by_out: dict[str, str] = {}
        for tid, t in self._tasks.items():
            if t.kind is TaskKind.SWAP_IN:
                si_by_out[t.io["dst"]] = tid
        first_reader: dict[str, str] = {}
        for tid in self._compute_q:
            for bid in self._tasks[tid].reads:
                si = si_by_out.get(bid)
                if si is not None and si not in first_reader:
                    first_reader[si] = tid

        pos = {tid: n for n, tid in enumerate(self._compute_q)}

        # order the H2D queue by when each restore is first *needed*, not by
        # when it was created: a recompute chain can request its swap-ins in
        # graph order while consuming them in chain order, and a FIFO queue
        # in creation order would then deadlock naive triggers (the head
        # swap-in waiting on a computation that needs a swap-in queued
        # behind it) or prefetch in the wrong order under the eager policy
        def need_position(tid: str) -> int:
            reader = first_reader.get(tid)
            p = pos.get(reader) if reader is not None else None
            return p if p is not None else -1  # input loads and the like first

        self._h2d_q.sort(key=need_position)

        if policy is SwapInPolicy.EAGER:
            headroom = self.opt.headroom
            if headroom is None:
                headroom = self._auto_headroom()
            for tid in self._si_first_reader:
                self._tasks[tid].headroom = headroom
            return

        for si_tid, reader in first_reader.items():
            si = self._tasks[si_tid]
            p = pos.get(reader)
            if p is None or p == 0:
                continue  # reader is the very first compute task: no trigger
            if policy is SwapInPolicy.NAIVE:
                si.start_deps.add(self._compute_q[p - 1])
            else:  # SUPERNEURONS: nearest preceding conv backward, ungated
                trigger = self._compute_q[p - 1]
                for q in range(p - 1, -1, -1):
                    t = self._tasks[self._compute_q[q]]
                    if (t.kind is TaskKind.BWD
                            and self.graph[t.layer].op.kind is OpKind.CONV):
                        trigger = t.tid
                        break
                si.start_deps.add(trigger)
                si.memory_gated = False
                si.alloc_on_ready = True

    def _auto_headroom(self) -> int:
        """Largest single allocation any backward-phase compute task makes:
        an eager swap-in always leaves room for the next computation."""
        alloc_by: dict[str, int] = {}
        for buf in self._buffers.values():
            if buf.alloc_by is not None and not buf.host:
                alloc_by[buf.alloc_by] = alloc_by.get(buf.alloc_by, 0) + round_size(buf.nbytes)
        worst = 0
        for t in self._tasks.values():
            if t.stream is StreamName.COMPUTE and t.kind in (
                TaskKind.BWD, TaskKind.RECOMPUTE, TaskKind.UPDATE
            ):
                worst = max(worst, alloc_by.get(t.tid, 0) + round_size(t.scratch_bytes))
        return worst

    def build_raw(
        self,
    ) -> tuple[dict[str, _TaskDraft], dict[StreamName, list[str]],
               dict[str, _BufferDraft]]:
        """Construct the schedule in *draft* form: (tasks, queues, buffers).

        This is the search hot path — :class:`repro.gpusim.FastEngine`
        consumes the drafts directly, skipping ``Task``/``BufferSpec``
        finalisation and structural validation.  :meth:`build` layers those
        on top, so both paths describe the exact same schedule.
        """
        # persistent parameter and parameter-gradient storage (kept on GPU
        # for the whole run, per §4.1.1)
        params = self.graph.total_param_bytes
        if params:
            self._add_buffer(_BufferDraft("params", params, alloc_by=None))
            self._add_buffer(_BufferDraft("pgrads", params, alloc_by=None))

        self._build_forward()
        self._build_backward()
        self._apply_swap_in_policy()
        return self._tasks, {
            StreamName.COMPUTE: self._compute_q,
            StreamName.H2D: self._h2d_q,
            StreamName.D2H: self._d2h_q,
        }, self._buffers

    def build(self) -> Schedule:
        """Construct and return the validated schedule."""
        self.build_raw()

        tasks = {tid: d.to_task() for tid, d in self._tasks.items()}
        # carry io annotations for the numeric backend
        io = {tid: d.io for tid, d in self._tasks.items() if d.io}
        schedule = Schedule(
            tasks=tasks,
            queues={
                StreamName.COMPUTE: self._compute_q,
                StreamName.H2D: self._h2d_q,
                StreamName.D2H: self._d2h_q,
            },
            buffers={bid: d.to_spec() for bid, d in self._buffers.items()},
            meta={
                "graph": self.graph.name,
                "policy": self.opt.policy.value,
                "classification_counts": {
                    k.value: v for k, v in self.cls.counts().items()
                },
                "io": io,
            },
        )
        schedule.validate()
        return schedule


def build_schedule(
    graph: NNGraph,
    classification: Classification,
    durations: DurationProvider,
    options: ScheduleOptions | None = None,
) -> Schedule:
    """Convenience wrapper around :class:`ScheduleBuilder`."""
    return ScheduleBuilder(graph, classification, durations, options).build()


def _copy_task(t: _TaskDraft) -> _TaskDraft:
    """Shallow task copy with private ``deps``/``reads`` sets (the fields a
    keep-flip rewires); everything else is shared with the base draft."""
    nt = _TaskDraft(
        tid=t.tid, kind=t.kind, stream=t.stream, duration=t.duration,
        layer=t.layer, scratch_bytes=t.scratch_bytes,
        memory_gated=t.memory_gated, headroom=t.headroom,
        alloc_on_ready=t.alloc_on_ready,
    )
    nt.deps = set(t.deps)
    nt.start_deps = t.start_deps
    nt.reads = set(t.reads)
    nt.io = t.io
    return nt


def apply_keep_delta(
    base_tasks: dict[str, _TaskDraft],
    base_queues: dict[StreamName, list[str]],
    base_buffers: dict[str, _BufferDraft],
    keeps,
) -> tuple[dict[str, _TaskDraft], dict[StreamName, list[str]],
           dict[str, _BufferDraft]]:
    """Draft for ``all-swap + {m: KEEP for m in keeps}`` by *patching* the
    all-swap base draft instead of rebuilding it — the classifier's search
    hot path, where candidates differ from the base by a handful of flips.

    A keep↔swap flip is local under the builder's semantics (with forward
    re-fetch disabled, which the caller must guarantee):

    * the compute queue never changes — keeping a map removes only its
      ``SO{m}``/``SI{m}`` transfer tasks and rewires the backward readers
      of ``fm{m}@b`` onto the surviving forward instance ``fm{m}@f``;
    * the H2D queue order is by first-need *compute position*, which a
      removal leaves intact (Python's sort is stable and no other swap-in's
      first reader moves), and the D2H queue is in forward producer order —
      both reduce to "base order minus the removed tasks";
    * the EAGER auto-headroom reads only backward *compute* allocations
      (gradients, recompute outputs, scratch), none of which a keep/swap
      flip touches, so every surviving swap-in keeps its headroom.

    The result is task-for-task identical to a fresh
    ``ScheduleBuilder(...).build_raw()`` for the same classification —
    ``tests/test_search_pruning.py`` asserts exact draft equality across
    the model zoo.  The base draft is never mutated: patched tasks/buffers
    are copies, untouched ones are shared (callers must treat drafts as
    immutable, which the engines do).  Stale ``io`` annotations of patched
    tasks still reference the removed instances; only the draft-replay
    engines consume delta drafts and they never read ``io``.
    """
    tasks = dict(base_tasks)
    buffers = dict(base_buffers)
    removed: set[str] = set()
    patched_tasks: dict[str, _TaskDraft] = {}
    for m in keeps:
        so, si = f"SO{m}", f"SI{m}"
        fwd_bid, host_bid, back_bid = f"fm{m}@f", f"fm{m}@host", f"fm{m}@b"
        if so not in tasks:
            raise ScheduleError(
                f"apply_keep_delta: map {m} is not swapped in the base draft"
            )
        del tasks[so]
        del buffers[host_bid]
        removed.add(so)
        fb = buffers[fwd_bid]
        if fb is base_buffers[fwd_bid]:
            nb = _BufferDraft(fb.bid, fb.nbytes, alloc_by=fb.alloc_by,
                              host=fb.host)
            nb.writers = set(fb.writers)
            nb.readers = set(fb.readers)
            buffers[fwd_bid] = fb = nb
        fb.readers.discard(so)
        if si not in tasks:
            continue  # no backward consumer: nothing reads the kept instance
        del tasks[si]
        removed.add(si)
        bb = buffers.pop(back_bid)
        for rid in bb.readers:
            rt = patched_tasks.get(rid)
            if rt is None:
                rt = patched_tasks[rid] = _copy_task(tasks[rid])
                tasks[rid] = rt
            rt.deps.discard(si)
            rt.deps.add(f"F{m}")
            rt.reads.discard(back_bid)
            rt.reads.add(fwd_bid)
            fb.readers.add(rid)
    queues = {
        StreamName.COMPUTE: base_queues[StreamName.COMPUTE],
        StreamName.H2D: [t for t in base_queues[StreamName.H2D]
                         if t not in removed],
        StreamName.D2H: [t for t in base_queues[StreamName.D2H]
                         if t not in removed],
    }
    return tasks, queues, buffers


def keep_flip_specs(
    base_tasks: dict[str, _TaskDraft],
    base_buffers: dict[str, _BufferDraft],
    maps,
) -> tuple[KeepFlip, ...]:
    """Declarative :class:`~repro.gpusim.vecengine.KeepFlip` descriptors for
    keep↔swap flips against an all-swap base draft — the exact edge set
    :func:`apply_keep_delta` rewires, so the lockstep vector engine's
    conditional tables describe the same candidate family the event engines
    replay (``tests/test_vecengine.py`` fuzzes the agreement).

    Requires a base built without forward re-fetch: re-fetch swap-ins read
    the host instance a keep flip deletes, which is not a pure edge
    condition.
    """
    specs: list[KeepFlip] = []
    for m in maps:
        so, si = f"SO{m}", f"SI{m}"
        if so not in base_tasks:
            raise ScheduleError(
                f"keep_flip_specs: map {m} is not swapped in the base draft"
            )
        host = base_buffers[f"fm{m}@host"]
        if any(r != si for r in host.readers):
            raise ScheduleError(
                f"keep_flip_specs: map {m} has forward re-fetch readers"
            )
        has_si = si in base_tasks
        specs.append(KeepFlip(
            map_id=m,
            swap_out=so,
            swap_in=si if has_si else None,
            fwd_buffer=f"fm{m}@f",
            fwd_producer=f"F{m}",
            host_buffer=f"fm{m}@host",
            back_buffer=f"fm{m}@b" if has_si else None,
            rewired_readers=(
                tuple(sorted(base_buffers[f"fm{m}@b"].readers))
                if has_si else ()
            ),
        ))
    return tuple(specs)


def apply_recompute_delta(
    base_tasks: dict[str, _TaskDraft],
    base_queues: dict[StreamName, list[str]],
    base_buffers: dict[str, _BufferDraft],
    graph: NNGraph,
    durations: DurationProvider,
    options: ScheduleOptions | None,
    keeps,
    recomputes,
) -> tuple[dict[str, _TaskDraft], dict[StreamName, list[str]],
           dict[str, _BufferDraft]]:
    """Draft for ``all-swap + keeps + {m: RECOMPUTE for m in recomputes}`` by
    patching the keep-delta draft — the step-2 search hot path, where every
    r(X) probe differs from the step-1 plan by a handful of recompute flips.

    ``base_*`` must be the output of ``apply_keep_delta(all_swap_base,
    keeps)`` for the same ``keeps`` (the all-swap base itself when ``keeps``
    is empty), built without forward re-fetch (``forward_refetch_gap`` must
    be ``None`` — re-fetch segments splice extra forward swap-ins whose
    interaction with recompute chains is not local).

    A swap→recompute flip is *suffix-local in the backward pass*, but not a
    pure task removal like a keep flip: the recompute subtree must be
    spliced onto the compute stream (recursively re-running discarded
    producers, exactly like ``ScheduleBuilder._ensure_available``), the
    ``SO{m}``/``SI{m}`` transfer pair dropped, and the swap-in policy
    repaired (H2D first-need order, EAGER auto-headroom — recompute tasks
    allocate — and NAIVE/SUPERNEURONS triggers, which reference compute
    positions that the spliced R tasks shift).  Rather than reasoning about
    each interaction separately, this replays the builder's backward
    *resolution* pass over the unchanged backward task order, creating
    draft objects only where the resolution differs from the base — the
    construction order, and therefore every order-sensitive tie-break
    (stable H2D sort, resident-chain reuse), is the fresh builder's by
    construction.  The result is task-for-task identical to a fresh
    ``ScheduleBuilder(...).build_raw()`` for the same classification —
    ``tests/test_step2_incremental.py`` asserts exact draft equality across
    the model zoo.  Like :func:`apply_keep_delta`, the base draft is never
    mutated and stale ``io`` annotations of patched tasks are tolerated
    (draft-replay engines never read ``io``).
    """
    opt = options or ScheduleOptions()
    if opt.forward_refetch_gap is not None:
        raise ScheduleError(
            "apply_recompute_delta requires forward_refetch_gap=None"
        )
    rec_set = set(recomputes)
    keep_set = set(keeps)
    if rec_set & keep_set:
        raise ScheduleError(
            f"maps {sorted(rec_set & keep_set)} are both kept and recomputed"
        )
    tasks = dict(base_tasks)
    buffers = dict(base_buffers)
    removed: set[str] = set()

    def patch_task(tid: str) -> _TaskDraft:
        t = tasks[tid]
        if tid in base_tasks and t is base_tasks[tid]:
            t = tasks[tid] = _copy_task(t)
        return t

    def patch_buffer(bid: str) -> _BufferDraft:
        b = buffers[bid]
        if bid in base_buffers and b is base_buffers[bid]:
            nb = _BufferDraft(b.bid, b.nbytes, alloc_by=b.alloc_by,
                              host=b.host)
            nb.writers = set(b.writers)
            nb.readers = set(b.readers)
            buffers[bid] = b = nb
        return b

    # -- forward patch: a RECOMPUTE map has no swap-out (and thus no host
    # instance and no backward swap-in); its forward instance is freed after
    # its last forward consumer, exactly like a keep flip minus the keep
    for m in sorted(rec_set):
        so, si = f"SO{m}", f"SI{m}"
        if so not in tasks:
            raise ScheduleError(
                f"apply_recompute_delta: map {m} is not swapped in the base "
                "draft"
            )
        del tasks[so]
        del buffers[f"fm{m}@host"]
        removed.add(so)
        fb = patch_buffer(f"fm{m}@f")
        fb.readers.discard(so)
        if si in tasks:
            del tasks[si]
            del buffers[f"fm{m}@b"]
            removed.add(si)

    # -- backward resolution replay (see ScheduleBuilder._ensure_available):
    # walk the unchanged backward compute order, tracking which map instance
    # is resident at each point; only resolutions that differ from the base
    # (recompute chains and their inputs) create or patch draft objects
    classifiable = set(graph.classifiable_maps())
    resident: dict[int, tuple[str, str]] = {
        m: (f"fm{m}@f", f"F{m}") for m in keep_set
    }
    si_order: list[str] = []      # swap-in creation order of the fresh build
    pending_r: list[str] = []     # R tasks to splice before the current B
    r_headroom = 0                # largest recompute-task allocation

    def make_recompute(m: int) -> tuple[str, str]:
        nonlocal r_headroom
        layer = graph[m]
        r = _TaskDraft(
            tid=f"R{m}",
            kind=TaskKind.RECOMPUTE,
            stream=StreamName.COMPUTE,
            duration=durations.fwd(m),
            layer=m,
            scratch_bytes=layer.op.workspace_bytes,
        )
        r.io = {"op": "fwd", "layer": m, "ins": [], "out": f"fm{m}@r"}
        inst = _BufferDraft(f"fm{m}@r", layer.out_spec.nbytes, alloc_by=r.tid)
        inst.writers.add(r.tid)
        buffers[inst.bid] = inst
        r_headroom = max(
            r_headroom, round_size(inst.nbytes) + round_size(r.scratch_bytes)
        )
        # register before resolving inputs so diamond-shaped chains reuse it
        resident[m] = (inst.bid, r.tid)
        for j in layer.preds:
            bid, producer = resolve(j)
            r.reads.add(bid)
            r.deps.add(producer)
            patch_buffer(bid).readers.add(r.tid)
            r.io["ins"].append(bid)
        tasks[r.tid] = r
        pending_r.append(r.tid)
        return resident[m]

    def resolve(m: int) -> tuple[str, str]:
        hit = resident.get(m)
        if hit is not None:
            return hit
        if m in rec_set:
            return make_recompute(m)
        if m in classifiable:  # still SWAP: the base swap-in survives
            si_order.append(f"SI{m}")
            resident[m] = (f"fm{m}@b", f"SI{m}")
            return resident[m]
        if graph[m].op.recomputable:  # unclassified chain input, regenerable
            return make_recompute(m)
        resident[m] = (f"fm{m}@f", f"F{m}")  # retain the forward instance
        return resident[m]

    new_compute: list[str] = []
    for tid in base_queues[StreamName.COMPUTE]:
        t = base_tasks[tid]
        if t.kind is TaskKind.BWD:
            layer = graph[t.layer]
            needed: list[int] = []
            if layer.op.bwd_needs_input:
                needed.extend(layer.preds)
            if layer.op.bwd_needs_output:
                needed.append(t.layer)
            for m in needed:
                bid, producer = resolve(m)
                if m in rec_set:
                    bt = patch_task(tid)
                    bt.reads.discard(f"fm{m}@b")
                    bt.deps.discard(f"SI{m}")
                    bt.reads.add(bid)
                    bt.deps.add(producer)
                    buffers[bid].readers.add(tid)
            if pending_r:
                new_compute.extend(pending_r)
                pending_r.clear()
        new_compute.append(tid)

    # -- swap-in policy repair (see ScheduleBuilder._apply_swap_in_policy):
    # recompute splices shift compute positions and can first-read restored
    # instances earlier than the backward task that requested them
    si_by_out: dict[str, str] = {}
    for tid, t in tasks.items():
        if t.kind is TaskKind.SWAP_IN:
            si_by_out[t.io["dst"]] = tid
    first_reader: dict[str, str] = {}
    for tid in new_compute:
        for bid in tasks[tid].reads:
            si = si_by_out.get(bid)
            if si is not None and si not in first_reader:
                first_reader[si] = tid
    pos = {tid: n for n, tid in enumerate(new_compute)}

    def need_position(tid: str) -> int:
        reader = first_reader.get(tid)
        p = pos.get(reader) if reader is not None else None
        return p if p is not None else -1

    # fresh creation order: input loads (forward order), then swap-ins in
    # resolution order — the stable sort's tie-break, like the builder's
    new_h2d = [tid for tid in base_queues[StreamName.H2D]
               if tid not in removed
               and base_tasks[tid].kind is not TaskKind.SWAP_IN]
    new_h2d += si_order
    new_h2d.sort(key=need_position)

    if opt.policy is SwapInPolicy.EAGER:
        if opt.headroom is None and si_by_out:
            base_h = max(
                (t.headroom for t in base_tasks.values()
                 if t.kind is TaskKind.SWAP_IN),
                default=0,
            )
            headroom = max(base_h, r_headroom)
            if headroom != base_h:
                for tid in si_by_out.values():
                    patch_task(tid).headroom = headroom
    else:
        for si_tid, reader in first_reader.items():
            p = pos.get(reader)
            desired: set[str] = set()
            if p is not None and p > 0:
                if opt.policy is SwapInPolicy.NAIVE:
                    desired = {new_compute[p - 1]}
                else:  # SUPERNEURONS: nearest preceding conv backward
                    trigger = new_compute[p - 1]
                    for q in range(p - 1, -1, -1):
                        t = tasks[new_compute[q]]
                        if (t.kind is TaskKind.BWD
                                and graph[t.layer].op.kind is OpKind.CONV):
                            trigger = t.tid
                            break
                    desired = {trigger}
            if tasks[si_tid].start_deps != desired:
                patch_task(si_tid).start_deps = desired

    queues = {
        StreamName.COMPUTE: new_compute,
        StreamName.H2D: new_h2d,
        StreamName.D2H: [t for t in base_queues[StreamName.D2H]
                         if t not in removed],
    }
    return tasks, queues, buffers


def liveness_floor(
    tasks: dict[str, _TaskDraft],
    queues: dict[StreamName, list[str]],
    buffers: dict[str, _BufferDraft],
) -> int:
    """Admissible lower bound on the device peak of *any* execution of a
    draft, from compute-stream liveness alone.

    The compute stream is sequential and FIFO, so when the task at compute
    position ``p`` issues, every device buffer that (a) is allocated by a
    compute task at position <= p and (b) is freed no earlier than the
    completion of some compute task at position >= p is necessarily
    resident — regardless of transfer timing, gating or policy.  Transfer-
    allocated instances (swap-ins) and host buffers are excluded precisely
    because their residency *is* timing-dependent.  The maximum over ``p``
    of that co-resident set (plus ``p``'s own scratch) therefore floors the
    peak of every execution: a draft whose floor exceeds device capacity
    cannot complete and every simulation of it ends in an
    ``OutOfMemoryError``.  Step 2 uses this to elide keep probes whose only
    possible outcome is "infeasible".
    """
    compute = queues.get(StreamName.COMPUTE, [])
    pos = {tid: i for i, tid in enumerate(compute)}
    n = len(compute)
    delta = [0] * (n + 1)
    always_resident = 0
    for b in buffers.values():
        if b.host:
            continue
        size = round_size(b.nbytes)
        if b.alloc_by is None:
            always_resident += size  # preallocated: lives the whole run
            continue
        a = pos.get(b.alloc_by)
        if a is None:
            continue  # transfer-allocated (swap-in instance)
        f = max((pos[t] for t in (b.writers | b.readers) if t in pos),
                default=-1)
        if f >= a:
            delta[a] += size
            delta[f + 1] -= size
    for i, tid in enumerate(compute):
        scratch = tasks[tid].scratch_bytes
        if scratch:
            delta[i] += round_size(scratch)
            delta[i + 1] -= round_size(scratch)
    floor = 0
    running = always_resident
    for i in range(n):
        running += delta[i]
        if running > floor:
            floor = running
    return floor
