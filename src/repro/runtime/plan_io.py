"""Classification (de)serialization: optimize once, run anywhere.

Plans are stored as JSON with enough provenance (graph name, map count,
machine, predicted time) to catch mismatched reuse early — loading a plan
against a structurally different graph fails loudly instead of producing a
silently wrong schedule.  This is also the vehicle for the paper's
plan-portability experiment in tool form: save the POWER9 plan, load it on
the x86 machine, watch it underperform.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.common.errors import ScheduleError
from repro.graph import NNGraph
from repro.runtime.plan import Classification, MapClass

FORMAT_VERSION = 1


def plan_to_dict(
    classification: Classification,
    graph: NNGraph,
    *,
    machine: str = "",
    predicted_time: float | None = None,
) -> dict[str, Any]:
    """JSON-ready dict with provenance."""
    return {
        "format_version": FORMAT_VERSION,
        "graph_name": graph.name,
        "n_layers": len(graph),
        "classifiable_maps": len(graph.classifiable_maps()),
        "machine": machine,
        "predicted_time_s": predicted_time,
        "classes": {
            str(i): cls.value for i, cls in sorted(classification.classes.items())
        },
    }


def plan_from_dict(data: dict[str, Any], graph: NNGraph) -> Classification:
    """Rebuild and validate a classification against ``graph``."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ScheduleError(f"unsupported plan format version {version!r}")
    if data.get("n_layers") != len(graph):
        raise ScheduleError(
            f"plan was made for a {data.get('n_layers')}-layer graph "
            f"({data.get('graph_name')!r}); this graph has {len(graph)} layers"
        )
    try:
        classes = {
            int(i): MapClass(value) for i, value in data["classes"].items()
        }
    except (KeyError, ValueError) as e:
        raise ScheduleError(f"malformed plan file: {e}") from e
    classification = Classification(classes)
    classification.validate(graph)
    return classification


def save_plan(
    path: str | pathlib.Path,
    classification: Classification,
    graph: NNGraph,
    *,
    machine: str = "",
    predicted_time: float | None = None,
) -> None:
    """Write a plan JSON file."""
    payload = plan_to_dict(classification, graph, machine=machine,
                           predicted_time=predicted_time)
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_plan(path: str | pathlib.Path, graph: NNGraph) -> Classification:
    """Read and validate a plan JSON file against ``graph``."""
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as e:
        raise ScheduleError(f"cannot read plan file {path}: {e}") from e
    return plan_from_dict(data, graph)
