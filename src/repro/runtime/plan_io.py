"""Classification (de)serialization: optimize once, run anywhere.

Plans are stored as JSON with enough provenance (graph name, map count,
machine, predicted time) to catch mismatched reuse early — loading a plan
against a structurally different graph fails loudly instead of producing a
silently wrong schedule.  This is also the vehicle for the paper's
plan-portability experiment in tool form: save the POWER9 plan, load it on
the x86 machine, watch it underperform.

:class:`PlanCache` layers a directory-backed store on top: chosen plans
keyed by (graph signature, machine signature, search-config signature), and
predictor simulation outcomes keyed additionally by classification — so
repeated optimizations (PoocH across runs, DynamicPoocH across sizes) can
warm-start instead of re-searching from scratch.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import pathlib
import threading
from collections import OrderedDict
from typing import Any, TYPE_CHECKING

from repro.common.errors import ScheduleError
from repro.graph import NNGraph
from repro.runtime.plan import Classification, MapClass

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw import MachineSpec
    from repro.runtime.profiler import Profile

FORMAT_VERSION = 1


def graph_signature(graph: NNGraph) -> str:
    """Structural identity of a graph: layers, ops, shapes, wiring.

    Two graphs with the same signature build identical schedules for a given
    classification — the property plan/outcome reuse rests on.  Deliberately
    *excludes* the graph name, so e.g. a renamed but structurally unchanged
    model still hits the cache.

    The digest is memoized on the graph instance: graphs are immutable after
    construction, and :meth:`NNGraph.validate` — the only sanctioned way to
    re-check a mutated layer list — drops the memo along with the liveness
    caches.  Signature-keyed lookups (PlanCache, the serve coalescer) are
    therefore O(1) after the first computation.
    """
    cached = graph.__dict__.get("_graph_signature")
    if cached is not None:
        return cached
    h = hashlib.sha256()
    for layer in graph:
        op = layer.op
        h.update(
            (
                f"{layer.index};{op.kind.value};{op.fwd_flops!r};"
                f"{op.bwd_flops!r};{op.fwd_bytes!r};{op.bwd_bytes!r};"
                f"{op.param_bytes};{op.workspace_bytes};"
                f"{int(op.bwd_needs_input)}{int(op.bwd_needs_output)};"
                f"{op.fused_activation};{layer.out_spec.nbytes};"
                f"{','.join(map(str, layer.preds))}\n"
            ).encode()
        )
    sig = h.hexdigest()[:32]
    graph.__dict__["_graph_signature"] = sig
    return sig


@functools.lru_cache(maxsize=256)
def machine_signature(machine: "MachineSpec") -> str:
    """Identity of every machine field the simulations depend on.

    ``MachineSpec`` is a frozen dataclass, so the result is memoized per
    spec — a server sharing one cache across thousands of lookups formats
    the string once.
    """
    sig = (
        f"{machine.name};gpu={machine.usable_gpu_memory};"
        f"cpu={machine.cpu_mem_capacity};flops={machine.gpu_peak_flops!r};"
        f"membw={machine.gpu_mem_bandwidth!r};h2d={machine.h2d_bandwidth!r};"
        f"d2h={machine.d2h_bandwidth!r};lat={machine.copy_latency!r}"
    )
    if machine.devices != 1:
        # devices shrink the per-device host share and add link contention;
        # single-device signatures stay byte-identical to the v1 format so
        # existing plan caches remain valid
        sig += f";dev={machine.devices}"
    return sig


def profile_signature(profile: "Profile") -> str:
    """Content hash of the profiled durations — simulation outcomes are a
    pure function of (graph, machine capacities, these numbers)."""
    h = hashlib.sha256()
    for table in (profile.fwd, profile.bwd, profile.swap_out, profile.swap_in):
        for k in sorted(table):
            h.update(f"{k}:{table[k]!r};".encode())
        h.update(b"|")
    h.update(f"upd:{profile.update_time!r}".encode())
    return h.hexdigest()[:32]


def plan_to_dict(
    classification: Classification,
    graph: NNGraph,
    *,
    machine: str = "",
    predicted_time: float | None = None,
) -> dict[str, Any]:
    """JSON-ready dict with provenance."""
    return {
        "format_version": FORMAT_VERSION,
        "graph_name": graph.name,
        "n_layers": len(graph),
        "classifiable_maps": len(graph.classifiable_maps()),
        "machine": machine,
        "predicted_time_s": predicted_time,
        "classes": {
            str(i): cls.value for i, cls in sorted(classification.classes.items())
        },
    }


def plan_from_dict(data: dict[str, Any], graph: NNGraph) -> Classification:
    """Rebuild and validate a classification against ``graph``."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ScheduleError(f"unsupported plan format version {version!r}")
    if data.get("n_layers") != len(graph):
        raise ScheduleError(
            f"plan was made for a {data.get('n_layers')}-layer graph "
            f"({data.get('graph_name')!r}); this graph has {len(graph)} layers"
        )
    n_maps = len(graph.classifiable_maps())
    stored_maps = data.get("classifiable_maps")
    if stored_maps is not None and stored_maps != n_maps:
        # catches e.g. a fuse_activations mismatch, where the layer count is
        # identical but the set of classifiable maps is not
        raise ScheduleError(
            f"plan was made for a graph with {stored_maps} classifiable maps "
            f"({data.get('graph_name')!r}); this graph has {n_maps}"
        )
    try:
        classes = {
            int(i): MapClass(value) for i, value in data["classes"].items()
        }
    except (KeyError, ValueError) as e:
        raise ScheduleError(f"malformed plan file: {e}") from e
    classification = Classification(classes)
    classification.validate(graph)
    return classification


def _atomic_write_text(path: pathlib.Path, text: str) -> None:
    """Write ``text`` to ``path`` without ever exposing a torn file.

    A concurrent reader (a second optimize process, or another thread of the
    planning server sharing one cache directory) must see either the old
    complete document or the new complete document — never a prefix.  POSIX
    ``os.replace`` of a same-directory temp file gives exactly that; the
    temp name carries pid and thread id so concurrent writers never collide
    on it.
    """
    tmp = path.with_name(
        f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
    )
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    finally:
        # a failed replace (or an exception between the two calls) must not
        # litter the cache directory with partial temp files
        if tmp.exists():  # pragma: no cover - only reachable on errors
            try:
                tmp.unlink()
            except OSError:
                pass


def save_plan(
    path: str | pathlib.Path,
    classification: Classification,
    graph: NNGraph,
    *,
    machine: str = "",
    predicted_time: float | None = None,
) -> None:
    """Write a plan JSON file (atomically — see :func:`_atomic_write_text`)."""
    payload = plan_to_dict(classification, graph, machine=machine,
                           predicted_time=predicted_time)
    _atomic_write_text(pathlib.Path(path), json.dumps(payload, indent=2) + "\n")


def load_plan(path: str | pathlib.Path, graph: NNGraph) -> Classification:
    """Read and validate a plan JSON file against ``graph``."""
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as e:
        raise ScheduleError(f"cannot read plan file {path}: {e}") from e
    return plan_from_dict(data, graph)


# -- persistent plan / simulation-outcome cache -----------------------------------

#: serialized form of Classification.key(): "0:swap,1:keep,..."
def key_to_str(key: tuple[tuple[int, str], ...]) -> str:
    return ",".join(f"{i}:{v}" for i, v in key)


def key_from_str(s: str) -> tuple[tuple[int, str], ...]:
    if not s:
        return ()
    return tuple(
        (int(i), v) for i, _, v in (part.partition(":") for part in s.split(","))
    )


class PlanCache:
    """Directory-backed cache of search results, shareable across runs.

    Two stores under ``root``:

    * ``plans/`` — the chosen classification per (graph signature, machine
      signature, caller-supplied config signature).  Callers are expected to
      re-verify a loaded plan by simulation before trusting it (the
      simulate-before-running discipline); the cache only guarantees the
      plan was chosen for a structurally identical problem.
    * ``outcomes/`` — predictor simulation outcomes per (graph signature,
      machine signature, caller-supplied simulation signature), keyed by
      classification.  Entries are plain dicts mirroring
      ``PredictedOutcome`` fields; merging is last-writer-wins per
      classification (outcomes are deterministic, so writers agree).

    File names are content-hashed from the key signatures; each file also
    records the full signatures and is ignored on mismatch, so a hash
    collision degrades to a cache miss, never a wrong plan.

    With ``lru_capacity > 0`` a bounded in-memory LRU sits in front of the
    directory: plan hits return the already-deserialized
    :class:`Classification` (no file read, no JSON parse, no re-validation)
    and outcome hits return the parsed entry dict.  Stores write through, so
    the memo never serves anything the directory does not also hold.  All
    LRU state is lock-guarded — the planning server shares one ``PlanCache``
    across its worker threads.  Entries are keyed by the *full* signature
    triple (not the truncated file digest), so a digest collision still
    cannot alias two problems in memory.
    """

    def __init__(self, root: str | pathlib.Path, *, lru_capacity: int = 0) -> None:
        self.root = pathlib.Path(root)
        try:
            (self.root / "plans").mkdir(parents=True, exist_ok=True)
            (self.root / "outcomes").mkdir(parents=True, exist_ok=True)
        except OSError as e:
            raise ScheduleError(
                f"cannot create plan cache directory at {self.root}: {e}"
            ) from e
        self.lru_capacity = lru_capacity
        self._lock = threading.Lock()
        #: (kind, *signatures) -> cached value; ordered oldest-first
        self._lru: OrderedDict[tuple, Any] = OrderedDict()
        #: tier accounting for the serve benchmark / stats endpoint
        self.lru_hits = 0
        self.disk_hits = 0
        self.misses = 0

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _digest(*parts: str) -> str:
        return hashlib.sha256(";;".join(parts).encode()).hexdigest()[:24]

    def _read(self, path: pathlib.Path, signatures: dict[str, str]) -> dict | None:
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None  # unreadable cache entries are misses, not errors
        for field, expect in signatures.items():
            if data.get(field) != expect:
                return None
        return data

    def _lru_get(self, key: tuple) -> Any | None:
        if not self.lru_capacity:
            return None
        with self._lock:
            try:
                value = self._lru.pop(key)
            except KeyError:
                return None
            self._lru[key] = value  # re-insert as most recent
            self.lru_hits += 1
            return value

    def _lru_put(self, key: tuple, value: Any) -> None:
        if not self.lru_capacity:
            return
        with self._lock:
            self._lru.pop(key, None)
            self._lru[key] = value
            while len(self._lru) > self.lru_capacity:
                self._lru.popitem(last=False)

    # -- plans -------------------------------------------------------------------

    def plan_path(self, graph: NNGraph, machine: "MachineSpec",
                  config_signature: str) -> pathlib.Path:
        digest = self._digest(graph_signature(graph),
                              machine_signature(machine), config_signature)
        return self.root / "plans" / f"{digest}.json"

    def load_plan(
        self, graph: NNGraph, machine: "MachineSpec", config_signature: str
    ) -> tuple[Classification, dict[str, Any]] | None:
        """The cached plan and its provenance dict, or ``None`` on miss."""
        gsig, msig = graph_signature(graph), machine_signature(machine)
        key = ("plan", gsig, msig, config_signature)
        cached = self._lru_get(key)
        if cached is not None:
            classification, data = cached
            return classification, dict(data)
        data = self._read(
            self.root / "plans" / f"{self._digest(gsig, msig, config_signature)}.json",
            {
                "graph_signature": gsig,
                "machine_signature": msig,
                "config_signature": config_signature,
            },
        )
        if data is None:
            with self._lock:
                self.misses += 1
            return None
        classification = plan_from_dict(data, graph)
        with self._lock:
            self.disk_hits += 1
        self._lru_put(key, (classification, data))
        return classification, dict(data)

    def store_plan(
        self,
        graph: NNGraph,
        machine: "MachineSpec",
        config_signature: str,
        classification: Classification,
        *,
        predicted_time: float | None = None,
        extra: dict[str, Any] | None = None,
    ) -> pathlib.Path:
        gsig, msig = graph_signature(graph), machine_signature(machine)
        payload = plan_to_dict(classification, graph, machine=machine.name,
                               predicted_time=predicted_time)
        payload["graph_signature"] = gsig
        payload["machine_signature"] = msig
        payload["config_signature"] = config_signature
        if extra:
            payload.update(extra)
        path = self.root / "plans" / f"{self._digest(gsig, msig, config_signature)}.json"
        _atomic_write_text(path, json.dumps(payload, indent=2) + "\n")
        self._lru_put(("plan", gsig, msig, config_signature),
                      (classification, payload))
        return path

    # -- simulation outcomes -----------------------------------------------------

    def outcomes_path(self, graph: NNGraph, machine: "MachineSpec",
                      sim_signature: str) -> pathlib.Path:
        digest = self._digest(graph_signature(graph),
                              machine_signature(machine), sim_signature)
        return self.root / "outcomes" / f"{digest}.json"

    def load_outcomes(
        self, graph: NNGraph, machine: "MachineSpec", sim_signature: str
    ) -> dict[tuple[tuple[int, str], ...], dict[str, Any]]:
        """Cached simulation outcomes by classification key (empty on miss).

        Returns a fresh outer dict on every call (LRU hits included), so
        callers may merge into the result without corrupting the memo.
        """
        gsig, msig = graph_signature(graph), machine_signature(machine)
        key = ("outcomes", gsig, msig, sim_signature)
        cached = self._lru_get(key)
        if cached is not None:
            return dict(cached)
        data = self._read(
            self.root / "outcomes" / f"{self._digest(gsig, msig, sim_signature)}.json",
            {
                "graph_signature": gsig,
                "machine_signature": msig,
                "sim_signature": sim_signature,
            },
        )
        if data is None:
            return {}
        entries = {key_from_str(k): v for k, v in data.get("entries", {}).items()}
        self._lru_put(key, entries)
        return dict(entries)

    def merge_outcomes(
        self,
        graph: NNGraph,
        machine: "MachineSpec",
        sim_signature: str,
        entries: dict[tuple[tuple[int, str], ...], dict[str, Any]],
    ) -> int:
        """Union ``entries`` into the store; returns the total entry count."""
        gsig, msig = graph_signature(graph), machine_signature(machine)
        existing = self.load_outcomes(graph, machine, sim_signature)
        existing.update(entries)
        payload = {
            "format_version": FORMAT_VERSION,
            "graph_signature": gsig,
            "machine_signature": msig,
            "sim_signature": sim_signature,
            "entries": {key_to_str(k): v for k, v in existing.items()},
        }
        path = self.root / "outcomes" / f"{self._digest(gsig, msig, sim_signature)}.json"
        _atomic_write_text(path, json.dumps(payload) + "\n")
        self._lru_put(("outcomes", gsig, msig, sim_signature), existing)
        return len(existing)
