"""Classification (de)serialization: optimize once, run anywhere.

Plans are stored as JSON with enough provenance (graph name, map count,
machine, predicted time) to catch mismatched reuse early — loading a plan
against a structurally different graph fails loudly instead of producing a
silently wrong schedule.  This is also the vehicle for the paper's
plan-portability experiment in tool form: save the POWER9 plan, load it on
the x86 machine, watch it underperform.

:class:`PlanCache` layers a directory-backed store on top: chosen plans
keyed by (graph signature, machine signature, search-config signature), and
predictor simulation outcomes keyed additionally by classification — so
repeated optimizations (PoocH across runs, DynamicPoocH across sizes) can
warm-start instead of re-searching from scratch.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Any, TYPE_CHECKING

from repro.common.errors import ScheduleError
from repro.graph import NNGraph
from repro.runtime.plan import Classification, MapClass

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw import MachineSpec
    from repro.runtime.profiler import Profile

FORMAT_VERSION = 1


def graph_signature(graph: NNGraph) -> str:
    """Structural identity of a graph: layers, ops, shapes, wiring.

    Two graphs with the same signature build identical schedules for a given
    classification — the property plan/outcome reuse rests on.  Deliberately
    *excludes* the graph name, so e.g. a renamed but structurally unchanged
    model still hits the cache.
    """
    h = hashlib.sha256()
    for layer in graph:
        op = layer.op
        h.update(
            (
                f"{layer.index};{op.kind.value};{op.fwd_flops!r};"
                f"{op.bwd_flops!r};{op.fwd_bytes!r};{op.bwd_bytes!r};"
                f"{op.param_bytes};{op.workspace_bytes};"
                f"{int(op.bwd_needs_input)}{int(op.bwd_needs_output)};"
                f"{op.fused_activation};{layer.out_spec.nbytes};"
                f"{','.join(map(str, layer.preds))}\n"
            ).encode()
        )
    return h.hexdigest()[:32]


def machine_signature(machine: "MachineSpec") -> str:
    """Identity of every machine field the simulations depend on."""
    sig = (
        f"{machine.name};gpu={machine.usable_gpu_memory};"
        f"cpu={machine.cpu_mem_capacity};flops={machine.gpu_peak_flops!r};"
        f"membw={machine.gpu_mem_bandwidth!r};h2d={machine.h2d_bandwidth!r};"
        f"d2h={machine.d2h_bandwidth!r};lat={machine.copy_latency!r}"
    )
    if machine.devices != 1:
        # devices shrink the per-device host share and add link contention;
        # single-device signatures stay byte-identical to the v1 format so
        # existing plan caches remain valid
        sig += f";dev={machine.devices}"
    return sig


def profile_signature(profile: "Profile") -> str:
    """Content hash of the profiled durations — simulation outcomes are a
    pure function of (graph, machine capacities, these numbers)."""
    h = hashlib.sha256()
    for table in (profile.fwd, profile.bwd, profile.swap_out, profile.swap_in):
        for k in sorted(table):
            h.update(f"{k}:{table[k]!r};".encode())
        h.update(b"|")
    h.update(f"upd:{profile.update_time!r}".encode())
    return h.hexdigest()[:32]


def plan_to_dict(
    classification: Classification,
    graph: NNGraph,
    *,
    machine: str = "",
    predicted_time: float | None = None,
) -> dict[str, Any]:
    """JSON-ready dict with provenance."""
    return {
        "format_version": FORMAT_VERSION,
        "graph_name": graph.name,
        "n_layers": len(graph),
        "classifiable_maps": len(graph.classifiable_maps()),
        "machine": machine,
        "predicted_time_s": predicted_time,
        "classes": {
            str(i): cls.value for i, cls in sorted(classification.classes.items())
        },
    }


def plan_from_dict(data: dict[str, Any], graph: NNGraph) -> Classification:
    """Rebuild and validate a classification against ``graph``."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ScheduleError(f"unsupported plan format version {version!r}")
    if data.get("n_layers") != len(graph):
        raise ScheduleError(
            f"plan was made for a {data.get('n_layers')}-layer graph "
            f"({data.get('graph_name')!r}); this graph has {len(graph)} layers"
        )
    n_maps = len(graph.classifiable_maps())
    stored_maps = data.get("classifiable_maps")
    if stored_maps is not None and stored_maps != n_maps:
        # catches e.g. a fuse_activations mismatch, where the layer count is
        # identical but the set of classifiable maps is not
        raise ScheduleError(
            f"plan was made for a graph with {stored_maps} classifiable maps "
            f"({data.get('graph_name')!r}); this graph has {n_maps}"
        )
    try:
        classes = {
            int(i): MapClass(value) for i, value in data["classes"].items()
        }
    except (KeyError, ValueError) as e:
        raise ScheduleError(f"malformed plan file: {e}") from e
    classification = Classification(classes)
    classification.validate(graph)
    return classification


def save_plan(
    path: str | pathlib.Path,
    classification: Classification,
    graph: NNGraph,
    *,
    machine: str = "",
    predicted_time: float | None = None,
) -> None:
    """Write a plan JSON file."""
    payload = plan_to_dict(classification, graph, machine=machine,
                           predicted_time=predicted_time)
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_plan(path: str | pathlib.Path, graph: NNGraph) -> Classification:
    """Read and validate a plan JSON file against ``graph``."""
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as e:
        raise ScheduleError(f"cannot read plan file {path}: {e}") from e
    return plan_from_dict(data, graph)


# -- persistent plan / simulation-outcome cache -----------------------------------

#: serialized form of Classification.key(): "0:swap,1:keep,..."
def key_to_str(key: tuple[tuple[int, str], ...]) -> str:
    return ",".join(f"{i}:{v}" for i, v in key)


def key_from_str(s: str) -> tuple[tuple[int, str], ...]:
    if not s:
        return ()
    return tuple(
        (int(i), v) for i, _, v in (part.partition(":") for part in s.split(","))
    )


class PlanCache:
    """Directory-backed cache of search results, shareable across runs.

    Two stores under ``root``:

    * ``plans/`` — the chosen classification per (graph signature, machine
      signature, caller-supplied config signature).  Callers are expected to
      re-verify a loaded plan by simulation before trusting it (the
      simulate-before-running discipline); the cache only guarantees the
      plan was chosen for a structurally identical problem.
    * ``outcomes/`` — predictor simulation outcomes per (graph signature,
      machine signature, caller-supplied simulation signature), keyed by
      classification.  Entries are plain dicts mirroring
      ``PredictedOutcome`` fields; merging is last-writer-wins per
      classification (outcomes are deterministic, so writers agree).

    File names are content-hashed from the key signatures; each file also
    records the full signatures and is ignored on mismatch, so a hash
    collision degrades to a cache miss, never a wrong plan.
    """

    def __init__(self, root: str | pathlib.Path) -> None:
        self.root = pathlib.Path(root)
        try:
            (self.root / "plans").mkdir(parents=True, exist_ok=True)
            (self.root / "outcomes").mkdir(parents=True, exist_ok=True)
        except OSError as e:
            raise ScheduleError(
                f"cannot create plan cache directory at {self.root}: {e}"
            ) from e

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _digest(*parts: str) -> str:
        return hashlib.sha256(";;".join(parts).encode()).hexdigest()[:24]

    def _read(self, path: pathlib.Path, signatures: dict[str, str]) -> dict | None:
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None  # unreadable cache entries are misses, not errors
        for field, expect in signatures.items():
            if data.get(field) != expect:
                return None
        return data

    # -- plans -------------------------------------------------------------------

    def plan_path(self, graph: NNGraph, machine: "MachineSpec",
                  config_signature: str) -> pathlib.Path:
        digest = self._digest(graph_signature(graph),
                              machine_signature(machine), config_signature)
        return self.root / "plans" / f"{digest}.json"

    def load_plan(
        self, graph: NNGraph, machine: "MachineSpec", config_signature: str
    ) -> tuple[Classification, dict[str, Any]] | None:
        """The cached plan and its provenance dict, or ``None`` on miss."""
        data = self._read(
            self.plan_path(graph, machine, config_signature),
            {
                "graph_signature": graph_signature(graph),
                "machine_signature": machine_signature(machine),
                "config_signature": config_signature,
            },
        )
        if data is None:
            return None
        return plan_from_dict(data, graph), data

    def store_plan(
        self,
        graph: NNGraph,
        machine: "MachineSpec",
        config_signature: str,
        classification: Classification,
        *,
        predicted_time: float | None = None,
        extra: dict[str, Any] | None = None,
    ) -> pathlib.Path:
        payload = plan_to_dict(classification, graph, machine=machine.name,
                               predicted_time=predicted_time)
        payload["graph_signature"] = graph_signature(graph)
        payload["machine_signature"] = machine_signature(machine)
        payload["config_signature"] = config_signature
        if extra:
            payload.update(extra)
        path = self.plan_path(graph, machine, config_signature)
        path.write_text(json.dumps(payload, indent=2) + "\n")
        return path

    # -- simulation outcomes -----------------------------------------------------

    def outcomes_path(self, graph: NNGraph, machine: "MachineSpec",
                      sim_signature: str) -> pathlib.Path:
        digest = self._digest(graph_signature(graph),
                              machine_signature(machine), sim_signature)
        return self.root / "outcomes" / f"{digest}.json"

    def load_outcomes(
        self, graph: NNGraph, machine: "MachineSpec", sim_signature: str
    ) -> dict[tuple[tuple[int, str], ...], dict[str, Any]]:
        """Cached simulation outcomes by classification key (empty on miss)."""
        data = self._read(
            self.outcomes_path(graph, machine, sim_signature),
            {
                "graph_signature": graph_signature(graph),
                "machine_signature": machine_signature(machine),
                "sim_signature": sim_signature,
            },
        )
        if data is None:
            return {}
        return {key_from_str(k): v for k, v in data.get("entries", {}).items()}

    def merge_outcomes(
        self,
        graph: NNGraph,
        machine: "MachineSpec",
        sim_signature: str,
        entries: dict[tuple[tuple[int, str], ...], dict[str, Any]],
    ) -> int:
        """Union ``entries`` into the store; returns the total entry count."""
        existing = self.load_outcomes(graph, machine, sim_signature)
        existing.update(entries)
        payload = {
            "format_version": FORMAT_VERSION,
            "graph_signature": graph_signature(graph),
            "machine_signature": machine_signature(machine),
            "sim_signature": sim_signature,
            "entries": {key_to_str(k): v for k, v in existing.items()},
        }
        path = self.outcomes_path(graph, machine, sim_signature)
        path.write_text(json.dumps(payload) + "\n")
        return len(existing)
