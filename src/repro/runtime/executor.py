"""Ground-truth execution conveniences.

``execute`` runs one training iteration of a graph under a classification on
a machine spec and returns the full timeline; the helpers convert timelines
to the paper's reporting units (#images/s)."""

from __future__ import annotations

from repro.graph import NNGraph
from repro.gpusim import Engine, RunResult
from repro.hw import CostModel, MachineSpec
from repro.runtime.durations import CostModelDurations, DurationProvider
from repro.runtime.plan import Classification, SwapInPolicy
from repro.runtime.schedule import ScheduleOptions, build_schedule


def execute(
    graph: NNGraph,
    classification: Classification,
    machine: MachineSpec,
    *,
    policy: SwapInPolicy = SwapInPolicy.EAGER,
    cost_model: CostModel | None = None,
    durations: DurationProvider | None = None,
    options: ScheduleOptions | None = None,
    fragmentation: bool = False,
    device_pool=None,
    host_pool=None,
) -> RunResult:
    """Simulate one training iteration (ground truth).

    Raises :class:`~repro.common.errors.OutOfMemoryError` when the plan does
    not fit the machine — the simulated analogue of the "execution fails"
    outcomes in the paper's Figs. 17–22.  ``device_pool`` / ``host_pool``
    inject pre-built memory pools (the fault layer passes pools whose
    allocations can spuriously fail).
    """
    if durations is None:
        durations = CostModelDurations(graph, cost_model or CostModel(machine))
    opts = options or ScheduleOptions(policy=policy)
    schedule = build_schedule(graph, classification, durations, opts)
    engine = Engine(
        schedule,
        device_capacity=machine.usable_gpu_memory,
        host_capacity=machine.host_swap_capacity,
        fragmentation=fragmentation,
        device_pool=device_pool,
        host_pool=host_pool,
    )
    return engine.run()


def iteration_time(result: RunResult) -> float:
    """Duration of the simulated iteration, seconds."""
    return result.makespan


def images_per_second(result: RunResult, batch: int) -> float:
    """The paper's throughput metric: batch size / iteration time."""
    if result.makespan <= 0:
        raise ValueError("empty timeline")
    return batch / result.makespan
