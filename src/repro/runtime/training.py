"""Multi-iteration training sessions on the out-of-core runtime.

The rest of :mod:`repro.runtime` simulates (and numerically validates) one
iteration at a time; this module strings iterations into a *training run*,
the way a framework user experiences the system:

* :class:`SGD` / :class:`MomentumSGD` — optimizers applied to the numeric
  executor's parameters from the gradients each simulated iteration
  produces;
* :class:`Trainer` — drives N iterations of (fresh batch → forward/backward
  through the scheduled out-of-core execution → optimizer step), accumulating
  per-iteration losses and simulated wall-clock time.

Because every iteration executes through the same engine + schedule as the
performance experiments, a Trainer run demonstrates the end-to-end claim of
the paper: a network that cannot fit on the GPU *trains* (loss goes down)
at a bounded slowdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import NumericError
from repro.graph import NNGraph
from repro.hw import CostModel, MachineSpec
from repro.runtime.durations import CostModelDurations
from repro.runtime.numeric import NumericExecutor
from repro.runtime.plan import Classification, SwapInPolicy
from repro.runtime.schedule import ScheduleOptions, build_schedule
from repro.gpusim import Engine


class SGD:
    """Plain stochastic gradient descent: ``p -= lr * g``."""

    def __init__(self, lr: float = 0.01) -> None:
        self.lr = lr

    def step(self, params: dict[str, np.ndarray],
             grads: dict[str, np.ndarray], key: int) -> None:
        for name, g in grads.items():
            params[name] -= self.lr * g


class MomentumSGD:
    """SGD with classical momentum: ``v = mu*v + g; p -= lr*v``."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.9) -> None:
        self.lr = lr
        self.momentum = momentum
        self._velocity: dict[tuple[int, str], np.ndarray] = {}

    def step(self, params: dict[str, np.ndarray],
             grads: dict[str, np.ndarray], key: int) -> None:
        for name, g in grads.items():
            v = self._velocity.get((key, name))
            if v is None:
                v = np.zeros_like(g)
            v = self.momentum * v + g
            self._velocity[(key, name)] = v
            params[name] -= self.lr * v


class Adam:
    """Adam (Kingma & Ba): per-parameter adaptive moments with bias
    correction."""

    def __init__(self, lr: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8) -> None:
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict[tuple[int, str], np.ndarray] = {}
        self._v: dict[tuple[int, str], np.ndarray] = {}
        self._t: dict[tuple[int, str], int] = {}

    def step(self, params: dict[str, np.ndarray],
             grads: dict[str, np.ndarray], key: int) -> None:
        for name, g in grads.items():
            k = (key, name)
            t = self._t.get(k, 0) + 1
            self._t[k] = t
            m = self._m.get(k)
            v = self._v.get(k)
            if m is None:
                m = np.zeros_like(g)
                v = np.zeros_like(g)
            m = self.beta1 * m + (1 - self.beta1) * g
            v = self.beta2 * v + (1 - self.beta2) * g * g
            self._m[k], self._v[k] = m, v
            m_hat = m / (1 - self.beta1**t)
            v_hat = v / (1 - self.beta2**t)
            params[name] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


@dataclass
class TrainingReport:
    """Outcome of a :meth:`Trainer.run`."""

    losses: list[float] = field(default_factory=list)
    iteration_times: list[float] = field(default_factory=list)
    peak_device_bytes: int = 0

    @property
    def total_time(self) -> float:
        """Total simulated wall-clock across all iterations."""
        return sum(self.iteration_times)

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise NumericError("no iterations were run")
        return self.losses[-1]


class Trainer:
    """Train a graph under a classification for several iterations.

    Each iteration draws a fresh input batch and fresh labels (from the
    trainer's seeded generator), executes the full out-of-core schedule with
    numeric payloads, records the mean loss, and applies the optimizer to
    the parameters.  The schedule is built once and re-executed per
    iteration — exactly the paper's execution phase.
    """

    def __init__(
        self,
        graph: NNGraph,
        classification: Classification,
        machine: MachineSpec,
        *,
        optimizer: SGD | MomentumSGD | Adam | None = None,
        policy: SwapInPolicy = SwapInPolicy.EAGER,
        seed: int = 0,
        cost_model: CostModel | None = None,
        fixed_batch: bool = True,
    ) -> None:
        self.graph = graph
        self.classification = classification
        self.machine = machine
        self.optimizer = optimizer or SGD()
        self.policy = policy
        #: True (default): keep one fixed batch + labels for the whole run —
        #: the loss then genuinely decreases (overfitting one batch), which
        #: is the meaningful sanity signal for synthetic data.  False draws a
        #: fresh random batch per iteration (pure-noise labels: loss hovers).
        self.fixed_batch = fixed_batch
        self._batch_drawn = False
        self.executor = NumericExecutor(graph, seed=seed)
        self._data_rng = np.random.default_rng(seed + 1)
        durations = CostModelDurations(graph, cost_model or CostModel(machine))
        self.schedule = build_schedule(
            graph, classification, durations, ScheduleOptions(policy=policy)
        )
        self._loss_layer = self._find_loss_layer()

    def _find_loss_layer(self) -> int:
        from repro.graph.ops import OpKind

        for layer in reversed(self.graph.layers):
            if layer.op.kind is OpKind.SOFTMAX_XENT:
                return layer.index
        raise NumericError("graph has no softmax_xent loss head to train")

    def _fresh_batch(self) -> None:
        """Draw inputs and labels for the next iteration (or reuse the fixed
        batch)."""
        if self.fixed_batch and self._batch_drawn:
            return
        self._batch_drawn = True
        ex = self.executor
        input_layer = self.graph[0]
        ex.input = self._data_rng.standard_normal(
            input_layer.out_spec.shape
        ).astype(np.float32)
        classes = self.graph[self.graph[self._loss_layer].preds[0]].out_spec.shape[1]
        n = self.graph[self._loss_layer].out_spec.batch
        ex.targets = self._data_rng.integers(0, classes, size=n)

    def run_iteration(self) -> tuple[float, float]:
        """One training step; returns (mean loss, simulated iteration time)."""
        ex = self.executor
        self._fresh_batch()
        ex.weight_grads.clear()
        loss_holder: dict[str, float] = {}

        # fresh payloads each iteration (closures capture the executor)
        ex.attach(self.schedule)
        loss_buffer = f"fm{self._loss_layer}@f"
        loss_task = self.schedule.tasks[f"F{self._loss_layer}"]
        inner = loss_task.payload

        def loss_probe() -> None:
            inner()
            loss_holder["loss"] = float(ex.device[loss_buffer].mean())

        loss_task.payload = loss_probe

        engine = Engine(
            self.schedule,
            device_capacity=self.machine.usable_gpu_memory,
            host_capacity=self.machine.host_swap_capacity,
            validate=False,
            free_hook=ex.on_free,
        )
        result = engine.run()

        for layer_idx, grads in ex.weight_grads.items():
            params = ex.params.get(layer_idx)
            if params:
                self.optimizer.step(params, grads, layer_idx)
        self._last_peak = result.device_peak
        return loss_holder["loss"], result.makespan

    def run(self, iterations: int) -> TrainingReport:
        """Train for ``iterations`` steps and return the report."""
        if iterations < 1:
            raise NumericError("iterations must be >= 1")
        report = TrainingReport()
        for _ in range(iterations):
            loss, t = self.run_iteration()
            report.losses.append(loss)
            report.iteration_times.append(t)
            report.peak_device_bytes = max(report.peak_device_bytes,
                                           self._last_peak)
        return report
