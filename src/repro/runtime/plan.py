"""Feature-map classifications (keep / swap / recompute) and swap-in
scheduling policies — the decision variables of the whole paper."""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass

from repro.common.errors import ScheduleError
from repro.graph import NNGraph


class MapClass(enum.Enum):
    """Where a feature map lives between its last forward use and its first
    backward use (§4.1.1)."""

    KEEP = "keep"
    SWAP = "swap"
    RECOMPUTE = "recompute"


class SwapInPolicy(enum.Enum):
    """When a scheduled swap-in is allowed to start.

    * ``NAIVE`` — starts together with the computation one step ahead of the
      backward task that needs it (the left side of the paper's Fig. 10).
    * ``EAGER`` — starts as soon as GPU memory has room (plus a safety
      headroom), PoocH's improved schedule (§4.3, right side of Fig. 10).
    * ``SUPERNEURONS`` — starts with the backward computation of the nearest
      preceding convolution layer and does *not* check memory availability;
      an allocation failure at that point is fatal (§5.2).
    """

    NAIVE = "naive"
    EAGER = "eager"
    SUPERNEURONS = "superneurons"


@dataclass(frozen=True)
class Classification:
    """An assignment of a :class:`MapClass` to every classifiable feature map.

    ``classes`` maps feature-map index (== layer index) to class.  Maps that
    no backward task reads are not part of the assignment — they are freed
    after their last forward use regardless.
    """

    classes: dict[int, MapClass]

    # -- constructors ------------------------------------------------------------

    @staticmethod
    def uniform(graph: NNGraph, cls: MapClass) -> "Classification":
        """Assign ``cls`` to every classifiable map (recompute-ineligible maps
        fall back to SWAP)."""
        classes = {}
        for i in graph.classifiable_maps():
            if cls is MapClass.RECOMPUTE and not graph[i].op.recomputable:
                classes[i] = MapClass.SWAP
            else:
                classes[i] = cls
        return Classification(classes)

    @staticmethod
    def all_keep(graph: NNGraph) -> "Classification":
        """The in-core plan: everything stays on the GPU."""
        return Classification.uniform(graph, MapClass.KEEP)

    @staticmethod
    def all_swap(graph: NNGraph) -> "Classification":
        """The paper's safe default and profiling-phase plan."""
        return Classification.uniform(graph, MapClass.SWAP)

    @staticmethod
    def all_recompute(graph: NNGraph) -> "Classification":
        """Chen-style sublinear plan (ineligible maps swap instead)."""
        return Classification.uniform(graph, MapClass.RECOMPUTE)

    # -- queries -----------------------------------------------------------------

    def of(self, i: int) -> MapClass:
        return self.classes[i]

    def get(self, i: int, default: MapClass | None = None) -> MapClass | None:
        return self.classes.get(i, default)

    def counts(self) -> dict[MapClass, int]:
        """Map-class histogram — the paper's Table 3 rows."""
        c = {MapClass.KEEP: 0, MapClass.SWAP: 0, MapClass.RECOMPUTE: 0}
        for cls in self.classes.values():
            c[cls] += 1
        return c

    def maps_of(self, cls: MapClass) -> list[int]:
        return sorted(i for i, c in self.classes.items() if c is cls)

    def key(self) -> tuple[tuple[int, str], ...]:
        """Hashable identity, for memoising timeline simulations.

        Computed lazily and cached on the instance — safe because the
        class is treated as immutable everywhere (``with_class`` copies).
        The search computes keys for every trial of a 100-position scan,
        so :meth:`with_class` also derives the child's key from a cached
        parent key with a single-element splice instead of a re-sort."""
        k = getattr(self, "_key", None)
        if k is None:
            k = tuple(sorted((i, c.value) for i, c in self.classes.items()))
            object.__setattr__(self, "_key", k)
        return k

    # -- derivation ----------------------------------------------------------------

    def with_class(self, i: int, cls: MapClass) -> "Classification":
        """Functional single-map update."""
        if i not in self.classes:
            raise ScheduleError(f"feature map {i} is not classifiable")
        new = dict(self.classes)
        new[i] = cls
        out = Classification(new)
        k = getattr(self, "_key", None)
        if k is not None:
            p = bisect.bisect_left(k, (i,))
            object.__setattr__(out, "_key",
                               k[:p] + ((i, cls.value),) + k[p + 1:])
        return out

    def with_classes(self, updates: dict[int, MapClass]) -> "Classification":
        new = dict(self.classes)
        for i, cls in updates.items():
            if i not in new:
                raise ScheduleError(f"feature map {i} is not classifiable")
            new[i] = cls
        return Classification(new)

    # -- validation ------------------------------------------------------------------

    def validate(self, graph: NNGraph) -> None:
        """Check coverage (exactly the classifiable maps) and recompute
        eligibility."""
        expected = set(graph.classifiable_maps())
        got = set(self.classes)
        if got != expected:
            extra, missing = got - expected, expected - got
            raise ScheduleError(
                f"classification covers wrong maps (extra={sorted(extra)[:5]}, "
                f"missing={sorted(missing)[:5]})"
            )
        for i, cls in self.classes.items():
            if cls is MapClass.RECOMPUTE and not graph[i].op.recomputable:
                raise ScheduleError(
                    f"map {i} ({graph[i].name}, {graph[i].op.kind.value}) "
                    "cannot be recomputed"
                )

    def describe(self, graph: NNGraph) -> str:
        """One line per map, for debugging and the examples."""
        lines = []
        for i in sorted(self.classes):
            lines.append(f"  {i:4d} {graph[i].name:24s} {self.classes[i].value}")
        counts = self.counts()
        head = (
            f"Classification: keep={counts[MapClass.KEEP]} "
            f"swap={counts[MapClass.SWAP]} recompute={counts[MapClass.RECOMPUTE]}"
        )
        return "\n".join([head, *lines])
