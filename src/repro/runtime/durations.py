"""Duration providers: where task run-times come from.

The schedule builder is agnostic to the source of durations.  Ground-truth
execution uses :class:`CostModelDurations` (the analytic V100 stand-in);
PoocH's internal timeline predictor uses
:class:`repro.runtime.profiler.ProfileDurations` (measured times from the
profiling phase) — exactly the paper's split between the real machine and the
simulation used during classification.
"""

from __future__ import annotations

from typing import Protocol

from repro.graph import NNGraph
from repro.hw import CostModel


class DurationProvider(Protocol):
    """Per-task durations, keyed by layer / feature-map index."""

    def fwd(self, layer: int) -> float:
        """Forward computation of ``layer`` (also the cost of one
        recomputation of its output)."""
        ...

    def bwd(self, layer: int) -> float:
        """Backward computation of ``layer``."""
        ...

    def swap_out(self, map_id: int) -> float:
        """Device→host copy of feature map ``map_id``."""
        ...

    def swap_in(self, map_id: int) -> float:
        """Host→device copy of feature map ``map_id``."""
        ...

    def input_load(self, layer: int) -> float:
        """Host→device upload of the training mini-batch (INPUT layers)."""
        ...

    def update(self) -> float:
        """Optimizer parameter update at the end of the iteration."""
        ...


class CostModelDurations:
    """Durations derived analytically from a :class:`~repro.hw.CostModel`.

    With ``cost_model.jitter == 0`` values are deterministic but still
    re-computed per call when jitter is enabled — each simulated iteration
    then sees fresh hardware noise, which is what the profiling-averaging
    tests rely on.
    """

    def __init__(self, graph: NNGraph, cost_model: CostModel) -> None:
        self.graph = graph
        self.cost_model = cost_model

    def fwd(self, layer: int) -> float:
        return self.cost_model.fwd_time(self.graph[layer].op)

    def bwd(self, layer: int) -> float:
        return self.cost_model.bwd_time(self.graph[layer].op)

    def swap_out(self, map_id: int) -> float:
        return self.cost_model.swap_out_time(self.graph[map_id].out_spec.nbytes)

    def swap_in(self, map_id: int) -> float:
        return self.cost_model.swap_in_time(self.graph[map_id].out_spec.nbytes)

    def input_load(self, layer: int) -> float:
        return self.cost_model.swap_in_time(self.graph[layer].out_spec.nbytes)

    def update(self) -> float:
        return self.cost_model.update_time(self.graph.total_param_bytes)
