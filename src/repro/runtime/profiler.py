"""Runtime profiling — the paper's §4.2.

PoocH's first phase runs a few training iterations with the safe all-swap
classification while recording, per layer: forward/backward computation time,
swap-out/swap-in time, and (via the memory pool trace) the sizes and order of
every malloc/free.  The resulting :class:`Profile` is the *only* information
the classification search is allowed to use — the predictor replays schedules
from these measured durations, never from the analytic cost model, mirroring
the measured-vs-simulated split of the real system.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ProfileLookupError, ScheduleError, nearest_keys
from repro.graph import NNGraph
from repro.gpusim import Engine, RunResult, TaskKind
from repro.hw import CostModel, MachineSpec
from repro.obs import get_logger, metrics
from repro.runtime.durations import CostModelDurations, DurationProvider
from repro.runtime.plan import Classification, SwapInPolicy
from repro.runtime.schedule import ScheduleOptions, build_schedule

log = get_logger(__name__)


@dataclass
class Profile:
    """Averaged per-layer timings measured during the profiling iterations.

    Attributes:
        graph_name / machine_name: provenance.
        fwd / bwd: seconds per layer (fwd of an INPUT layer is its batch
            upload time).
        swap_out / swap_in: seconds per classifiable feature map.
        update_time: optimizer step duration.
        map_bytes: feature-map sizes (profiling also records sizes).
        iterations: how many iterations were averaged.
        baseline: deterministic all-swap timeline replayed from the averaged
            durations — the timeline the classifier's overlap analysis
            (L_O / L_I) inspects.
    """

    graph_name: str
    machine_name: str
    fwd: dict[int, float]
    bwd: dict[int, float]
    swap_out: dict[int, float]
    swap_in: dict[int, float]
    update_time: float
    map_bytes: dict[int, int]
    iterations: int = 1
    baseline: RunResult | None = field(default=None, repr=False)

    def durations(self) -> "ProfileDurations":
        return ProfileDurations(self)


class ProfileDurations:
    """A :class:`~repro.runtime.durations.DurationProvider` backed by a
    :class:`Profile` — what PoocH's internal timeline simulation runs on."""

    def __init__(self, profile: Profile) -> None:
        self.profile = profile

    def _lookup(self, table: dict[int, float], layer: int, what: str) -> float:
        try:
            return table[layer]
        except KeyError:
            near = nearest_keys(layer, table)
            raise ProfileLookupError(
                f"profile of {self.profile.graph_name!r} "
                f"(machine {self.profile.machine_name!r}) has no {what} time "
                f"for layer {layer} (was it classifiable during profiling?); "
                f"table {what!r} holds {len(table)} layers"
                + (f", nearest: {list(near)}" if near else ""),
                key=layer,
                table=what,
                nearest=near,
            ) from None

    def fwd(self, layer: int) -> float:
        return self._lookup(self.profile.fwd, layer, "forward")

    def bwd(self, layer: int) -> float:
        return self._lookup(self.profile.bwd, layer, "backward")

    def swap_out(self, map_id: int) -> float:
        return self._lookup(self.profile.swap_out, map_id, "swap-out")

    def swap_in(self, map_id: int) -> float:
        return self._lookup(self.profile.swap_in, map_id, "swap-in")

    def input_load(self, layer: int) -> float:
        return self._lookup(self.profile.fwd, layer, "input-load")

    def update(self) -> float:
        return self.profile.update_time


def run_profiling(
    graph: NNGraph,
    machine: MachineSpec,
    cost_model: CostModel | None = None,
    iterations: int = 1,
    policy: SwapInPolicy = SwapInPolicy.EAGER,
    forward_refetch_gap: int | None = None,
    durations: DurationProvider | None = None,
) -> Profile:
    """Execute the profiling phase and return the averaged :class:`Profile`.

    Runs ``iterations`` ground-truth iterations under the all-swap
    classification (the paper's default profiling plan), averages every
    task's duration, and replays one deterministic baseline timeline from
    the averages.

    ``durations`` overrides the ground-truth duration source entirely (the
    fault layer profiles through it to model a machine that misbehaves while
    being measured); the default is the analytic cost model.
    """
    if iterations < 1:
        raise ScheduleError("profiling needs at least one iteration")
    if durations is None:
        cost_model = cost_model or CostModel(machine)
        durations = CostModelDurations(graph, cost_model)
    all_swap = Classification.all_swap(graph)
    options = ScheduleOptions(policy=policy,
                              forward_refetch_gap=forward_refetch_gap)

    sums: dict[tuple[TaskKind, int], float] = {}
    counts: dict[tuple[TaskKind, int], int] = {}
    with metrics.span("profile", category="profile", graph=graph.name,
                      machine=machine.name, iterations=iterations):
        metrics.count("profile.iterations", iterations)
        for _ in range(iterations):
            schedule = build_schedule(graph, all_swap, durations, options)
            result = Engine(
                schedule,
                device_capacity=machine.usable_gpu_memory,
                host_capacity=machine.host_swap_capacity,
            ).run()
            for rec in result.records:
                key = (rec.kind, rec.layer)
                # read the task's exact duration rather than the record
                # span: (start + d) - start can differ from d by one ulp,
                # and at a knife-edge schedule that is enough to flip task
                # interleavings between the predictor's replay and the
                # ground truth
                sums[key] = (sums.get(key, 0.0)
                             + schedule.tasks[rec.tid].duration)
                counts[key] = counts.get(key, 0) + 1

    # average per occurrence, not per iteration: with forward re-fetch a map
    # can have several swap-in records in one iteration
    avg = {key: total / counts[key] for key, total in sums.items()}
    fwd = {l: t for (k, l), t in avg.items() if k is TaskKind.FWD}
    bwd = {l: t for (k, l), t in avg.items() if k is TaskKind.BWD}
    swap_out = {l: t for (k, l), t in avg.items() if k is TaskKind.SWAP_OUT}
    swap_in = {l: t for (k, l), t in avg.items() if k is TaskKind.SWAP_IN}
    update_time = avg.get((TaskKind.UPDATE, -1), 0.0)

    profile = Profile(
        graph_name=graph.name,
        machine_name=machine.name,
        fwd=fwd,
        bwd=bwd,
        swap_out=swap_out,
        swap_in=swap_in,
        update_time=update_time,
        map_bytes={l.index: l.out_spec.nbytes for l in graph},
        iterations=iterations,
    )
    # deterministic replay of the all-swap plan from the averaged profile —
    # the canonical baseline timeline for the classifier's overlap analysis
    with metrics.span("profile.baseline", category="profile"):
        baseline_schedule = build_schedule(graph, all_swap,
                                           profile.durations(), options)
        profile.baseline = Engine(
            baseline_schedule,
            device_capacity=machine.usable_gpu_memory,
            host_capacity=machine.host_swap_capacity,
        ).run()
    log.debug(
        "profiled %r on %s: %d iterations, %d layers, update %.3g s, "
        "baseline makespan %.6f s",
        graph.name, machine.name, iterations, len(fwd), update_time,
        profile.baseline.makespan,
    )
    return profile
