"""Out-of-core training runtime.

Turns (graph, classification, swap-in policy) into a :class:`repro.gpusim.Schedule`
and executes it: forward, swap-outs, swap-ins, recompute closures, backward,
parameter update.  Also hosts the profiler (the paper's §4.2) and the numpy
numeric backend that validates schedules produce correct gradients.
"""

from repro.runtime.durations import CostModelDurations, DurationProvider
from repro.runtime.executor import execute, iteration_time, images_per_second
from repro.runtime.plan import Classification, MapClass, SwapInPolicy
from repro.runtime.plan_io import load_plan, save_plan
from repro.runtime.profiler import Profile, ProfileDurations, run_profiling
from repro.runtime.schedule import ScheduleBuilder, ScheduleOptions, build_schedule
from repro.runtime.training import Adam, MomentumSGD, SGD, Trainer, TrainingReport

__all__ = [
    "MapClass",
    "Classification",
    "SwapInPolicy",
    "DurationProvider",
    "CostModelDurations",
    "ScheduleBuilder",
    "ScheduleOptions",
    "build_schedule",
    "execute",
    "iteration_time",
    "images_per_second",
    "Profile",
    "ProfileDurations",
    "run_profiling",
    "Trainer",
    "TrainingReport",
    "SGD",
    "MomentumSGD",
    "Adam",
    "save_plan",
    "load_plan",
]
