"""SuperNeurons-style static hybrid classification (Wang et al., PPoPP'18),
as the paper describes and re-implements it in §5.2:

* feature maps are kept on GPU memory preferentially from the output layer,
  as many as fit a static budget;
* of the rest, convolution-layer outputs are swapped and everything else is
  recomputed (the decision is by *layer type*, not measured time);
* each swap-in starts together with the backward computation of the nearest
  preceding convolution layer, without checking actual memory usage — which
  is exactly why the paper observes it failing at ResNet50 batch 640.

The static keep budget reserves the parameter+gradient storage and the
largest single-layer working set; everything beyond that is assumed
available, the kind of static reasoning whose mis-prediction the paper calls
out.
"""

from __future__ import annotations

from repro.baselines.common import BaselinePlan
from repro.graph import NNGraph
from repro.graph.ops import OpKind
from repro.gpusim.allocator import round_size
from repro.hw import MachineSpec
from repro.runtime.plan import Classification, MapClass, SwapInPolicy


def _static_working_set(graph: NNGraph) -> int:
    """Largest *forward* transient of a single layer: inputs + output +
    workspace.

    SuperNeurons sizes its static keep budget against this forward bound
    only.  The true backward transient is larger (gradients plus the feature
    maps restored by swap-in/recompute plus whatever the un-gated prefetcher
    has already pulled in), which is exactly the paper's criticism —
    "superneurons schedules swapping-in without considering the actual
    memory usage, resulting in GPU memory shortage" at batch 640 — so the
    under-estimate is faithful, not a bug."""
    worst = 0
    for layer in graph:
        need = round_size(layer.out_spec.nbytes) + round_size(layer.op.workspace_bytes)
        for j in layer.preds:
            need += round_size(graph[j].out_spec.nbytes)
        worst = max(worst, need)
    return worst


def plan_superneurons(graph: NNGraph, machine: MachineSpec) -> BaselinePlan:
    """Build the SuperNeurons classification for ``graph`` on ``machine``.

    Note the plan depends only on the graph and the memory capacity — never
    on measured times — so it is identical on the x86 and POWER9 machines
    (the paper's Table 3 shows exactly that)."""
    budget = (
        machine.usable_gpu_memory
        - 2 * round_size(graph.total_param_bytes)
        - _static_working_set(graph)
    )
    classes: dict[int, MapClass] = {}
    kept = 0
    classifiable = graph.classifiable_maps()
    for i in sorted(classifiable, reverse=True):  # from the output layer
        size = round_size(graph[i].out_spec.nbytes)
        if kept + size <= budget:
            classes[i] = MapClass.KEEP
            kept += size
    # SuperNeurons recomputes only the cheap unary layers (BN, activation,
    # pooling, LRN) whose input is the immediately preceding — offloaded —
    # tensor; convolutions, joins (add/concat) and everything else swap.
    # Recomputing joins would recurse through the identity path of every
    # residual block in a stage and materialise the whole stage at once.
    cheap = {
        OpKind.BATCHNORM, OpKind.RELU, OpKind.POOL_MAX,
        OpKind.POOL_AVG, OpKind.GLOBAL_AVG_POOL, OpKind.LRN,
    }
    for i in classifiable:
        if i in classes:
            continue
        layer = graph[i]
        if layer.op.kind in cheap and layer.op.recomputable:
            classes[i] = MapClass.RECOMPUTE
        else:
            classes[i] = MapClass.SWAP
    return BaselinePlan(
        name="superneurons",
        classification=Classification(classes),
        policy=SwapInPolicy.SUPERNEURONS,
    )
