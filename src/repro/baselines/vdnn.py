"""vDNN-style swap-only baseline (Rhu et al., MICRO'16), cited by the paper
as related work.

vDNN's "dyn" policy offloads the inputs of convolutional layers and keeps
the cheap-to-hold rest; in our map-per-layer formulation that means: a map
consumed by at least one convolution is swapped, everything else is kept.
This is a faithful *shape* of vDNN (swap-only, conv-focused, no recompute)
rather than a re-implementation of its allocator, and is included as an
extension baseline beyond the paper's own comparison set."""

from __future__ import annotations

from repro.baselines.common import BaselinePlan
from repro.graph import NNGraph
from repro.graph.ops import OpKind
from repro.hw import MachineSpec
from repro.runtime.plan import Classification, MapClass, SwapInPolicy


def plan_vdnn(graph: NNGraph, machine: MachineSpec | None = None) -> BaselinePlan:
    """Swap maps feeding convolutions; keep the rest."""
    classes: dict[int, MapClass] = {}
    for i in graph.classifiable_maps():
        feeds_conv = any(
            graph[k].op.kind is OpKind.CONV for k in graph.consumers[i]
        )
        classes[i] = MapClass.SWAP if feeds_conv else MapClass.KEEP
    return BaselinePlan(
        name="vdnn",
        classification=Classification(classes),
        policy=SwapInPolicy.NAIVE,
    )
