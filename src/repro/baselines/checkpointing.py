"""Sublinear-memory checkpointing (Chen et al., "Training Deep Nets with
Sublinear Memory Cost", 2016) — the pure-recompute line of work the paper
cites, implemented properly.

Naive recompute-all recurses from every backward use to the network input
and materialises entire stages at once (it OOMs on deep residual nets — see
``plan_recompute_all``).  Chen's method instead *checkpoints* every k-th
activation (k ≈ √n) and recomputes only within a segment, bounding both the
extra compute and the transient memory to one segment.

Checkpoint selection here: the INPUT map, every k-th classifiable map, all
join outputs (residual adds / concats — keeping them prevents recursion
across segment boundaries through identity paths), and anything
non-recomputable.  Everything else is recomputed from the nearest upstream
checkpoints.  No swapping is used, true to the original method.
"""

from __future__ import annotations

import math

from repro.baselines.common import BaselinePlan
from repro.graph import NNGraph
from repro.graph.ops import OpKind
from repro.hw import MachineSpec
from repro.runtime.plan import Classification, MapClass, SwapInPolicy


def plan_checkpoint(
    graph: NNGraph,
    machine: MachineSpec | None = None,
    segment_length: int | None = None,
) -> BaselinePlan:
    """Keep every ``segment_length``-th map (default √n) plus joins and the
    input; recompute the rest."""
    classifiable = graph.classifiable_maps()
    n = len(classifiable)
    k = segment_length or max(2, math.isqrt(n))
    classes: dict[int, MapClass] = {}
    for pos, i in enumerate(classifiable):
        layer = graph[i]
        is_checkpoint = (
            pos % k == 0
            or layer.op.kind in (OpKind.INPUT, OpKind.ADD, OpKind.CONCAT)
            or not layer.op.recomputable
        )
        classes[i] = MapClass.KEEP if is_checkpoint else MapClass.RECOMPUTE
    return BaselinePlan(
        name=f"checkpoint(k={k})",
        classification=Classification(classes),
        policy=SwapInPolicy.EAGER,  # irrelevant: no swaps
    )
