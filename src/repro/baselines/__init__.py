"""Baseline out-of-core strategies the paper compares against (§5).

Every baseline is expressed as a *planner*: a function from (graph, machine)
to a :class:`~repro.runtime.plan.Classification` plus the
:class:`~repro.runtime.plan.SwapInPolicy` it executes with, so all methods
run through the exact same runtime and simulator as PoocH.
"""

from repro.baselines.checkpointing import plan_checkpoint
from repro.baselines.common import BaselinePlan, run_plan
from repro.baselines.incore import plan_incore
from repro.baselines.recompute_all import plan_recompute_all
from repro.baselines.superneurons import plan_superneurons
from repro.baselines.swapall import plan_swap_all, plan_swap_all_unscheduled
from repro.baselines.swapopt import plan_swap_opt
from repro.baselines.vdnn import plan_vdnn

__all__ = [
    "BaselinePlan",
    "run_plan",
    "plan_incore",
    "plan_swap_all",
    "plan_swap_all_unscheduled",
    "plan_swap_opt",
    "plan_superneurons",
    "plan_vdnn",
    "plan_recompute_all",
    "plan_checkpoint",
]
