"""Shared baseline plumbing: a (classification, policy) pair and a uniform
execution helper so every method measures through the same runtime."""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph import NNGraph
from repro.gpusim import RunResult
from repro.hw import CostModel, MachineSpec
from repro.runtime.executor import execute
from repro.runtime.plan import Classification, SwapInPolicy


@dataclass(frozen=True)
class BaselinePlan:
    """A baseline's decision: what to do with each map, and when swap-ins
    start."""

    name: str
    classification: Classification
    policy: SwapInPolicy

    def execute(
        self, graph: NNGraph, machine: MachineSpec,
        cost_model: CostModel | None = None,
    ) -> RunResult:
        return execute(
            graph, self.classification, machine,
            policy=self.policy, cost_model=cost_model,
        )


def run_plan(
    plan: BaselinePlan, graph: NNGraph, machine: MachineSpec,
    cost_model: CostModel | None = None,
) -> RunResult:
    """Uniform ground-truth execution of a baseline plan."""
    return plan.execute(graph, machine, cost_model)
