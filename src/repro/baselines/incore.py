"""The in-core baseline: no swapping, no recomputation (§5.2).

Fails with :class:`~repro.common.errors.OutOfMemoryError` as soon as the
working set exceeds GPU memory — the paper's "in-core execution fails"
outcomes for ResNet50 at batch ≥ 256."""

from __future__ import annotations

from repro.baselines.common import BaselinePlan
from repro.graph import NNGraph
from repro.hw import MachineSpec
from repro.runtime.plan import Classification, SwapInPolicy


def plan_incore(graph: NNGraph, machine: MachineSpec | None = None) -> BaselinePlan:
    """Everything stays on the GPU (``machine`` accepted for planner-signature
    uniformity; in-core needs no machine knowledge)."""
    return BaselinePlan(
        name="in-core",
        classification=Classification.all_keep(graph),
        policy=SwapInPolicy.EAGER,  # irrelevant: no swaps exist
    )
