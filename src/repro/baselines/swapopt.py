"""The "swap-opt" ablation point (§5.1): PoocH's step-1 keep/swap search
only, with the improved swap-in schedule but no recomputation."""

from __future__ import annotations

from repro.baselines.common import BaselinePlan
from repro.graph import NNGraph
from repro.hw import CostModel, MachineSpec
from repro.pooch.classifier import PoochClassifier, PoochConfig
from repro.runtime.profiler import Profile, run_profiling


def plan_swap_opt(
    graph: NNGraph,
    machine: MachineSpec,
    *,
    profile: Profile | None = None,
    cost_model: CostModel | None = None,
    config: PoochConfig | None = None,
) -> BaselinePlan:
    """Profile (unless given) and run only step 1 of the classification."""
    if profile is None:
        profile = run_profiling(graph, machine, cost_model=cost_model)
    cfg = config or PoochConfig()
    classifier = PoochClassifier(graph, profile, machine, cfg)
    classification, _ = classifier.classify(steps=1)
    return BaselinePlan(
        name="swap-opt",
        classification=classification,
        policy=cfg.policy,
    )
