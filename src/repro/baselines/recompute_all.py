"""Recompute-only baseline in the spirit of Chen et al.'s sublinear-memory
training (arXiv 2016), cited by the paper as the pure-recompute line of work.

Every recomputable map is discarded after forward and regenerated on demand;
maps that cannot be recomputed (the mini-batch, dropout masks) swap instead.
With no checkpoint segmentation this recomputes long chains recursively — the
worst case of the recompute method's extra-computation overhead that the
hybrid approach is designed to avoid."""

from __future__ import annotations

from repro.baselines.common import BaselinePlan
from repro.graph import NNGraph
from repro.hw import MachineSpec
from repro.runtime.plan import Classification, SwapInPolicy


def plan_recompute_all(
    graph: NNGraph, machine: MachineSpec | None = None
) -> BaselinePlan:
    return BaselinePlan(
        name="recompute-all",
        classification=Classification.all_recompute(graph),
        policy=SwapInPolicy.EAGER,
    )
