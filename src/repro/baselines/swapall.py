"""Swap-everything baselines (§5.1).

``swap-all (w/o scheduling)`` swaps every feature map and starts each
swap-in together with the computation one step ahead of its consumer — the
paper's base case in Figs. 15/16.  ``swap-all`` keeps the same classification
but adopts PoocH's improved eager swap-in schedule (§4.3)."""

from __future__ import annotations

from repro.baselines.common import BaselinePlan
from repro.graph import NNGraph
from repro.hw import MachineSpec
from repro.runtime.plan import Classification, SwapInPolicy


def plan_swap_all_unscheduled(
    graph: NNGraph, machine: MachineSpec | None = None
) -> BaselinePlan:
    """All maps swapped; naive one-step-lookahead swap-in."""
    return BaselinePlan(
        name="swap-all(w/o scheduling)",
        classification=Classification.all_swap(graph),
        policy=SwapInPolicy.NAIVE,
    )


def plan_swap_all(graph: NNGraph, machine: MachineSpec | None = None) -> BaselinePlan:
    """All maps swapped; eager memory-gated swap-in (§4.3)."""
    return BaselinePlan(
        name="swap-all",
        classification=Classification.all_swap(graph),
        policy=SwapInPolicy.EAGER,
    )
