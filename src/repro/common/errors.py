"""Exception hierarchy for the whole library.

Everything raised deliberately by ``repro`` derives from :class:`ReproError`
so callers can catch library failures without catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A neural-network graph is malformed (cycle, dangling input, shape
    mismatch, duplicate name, ...)."""


class ScheduleError(ReproError):
    """A task schedule could not be built or is internally inconsistent
    (e.g. a task reads a buffer that is never resident)."""


class SimulationError(ReproError):
    """The event-driven simulation reached an invalid state (deadlock that is
    not a memory deadlock, event ordering violation, ...)."""


class OutOfMemoryError(ReproError):
    """GPU memory was exhausted.

    Raised both by the allocator (a strict allocation that cannot be
    satisfied) and by the engine (all streams blocked on memory with nothing
    in flight — the simulated equivalent of ``cudaErrorMemoryAllocation``).

    Attributes:
        requested: bytes the failing allocation asked for (0 if unknown).
        free: bytes free in the pool at failure time.
        capacity: pool capacity in bytes.
        context: human-readable description of what was being executed.
    """

    def __init__(
        self,
        message: str,
        *,
        requested: int = 0,
        free: int = 0,
        capacity: int = 0,
        context: str = "",
    ) -> None:
        super().__init__(message)
        self.requested = requested
        self.free = free
        self.capacity = capacity
        self.context = context


def nearest_keys(key, known, limit: int = 5) -> tuple:
    """The ``limit`` known keys closest to a missed lookup key — numeric
    distance for numbers, fuzzy string matching otherwise.  Diagnostic
    messages attach these so a profile/schedule mismatch names what *was*
    available instead of just what was not."""
    known = list(known)
    if not known:
        return ()
    if isinstance(key, (int, float)) and not isinstance(key, bool) and all(
        isinstance(k, (int, float)) and not isinstance(k, bool) for k in known
    ):
        return tuple(sorted(known, key=lambda k: (abs(k - key), k))[:limit])
    import difflib

    by_text = {str(k): k for k in known}
    matches = difflib.get_close_matches(str(key), list(by_text), n=limit, cutoff=0.0)
    return tuple(by_text[m] for m in matches)


class MissingKeyError(ReproError, KeyError):
    """A lookup into a named table missed.

    Subclasses ``KeyError`` so existing ``except KeyError`` callers keep
    working, but carries the context a bare ``KeyError(key)`` loses:

    Attributes:
        key: the key that missed.
        table: name of the table/run that was probed.
        nearest: closest known keys (see :func:`nearest_keys`).
    """

    def __init__(self, message: str, *, key=None, table: str = "",
                 nearest: tuple = ()) -> None:
        super().__init__(message)
        self.key = key
        self.table = table
        self.nearest = tuple(nearest)

    def __str__(self) -> str:
        # KeyError.__str__ repr()s its argument, which would wrap the whole
        # diagnostic message in quotes; show it verbatim instead
        return str(self.args[0]) if self.args else ""


class ProfileLookupError(MissingKeyError, ScheduleError):
    """A duration lookup against a recorded profile missed — the schedule
    references a layer/map the profiling phase never measured.  Subclasses
    :class:`ScheduleError` (its historical type) and :class:`KeyError`."""


class NumericError(ReproError):
    """The numeric validation backend detected incorrect data movement
    (use-after-free, missing tensor, gradient mismatch)."""


class FaultError(ReproError):
    """An injected fault could not be absorbed by the runtime's resilience
    machinery (see :mod:`repro.faults`)."""


class TransferFaultError(FaultError):
    """A DMA transfer kept failing past the bounded retry budget.

    Attributes:
        tid: the transfer task that gave up.
        attempts: how many attempts were made (1 + retries).
    """

    def __init__(self, message: str, *, tid: str = "", attempts: int = 0) -> None:
        super().__init__(message)
        self.tid = tid
        self.attempts = attempts


class SpuriousOOMError(OutOfMemoryError):
    """A *transient* allocation failure injected by the fault layer: memory
    was actually available, the allocator just misbehaved (driver hiccup,
    temporary pinned-buffer exhaustion).  Unlike a plain
    :class:`OutOfMemoryError` — which means the plan does not fit — a retry
    of the same plan may succeed, and the resilient executor treats the two
    differently."""
