"""Exception hierarchy for the whole library.

Everything raised deliberately by ``repro`` derives from :class:`ReproError`
so callers can catch library failures without catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A neural-network graph is malformed (cycle, dangling input, shape
    mismatch, duplicate name, ...)."""


class ScheduleError(ReproError):
    """A task schedule could not be built or is internally inconsistent
    (e.g. a task reads a buffer that is never resident)."""


class SimulationError(ReproError):
    """The event-driven simulation reached an invalid state (deadlock that is
    not a memory deadlock, event ordering violation, ...)."""


class OutOfMemoryError(ReproError):
    """GPU memory was exhausted.

    Raised both by the allocator (a strict allocation that cannot be
    satisfied) and by the engine (all streams blocked on memory with nothing
    in flight — the simulated equivalent of ``cudaErrorMemoryAllocation``).

    Attributes:
        requested: bytes the failing allocation asked for (0 if unknown).
        free: bytes free in the pool at failure time.
        capacity: pool capacity in bytes.
        context: human-readable description of what was being executed.
    """

    def __init__(
        self,
        message: str,
        *,
        requested: int = 0,
        free: int = 0,
        capacity: int = 0,
        context: str = "",
    ) -> None:
        super().__init__(message)
        self.requested = requested
        self.free = free
        self.capacity = capacity
        self.context = context


class NumericError(ReproError):
    """The numeric validation backend detected incorrect data movement
    (use-after-free, missing tensor, gradient mismatch)."""


class FaultError(ReproError):
    """An injected fault could not be absorbed by the runtime's resilience
    machinery (see :mod:`repro.faults`)."""


class TransferFaultError(FaultError):
    """A DMA transfer kept failing past the bounded retry budget.

    Attributes:
        tid: the transfer task that gave up.
        attempts: how many attempts were made (1 + retries).
    """

    def __init__(self, message: str, *, tid: str = "", attempts: int = 0) -> None:
        super().__init__(message)
        self.tid = tid
        self.attempts = attempts


class SpuriousOOMError(OutOfMemoryError):
    """A *transient* allocation failure injected by the fault layer: memory
    was actually available, the allocator just misbehaved (driver hiccup,
    temporary pinned-buffer exhaustion).  Unlike a plain
    :class:`OutOfMemoryError` — which means the plan does not fit — a retry
    of the same plan may succeed, and the resilient executor treats the two
    differently."""
