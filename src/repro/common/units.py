"""Byte and time units, plus human-readable formatting helpers.

All sizes in the code base are plain ``int`` byte counts and all times are
``float`` seconds of *simulated* time; these constants keep call sites
readable (``16 * GiB``, ``12.5 * GB``) without introducing a unit type.
"""

from __future__ import annotations

# Decimal (vendor-style) byte units — interconnect bandwidths are quoted in
# these (e.g. "PCIe gen3 x16 = 16 GB/s").
KB: int = 10**3
MB: int = 10**6
GB: int = 10**9

# Binary byte units — memory capacities are quoted in these (a "16 GB" V100
# exposes 16 GiB of HBM2).
KiB: int = 2**10
MiB: int = 2**20
GiB: int = 2**30

_BYTE_STEPS = (
    (GiB, "GiB"),
    (MiB, "MiB"),
    (KiB, "KiB"),
)

_TIME_STEPS = (
    (1.0, "s"),
    (1e-3, "ms"),
    (1e-6, "us"),
    (1e-9, "ns"),
)


def format_bytes(n: float) -> str:
    """Render a byte count with a binary suffix, e.g. ``format_bytes(3 * MiB)
    == '3.00 MiB'``. Negative values keep their sign."""
    sign = "-" if n < 0 else ""
    n = abs(n)
    for step, suffix in _BYTE_STEPS:
        if n >= step:
            return f"{sign}{n / step:.2f} {suffix}"
    return f"{sign}{n:.0f} B"


def format_seconds(t: float) -> str:
    """Render a duration with an SI suffix, e.g. ``format_seconds(2.5e-3) ==
    '2.500 ms'``."""
    sign = "-" if t < 0 else ""
    t = abs(t)
    if t == 0:
        return "0 s"
    for step, suffix in _TIME_STEPS:
        if t >= step:
            return f"{sign}{t / step:.3f} {suffix}"
    return f"{sign}{t:.3g} s"
