"""Shared low-level utilities: units, errors, configuration helpers.

This package has no dependencies on any other ``repro`` subpackage; every
other layer of the system may import from it freely.
"""

from repro.common.errors import (
    GraphError,
    OutOfMemoryError,
    ReproError,
    ScheduleError,
    SimulationError,
)
from repro.common.units import (
    GB,
    GiB,
    KB,
    KiB,
    MB,
    MiB,
    format_bytes,
    format_seconds,
)

__all__ = [
    "GB",
    "GiB",
    "KB",
    "KiB",
    "MB",
    "MiB",
    "format_bytes",
    "format_seconds",
    "ReproError",
    "GraphError",
    "ScheduleError",
    "SimulationError",
    "OutOfMemoryError",
]
