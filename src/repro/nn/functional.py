"""Dimension-agnostic numpy implementations of the operator set.

Convolution and pooling work for any number of spatial dimensions (the model
zoo uses 2 and 3) via :func:`numpy.lib.stride_tricks.sliding_window_view`.
Backward passes follow the standard analytic formulas; each is exercised
against numerical (finite-difference) gradients in
``tests/test_nn_gradients.py``.

Conventions: activations are ``(N, C, *spatial)`` float arrays; every
``*_backward`` returns gradients in the same order as the forward inputs.
All kernels are deterministic — a recomputation replays bit-identically,
which the recompute-correctness tests rely on.
"""

from __future__ import annotations

import itertools

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

_LETTERS = "uvwxyz"


def _windows(x: np.ndarray, ksize: tuple[int, ...], stride: tuple[int, ...],
             pad: tuple[int, ...]) -> tuple[np.ndarray, tuple[int, ...]]:
    """Strided sliding windows of a padded input.

    Returns ``(win, padded_shape)`` where ``win`` has shape
    ``(N, C, *out_spatial, *ksize)``.
    """
    nd = len(ksize)
    xp = np.pad(x, [(0, 0), (0, 0)] + [(p, p) for p in pad])
    win = sliding_window_view(xp, ksize, axis=tuple(range(2, 2 + nd)))
    sel = (slice(None), slice(None)) + tuple(slice(None, None, s) for s in stride)
    return win[sel], xp.shape


def _unpad(dxp: np.ndarray, pad: tuple[int, ...]) -> np.ndarray:
    sel = [slice(None), slice(None)]
    for p in pad:
        sel.append(slice(p, dxp.shape[len(sel)] - p) if p else slice(None))
    return dxp[tuple(sel)]


# ---------------------------------------------------------------------------
# convolution


def conv_forward(
    x: np.ndarray,
    w: np.ndarray,
    b: np.ndarray | None,
    stride: tuple[int, ...],
    pad: tuple[int, ...],
    groups: int = 1,
) -> np.ndarray:
    """N-dimensional grouped convolution (cross-correlation, cuDNN-style).

    ``x``: (N, Cin, *S); ``w``: (Cout, Cin/groups, *k); returns
    (N, Cout, *out_S).
    """
    nd = w.ndim - 2
    ksize = w.shape[2:]
    win, _ = _windows(x, ksize, stride, pad)  # (N, Cin, *out, *k)
    sp = _LETTERS[:nd]  # out-spatial letters
    kl = _LETTERS[nd:2 * nd]  # kernel letters
    eq = f"nc{sp}{kl},oc{kl}->no{sp}"
    cin_g = w.shape[1]
    cout_g = w.shape[0] // groups
    outs = []
    for g in range(groups):
        xg = win[:, g * cin_g:(g + 1) * cin_g]
        wg = w[g * cout_g:(g + 1) * cout_g]
        outs.append(np.einsum(eq, xg, wg, optimize=True))
    y = np.concatenate(outs, axis=1)
    if b is not None:
        y += b.reshape((1, -1) + (1,) * nd)
    return y


def conv_backward(
    dy: np.ndarray,
    x: np.ndarray,
    w: np.ndarray,
    stride: tuple[int, ...],
    pad: tuple[int, ...],
    groups: int = 1,
    with_bias: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Gradients (dx, dw, db) of :func:`conv_forward`."""
    nd = w.ndim - 2
    ksize = w.shape[2:]
    win, padded_shape = _windows(x, ksize, stride, pad)
    sp = _LETTERS[:nd]
    kl = _LETTERS[nd:2 * nd]
    cin_g = w.shape[1]
    cout_g = w.shape[0] // groups

    # weight gradient: dW[o,c,*k] = sum_{n,pos} dy[n,o,*pos] win[n,c,*pos,*k]
    dw_eq = f"no{sp},nc{sp}{kl}->oc{kl}"
    dws = []
    for g in range(groups):
        dyg = dy[:, g * cout_g:(g + 1) * cout_g]
        xg = win[:, g * cin_g:(g + 1) * cin_g]
        dws.append(np.einsum(dw_eq, dyg, xg, optimize=True))
    dw = np.concatenate(dws, axis=0)

    # data gradient: scatter dy·w back over the padded input, one kernel
    # offset at a time (kernels are small, loops stay cheap)
    dxp = np.zeros(padded_shape, dtype=x.dtype)
    out_spatial = dy.shape[2:]
    dx_eq = f"no{sp},oc->nc{sp}"
    for kidx in itertools.product(*(range(k) for k in ksize)):
        sel = [slice(None), slice(None)]
        for d, (ki, s, o) in enumerate(zip(kidx, stride, out_spatial)):
            sel.append(slice(ki, ki + s * o, s))
        for g in range(groups):
            dyg = dy[:, g * cout_g:(g + 1) * cout_g]
            wg = w[(slice(g * cout_g, (g + 1) * cout_g), slice(None)) + kidx]
            contrib = np.einsum(dx_eq, dyg, wg, optimize=True)
            dxp[tuple(sel)][:, g * cin_g:(g + 1) * cin_g] += contrib
    dx = _unpad(dxp, pad)
    db = dy.sum(axis=tuple(i for i in range(dy.ndim) if i != 1)) if with_bias else None
    return dx, dw, db


# ---------------------------------------------------------------------------
# linear


def linear_forward(x: np.ndarray, w: np.ndarray, b: np.ndarray | None) -> np.ndarray:
    """Fully connected; >2-D inputs are flattened. ``w``: (out, in)."""
    x2 = x.reshape(x.shape[0], -1)
    y = x2 @ w.T
    if b is not None:
        y += b
    return y


def linear_backward(
    dy: np.ndarray, x: np.ndarray, w: np.ndarray, with_bias: bool = True
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    x2 = x.reshape(x.shape[0], -1)
    dx = (dy @ w).reshape(x.shape)
    dw = dy.T @ x2
    db = dy.sum(axis=0) if with_bias else None
    return dx, dw, db


# ---------------------------------------------------------------------------
# batch normalisation (training mode, per-channel over batch+spatial)

_EPS = 1e-5


def _bn_axes(x: np.ndarray) -> tuple[int, ...]:
    return (0,) + tuple(range(2, x.ndim))


def batchnorm_forward(
    x: np.ndarray, gamma: np.ndarray, beta: np.ndarray
) -> np.ndarray:
    axes = _bn_axes(x)
    mean = x.mean(axis=axes, keepdims=True)
    var = x.var(axis=axes, keepdims=True)
    xhat = (x - mean) / np.sqrt(var + _EPS)
    shape = (1, -1) + (1,) * (x.ndim - 2)
    return gamma.reshape(shape) * xhat + beta.reshape(shape)


def batchnorm_backward(
    dy: np.ndarray, x: np.ndarray, gamma: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(dx, dgamma, dbeta); statistics are recomputed from ``x`` — the tiny
    saved-stat buffers live on the GPU in the memory model, so recomputing
    them here keeps the payloads functionally pure."""
    axes = _bn_axes(x)
    m = float(np.prod([x.shape[a] for a in axes]))
    mean = x.mean(axis=axes, keepdims=True)
    var = x.var(axis=axes, keepdims=True)
    invstd = 1.0 / np.sqrt(var + _EPS)
    xhat = (x - mean) * invstd
    shape = (1, -1) + (1,) * (x.ndim - 2)
    dgamma = (dy * xhat).sum(axis=axes)
    dbeta = dy.sum(axis=axes)
    dxhat = dy * gamma.reshape(shape)
    dx = (
        dxhat
        - dxhat.mean(axis=axes, keepdims=True)
        - xhat * (dxhat * xhat).mean(axis=axes, keepdims=True)
    ) * invstd
    # note: using mean ≡ sum/m keeps this the textbook formula
    del m
    return dx, dgamma, dbeta


# ---------------------------------------------------------------------------
# activations / elementwise


def relu_forward(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_backward(dy: np.ndarray, y: np.ndarray) -> np.ndarray:
    """ReLU gradient from the *output* (what cuDNN's activation backward
    uses — the reason ReLU-ish ops only need their output kept)."""
    return dy * (y > 0)


def add_forward(xs: list[np.ndarray]) -> np.ndarray:
    y = xs[0].copy()
    for x in xs[1:]:
        y += x
    return y


def add_backward(dy: np.ndarray, n_inputs: int) -> list[np.ndarray]:
    return [dy.copy() for _ in range(n_inputs)]


def concat_forward(xs: list[np.ndarray], axis: int) -> np.ndarray:
    return np.concatenate(xs, axis=axis)


def concat_backward(dy: np.ndarray, sizes: list[int], axis: int) -> list[np.ndarray]:
    split_points = np.cumsum(sizes)[:-1]
    return [np.ascontiguousarray(s) for s in np.split(dy, split_points, axis=axis)]


# ---------------------------------------------------------------------------
# pooling


def maxpool_forward(x: np.ndarray, ksize, stride, pad) -> np.ndarray:
    win, _ = _windows(x, ksize, stride, pad)
    return win.max(axis=tuple(range(win.ndim - len(ksize), win.ndim)))


def maxpool_backward(dy: np.ndarray, x: np.ndarray, y: np.ndarray,
                     ksize, stride, pad) -> np.ndarray:
    """Routes each output gradient to the argmax position(s), matching the
    x/y/dy signature of cuDNN's pooling backward.  Ties (exactly equal
    values inside one window) split the gradient — measure-zero for
    continuous data."""
    nd = len(ksize)
    win, padded_shape = _windows(x, ksize, stride, pad)
    kaxes = tuple(range(win.ndim - nd, win.ndim))
    mask = win == np.expand_dims(y, axis=kaxes)
    counts = mask.sum(axis=kaxes, keepdims=True)
    grad_win = mask * np.expand_dims(dy, axis=kaxes) / counts
    dxp = np.zeros(padded_shape, dtype=x.dtype)
    out_spatial = y.shape[2:]
    for kidx in itertools.product(*(range(k) for k in ksize)):
        sel = [slice(None), slice(None)]
        for ki, s, o in zip(kidx, stride, out_spatial):
            sel.append(slice(ki, ki + s * o, s))
        dxp[tuple(sel)] += grad_win[(Ellipsis,) + kidx]
    return _unpad(dxp, pad)


def avgpool_forward(x: np.ndarray, ksize, stride, pad) -> np.ndarray:
    win, _ = _windows(x, ksize, stride, pad)
    return win.mean(axis=tuple(range(win.ndim - len(ksize), win.ndim)))


def avgpool_backward(dy: np.ndarray, in_shape: tuple[int, ...],
                     ksize, stride, pad, dtype=np.float32) -> np.ndarray:
    """Average pooling backward needs only shapes — no feature maps."""
    nd = len(ksize)
    k_elems = float(np.prod(ksize))
    padded = list(in_shape)
    for d in range(nd):
        padded[2 + d] += 2 * pad[d]
    dxp = np.zeros(padded, dtype=dtype)
    out_spatial = dy.shape[2:]
    share = dy / k_elems
    for kidx in itertools.product(*(range(k) for k in ksize)):
        sel = [slice(None), slice(None)]
        for ki, s, o in zip(kidx, stride, out_spatial):
            sel.append(slice(ki, ki + s * o, s))
        dxp[tuple(sel)] += share
    return _unpad(dxp, tuple(pad))


def global_avg_pool_forward(x: np.ndarray) -> np.ndarray:
    return x.mean(axis=tuple(range(2, x.ndim)))


def global_avg_pool_backward(dy: np.ndarray, in_shape: tuple[int, ...]) -> np.ndarray:
    spatial = in_shape[2:]
    scale = 1.0 / float(np.prod(spatial))
    return np.broadcast_to(
        dy.reshape(dy.shape + (1,) * len(spatial)), in_shape
    ).copy() * scale


# ---------------------------------------------------------------------------
# LRN (across channels, AlexNet-style)

_LRN_K, _LRN_ALPHA, _LRN_BETA = 2.0, 1e-4, 0.75


def _lrn_scale(x: np.ndarray, size: int) -> np.ndarray:
    c = x.shape[1]
    sq = x * x
    acc = np.zeros_like(x)
    half = size // 2
    for j in range(-half, half + 1):
        lo, hi = max(0, -j), min(c, c - j)
        acc[:, lo:hi] += sq[:, lo + j:hi + j]
    return _LRN_K + (_LRN_ALPHA / size) * acc


def lrn_forward(x: np.ndarray, size: int) -> np.ndarray:
    return x * _lrn_scale(x, size) ** (-_LRN_BETA)


def lrn_backward(dy: np.ndarray, x: np.ndarray, y: np.ndarray, size: int) -> np.ndarray:
    """Standard Caffe-style LRN gradient (needs x and y)."""
    scale = _lrn_scale(x, size)
    c = x.shape[1]
    half = size // 2
    ratio = dy * y / scale  # (dy ⊙ y) / scale, to be window-summed
    acc = np.zeros_like(x)
    for j in range(-half, half + 1):
        lo, hi = max(0, -j), min(c, c - j)
        acc[:, lo:hi] += ratio[:, lo + j:hi + j]
    return dy * scale ** (-_LRN_BETA) - (2.0 * _LRN_ALPHA * _LRN_BETA / size) * x * acc


# ---------------------------------------------------------------------------
# loss


def softmax_xent_forward(logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Per-sample cross-entropy losses (shape (N,))."""
    z = logits - logits.max(axis=1, keepdims=True)
    logp = z - np.log(np.exp(z).sum(axis=1, keepdims=True))
    return -logp[np.arange(len(targets)), targets]


def softmax_xent_backward(
    dy: np.ndarray, logits: np.ndarray, targets: np.ndarray
) -> np.ndarray:
    """``dy`` is the gradient w.r.t. the per-sample losses."""
    z = logits - logits.max(axis=1, keepdims=True)
    p = np.exp(z)
    p /= p.sum(axis=1, keepdims=True)
    p[np.arange(len(targets)), targets] -= 1.0
    return p * dy[:, None]


# ---------------------------------------------------------------------------
# sequence-model kernels (Transformer support)


def token_linear_forward(x: np.ndarray, w: np.ndarray,
                         b: np.ndarray | None) -> np.ndarray:
    """Per-token linear on (B, L, D); ``w``: (out, D)."""
    y = np.einsum("bld,od->blo", x, w, optimize=True)
    if b is not None:
        y += b
    return y


def token_linear_backward(
    dy: np.ndarray, x: np.ndarray, w: np.ndarray, with_bias: bool = True
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    dx = np.einsum("blo,od->bld", dy, w, optimize=True)
    dw = np.einsum("blo,bld->od", dy, x, optimize=True)
    db = dy.sum(axis=(0, 1)) if with_bias else None
    return dx, dw, db


def attention_scores_forward(q: np.ndarray, k: np.ndarray,
                             heads: int) -> np.ndarray:
    """(B, L, D) x (B, L, D) -> (B, H, L, L), scaled by 1/sqrt(D/H)."""
    b, l, d = q.shape
    dh = d // heads
    qh = q.reshape(b, l, heads, dh)
    kh = k.reshape(b, l, heads, dh)
    scale = 1.0 / np.sqrt(dh)
    return np.einsum("blhd,bmhd->bhlm", qh, kh, optimize=True) * scale


def attention_scores_backward(
    dy: np.ndarray, q: np.ndarray, k: np.ndarray, heads: int
) -> tuple[np.ndarray, np.ndarray]:
    b, l, d = q.shape
    dh = d // heads
    scale = 1.0 / np.sqrt(dh)
    kh = k.reshape(b, l, heads, dh)
    qh = q.reshape(b, l, heads, dh)
    dq = np.einsum("bhlm,bmhd->blhd", dy, kh, optimize=True) * scale
    dk = np.einsum("bhlm,blhd->bmhd", dy, qh, optimize=True) * scale
    return dq.reshape(b, l, d), dk.reshape(b, l, d)


def attention_apply_forward(scores: np.ndarray, v: np.ndarray) -> np.ndarray:
    """(B, H, L, L) x (B, L, D) -> (B, L, D)."""
    b, h, l, _ = scores.shape
    dh = v.shape[2] // h
    vh = v.reshape(b, l, h, dh)
    out = np.einsum("bhlm,bmhd->blhd", scores, vh, optimize=True)
    return out.reshape(b, l, h * dh)


def attention_apply_backward(
    dy: np.ndarray, scores: np.ndarray, v: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    b, h, l, _ = scores.shape
    dh = v.shape[2] // h
    vh = v.reshape(b, l, h, dh)
    dyh = dy.reshape(b, l, h, dh)
    dscores = np.einsum("blhd,bmhd->bhlm", dyh, vh, optimize=True)
    dv = np.einsum("bhlm,blhd->bmhd", scores, dyh, optimize=True)
    return dscores, dv.reshape(b, l, h * dh)


def softmax_forward(x: np.ndarray) -> np.ndarray:
    """Softmax over the last axis."""
    z = x - x.max(axis=-1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=-1, keepdims=True)


def softmax_backward(dy: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Gradient from the output only: ``dx = y * (dy - sum(dy*y))``."""
    s = (dy * y).sum(axis=-1, keepdims=True)
    return y * (dy - s)


_LN_EPS = 1e-5


def layernorm_forward(x: np.ndarray, gamma: np.ndarray,
                      beta: np.ndarray) -> np.ndarray:
    """Normalise over the last axis of (B, L, D)."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    xhat = (x - mean) / np.sqrt(var + _LN_EPS)
    return gamma * xhat + beta


def layernorm_backward(
    dy: np.ndarray, x: np.ndarray, gamma: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    invstd = 1.0 / np.sqrt(var + _LN_EPS)
    xhat = (x - mean) * invstd
    dgamma = (dy * xhat).sum(axis=tuple(range(x.ndim - 1)))
    dbeta = dy.sum(axis=tuple(range(x.ndim - 1)))
    dxhat = dy * gamma
    dx = (
        dxhat
        - dxhat.mean(axis=-1, keepdims=True)
        - xhat * (dxhat * xhat).mean(axis=-1, keepdims=True)
    ) * invstd
    return dx, dgamma, dbeta


# ---------------------------------------------------------------------------
# slicing / upsampling (layer splitting & U-Net decoders)


def upsample_forward(x: np.ndarray, scale: int) -> np.ndarray:
    """Nearest-neighbour upsampling over all spatial dims of (N, C, *S)."""
    y = x
    for axis in range(2, x.ndim):
        y = np.repeat(y, scale, axis=axis)
    return y


def upsample_backward(dy: np.ndarray, scale: int) -> np.ndarray:
    """Sum each ``scale``-block back to the source element."""
    nd = dy.ndim - 2
    shape = list(dy.shape[:2])
    for d in range(nd):
        shape.extend([dy.shape[2 + d] // scale, scale])
    blocked = dy.reshape(shape)
    # sum the interleaved scale axes (positions 3, 5, ... from the left)
    axes = tuple(3 + 2 * d for d in range(nd))
    # after reshape the layout is (N, C, S1', s, S2', s, ...)
    return blocked.sum(axis=axes)
