"""Numpy reference kernels: forward *and* backward for every op kind.

These exist for one purpose: proving that the out-of-core schedules move the
right data at the right time.  The numeric backend
(:mod:`repro.runtime.numeric`) executes them as task payloads inside the
simulator and checks that swap/recompute/hybrid plans produce weight
gradients bit-identical to the in-core run.  They are written for clarity on
small tensors, not for speed.
"""

from repro.nn import functional
from repro.nn.functional import (
    add_backward,
    add_forward,
    avgpool_backward,
    avgpool_forward,
    batchnorm_backward,
    batchnorm_forward,
    concat_backward,
    concat_forward,
    conv_backward,
    conv_forward,
    global_avg_pool_backward,
    global_avg_pool_forward,
    linear_backward,
    linear_forward,
    lrn_backward,
    lrn_forward,
    maxpool_backward,
    maxpool_forward,
    relu_backward,
    relu_forward,
    softmax_xent_backward,
    softmax_xent_forward,
)

__all__ = ["functional"] + [n for n in dir(functional) if n.endswith(("_forward", "_backward"))]
