"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``models`` — list the model zoo.
* ``summary <model> [--batch N]`` — graph statistics and memory estimate.
* ``optimize <model> [--batch N] [--machine x86|power9]`` — run PoocH and
  print the plan.
* ``run <model> --method pooch|in-core|swap-all|swap-all-naive|superneurons|
  swap-opt|vdnn|recompute-all|checkpoint`` — simulate one iteration and
  report throughput.
* ``timeline <model> [--plan ...] [--policy ...]`` — render the ASCII
  execution timeline.
* ``robustness <model> [--noise-levels ...] [--fault-seed N]
  [--fault-seeds K]`` — sweep seeded fault levels, executing each scenario's
  plan under K fault seeds (lockstep-batched when the spec allows), and
  report P50/P95/P99 makespan, degradation, and OOM/fallback/retry rates.
* ``serve [--port N] [--plan-cache DIR] [--serve-workers N] ...`` — run the
  long-lived planning service (request coalescing, warm plan cache,
  per-tenant quotas; see ``repro.serve``).
* ``client <submit|status|result|cancel|events|stats|health|shutdown>`` —
  talk to a running planning service.

``run`` additionally accepts ``--faults SPEC --fault-seed N`` to execute
under deterministic injected faults (see ``repro.faults``).

Every subcommand accepts the observability flags ``--log-level``,
``--log-json`` and ``--metrics OUT.json`` (see ``repro.obs``); ``optimize``
and ``run`` additionally accept ``--trace TRACE.json`` for a Chrome trace of
the search phases plus the ground-truth timeline.

All commands are offline simulations; nothing touches real hardware.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Sequence

from repro.baselines import (
    plan_checkpoint,
    plan_incore,
    plan_recompute_all,
    plan_superneurons,
    plan_swap_all,
    plan_swap_all_unscheduled,
    plan_swap_opt,
    plan_vdnn,
)
from repro.common.errors import OutOfMemoryError, ReproError
from repro.common.units import GiB, format_bytes
from repro.faults import FaultInjector, FaultSpec
from repro.hw import MachineSpec, POWER9_V100, X86_V100, multi_gpu
from repro.models import MODEL_ZOO, build_model
from repro.obs import LEVELS, MetricsRegistry, configure_logging, metrics
from repro.pooch import PoocH, PoochConfig
from repro.runtime import Classification, SwapInPolicy, execute, images_per_second

_MACHINES: dict[str, MachineSpec] = {"x86": X86_V100, "power9": POWER9_V100}

_SIMPLE_PLANNERS = {
    "in-core": plan_incore,
    "swap-all": plan_swap_all,
    "swap-all-naive": plan_swap_all_unscheduled,
    "superneurons": plan_superneurons,
    "vdnn": plan_vdnn,
    "recompute-all": plan_recompute_all,
    "checkpoint": plan_checkpoint,
}


def _positive_int(text: str) -> int:
    """argparse type for counts that must be >= 1 (--workers, --budget)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value}")
    return value


def _nonneg_int(text: str) -> int:
    """argparse type for values that must be >= 0 (--fault-seed)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {value}")
    return value


def _injector(args) -> FaultInjector | None:
    """Build the fault injector from --faults/--fault-seed (None when off)."""
    if not getattr(args, "faults", None):
        return None
    spec = FaultSpec.parse(args.faults)
    if not spec.active:
        return None
    return FaultInjector(spec, seed=args.fault_seed)


def _add_fault_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--faults", metavar="SPEC",
                   help="inject deterministic faults, e.g. "
                        "'duration_noise=0.1,stall_prob=0.05,oom_prob=0.01' "
                        "(keys: duration_noise profile_noise bandwidth_factor "
                        "stall_prob stall_time oom_prob host_oom_prob "
                        "host_capacity_factor)")
    p.add_argument("--fault-seed", type=_nonneg_int, default=0,
                   help="seed for the fault injector; a fixed seed makes a "
                        "faulted run bit-reproducible")


def _obs_parent() -> argparse.ArgumentParser:
    """Shared observability flags, attached to every subcommand."""
    p = argparse.ArgumentParser(add_help=False)
    g = p.add_argument_group("observability")
    g.add_argument("--log-level", choices=LEVELS,
                   help="enable structured logging at this level "
                        "(silent by default)")
    g.add_argument("--log-json", action="store_true",
                   help="emit log records as JSON lines (implies logging on)")
    g.add_argument("--metrics", metavar="OUT.json",
                   help="write a RunMetrics JSON document (counters, gauges, "
                        "timers, spans) when the command finishes")
    return p


def _write_trace(args, result, label: str, multi=None) -> None:
    """Write the unified Chrome trace: search-phase spans + the run.

    With a multi-device result, each device contributes its own group of
    stream rows (shifted by stagger and link contention) instead of the
    single-device timeline.
    """
    if not getattr(args, "trace", None):
        return
    from repro.analysis import ChromeTraceBuilder

    builder = ChromeTraceBuilder(label)
    registry = metrics.active()
    if registry is not None and registry.spans:
        builder.add_spans(registry.spans, name="pipeline phases")
    if multi is not None:
        builder.add_multi_device_run(multi, name="ground truth")
    elif result is not None:
        builder.add_run(result, name="ground truth")
    builder.write(args.trace)
    print(f"chrome trace written to {args.trace} "
          "(open at https://ui.perfetto.dev)")


def _machine(args) -> MachineSpec:
    """The selected machine, widened to N data-parallel devices."""
    base = _MACHINES[args.machine]
    devices = getattr(args, "devices", 1)
    if devices > 1:
        return multi_gpu(base, devices)
    return base


def _build(args) -> "NNGraph":  # noqa: F821 - doc reference
    kwargs = {}
    if args.model == "resnext101_3d":
        kwargs["input_size"] = tuple(args.input_size)
    return build_model(args.model, batch=args.batch, **kwargs)


def _add_model_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("model", help="model name (see `models`)")
    p.add_argument("--batch", type=_positive_int, default=32,
                   help="batch size (positive integer)")
    p.add_argument("--input-size", type=_positive_int, nargs=3,
                   default=(16, 112, 112), metavar=("T", "H", "W"),
                   help="3D input size for resnext101_3d "
                        "(three positive integers)")
    p.add_argument("--machine", choices=sorted(_MACHINES), default="x86")


def _add_devices_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--devices", type=_positive_int, default=1,
                   help="number of data-parallel devices sharing the host "
                        "link; >1 enables the staggered multi-device "
                        "planning stage")


def _cmd_models(args) -> int:
    for name in sorted([*MODEL_ZOO, "resnext101_3d"]):
        print(name)
    return 0


def _cmd_summary(args) -> int:
    graph = _build(args)
    machine = _MACHINES[args.machine]
    print(graph.summary())
    need = graph.training_memory_bytes()
    have = machine.usable_gpu_memory
    print(f"training memory estimate: {format_bytes(need)} "
          f"({'fits' if need <= have else 'EXCEEDS'} the "
          f"{machine.name} GPU's {format_bytes(have)})")
    return 0


def _cmd_optimize(args) -> int:
    from repro.runtime import save_plan

    graph = _build(args)
    machine = _machine(args)
    config = PoochConfig(step1_sim_budget=args.budget, workers=args.workers,
                         prune=not args.no_prune,
                         incremental=not args.no_incremental,
                         incremental_step2=not args.no_incremental_step2,
                         vectorize=not args.no_vectorize)
    result = PoocH(machine, config, plan_cache=args.plan_cache).optimize(graph)
    print(result.summary())
    if result.stats.plan_cache_hit:
        print(f"plan reused from cache {args.plan_cache} "
              "(re-verified by simulation)")
    if args.verbose:
        print(result.classification.describe(graph))
    timeline = result.execute()
    print(f"ground-truth iteration: {timeline.makespan * 1e3:.2f} ms "
          f"({images_per_second(timeline, args.batch):.1f} img/s), "
          f"peak GPU memory {timeline.device_peak / GiB:.2f} GiB")
    if result.multi is not None:
        aggregate = (machine.devices * args.batch
                     / result.multi.chosen.makespan)
        print(f"multi-device iteration ({machine.devices} devices, "
              f"staggered): {result.multi.chosen.makespan * 1e3:.2f} ms "
              f"= {aggregate:.1f} img/s aggregate")
    _write_trace(args, timeline, f"{args.model} pooch",
                 multi=result.multi.chosen if result.multi else None)
    if args.save:
        save_plan(args.save, result.classification, graph,
                  machine=machine.name, predicted_time=result.predicted.time)
        print(f"plan written to {args.save}")
    return 0


def _run_resilient(graph, cls, machine, injector, policy=SwapInPolicy.EAGER):
    from repro.faults import execute_resilient
    from repro.runtime.schedule import ScheduleOptions

    robust = execute_resilient(graph, cls, machine, faults=injector,
                               options=ScheduleOptions(policy=policy))
    print(robust.describe())
    return robust.result


def _print_multi(machine, mresult, *, staggered: bool) -> None:
    mode = "staggered" if staggered else "synchronized"
    print(f"{machine.devices}-device iteration ({mode}): "
          f"{mresult.makespan * 1e3:.2f} ms "
          f"(link contention {mresult.contention_delay_total * 1e3:.2f} ms, "
          f"allreduce {mresult.allreduce_time * 1e3:.2f} ms overlapped)")


def _cmd_run(args) -> int:
    graph = _build(args)
    machine = _machine(args)
    injector = _injector(args)
    multi = None
    if args.plan:
        from repro.runtime import load_plan

        cls = load_plan(args.plan, graph)
        timeline = (execute(graph, cls, machine) if injector is None
                    else _run_resilient(graph, cls, machine, injector))
        if machine.devices > 1:
            from repro.gpusim import simulate_multi_device

            multi = simulate_multi_device(
                timeline, machine,
                grad_bytes=sum(layer.op.param_bytes for layer in graph))
            _print_multi(machine, multi, staggered=False)
        print(f"saved-plan on {machine.name}: {timeline.makespan * 1e3:.2f} ms "
              f"per iteration = "
              f"{images_per_second(timeline, args.batch):.1f} img/s "
              f"(peak {timeline.device_peak / GiB:.2f} GiB)")
        _write_trace(args, timeline, f"{args.model} saved-plan", multi=multi)
        return 0
    if args.method == "pooch":
        config = PoochConfig(step1_sim_budget=args.budget,
                             workers=args.workers,
                             prune=not args.no_prune,
                             incremental=not args.no_incremental,
                             incremental_step2=not args.no_incremental_step2,
                             vectorize=not args.no_vectorize)
        result = PoocH(machine, config, plan_cache=args.plan_cache,
                       faults=injector).optimize(graph)
        if injector is None:
            timeline = result.execute()
        else:
            robust = result.execute_resilient()
            print(robust.describe())
            timeline = robust.result
        if result.multi is not None:
            multi = result.multi.chosen
            _print_multi(machine, multi, staggered=any(result.multi.stagger))
    else:
        if args.method == "swap-opt":
            plan = plan_swap_opt(graph, machine)
        else:
            plan = _SIMPLE_PLANNERS[args.method](graph, machine)
        if injector is None:
            timeline = plan.execute(graph, machine)
        else:
            timeline = _run_resilient(graph, plan.classification, machine,
                                      injector, policy=plan.policy)
        if machine.devices > 1:
            from repro.gpusim import simulate_multi_device

            # baselines have no stagger search: show the synchronized cost
            multi = simulate_multi_device(
                timeline, machine,
                grad_bytes=sum(layer.op.param_bytes for layer in graph))
            _print_multi(machine, multi, staggered=False)
    print(f"{args.method} on {machine.name}: {timeline.makespan * 1e3:.2f} ms "
          f"per iteration = {images_per_second(timeline, args.batch):.1f} img/s "
          f"(peak {timeline.device_peak / GiB:.2f} GiB)")
    _write_trace(args, timeline, f"{args.model} {args.method}", multi=multi)
    return 0


def _cmd_robustness(args) -> int:
    from repro.analysis import robustness_report

    graph = _build(args)
    machine = _machine(args)
    specs = None
    if args.faults:
        spec = FaultSpec.parse(args.faults)
        if spec.active:
            specs = [spec]
    report = robustness_report(
        graph, machine,
        specs=specs,
        noise_levels=tuple(args.noise_levels),
        seed=args.fault_seed,
        fault_seeds=args.fault_seeds,
        workers=args.workers,
    )
    print(report.render())
    return 0


def _cmd_serve(args) -> int:
    """Run the planning service until interrupted (or POST /v1/shutdown)."""
    from repro.serve import JobManager, PlannerServer, ServePlanner

    manager = JobManager(
        ServePlanner(plan_cache=args.plan_cache),
        workers=args.serve_workers,
        max_queue=args.queue_depth,
        tenant_quota=args.tenant_quota,
        warm_capacity=args.warm_capacity,
        audit=args.audit,
    )
    server = PlannerServer(manager, host=args.host, port=args.port,
                           allow_remote_shutdown=not args.no_remote_shutdown)
    print(f"planning service listening on {server.url} "
          f"(workers={args.serve_workers} queue={args.queue_depth} "
          f"quota={args.tenant_quota}/tenant"
          + (f" plan-cache={args.plan_cache}" if args.plan_cache else "")
          + (f" audit={args.audit}" if args.audit else "") + ")",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("interrupt: shutting down", flush=True)
        server.httpd.server_close()
    finally:
        manager.shutdown()
        manager.publish_metrics()
        stats = manager.stats()
        print("served: " + " ".join(
            f"{k}={v}" for k, v in stats["counters"].items() if v))
    return 0


def _cmd_client(args) -> int:
    """One client action against a running planning service."""
    from repro.serve import PlannerClient, ServeClientError

    client = PlannerClient(args.url, timeout=args.timeout)
    try:
        if args.action == "submit":
            if not args.target:
                print("error: submit needs a model name", file=sys.stderr)
                return 1
            config = {"budget": args.budget, "workers": args.workers}
            doc = client.submit(
                args.target, batch=args.batch, machine=args.machine,
                devices=args.devices, tenant=args.tenant, config=config,
            )
            print(f"job {doc['id']}: {doc['state']}"
                  + (f" (tier {doc['cache_tier']})"
                     if doc.get("cache_tier") else ""))
            if args.wait and doc["state"] not in ("done", "failed", "cancelled"):
                doc = client.wait(doc["id"], timeout=args.timeout)
            if doc["state"] == "done":
                result = doc["result"]
                counts: dict[str, int] = {}
                for cls in result["plan"]["classes"].values():
                    counts[cls] = counts.get(cls, 0) + 1
                print(f"  plan: " + " ".join(
                    f"{k}={v}" for k, v in sorted(counts.items())))
                print(f"  predicted iteration: "
                      f"{result['predicted_time_s'] * 1e3:.3f} ms; "
                      f"tier {result['cache_tier']}"
                      + (f" (coalesced with {result['coalesced_with']})"
                         if result.get("coalesced_with") else ""))
            elif args.wait:
                print(f"  {doc['state']}: {doc.get('error')}")
                return 1
        elif args.action in ("status", "result", "cancel", "events"):
            if not args.target:
                print(f"error: {args.action} needs a job id", file=sys.stderr)
                return 1
            if args.action == "status":
                print(json.dumps(client.job(args.target), indent=2))
            elif args.action == "result":
                print(json.dumps(client.result(args.target,
                                               timeout=args.timeout), indent=2))
            elif args.action == "cancel":
                print(f"cancelled: {client.cancel(args.target)}")
            else:
                for event in client.events(args.target):
                    print(json.dumps(event))
        elif args.action == "stats":
            print(json.dumps(client.stats(), indent=2))
        elif args.action == "health":
            print(json.dumps(client.health()))
        else:  # shutdown
            print(json.dumps(client.shutdown_server()))
    except ServeClientError as e:
        detail = f" (HTTP {e.status})" if e.status else ""
        print(f"error: {e}{detail}", file=sys.stderr)
        return 1
    return 0


def _cmd_report(args) -> int:
    """Collate generated benchmark result tables into one report."""
    import pathlib

    results = pathlib.Path(args.results_dir)
    files = sorted(results.glob("*.txt"))
    if not files:
        print(f"no results under {results}/ — run "
              "`pytest benchmarks/ --benchmark-only` first", file=sys.stderr)
        return 1
    for f in files:
        print(f.read_text().rstrip())
        print()
    print(f"({len(files)} result tables from {results}/)")
    return 0


def _cmd_timeline(args) -> int:
    from repro.analysis import render_timeline

    graph = _build(args)
    machine = _MACHINES[args.machine]
    cls = {
        "keep": Classification.all_keep,
        "swap": Classification.all_swap,
        "recompute": Classification.all_recompute,
    }[args.plan](graph)
    result = execute(graph, cls, machine,
                     policy=SwapInPolicy(args.policy))
    if args.trace:
        from repro.analysis import write_chrome_trace

        write_chrome_trace(result, args.trace, name=f"{args.model} {args.plan}")
        print(f"chrome trace written to {args.trace} "
              "(open at https://ui.perfetto.dev)")
    print(render_timeline(result, width=args.width))
    print(f"iteration {result.makespan * 1e3:.2f} ms, "
          f"peak {result.device_peak / GiB:.2f} GiB")
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="PoocH reproduction command line"
    )
    obs = _obs_parent()
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list available models",
                   parents=[obs]).set_defaults(fn=_cmd_models)

    p = sub.add_parser("summary", help="graph statistics + memory estimate",
                       parents=[obs])
    _add_model_args(p)
    p.set_defaults(fn=_cmd_summary)

    p = sub.add_parser("optimize", help="run PoocH and print the plan",
                       parents=[obs])
    _add_model_args(p)
    _add_devices_arg(p)
    p.add_argument("--budget", type=_positive_int, default=600,
                   help="step-1 simulation budget (positive integer)")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="search parallelism (process pool); results are "
                        "bit-identical to --workers 1")
    p.add_argument("--plan-cache", metavar="DIR",
                   help="persistent plan/simulation cache directory: reuses "
                        "a previously chosen plan for the same graph, "
                        "machine and config (after re-verifying it by "
                        "simulation) and warm-starts the search otherwise")
    p.add_argument("--no-prune", action="store_true",
                   help="disable branch-and-bound pruning of the step-1 "
                        "keep-vs-swap tree (exhaustive scan; the chosen plan "
                        "is identical, only search cost changes)")
    p.add_argument("--no-incremental", action="store_true",
                   help="disable incremental prefix-shared simulation for "
                        "both search steps (every candidate replays from "
                        "t=0; bit-identical plans, higher search wall time)")
    p.add_argument("--no-incremental-step2", action="store_true",
                   help="disable only the step-2 extension: recompute "
                        "candidates rebuild and replay in full, and r(X) "
                        "values are re-evaluated every round instead of "
                        "reused under dirty-set invalidation")
    p.add_argument("--no-vectorize", action="store_true",
                   help="disable the lockstep vector engine: every candidate "
                        "simulates through the serial event engine "
                        "(bit-identical plans, higher search wall time)")
    p.add_argument("--verbose", action="store_true",
                   help="print the per-map classification")
    p.add_argument("--save", metavar="PLAN.json",
                   help="write the chosen plan to a JSON file")
    p.add_argument("--trace", metavar="TRACE.json",
                   help="write a chrome://tracing / Perfetto trace of the "
                        "search phases plus the ground-truth timeline")
    p.set_defaults(fn=_cmd_optimize)

    p = sub.add_parser("run", help="simulate one iteration of a method",
                       parents=[obs])
    _add_model_args(p)
    _add_devices_arg(p)
    p.add_argument("--method", default="pooch",
                   choices=["pooch", "swap-opt", *sorted(_SIMPLE_PLANNERS)])
    p.add_argument("--budget", type=_positive_int, default=600)
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="search parallelism for --method pooch")
    p.add_argument("--plan-cache", metavar="DIR",
                   help="persistent plan cache directory for --method pooch")
    p.add_argument("--plan", metavar="PLAN.json",
                   help="execute a saved plan instead of --method")
    p.add_argument("--no-prune", action="store_true",
                   help="disable search-tree pruning for --method pooch")
    p.add_argument("--no-incremental", action="store_true",
                   help="disable incremental simulation (both search steps) "
                        "for --method pooch")
    p.add_argument("--no-incremental-step2", action="store_true",
                   help="disable only step-2 incremental search (recompute "
                        "delta drafts, resumable replay, r(X) reuse) for "
                        "--method pooch")
    p.add_argument("--no-vectorize", action="store_true",
                   help="disable the lockstep vector engine for "
                        "--method pooch (serial event-engine simulation)")
    p.add_argument("--trace", metavar="TRACE.json",
                   help="write a chrome://tracing / Perfetto trace of the "
                        "pipeline phases plus the executed timeline")
    _add_fault_args(p)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser(
        "robustness",
        help="sweep fault levels and report degradation/retries/fallbacks",
        parents=[obs])
    _add_model_args(p)
    _add_devices_arg(p)
    p.add_argument("--noise-levels", type=float, nargs="+",
                   default=[0.02, 0.05, 0.10], metavar="STDDEV",
                   help="duration+profile noise ladder for the sweep")
    p.add_argument("--fault-seeds", type=_positive_int, default=1,
                   help="number of fault seeds per scenario (seeds "
                        "fault-seed .. fault-seed+N-1); vectorizable specs "
                        "run all seeds in one lockstep batch and the report "
                        "gains P50/P95/P99 plus OOM/fallback/retry rates")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="process-pool fan-out for serial-path fault seeds "
                        "(stall/OOM specs); results are bit-identical to "
                        "--workers 1")
    _add_fault_args(p)
    p.set_defaults(fn=_cmd_robustness)

    p = sub.add_parser(
        "serve",
        help="run the long-lived planning service (coalescing + warm cache)",
        parents=[obs])
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8477,
                   help="listen port (0 picks a free one; the chosen URL is "
                        "printed on startup)")
    p.add_argument("--plan-cache", metavar="DIR",
                   help="persistent plan/outcome cache directory shared with "
                        "the offline CLI and other servers (safe: writes are "
                        "atomic)")
    p.add_argument("--serve-workers", type=_positive_int, default=2,
                   help="search worker threads (each runs one job at a time)")
    p.add_argument("--queue-depth", type=_positive_int, default=16,
                   help="bounded run-queue depth; submissions beyond it are "
                        "rejected with 429")
    p.add_argument("--tenant-quota", type=_positive_int, default=4,
                   help="max active (queued+running+coalesced) jobs per "
                        "tenant")
    p.add_argument("--warm-capacity", type=_positive_int, default=128,
                   help="entries in the in-memory warm response LRU")
    p.add_argument("--audit", metavar="LOG.jsonl",
                   help="append one JSONL audit record per settled request")
    p.add_argument("--no-remote-shutdown", action="store_true",
                   help="disable the POST /v1/shutdown endpoint")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("client", help="talk to a running planning service",
                       parents=[obs])
    p.add_argument("action",
                   choices=["submit", "status", "result", "cancel", "events",
                            "stats", "health", "shutdown"])
    p.add_argument("target", nargs="?",
                   help="model name (submit) or job id (status/result/"
                        "cancel/events)")
    p.add_argument("--url", default="http://127.0.0.1:8477",
                   help="planning service base URL")
    p.add_argument("--tenant", default="default")
    p.add_argument("--batch", type=_positive_int, default=32)
    p.add_argument("--machine", choices=sorted(_MACHINES), default="x86")
    p.add_argument("--devices", type=_positive_int, default=1)
    p.add_argument("--budget", type=_positive_int, default=600,
                   help="step-1 simulation budget for submit")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="search process-pool width for submit")
    p.add_argument("--wait", action="store_true",
                   help="block until the submitted job settles")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="client-side wait/transport timeout, seconds")
    p.set_defaults(fn=_cmd_client)

    p = sub.add_parser("report", help="collate benchmark result tables",
                       parents=[obs])
    p.add_argument("--results-dir", default="benchmarks/results")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("timeline", help="render an execution timeline",
                       parents=[obs])
    _add_model_args(p)
    p.add_argument("--plan", choices=["keep", "swap", "recompute"],
                   default="swap")
    p.add_argument("--policy", choices=[pol.value for pol in SwapInPolicy],
                   default="eager")
    p.add_argument("--width", type=int, default=100)
    p.add_argument("--trace", metavar="TRACE.json",
                   help="also write a chrome://tracing / Perfetto trace file")
    p.set_defaults(fn=_cmd_timeline)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    if getattr(args, "log_level", None) or getattr(args, "log_json", False):
        configure_logging(level=args.log_level or "info",
                          json_output=bool(getattr(args, "log_json", False)))
    registry = previous = None
    if getattr(args, "metrics", None) or getattr(args, "trace", None):
        registry = MetricsRegistry()
        # seed the resilience counters so the section reads as an explicit
        # all-clear (zeros) on clean runs, not as missing data
        for name in ("resilience.transfer_retries", "resilience.fallbacks",
                     "resilience.replans", "resilience.spurious_ooms"):
            registry.count(name, 0)
        previous = metrics.set_active(registry)
    try:
        return args.fn(args)
    except OutOfMemoryError as e:
        print(f"OUT OF MEMORY: {e}", file=sys.stderr)
        return 2
    except ReproError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    finally:
        if registry is not None:
            metrics.set_active(previous)
            if getattr(args, "metrics", None):
                meta = {
                    "command": args.command,
                    "model": getattr(args, "model", None),
                    "machine": getattr(args, "machine", None),
                    "devices": getattr(args, "devices", 1),
                    "argv": list(argv) if argv is not None else sys.argv[1:],
                }
                pathlib.Path(args.metrics).write_text(
                    json.dumps(registry.snapshot(meta=meta), indent=2))
                print(f"run metrics written to {args.metrics}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
