"""Machine specifications — the paper's Tables 1 and 2 as data.

The two evaluation machines differ only in host side and, crucially, in the
CPU-GPU interconnect: PCIe gen3 x16 (16 GB/s) vs 2×NVLink2.0 (75 GB/s).
Everything PoocH does differently between them flows from that bandwidth gap.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.units import GB, GiB, MiB


@dataclass(frozen=True)
class MachineSpec:
    """A host + N identical data-parallel GPUs (``devices=1`` — the paper's
    configuration — is a single-GPU machine).

    Bandwidths are *peak* figures; the cost model applies the efficiency
    fractions.  Capacities are bytes and are **per device** for GPU memory
    but **shared across devices** for host DRAM: with ``devices > 1`` every
    replica swaps into the same ``cpu_mem_capacity`` pool and every
    replica's H2D/D2H traffic crosses the same host link (see
    :mod:`repro.gpusim.multidevice` for the contention model).
    """

    name: str
    cpu: str
    gpu: str = "NVIDIA Tesla V100"
    #: GPU memory capacity (the V100 SKU the paper uses has 16 GB).
    gpu_mem_capacity: int = 16 * GiB
    #: memory the CUDA context / framework reserves; not available to the pool.
    gpu_mem_reserved: int = 600 * MiB
    #: host DRAM capacity — bounds total swap space across *all* devices.
    cpu_mem_capacity: int = 192 * GB
    #: peak fp32 throughput of the GPU (V100: 15.7 TFLOP/s).
    gpu_peak_flops: float = 15.7e12
    #: peak HBM2 bandwidth (V100: 900 GB/s).
    gpu_mem_bandwidth: float = 900 * GB
    #: peak CPU->GPU / GPU->CPU interconnect bandwidth, bytes/s.
    h2d_bandwidth: float = 16 * GB
    d2h_bandwidth: float = 16 * GB
    #: fixed cost of initiating one DMA transfer, seconds.
    copy_latency: float = 10e-6
    interconnect: str = "PCIe gen3 x16"
    os: str = ""
    cuda: str = ""
    cudnn: str = "cuDNN 7.1"
    #: number of data-parallel devices sharing the host link and host DRAM.
    devices: int = 1
    #: effective bandwidth of the gradient-exchange (allreduce) path,
    #: bytes/s; 0 means "use the host-link bandwidth" (PCIe-routed ring).
    allreduce_bandwidth: float = 0.0
    #: whether the N devices contend for one host-link budget per direction
    #: (True models a shared PCIe root complex / switch; False gives every
    #: device its own full-bandwidth link — the no-contention control).
    link_shared: bool = True

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ValueError(f"devices must be >= 1, got {self.devices!r}")
        if self.allreduce_bandwidth < 0:
            raise ValueError(
                f"allreduce_bandwidth must be >= 0, got "
                f"{self.allreduce_bandwidth!r}")

    @property
    def usable_gpu_memory(self) -> int:
        """Bytes the per-device memory pool may hand out."""
        return self.gpu_mem_capacity - self.gpu_mem_reserved

    @property
    def host_swap_capacity(self) -> int:
        """Host DRAM one device replica may use for swap space.

        Host memory is shared: N data-parallel replicas of the same plan
        swap concurrently, so each gets an even ``cpu_mem_capacity / N``
        share.  Planning and per-device simulation bound host residency by
        this share, which makes the aggregate bound hold by construction;
        :func:`repro.gpusim.multidevice.simulate_multi_device` additionally
        re-checks the aggregate and reports the overflowing bytes.
        """
        return self.cpu_mem_capacity // self.devices

    @property
    def effective_allreduce_bandwidth(self) -> float:
        """Gradient-exchange bandwidth: explicit, else the slower host-link
        direction (a PCIe-routed ring is bounded by its weakest hop)."""
        return self.allreduce_bandwidth or min(self.h2d_bandwidth,
                                               self.d2h_bandwidth)

    def environment_table(self) -> list[tuple[str, str]]:
        """Rows matching the paper's Table 1 / Table 2 layout."""
        rows = [
            ("GPU", self.gpu if self.devices == 1
             else f"{self.devices}x {self.gpu} (data parallel)"),
            ("GPU memory capacity", f"{self.gpu_mem_capacity / GiB:.0f} GB"),
            ("CPU", self.cpu),
            ("CPU memory capacity", f"{self.cpu_mem_capacity / GB:.0f} GB"),
            ("CPU-GPU interconnect", self.interconnect),
        ]
        if self.h2d_bandwidth == self.d2h_bandwidth:
            rows.append(("CPU-GPU bandwidth",
                         f"{self.h2d_bandwidth / GB:.0f} GB/sec"))
        else:
            # asymmetric links (a degraded direction, host-biased DMA
            # engines) must report both directions, not just H2D
            rows.append(("CPU-GPU bandwidth (H2D)",
                         f"{self.h2d_bandwidth / GB:.0f} GB/sec"))
            rows.append(("CPU-GPU bandwidth (D2H)",
                         f"{self.d2h_bandwidth / GB:.0f} GB/sec"))
        if self.devices > 1:
            rows.append(("Gradient-exchange bandwidth",
                         f"{self.effective_allreduce_bandwidth / GB:.0f} "
                         "GB/sec"))
            rows.append(("Host link",
                         "shared across devices" if self.link_shared
                         else "dedicated per device"))
        rows += [
            ("OS", self.os),
            ("CUDA", self.cuda),
            ("cuDNN", self.cudnn),
        ]
        return rows


#: the paper's x86 machine (Table 1): Xeon Gold 6140 + V100 over PCIe gen3.
X86_V100 = MachineSpec(
    name="x86",
    cpu="Intel Xeon Gold 6140",
    cpu_mem_capacity=192 * GB,
    h2d_bandwidth=16 * GB,
    d2h_bandwidth=16 * GB,
    interconnect="PCIe gen3 x16",
    os="CentOS 7.4",
    cuda="CUDA 9.1",
)

#: the paper's POWER9 machine (Table 2): POWER9 + V100 over 2×NVLink2.0.
POWER9_V100 = MachineSpec(
    name="power9",
    cpu="IBM POWER9",
    cpu_mem_capacity=1000 * GB,
    h2d_bandwidth=75 * GB,
    d2h_bandwidth=75 * GB,
    interconnect="NVLink2.0 x2",
    os="RHEL 7.5 (Maipo)",
    cuda="CUDA 9.2",
)


def multi_gpu(base: MachineSpec, devices: int, *, name: str | None = None,
              allreduce_bandwidth: float | None = None,
              link_shared: bool | None = None) -> MachineSpec:
    """Derive an N-device data-parallel machine from a single-GPU ``base``.

    The device pools stay identical to ``base``; host DRAM and the host
    link become shared resources (each replica plans against its
    ``cpu_mem_capacity / N`` share, and the multi-device simulation
    arbitrates the link).  ``devices=1`` returns a spec that simulates
    bit-identically to ``base``.
    """
    if devices < 1:
        raise ValueError(f"devices must be >= 1, got {devices!r}")
    return replace(
        base,
        name=name or (base.name if devices == 1 else f"{base.name}x{devices}"),
        devices=devices,
        allreduce_bandwidth=(base.allreduce_bandwidth
                             if allreduce_bandwidth is None
                             else allreduce_bandwidth),
        link_shared=base.link_shared if link_shared is None else link_shared,
    )


def degraded_machine(base: MachineSpec, *, name: str | None = None,
                     bandwidth_factor: float = 1.0,
                     host_capacity_factor: float = 1.0) -> MachineSpec:
    """Derive a *degraded* machine from ``base``: an interconnect delivering
    only ``bandwidth_factor`` of its nominal H2D/D2H bandwidth (a sick PCIe
    link, NVLink lane failure) and/or only ``host_capacity_factor`` of the
    host DRAM available for swap space (pinned memory claimed by other
    tenants).  The fault layer uses this to model persistent hardware
    degradation, as opposed to the injector's transient faults."""
    if not 0.0 < bandwidth_factor <= 1.0:
        raise ValueError(f"bandwidth_factor must be in (0, 1], got {bandwidth_factor!r}")
    if not 0.0 < host_capacity_factor <= 1.0:
        raise ValueError(
            f"host_capacity_factor must be in (0, 1], got {host_capacity_factor!r}")
    return replace(
        base,
        name=name or f"{base.name}_degraded",
        h2d_bandwidth=base.h2d_bandwidth * bandwidth_factor,
        d2h_bandwidth=base.d2h_bandwidth * bandwidth_factor,
        cpu_mem_capacity=int(base.cpu_mem_capacity * host_capacity_factor),
    )


def scaled_machine(base: MachineSpec, *, name: str | None = None,
                   mem_scale: float = 1.0, flops_scale: float = 1.0,
                   link_scale: float = 1.0) -> MachineSpec:
    """Derive a hypothetical machine from ``base`` by scaling capacity,
    compute and interconnect — used by ablation benchmarks and tests to
    construct e.g. 'x86 with half the GPU memory'."""
    return replace(
        base,
        name=name or f"{base.name}_scaled",
        gpu_mem_capacity=int(base.gpu_mem_capacity * mem_scale),
        gpu_peak_flops=base.gpu_peak_flops * flops_scale,
        gpu_mem_bandwidth=base.gpu_mem_bandwidth * flops_scale,
        h2d_bandwidth=base.h2d_bandwidth * link_scale,
        d2h_bandwidth=base.d2h_bandwidth * link_scale,
    )
