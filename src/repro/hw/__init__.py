"""Hardware models: machine specifications and the analytic operator cost
model that substitutes for real V100 kernel timings (see DESIGN.md §2)."""

from repro.hw.costmodel import CostModel
from repro.hw.machine import (
    MachineSpec,
    POWER9_V100,
    X86_V100,
    degraded_machine,
    multi_gpu,
    scaled_machine,
)

__all__ = ["MachineSpec", "X86_V100", "POWER9_V100", "scaled_machine",
           "degraded_machine", "multi_gpu", "CostModel"]
