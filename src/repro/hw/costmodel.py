"""Analytic operator cost model — the stand-in for cuDNN kernel timings.

For each op the model takes a *roofline*: the larger of FLOP time (at an
op-kind-specific fraction of peak) and DRAM-traffic time (at a fraction of
peak HBM bandwidth), plus a per-kernel launch/framework overhead.  Swap
transfers are latency + bytes / (efficiency · link bandwidth).

The efficiencies below were calibrated once so that in-core ResNet-50 lands
near the paper's 316 img/s on the x86 machine spec (see
``benchmarks/test_bench_fig17_resnet50_x86.py`` and EXPERIMENTS.md); they are
ordinary constructor arguments, so studies can re-calibrate freely.

An optional multiplicative jitter models run-to-run variance of real
hardware; it is drawn from a dedicated ``numpy`` generator so simulations
stay reproducible under a seed.  With ``jitter=0`` (default) the whole
simulator is deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.graph.ops import Op, OpKind
from repro.hw.machine import MachineSpec

#: fraction of peak FLOPs each compute-bound kind achieves (cuDNN-calibre
#: kernels do not reach peak; grouped/strided convs are worse than GEMMs).
_DEFAULT_FLOP_EFFICIENCY: dict[OpKind, float] = {
    OpKind.CONV: 0.55,
    OpKind.LINEAR: 0.70,
    OpKind.MATMUL: 0.65,
}

#: number of kernel launches per forward task (backward uses its own table —
#: conv backward runs separate dgrad and wgrad kernels).
_FWD_KERNELS: dict[OpKind, int] = {
    OpKind.INPUT: 0,
    OpKind.BATCHNORM: 2,
    OpKind.SOFTMAX_XENT: 3,
}
_BWD_KERNELS: dict[OpKind, int] = {
    OpKind.INPUT: 0,
    OpKind.CONV: 2,
    OpKind.LINEAR: 2,
    OpKind.BATCHNORM: 2,
}


class CostModel:
    """Maps graph ops and transfer sizes to simulated durations.

    Args:
        machine: the environment being modelled.
        mem_efficiency: achieved fraction of peak HBM bandwidth.
        link_efficiency: achieved fraction of peak interconnect bandwidth
            (protocol + pinned-buffer overheads).
        launch_overhead: per-kernel launch + framework dispatch time.
        flop_efficiency: overrides for per-kind FLOP efficiencies.
        jitter: if > 0, every duration is multiplied by
            ``max(0.05, 1 + jitter·N(0,1))`` — models hardware variance for
            exercising the profiling-averaging path.
        seed: RNG seed for the jitter stream.
    """

    def __init__(
        self,
        machine: MachineSpec,
        *,
        mem_efficiency: float = 0.80,
        link_efficiency: float = 0.82,
        launch_overhead: float = 8e-6,
        flop_efficiency: dict[OpKind, float] | None = None,
        jitter: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.machine = machine
        self.mem_efficiency = mem_efficiency
        self.link_efficiency = link_efficiency
        self.launch_overhead = launch_overhead
        self.flop_efficiency = dict(_DEFAULT_FLOP_EFFICIENCY)
        if flop_efficiency:
            self.flop_efficiency.update(flop_efficiency)
        self.jitter = jitter
        self._rng = np.random.default_rng(seed)

    # -- internals -----------------------------------------------------------

    def _jittered(self, t: float) -> float:
        if self.jitter <= 0.0 or t <= 0.0:
            return t
        factor = max(0.05, 1.0 + self.jitter * float(self._rng.standard_normal()))
        return t * factor

    def _roofline(self, flops: float, bytes_: float, kind: OpKind,
                  kernels: int) -> float:
        eff = self.flop_efficiency.get(kind, 0.5)
        flop_time = flops / (self.machine.gpu_peak_flops * eff)
        byte_time = bytes_ / (self.machine.gpu_mem_bandwidth * self.mem_efficiency)
        return max(flop_time, byte_time) + kernels * self.launch_overhead

    # -- public API ------------------------------------------------------------

    def fwd_time(self, op: Op) -> float:
        """Duration of one forward execution of ``op`` (also the cost of
        recomputing its output)."""
        kernels = _FWD_KERNELS.get(op.kind, 1)
        if op.fused_activation:
            kernels += 1
        return self._jittered(
            self._roofline(op.fwd_flops, op.fwd_bytes, op.kind, kernels)
        )

    def bwd_time(self, op: Op) -> float:
        """Duration of one backward execution of ``op``."""
        if not op.has_backward:
            return 0.0
        kernels = _BWD_KERNELS.get(op.kind, 1)
        if op.fused_activation:
            kernels += 1
        return self._jittered(
            self._roofline(op.bwd_flops, op.bwd_bytes, op.kind, kernels)
        )

    def swap_out_time(self, nbytes: int) -> float:
        """Device→host transfer duration for ``nbytes``."""
        bw = self.machine.d2h_bandwidth * self.link_efficiency
        return self._jittered(self.machine.copy_latency + nbytes / bw)

    def swap_in_time(self, nbytes: int) -> float:
        """Host→device transfer duration for ``nbytes``."""
        bw = self.machine.h2d_bandwidth * self.link_efficiency
        return self._jittered(self.machine.copy_latency + nbytes / bw)

    def update_time(self, param_bytes: int) -> float:
        """Optimizer update step: a bandwidth-bound sweep over parameters and
        gradients (read both, write params → 3 passes)."""
        if param_bytes == 0:
            return 0.0
        bw = self.machine.gpu_mem_bandwidth * self.mem_efficiency
        return self._jittered(3.0 * param_bytes / bw + self.launch_overhead)
