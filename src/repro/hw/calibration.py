"""Cost-model calibration against a throughput anchor.

The analytic cost model ships with first-principles defaults (conv at 55 %
of peak FLOPs, HBM at 80 % of peak bandwidth, ...).  Real frameworks hit
different fractions — the paper's Chainer v3 ran in-core ResNet-50 at
316 img/s where our defaults give ~246.  :func:`calibrate` closes such gaps:
it scales the model's efficiency knobs by one scalar so that a reference
workload matches a target throughput, using bisection on the (monotone)
efficiency→throughput relation.

Calibration changes *absolute* numbers only; every comparison in the
benchmark suite is a ratio and is unaffected.  See EXPERIMENTS.md
("Calibration context").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ReproError
from repro.graph import NNGraph
from repro.hw.costmodel import CostModel, _DEFAULT_FLOP_EFFICIENCY
from repro.hw.machine import MachineSpec
from repro.runtime.executor import execute, images_per_second
from repro.runtime.plan import Classification


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a calibration run."""

    scale: float  # multiplier applied to all efficiency knobs
    achieved_ips: float
    target_ips: float
    cost_model: CostModel

    @property
    def relative_error(self) -> float:
        return abs(self.achieved_ips - self.target_ips) / self.target_ips


def _scaled_model(machine: MachineSpec, scale: float) -> CostModel:
    flop_eff = {
        kind: min(0.98, eff * scale)
        for kind, eff in _DEFAULT_FLOP_EFFICIENCY.items()
    }
    return CostModel(
        machine,
        mem_efficiency=min(0.98, 0.80 * scale),
        link_efficiency=0.82,  # transfers are calibrated by link specs, not here
        flop_efficiency=flop_eff,
    )


def measure_incore_ips(graph: NNGraph, machine: MachineSpec,
                       cost_model: CostModel, batch: int) -> float:
    """In-core throughput of ``graph`` under a cost model (must fit)."""
    result = execute(graph, Classification.all_keep(graph), machine,
                     cost_model=cost_model)
    return images_per_second(result, batch)


def calibrate(
    graph: NNGraph,
    machine: MachineSpec,
    batch: int,
    target_ips: float,
    *,
    tolerance: float = 0.01,
    max_iterations: int = 40,
) -> CalibrationResult:
    """Find the efficiency scale that makes the in-core run of ``graph`` hit
    ``target_ips`` (within ``tolerance``).

    Raises :class:`ReproError` when the target is unreachable (beyond ~98 %
    of theoretical peak) or the reference graph does not fit in-core.
    """
    if target_ips <= 0:
        raise ReproError("target_ips must be positive")
    lo, hi = 0.05, 4.0
    ips_hi = measure_incore_ips(graph, machine, _scaled_model(machine, hi), batch)
    if ips_hi < target_ips * (1 - tolerance):
        raise ReproError(
            f"target {target_ips:.0f} img/s unreachable: even near-peak "
            f"efficiency gives {ips_hi:.0f} img/s (check machine/model)"
        )
    scale = 1.0
    for _ in range(max_iterations):
        scale = (lo + hi) / 2.0
        ips = measure_incore_ips(graph, machine, _scaled_model(machine, scale),
                                 batch)
        if abs(ips - target_ips) / target_ips <= tolerance:
            return CalibrationResult(scale, ips, target_ips,
                                     _scaled_model(machine, scale))
        if ips < target_ips:
            lo = scale
        else:
            hi = scale
    ips = measure_incore_ips(graph, machine, _scaled_model(machine, scale), batch)
    return CalibrationResult(scale, ips, target_ips, _scaled_model(machine, scale))
