"""Extraction of the overhead-causing map sets ``L_O`` and ``L_I`` (§4.4.2).

From the all-swap baseline timeline, a swap task is *hidden* when computation
covers (almost) its entire execution; maps whose swap-out / swap-in is not
hidden form ``L_O`` / ``L_I``.  Everything else is classified ``swap``
immediately — by the paper's reasoning, their transfers are free, so no
search is needed for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.timeline import compute_busy, idle_overlap
from repro.gpusim import RunResult, TaskKind


@dataclass
class OverlapAnalysis:
    """The sets the step-1 search operates on, plus per-map overheads.

    ``overhead[m]`` is the un-hidden swap time of map ``m`` in seconds
    (swap-out plus swap-in portions not covered by computation) — used to
    rank maps when the exact search must be capped.
    """

    L_O: set[int] = field(default_factory=set)
    L_I: set[int] = field(default_factory=set)
    overhead: dict[int, float] = field(default_factory=dict)

    @property
    def candidates(self) -> set[int]:
        """Maps whose class is actually searched: ``L_O ∪ L_I``."""
        return self.L_O | self.L_I

    def describe(self) -> str:
        return (
            f"L_O={sorted(self.L_O)} L_I={sorted(self.L_I)} "
            f"(total un-hidden swap time "
            f"{sum(self.overhead.values()) * 1e3:.3f} ms)"
        )


def analyze_overlap(
    baseline: RunResult,
    *,
    abs_tolerance: float = 2e-6,
    rel_tolerance: float = 0.02,
) -> OverlapAnalysis:
    """Compute ``L_O``/``L_I`` from an all-swap timeline.

    A swap task is considered hidden when its idle overlap (the part of its
    execution during which the compute stream sat idle) is below
    ``max(abs_tolerance, rel_tolerance · duration)`` — the small tolerances
    absorb kernel-launch-scale scheduling noise just as the authors'
    inspection of real timelines must have.
    """
    busy = compute_busy(baseline)
    analysis = OverlapAnalysis()
    for rec in baseline.records:
        if rec.kind not in (TaskKind.SWAP_OUT, TaskKind.SWAP_IN):
            continue
        unhidden = idle_overlap(rec, busy)
        threshold = max(abs_tolerance, rel_tolerance * rec.duration)
        if unhidden > threshold:
            if rec.kind is TaskKind.SWAP_OUT:
                analysis.L_O.add(rec.layer)
            else:
                analysis.L_I.add(rec.layer)
            analysis.overhead[rec.layer] = (
                analysis.overhead.get(rec.layer, 0.0) + unhidden
            )
    return analysis
