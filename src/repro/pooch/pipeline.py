"""End-to-end PoocH facade: profile → classify → execute."""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.faults import FaultInjector, FaultSpec, RetryPolicy, RobustResult
from repro.graph import NNGraph
from repro.gpusim import RunResult
from repro.hw import CostModel, MachineSpec
from repro.obs import get_logger, metrics
from repro.pooch.classifier import PoochClassifier, PoochConfig, SearchStats
from repro.pooch.multidevice import MultiDevicePlan, plan_staggered
from repro.pooch.predictor import PredictedOutcome, TimelinePredictor
from repro.runtime.executor import execute
from repro.runtime.plan import Classification
from repro.runtime.plan_io import PlanCache
from repro.runtime.profiler import Profile, run_profiling

log = get_logger(__name__)


@dataclass
class PoochResult:
    """Everything the optimization produced.

    ``execute()`` runs the plan on a machine (default: the one it was
    optimized for) as ground truth; executing on a *different* machine
    reproduces the paper's plan-portability experiment (a POWER9-optimized
    plan running slower — or failing — on the x86 machine, Fig. 17).
    """

    graph: NNGraph
    machine: MachineSpec
    classification: Classification
    profile: Profile
    stats: SearchStats
    predicted: PredictedOutcome
    config: PoochConfig = field(default_factory=PoochConfig)
    faults: FaultInjector | None = None
    #: staggered swap-window plan across data-parallel replicas; populated
    #: only when the machine has more than one device
    multi: MultiDevicePlan | None = None

    def execute(
        self,
        machine: MachineSpec | None = None,
        cost_model: CostModel | None = None,
    ) -> RunResult:
        """Ground-truth execution of the chosen plan."""
        from repro.runtime.schedule import ScheduleOptions

        return execute(
            self.graph,
            self.classification,
            machine or self.machine,
            cost_model=cost_model,
            options=ScheduleOptions(
                policy=self.config.policy,
                forward_refetch_gap=self.config.forward_refetch_gap,
            ),
        )

    def execute_resilient(
        self,
        machine: MachineSpec | None = None,
        faults: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
        cost_model: CostModel | None = None,
    ) -> RobustResult:
        """Fault-tolerant ground-truth execution of the chosen plan.

        Runs under the injector the optimization was configured with (or an
        explicit ``faults`` override) and degrades along the
        chosen-plan → swap-all → recompute-all chain instead of raising on an
        execution-time failure."""
        from repro.faults.resilient import execute_resilient as _resilient
        from repro.runtime.schedule import ScheduleOptions

        return _resilient(
            self.graph,
            self.classification,
            machine or self.machine,
            faults=faults if faults is not None else self.faults,
            retry=retry,
            cost_model=cost_model,
            options=ScheduleOptions(
                policy=self.config.policy,
                forward_refetch_gap=self.config.forward_refetch_gap,
            ),
        )

    def grad_bytes(self) -> int:
        """Gradient volume one replica contributes to the allreduce."""
        return sum(layer.op.param_bytes for layer in self.graph)

    def execute_multi(
        self,
        machine: MachineSpec | None = None,
        cost_model: CostModel | None = None,
    ):
        """Ground-truth multi-device execution of the chosen plan.

        Runs the single-replica plan through the engine, then replays it on
        every device of ``machine`` through the shared-link arbiter with this
        result's chosen stagger (when its device count matches).  Returns a
        :class:`~repro.gpusim.MultiDeviceResult`.
        """
        from repro.gpusim import simulate_multi_device

        m = machine or self.machine
        base = self.execute(machine=m, cost_model=cost_model)
        stagger = None
        if self.multi is not None and len(self.multi.stagger) == m.devices:
            stagger = self.multi.stagger
        return simulate_multi_device(
            base, m, stagger=stagger, grad_bytes=self.grad_bytes()
        )

    def explain(self, top: int | None = None) -> str:
        """Per-map rationale table: size, class, the profiled un-hidden swap
        overhead that made it a step-1 candidate, and the paper's r(X)
        recompute-vs-swap ratio where step 2 evaluated it.

        ``top`` limits output to the N largest maps.
        """
        from repro.analysis.report import Table
        from repro.common.units import format_bytes

        overhead = (self.stats.overlap.overhead
                    if self.stats.overlap is not None else {})
        rows = sorted(
            self.classification.classes.items(),
            key=lambda kv: -self.graph[kv[0]].out_spec.nbytes,
        )
        if top is not None:
            rows = rows[:top]
        t = Table(
            f"plan rationale for {self.graph.name!r} on {self.machine.name}",
            ["map", "layer", "size", "class", "unhidden swap (ms)", "r(X)"],
        )
        for i, cls in rows:
            r = self.stats.r_values.get(i)
            t.add(
                i,
                self.graph[i].name,
                format_bytes(self.graph[i].out_spec.nbytes),
                cls.value,
                f"{overhead[i] * 1e3:.3f}" if i in overhead else "-",
                f"{r:.3g}" if r is not None and r != float("inf") else "-",
            )
        return t.render()

    def summary(self) -> str:
        counts = self.classification.counts()
        lines = [
            f"PoocH plan for {self.graph.name!r} on {self.machine.name}:",
            "  classes: " + " ".join(
                f"{k.value}={v}" for k, v in counts.items()
            ),
            f"  predicted iteration time: {self.predicted.time * 1e3:.3f} ms "
            + ("(from plan cache)"
               if self.stats.plan_cache_hit else
               f"(all-swap baseline {self.stats.time_all_swap * 1e3:.3f} ms)"),
            f"  search simulations: step1={self.stats.sims_step1} "
            f"step2={self.stats.sims_step2} "
            f"(full={self.stats.sims_full} resumed={self.stats.sims_resumed})",
            f"  step2 rounds: {self.stats.step2_rounds} "
            f"(r-values recomputed={self.stats.r_recomputed} "
            f"reused={self.stats.r_reused}, "
            f"full={self.stats.sims_step2_full} "
            f"resumed={self.stats.sims_step2_resumed}, "
            f"keep probes elided={self.stats.keep_probes_elided})",
            f"  search tree: {self.stats.leaves_evaluated}/"
            f"{self.stats.leaves_total} leaves evaluated, "
            f"{self.stats.subtrees_pruned} subtrees pruned",
            f"  search wall time: {self.stats.wall_time_s:.2f} s",
        ]
        if self.multi is not None:
            lines.extend(
                "  " + ln for ln in self.multi.summary().splitlines()
            )
        return "\n".join(lines)


class PoocH:
    """The system: construct with a machine, call :meth:`optimize`.

    Args:
        machine: execution environment to optimize for.
        config: search knobs (see :class:`PoochConfig`).
        cost_model: ground-truth cost model used for the profiling
            iterations; defaults to a deterministic model of ``machine``
            (pass one with ``jitter > 0`` to exercise noisy profiling).
        profile_iterations: how many iterations the profiling phase averages
            (the paper runs "several"; 1 suffices when deterministic).
        plan_cache: a :class:`~repro.runtime.plan_io.PlanCache` (or a
            directory path for one).  ``optimize`` then warm-starts the
            predictor from cached simulation outcomes, reuses a cached plan
            when one exists for this (graph, machine, config) — after
            re-verifying it by simulation against the current profile — and
            stores fresh results back for the next run.
        faults: a :class:`~repro.faults.FaultInjector` (or a
            :class:`~repro.faults.FaultSpec` / CLI spec string built with
            ``fault_seed``).  ``profile_noise`` then perturbs the measured
            profile before classification, and
        :meth:`PoochResult.execute_resilient` runs under the same injector.
        fault_seed: seed for an injector built from a spec/string.
        progress: optional ``callback(event, info)`` invoked at pipeline
            phase boundaries (``profile:start``, ``profile:done``,
            ``search:start``, ``search:done``, ``cache:hit``,
            ``stagger:start``, ``stagger:done``) with a JSON-shaped info
            dict.  The planning server streams these to job watchers.
            Exceptions raised by the callback propagate and abort the
            optimization — that is the server's cooperative-cancellation
            mechanism, so ``optimize`` must not swallow them.
    """

    def __init__(
        self,
        machine: MachineSpec,
        config: PoochConfig | None = None,
        cost_model: CostModel | None = None,
        profile_iterations: int = 1,
        plan_cache: PlanCache | str | pathlib.Path | None = None,
        faults: FaultInjector | FaultSpec | str | None = None,
        fault_seed: int = 0,
        progress: Callable[[str, dict[str, Any]], None] | None = None,
    ) -> None:
        self.machine = machine
        self.config = config or PoochConfig()
        self.cost_model = cost_model
        self.profile_iterations = profile_iterations
        if plan_cache is not None and not isinstance(plan_cache, PlanCache):
            plan_cache = PlanCache(plan_cache)
        self.plan_cache = plan_cache
        if faults is not None and not isinstance(faults, FaultInjector):
            faults = FaultInjector(faults, seed=fault_seed)
        self.faults = faults
        self.progress = progress

    def _emit(self, event: str, **info: Any) -> None:
        if self.progress is not None:
            self.progress(event, info)

    def optimize(self, graph: NNGraph, profile: Profile | None = None) -> PoochResult:
        """Run profiling (unless a profile is supplied) and classification."""
        with metrics.span("optimize", category="search", graph=graph.name,
                          machine=self.machine.name):
            return self._optimize(graph, profile)

    def _optimize(self, graph: NNGraph, profile: Profile | None) -> PoochResult:
        if profile is None:
            self._emit("profile:start", graph=graph.name,
                       machine=self.machine.name,
                       iterations=self.profile_iterations)
            profile = run_profiling(
                graph,
                self.machine,
                cost_model=self.cost_model,
                iterations=self.profile_iterations,
                policy=self.config.policy,
                forward_refetch_gap=self.config.forward_refetch_gap,
            )
            self._emit("profile:done", graph=graph.name)
        if self.faults is not None:
            # the classifier plans from what it *measured* — under profile
            # noise that is a perturbed copy of the truth
            from repro.runtime.schedule import ScheduleOptions

            profile = self.faults.perturb_profile(
                profile, graph, self.machine,
                options=ScheduleOptions(
                    policy=self.config.policy,
                    forward_refetch_gap=self.config.forward_refetch_gap,
                ),
            )
        predictor = TimelinePredictor(
            graph, profile, self.machine, policy=self.config.policy,
            capacity_margin=self.config.capacity_margin,
            forward_refetch_gap=self.config.forward_refetch_gap,
            incremental=self.config.incremental,
            incremental_step2=self.config.incremental_step2,
            vectorize=self.config.vectorize,
        )
        cache = self.plan_cache
        if cache is not None:
            predictor.preload_outcomes(
                cache.load_outcomes(graph, self.machine,
                                    predictor.sim_signature())
            )
            hit = cache.load_plan(graph, self.machine, self.config.signature())
            if hit is not None:
                classification, _meta = hit
                # simulate-before-running: trust the cache only if the plan
                # is still feasible under the *current* profile
                outcome = predictor.predict(classification)
                if outcome.feasible:
                    metrics.count("search.plan_cache_hits")
                    log.info("plan cache hit for %r on %s (re-verified: "
                             "%.3f ms predicted)", graph.name,
                             self.machine.name, outcome.time * 1e3)
                    self._emit("cache:hit", graph=graph.name,
                               predicted_time_s=outcome.time)
                    stats = SearchStats(plan_cache_hit=True)
                    stats.time_after_step2 = outcome.time
                    return self._attach_multi(PoochResult(
                        graph=graph,
                        machine=self.machine,
                        classification=classification,
                        profile=profile,
                        stats=stats,
                        predicted=outcome,
                        config=self.config,
                        faults=self.faults,
                    ))
                metrics.count("search.plan_cache_rejections")
        self._emit("search:start", graph=graph.name,
                   maps=len(graph.classifiable_maps()))
        classifier = PoochClassifier(
            graph, profile, self.machine, self.config, predictor
        )
        classification, stats = classifier.classify()
        predicted = predictor.predict(classification)
        self._emit("search:done", graph=graph.name,
                   predicted_time_s=predicted.time,
                   sims_step1=stats.sims_step1, sims_step2=stats.sims_step2,
                   wall_time_s=stats.wall_time_s)
        log.info(
            "chosen plan for %r on %s: %s, predicted %.3f ms",
            graph.name, self.machine.name,
            " ".join(f"{k.value}={v}"
                     for k, v in classification.counts().items()),
            predicted.time * 1e3,
        )
        if cache is not None:
            cache.store_plan(
                graph, self.machine, self.config.signature(), classification,
                predicted_time=predicted.time,
            )
            cache.merge_outcomes(graph, self.machine,
                                 predictor.sim_signature(),
                                 predictor.export_outcomes())
        return self._attach_multi(PoochResult(
            graph=graph,
            machine=self.machine,
            classification=classification,
            profile=profile,
            stats=stats,
            predicted=predicted,
            config=self.config,
            faults=self.faults,
        ))

    def _attach_multi(self, result: PoochResult) -> PoochResult:
        """KARMA-style second planning stage for multi-device machines.

        Executes the chosen single-replica plan once as ground truth, then
        searches per-device start offsets that interleave the replicas' swap
        windows on the shared host link (scored by the deterministic
        multi-device simulation, allreduce overlapped with the backward
        tail).  Single-device machines skip this entirely, so their results
        stay bit-identical to the pre-multi-device pipeline.
        """
        if self.machine.devices <= 1:
            return result
        self._emit("stagger:start", graph=result.graph.name,
                   devices=self.machine.devices)
        with metrics.span("stagger-plan", category="search",
                          graph=result.graph.name,
                          machine=self.machine.name):
            base = result.execute(cost_model=self.cost_model)
            plan = plan_staggered(
                base, self.machine, grad_bytes=result.grad_bytes()
            )
        self._emit("stagger:done", graph=result.graph.name,
                   makespan_s=plan.chosen.makespan)
        result.multi = plan
        stats = result.stats
        stats.devices = self.machine.devices
        stats.stagger_candidates = plan.candidates_evaluated
        stats.stagger_s = list(plan.stagger)
        stats.multi_makespan_naive = plan.naive.makespan
        stats.multi_makespan_chosen = plan.chosen.makespan
        log.info(
            "multi-device plan for %r on %s: %s",
            result.graph.name, self.machine.name,
            plan.summary().replace("\n", "; "),
        )
        return result
