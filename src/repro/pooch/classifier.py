"""The two-step classification search (§4.4).

Step 1 — keep vs swap (§4.4.2):
  * simulate the all-swap baseline, extract ``L_O`` / ``L_I``;
  * maps outside ``L_O ∪ L_I`` are classified ``swap`` immediately;
  * a binary search tree enumerates keep/swap for the maps of ``L_I``
    (the set for which the paper found no reliable greedy order);
  * at each leaf, the maps of ``L_O \\ L_I`` are scanned from the output
    layer toward the input, greedily switched ``swap → keep`` while the
    simulated plan stays feasible and does not slow down (the paper's
    observation: un-hidden swap-outs cluster at the end of forward, so
    keeping from the back strictly removes them);
  * every candidate is scored by the timeline predictor.

Step 2 — swap vs recompute (§4.4.3):
  * for every map still ``swap``, compute
    ``r(X) = recompute_overhead(X) / swap_overhead(X)`` with other classes
    fixed, both overheads measured by simulation against the "X kept"
    baseline;
  * discard ``r ≥ 1`` maps from consideration (they stay ``swap``), flip the
    smallest ``r < 1`` to ``recompute``, and repeat until the pool is empty.

Scalability deviations from the poster (documented in DESIGN.md §5): the
exact tree is bounded at ``max_exact_li`` variables (the highest-overhead
members of ``L_I``; the rest join the greedy scan), subtrees whose committed
keep-bytes already exceed capacity are pruned, and a total simulation budget
caps the search while keeping the best plan found.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace

import numpy as np

from repro.common.errors import OutOfMemoryError
from repro.graph import NNGraph
from repro.gpusim.allocator import round_size
from repro.gpusim.engine import StreamName
from repro.hw import MachineSpec
from repro.obs import get_logger, metrics
from repro.pooch.overlap import OverlapAnalysis, analyze_overlap
from repro.pooch.predictor import PredictedOutcome, TimelinePredictor
from repro.runtime.plan import Classification, MapClass, SwapInPolicy
from repro.runtime.profiler import Profile

log = get_logger(__name__)


@dataclass(frozen=True)
class PoochConfig:
    """Classifier knobs; defaults follow the paper where it specifies them."""

    #: swap-in schedule used for every simulation and for execution (§4.3)
    policy: SwapInPolicy = SwapInPolicy.EAGER
    #: hidden-swap tolerances for the L_O/L_I extraction
    abs_tolerance: float = 2e-6
    rel_tolerance: float = 0.02
    #: exact-search width: at most this many L_I maps get true binary-tree
    #: enumeration; the rest fall back to the greedy scan
    max_exact_li: int = 8
    #: hard cap on step-1 predictor simulations (best plan so far is kept)
    step1_sim_budget: int = 1200
    #: accept a keep-switch when it does not slow the plan by more than this
    time_epsilon: float = 1e-12
    #: re-verify each r(X)<1 flip end-to-end and revert if it slowed the plan
    #: (safety net on top of the paper's rule)
    verify_flips: bool = True
    #: bytes of device capacity the chosen plan must leave free — slack for
    #: allocator fragmentation that the counting memory model cannot see
    #: (0 reproduces the paper; see the fragmentation ablation benchmark)
    capacity_margin: int = 0
    #: forward re-fetch gap for long skip connections (extension; see
    #: ScheduleOptions.forward_refetch_gap; None reproduces the paper)
    forward_refetch_gap: int | None = None
    #: simulation parallelism: >1 fans step-1 leaf evaluations and step-2
    #: r(X) rounds over a process pool.  Results — chosen classification,
    #: SearchStats times and simulation counts — are bit-identical to
    #: ``workers=1``; see DESIGN.md §5 for the replay argument.
    workers: int = 1
    #: branch-and-bound pruning of the step-1 exact tree: subtrees whose
    #: admissible lower bound (remaining undecided swaps assumed free)
    #: cannot strictly beat the incumbent are skipped without simulating.
    #: The chosen plan is provably identical to the exhaustive scan as long
    #: as the simulation budget is not exhausted; under an exhausted budget
    #: pruning lets the search reach deeper into the leaf list, so the knob
    #: is part of :meth:`signature`.
    prune: bool = True
    #: incremental prefix-shared replay: candidate simulations resume from
    #: checkpoints of recent candidates wherever their schedules provably
    #: agree (see EngineCheckpoint).  Bit-identical outcomes and simulation
    #: counts — only wall-clock changes, so like ``workers`` it is excluded
    #: from :meth:`signature`.  In step 1 this covers every candidate; the
    #: step-2 extension has its own knob below.
    incremental: bool = True
    #: extend the incremental machinery to step 2 (swap vs recompute):
    #: recompute candidates are drafted by delta-patching and resumed from
    #: recompute-aware checkpoints, and r(X) values are carried across
    #: rounds under conservative dirty-set invalidation (only maps whose
    #: perturbation windows overlap an accepted flip's are re-evaluated;
    #: acceptance itself always re-predicts, ``verify_flips`` semantics
    #: unchanged).  Keep probes whose draft liveness floor already exceeds
    #: capacity are answered "infeasible" without simulating (sound by
    #: construction: the floor is an admissible peak bound, see
    #: :func:`~repro.runtime.schedule.liveness_floor`).
    #: Plans are bit-identical on/off across the model zoo
    #: (tests enforce it), but unlike ``incremental`` the r-value reuse
    #: changes *which candidates are simulated*, so the knob is part of
    #: :meth:`signature`.
    incremental_step2: bool = True
    #: evaluate pure keep/swap candidates on the lockstep vector engine
    #: (:mod:`repro.gpusim.vecengine`): step-1 leaves are staged by a
    #: speculative chunk-major sweep and step-2 keep probes by one sweep
    #: per round, with the event engine as fallback for everything the
    #: flip family cannot express (recompute probes, non-EAGER drafts).
    #: Outcomes are bit-identical to the event engines (the differential
    #: harness fuzzes it), so plans and simulation counts never change —
    #: but the knob swaps the engine family that produced every cached
    #: outcome, so it stays in :meth:`signature` out of caution: a plan
    #: cache entry is never silently reused across engine families.
    vectorize: bool = True

    def signature(self) -> str:
        """Stable identity of every knob that affects the *chosen plan* or
        the set of candidates simulated (``workers`` and ``incremental``
        excluded: they change wall-clock, never results).  Plan caches key
        on this."""
        return (
            f"policy={self.policy.value};abs={self.abs_tolerance!r};"
            f"rel={self.rel_tolerance!r};li={self.max_exact_li};"
            f"budget={self.step1_sim_budget};eps={self.time_epsilon!r};"
            f"verify={self.verify_flips};margin={self.capacity_margin};"
            f"gap={self.forward_refetch_gap};prune={self.prune};"
            f"step2={self.incremental_step2};vec={self.vectorize}"
        )


@dataclass
class SearchStats:
    """Bookkeeping the benchmarks and EXPERIMENTS.md report."""

    overlap: OverlapAnalysis | None = None
    exact_li: list[int] = field(default_factory=list)
    scan_order: list[int] = field(default_factory=list)
    sims_step1: int = 0
    sims_step2: int = 0
    budget_exhausted: bool = False
    time_all_swap: float = float("inf")
    time_after_step1: float = float("inf")
    time_after_step2: float = float("inf")
    flips_to_recompute: list[int] = field(default_factory=list)
    #: the paper's r(X) ratio per map, from the first step-2 round (the
    #: round where every step-1 swap map is evaluated)
    r_values: dict[int, float] = field(default_factory=dict)
    #: per-round r(X) history — one dict per step-2 round, in round order,
    #: capped at ``R_ROUNDS_LIMIT`` rounds (reused values included: this is
    #: what the round's discard/argmin decisions actually read)
    r_rounds: list[dict[int, float]] = field(default_factory=list)
    #: step-2 dirty-set accounting: rounds run, r-values recomputed because
    #: their window overlapped an accepted flip's (or the round was fresh),
    #: and r-values reused from the previous round
    step2_rounds: int = 0
    r_recomputed: int = 0
    r_reused: int = 0
    #: step-2 share of the full/resumed replay split below (serial-side
    #: only, same ``workers>1`` caveat)
    sims_step2_full: int = 0
    sims_step2_resumed: int = 0
    #: keep probes answered from the draft's liveness floor instead of a
    #: simulation — the floor already exceeded capacity, so the simulation
    #: could only have returned "infeasible" (incremental_step2 only)
    keep_probes_elided: int = 0
    #: True when the plan came from a PlanCache (verified by simulation)
    #: instead of a fresh search — search fields above are then empty
    plan_cache_hit: bool = False
    #: step-1 exact-tree accounting: leaves enumerated after the byte
    #: prune, leaves actually evaluated, and what branch-and-bound skipped
    leaves_total: int = 0
    leaves_evaluated: int = 0
    subtrees_pruned: int = 0
    leaves_pruned: int = 0
    #: of this process's simulations, how many replayed from time zero vs.
    #: resumed from a shared-prefix checkpoint (with ``workers>1`` the
    #: worker-side split is not collected; the sum then undercounts
    #: ``sims_step1+sims_step2``, which remain the authoritative counts)
    sims_full: int = 0
    sims_resumed: int = 0
    #: vectorized-vs-fallback split of the search's simulations: outcomes a
    #: lockstep sweep produced *and the search consumed* (counted once, at
    #: absorb time) vs simulations that ran through the serial event-engine
    #: path (recompute probes, non-expressible drafts, vectorize=False)
    sims_vectorized: int = 0
    sims_fallback: int = 0
    #: lockstep sweeps run and total candidate rows swept; rows the
    #: speculative step-1 driver evaluated but never consumed (mispredicted
    #: tails, pruned leaves) are included, so rows ≥ ``sims_vectorized``
    vector_sweeps: int = 0
    vector_candidates: int = 0
    #: wall-clock seconds spent inside classify()
    wall_time_s: float = 0.0
    #: multi-device planning (populated only when the machine has more than
    #: one device): replica count, stagger candidates scored, the chosen
    #: per-device start offsets, and the naive-vs-staggered makespans
    devices: int = 1
    stagger_candidates: int = 0
    stagger_s: list[float] = field(default_factory=list)
    multi_makespan_naive: float = 0.0
    multi_makespan_chosen: float = 0.0


#: bound on the retained per-round r-value history (each entry is one dict
#: per pool map; dozens of rounds only occur on degenerate searches)
R_ROUNDS_LIMIT = 32


# -- worker-process side of the parallel search ----------------------------------
#
# Each pool worker builds its own TimelinePredictor once (initializer) and
# then evaluates work items independently; the parent *replays* the returned
# outcomes in serial order, so caches, budget accounting and tie-breaking
# are exactly those of the serial search (DESIGN.md §5).

_worker_predictor: TimelinePredictor | None = None
_worker_all_swap: Classification | None = None
_worker_epsilon: float = 0.0


def _init_search_worker(graph: NNGraph, profile: Profile,
                        machine: MachineSpec, config: PoochConfig) -> None:
    global _worker_predictor, _worker_all_swap, _worker_epsilon
    _worker_predictor = TimelinePredictor(
        graph, profile, machine, policy=config.policy,
        capacity_margin=config.capacity_margin,
        forward_refetch_gap=config.forward_refetch_gap,
        incremental=config.incremental,
        incremental_step2=config.incremental_step2,
        vectorize=config.vectorize,
    )
    _worker_all_swap = Classification.all_swap(graph)
    _worker_epsilon = config.time_epsilon


def _eval_leaf(
    args: tuple[tuple[int, ...], list[int], dict[int, int], int],
) -> tuple[PredictedOutcome, list[PredictedOutcome | None]]:
    """Evaluate one step-1 leaf to completion (no budget — the parent
    truncates during replay).  Returns the leaf-base outcome plus one event
    per scan position: ``None`` for a byte-budget skip, else the trial's
    outcome."""
    keeps, scan, map_bytes, keep_budget = args
    pred, all_swap = _worker_predictor, _worker_all_swap
    cls = all_swap.with_classes({m: MapClass.KEEP for m in keeps})
    base = pred.predict(cls)
    events: list[PredictedOutcome | None] = []
    if not base.feasible:
        return base, events
    cur_cls, cur_time = cls, base.time
    kept_bytes = sum(map_bytes[m] for m in keeps)
    for m in scan:
        if kept_bytes + map_bytes[m] > keep_budget:
            events.append(None)
            continue
        trial = cur_cls.with_class(m, MapClass.KEEP)
        out = pred.predict(trial)
        events.append(out)
        if out.feasible and out.time <= cur_time + _worker_epsilon:
            cur_cls, cur_time = trial, out.time
            kept_bytes += map_bytes[m]
    return base, events


def _predict_one(classification: Classification) -> PredictedOutcome:
    """Simulate a single candidate in a pool worker (step-2 rounds)."""
    return _worker_predictor.predict(classification)


# -- step-1 branch-and-bound -----------------------------------------------------


class _StepOneBounds:
    """Admissible lower bounds on the simulated makespan of any step-1
    candidate, as a function of which exact-tree maps are committed SWAP.

    Everything derives from the *all-swap* draft once.  Step-1 candidates
    share its compute queue exactly (keep/swap never adds or removes compute
    tasks), transfer queues of a candidate are order-preserving subsets of
    the all-swap ones, and a committed-swap map keeps its ``SO``/``SI``
    tasks in every leaf of the subtree.  Four relaxations, each ignoring
    memory gating and every undecided transfer (both only delay):

    * the serial compute queue itself;
    * per committed map, the dependency chain
      F → SO → SI → first backward reader → remaining compute queue;
    * the FIFO D2H queue packed with the committed swap-outs only;
    * the FIFO H2D queue packed with the committed swap-ins only.

    Float discipline: the engine's event arithmetic is a left fold of
    ``max(...) + duration`` steps, and IEEE ``max``/``+`` are monotone, so
    any bound computed as a left fold over a *subset* of those steps, in
    queue order, never exceeds the engine's float result.  The one sum that
    cannot be order-matched (the chain bound's compute-queue tail, which
    the engine folds forward but we precompute backward) is scaled down by
    the standard ``2n·ulp`` summation-error envelope.  Pruning on these
    bounds with a strict-< incumbent is therefore *exactly* plan-preserving.
    """

    def __init__(self, predictor: TimelinePredictor, all_swap: Classification,
                 candidates: set[int]) -> None:
        tasks, queues, buffers = predictor.draft(all_swap)
        compute = queues.get(StreamName.COMPUTE, [])
        pos_c = {tid: p for p, tid in enumerate(compute)}
        durs = [tasks[tid].duration for tid in compute]
        n = len(durs)
        t0 = 0.0
        if compute:
            first = tasks[compute[0]]
            t0 = max((tasks[d].duration for d in first.deps), default=0.0)
        # left-fold completion-time floor per compute position, engine order
        prefix = [0.0] * n
        acc = t0
        for p, d in enumerate(durs):
            acc += d
            prefix[p] = acc
        self.compute_lb = acc if n else 0.0
        # backward suffix sums, deflated to stay under any forward fold
        deflate = 1.0 - 2.0 * n * 2.0 ** -52
        suffix = [0.0] * (n + 1)
        for p in range(n - 1, -1, -1):
            suffix[p] = suffix[p + 1] + durs[p]

        pos_d = {tid: p for p, tid in enumerate(queues.get(StreamName.D2H, []))}
        pos_h = {tid: p for p, tid in enumerate(queues.get(StreamName.H2D, []))}
        self._ready: dict[int, float] = {}
        self._d_so: dict[int, float] = {}
        self._d_si: dict[int, float] = {}
        self._chain: dict[int, float] = {}
        order_d: list[tuple[int, int]] = []
        order_h: list[tuple[int, int]] = []
        for m in all_swap.maps_of(MapClass.SWAP):
            so = tasks.get(f"SO{m}")
            if so is None:
                continue
            fp = max((pos_c[d] for d in so.deps if d in pos_c), default=None)
            ready = prefix[fp] if fp is not None else t0
            self._ready[m] = ready
            self._d_so[m] = so.duration
            order_d.append((pos_d[f"SO{m}"], m))
            si = tasks.get(f"SI{m}")
            if si is None:
                continue
            self._d_si[m] = si.duration
            order_h.append((pos_h[f"SI{m}"], m))
            buf = buffers.get(f"fm{m}@b")
            rp = min(
                (pos_c[r] for r in buf.readers if r in pos_c), default=None
            ) if buf is not None else None
            if rp is not None:
                self._chain[m] = (
                    ready + so.duration + si.duration + suffix[rp] * deflate
                )
        order_d.sort()
        order_h.sort()
        self._order_d = [m for _, m in order_d]
        self._order_h = [m for _, m in order_h]
        #: maps outside the step-1 candidate set stay SWAP in every leaf
        self._base = frozenset(self._ready) - candidates

    def lower_bound(self, committed: frozenset[int] | set[int]) -> float:
        """Best-case makespan when ``base ∪ committed`` maps swap and every
        other transfer is free."""
        base = self._base
        lb = self.compute_lb
        chain = self._chain
        ready = self._ready
        # FIFO pack of the committed swap-outs (left fold, queue order)
        v = 0.0
        d_so = self._d_so
        for m in self._order_d:
            if m in base or m in committed:
                r = ready[m]
                v = (v if v > r else r) + d_so[m]
                c = chain.get(m, 0.0)
                if c > lb:
                    lb = c
        if v > lb:
            lb = v
        # FIFO pack of the committed swap-ins; each waits for its swap-out
        v = 0.0
        d_si = self._d_si
        for m in self._order_h:
            if m in base or m in committed:
                r = ready[m] + d_so[m]
                v = (v if v > r else r) + d_si[m]
        if v > lb:
            lb = v
        return lb


class _LeafCursor:
    """Walks the enumerated step-1 leaves in DFS order, skipping subtrees
    whose lower bound cannot strictly beat the incumbent.

    Equivalent to branch-and-bound woven into the recursive enumeration:
    a tree node (= decision prefix over ``exact_li``) is bounded exactly
    once, at the moment the first surviving leaf underneath it comes up —
    the same moment, with the same incumbent, as a recursive DFS would
    enter it.  With ``bounds=None`` the cursor degrades to plain iteration
    (the ``--no-prune`` escape hatch).
    """

    def __init__(self, leaves: list[tuple[int, ...]], exact_li: list[int],
                 bounds: _StepOneBounds | None, stats: SearchStats) -> None:
        self._leaves = leaves
        self._exact = exact_li
        self._k = len(exact_li)
        self._bounds = bounds
        self._stats = stats
        self._pos = 0
        self._prev: tuple[bool, ...] | None = None

    def _decisions(self, keeps: tuple[int, ...]) -> tuple[bool, ...]:
        ks = set(keeps)
        return tuple(m in ks for m in self._exact)

    def next(self, best_time: float) -> tuple[int, tuple[int, ...]] | None:
        """Index and keep-set of the next leaf to evaluate, or None."""
        leaves = self._leaves
        if self._bounds is None:
            if self._pos >= len(leaves):
                return None
            self._pos += 1
            return self._pos - 1, leaves[self._pos - 1]
        while self._pos < len(leaves):
            keeps = leaves[self._pos]
            dec = self._decisions(keeps)
            prev = self._prev
            if prev is None:
                entered = 0  # first leaf enters the root and every node below
            else:
                entered = 0
                while entered < self._k and dec[entered] == prev[entered]:
                    entered += 1
                entered += 1  # nodes at depths <= common prefix were bounded
            pruned_depth = -1
            for depth in range(entered, self._k + 1):
                committed = frozenset(
                    self._exact[j] for j in range(depth) if not dec[j]
                )
                if self._bounds.lower_bound(committed) >= best_time:
                    pruned_depth = depth
                    break
            self._prev = dec
            if pruned_depth < 0:
                self._pos += 1
                return self._pos - 1, keeps
            self._stats.subtrees_pruned += 1
            prefix = dec[:pruned_depth]
            while (self._pos < len(leaves)
                   and self._decisions(leaves[self._pos])[:pruned_depth]
                   == prefix):
                self._pos += 1
                self._stats.leaves_pruned += 1
        return None


class _VectorLeafStager:
    """Speculative chunk-major evaluation of step-1 leaves on the lockstep
    vector engine, staged in the worker-protocol shape ``(base, events)``.

    The serial search walks leaves one at a time, each an inherently
    sequential greedy scan (every accept changes the next trial).  The
    stager breaks that chain the same way the process-pool path does —
    evaluate ahead, then *replay* through ``consume_leaf`` so accounting,
    budget truncation and the chosen plan are exactly serial — but gets its
    outcomes from lockstep sweeps instead of worker processes:

    * leaves are staged in windows sized to the remaining simulation
      budget (everything past the budget's reach is never swept);
    * every live leaf *speculates* a run of candidate trials along its
      own greedy frontier under predicted accept/reject decisions; one
      sweep evaluates every leaf's run at once; each leaf's greedy walk
      then replays against the swept outcomes — a mispredicted decision
      invalidates that leaf's speculated tail, which is regenerated from
      the corrected prefix in the next round.  Leaves advance
      independently (no barrier between scan positions), so a straggler
      never forces the window back into tiny sweeps;
    * decisions are predicted per scan position by majority vote over
      the decisions other leaves already made there, and a leaf's run is
      cut off once the joint probability that its speculated prefix is
      right drops below ``THRESH`` (or at ``DEPTH`` trials).  Positions
      where leaves agree are swept tens deep; positions where they
      genuinely disagree are swept nearly unspeculated;
    * a window opens with a pioneer cohort (growing fourfold per round)
      so early leaves populate the votes before the bulk of the window
      speculates against them.

    Decisions replayed here use the exact accept rule of the search on
    exact outcomes, so staged events equal what serial evaluation would
    have produced wherever the search consults them; everything else is
    discarded without ever touching the predictor cache.  A ``None`` event
    (byte-skip, non-OOM engine error, or vectorization lost mid-run) makes
    ``consume_leaf`` fall back to the serial predictor for that position.
    The vote tallies only steer *speculation* — which trials are staged —
    never a decision, so they cannot affect the chosen plan.
    """

    DEPTH = 48          # max speculated trials per leaf per sweep
    THRESH = 0.9        # min joint probability a speculated tail is valid
    RAMP = 32           # pioneer cohort size; quadruples every round

    def __init__(self, predictor, leaves, scan, map_bytes, keep_budget,
                 epsilon, budget_remaining) -> None:
        self.predictor = predictor
        self.leaves = leaves
        self.scan = scan
        self.map_bytes = map_bytes
        self.keep_budget = keep_budget
        self.epsilon = epsilon
        self.budget_remaining = budget_remaining
        self._fi = predictor.vector_flip_index()
        self._staged: dict[int, tuple] = {}
        #: per scan position: how many staged leaves accepted / rejected
        #: the flip there (majority predicts, minority share gates depth)
        self._acc = [0] * len(scan)
        self._rej = [0] * len(scan)
        #: leaves below this index were staged (or skipped past) already
        self._next = 0

    def get(self, idx: int):
        """Worker-protocol ``(base, events)`` for leaf ``idx``, staging the
        window that contains it on demand; None when vectorization is
        unavailable (caller falls back to pure serial evaluation)."""
        if self._fi is None:
            return None
        pre = self._staged.pop(idx, None)
        if pre is not None:
            return pre
        if idx < self._next:  # already consumed (cannot happen: the cursor
            return None       # visits each leaf once) — serve serially
        # size the window to what the simulation budget can still absorb:
        # one base plus one trial per scan position per leaf
        per_leaf = 1 + len(self.scan)
        want = max(8, -(-self.budget_remaining() // per_leaf))
        hi = min(len(self.leaves), idx + want)
        self._stage(list(range(idx, hi)))
        self._next = hi
        return self._staged.pop(idx, None)

    # -- window staging ---------------------------------------------------------

    def _rows_for(self, keep_sets) -> np.ndarray:
        fi = self._fi
        rows = np.zeros((len(keep_sets), len(fi)), bool)
        for r, ks in enumerate(keep_sets):
            for m in ks:
                rows[r, fi[m]] = True
        return rows

    def _stage(self, indices: list[int]) -> None:
        rows = self._rows_for([self.leaves[li] for li in indices])
        outs = self.predictor.predict_keep_batch(rows)
        if outs is None:
            self._fi = None
            return
        # leaves awaiting admission; each entry carries the walk state
        # (prefix, keep row, best time, kept bytes) at its greedy frontier
        queue: list[tuple[int, tuple]] = []
        for r, li in enumerate(indices):
            base = outs[r]
            self._staged[li] = (base, [None] * len(self.scan))
            if base is not None and base.feasible:
                kb = sum(self.map_bytes[m] for m in self.leaves[li])
                queue.append((li, ((), rows[r], base.time, kb)))
        live: dict[int, tuple] = {}
        admit = self.RAMP
        while queue or live:
            for li, st in queue[:admit]:
                live[li] = st
            del queue[:admit]
            admit *= 4
            entries: list[tuple[int, int, tuple]] = []
            cand: list[np.ndarray] = []
            for li, st in sorted(live.items()):
                self._gen(li, st, entries, cand)
            stage: dict[tuple[int, int], tuple] = {}
            if cand:
                outs = self.predictor.predict_keep_batch(np.stack(cand))
                if outs is None:
                    self._fi = None
                    return
                for (li, j, prefix), out in zip(entries, outs):
                    stage[(li, j)] = (prefix, out)
            for li, st in sorted(live.items()):
                done, nst = self._walk(li, st, stage)
                if done:
                    del live[li]
                else:
                    live[li] = nst

    def _gen(self, li, st, entries, cand) -> None:
        """Speculate the next run of candidate trials along one leaf's
        greedy frontier.  Each decision not yet made is predicted by the
        per-position majority vote; the run stops once the joint
        probability that the speculated prefix is right — the product of
        the majority shares it rests on — drops below ``THRESH``.  The
        first trial sits on no prediction at all, so every live leaf
        always stages at least one decidable trial (progress guarantee)."""
        prefix, cur, _t, kb = st
        fi = self._fi
        conf = 1.0
        emitted = 0
        for j in range(len(prefix), len(self.scan)):
            m = self.scan[j]
            if kb + self.map_bytes[m] > self.keep_budget:
                prefix = prefix + (False,)
                continue
            row = cur.copy()
            row[fi[m]] = True
            entries.append((li, j, prefix))
            cand.append(row)
            emitted += 1
            acc, rej = self._acc[j], self._rej[j]
            if acc >= rej:
                cur = row
                kb += self.map_bytes[m]
                prefix = prefix + (True,)
            else:
                prefix = prefix + (False,)
            if acc or rej:
                conf *= max(acc, rej) / (acc + rej)
            if emitted >= self.DEPTH or conf < self.THRESH:
                return

    def _walk(self, li, st, stage):
        """Replay the greedy scan for one leaf against the swept outcomes,
        casting its accept/reject votes as it decides.  Returns
        ``(True, None)`` when the scan is finished, else ``(False, state)``
        stalled at the first position whose outcome is missing (or was
        swept under a mispredicted prefix), to regenerate next round."""
        prefix, cur, t, kb = st
        _, events = self._staged[li]
        fi = self._fi
        for j in range(len(prefix), len(self.scan)):
            m = self.scan[j]
            if kb + self.map_bytes[m] > self.keep_budget:
                prefix = prefix + (False,)
                continue
            hit = stage.get((li, j))
            if hit is None or hit[0] != prefix:
                return False, (prefix, cur, t, kb)
            out = hit[1]
            events[j] = out
            if (out is not None and out.feasible
                    and out.time <= t + self.epsilon):
                cur = cur.copy()
                cur[fi[m]] = True
                t = out.time
                kb += self.map_bytes[m]
                self._acc[j] += 1
                prefix = prefix + (True,)
            else:
                self._rej[j] += 1
                prefix = prefix + (False,)
        return True, None


class PoochClassifier:
    """Runs the two-step search; one instance per (graph, profile, machine)."""

    def __init__(
        self,
        graph: NNGraph,
        profile: Profile,
        machine: MachineSpec,
        config: PoochConfig | None = None,
        predictor: TimelinePredictor | None = None,
    ) -> None:
        self.graph = graph
        self.profile = profile
        self.machine = machine
        self.config = config or PoochConfig()
        self.predictor = predictor or TimelinePredictor(
            graph, profile, machine, policy=self.config.policy,
            capacity_margin=self.config.capacity_margin,
            forward_refetch_gap=self.config.forward_refetch_gap,
            incremental=self.config.incremental,
            incremental_step2=self.config.incremental_step2,
            vectorize=self.config.vectorize,
        )
        self.stats = SearchStats()

    # -- public -------------------------------------------------------------------

    def classify(self, steps: int = 2) -> tuple[Classification, SearchStats]:
        """Run the search and return the chosen classification.

        ``steps=1`` stops after the keep/swap step — the paper's "swap-opt"
        ablation configuration (§5.1); ``steps=2`` (default) is full PoocH.
        """
        if steps not in (1, 2):
            raise ValueError(f"steps must be 1 or 2, got {steps}")
        executor = self._make_executor()
        start = time.perf_counter()
        full_at_start = self.predictor.full_simulations
        resumed_at_start = self.predictor.resumed_simulations
        sweeps_at_start = self.predictor.vector_sweeps
        swept_at_start = self.predictor.vector_candidates
        try:
            with metrics.span("search.step1", category="search",
                              graph=self.graph.name):
                step1 = self._step1_keep_vs_swap(executor)
            if steps == 1:
                self.stats.time_after_step2 = self.stats.time_after_step1
                return step1, self.stats
            with metrics.span("search.step2", category="search",
                              graph=self.graph.name):
                step2 = self._step2_swap_vs_recompute(step1, executor)
            return step2, self.stats
        finally:
            self.stats.wall_time_s = time.perf_counter() - start
            self.stats.sims_full = (
                self.predictor.full_simulations - full_at_start
            )
            self.stats.sims_resumed = (
                self.predictor.resumed_simulations - resumed_at_start
            )
            self.stats.vector_sweeps = (
                self.predictor.vector_sweeps - sweeps_at_start
            )
            self.stats.vector_candidates = (
                self.predictor.vector_candidates - swept_at_start
            )
            self.stats.sims_fallback = (
                self.stats.sims_step1 + self.stats.sims_step2
                - self.stats.sims_vectorized
            )
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
            self._publish_stats()

    def _publish_stats(self) -> None:
        """Mirror :class:`SearchStats` into the active metrics registry.

        Called once per search, after the fact — the search loops
        themselves never touch telemetry, so the chosen plan cannot depend
        on whether a registry is installed."""
        registry = metrics.active()
        s = self.stats
        log.info(
            "search on %r: step1 %d sims (%d/%d leaves, %d subtrees pruned), "
            "step2 %d sims, %d recompute flips, %.2f s wall",
            self.graph.name, s.sims_step1, s.leaves_evaluated,
            s.leaves_total, s.subtrees_pruned, s.sims_step2,
            len(s.flips_to_recompute), s.wall_time_s,
        )
        if registry is None:
            return
        registry.count("search.searches")
        registry.count("search.sims_step1", s.sims_step1)
        registry.count("search.sims_step2", s.sims_step2)
        registry.count("search.sims_full", s.sims_full)
        registry.count("search.sims_resumed", s.sims_resumed)
        registry.count("search.sims_vectorized", s.sims_vectorized)
        registry.count("search.sims_fallback", s.sims_fallback)
        registry.count("search.vector_sweeps", s.vector_sweeps)
        registry.count("search.vector_candidates", s.vector_candidates)
        registry.count("search.sims_step2_full", s.sims_step2_full)
        registry.count("search.sims_step2_resumed", s.sims_step2_resumed)
        registry.count("search.keep_probes_elided", s.keep_probes_elided)
        registry.count("search.step2_rounds_run", s.step2_rounds)
        registry.count("search.r_recomputed", s.r_recomputed)
        registry.count("search.r_reused", s.r_reused)
        if s.r_rounds:
            # structured per-round r(X) history (schema v1.1): what every
            # round's discard/argmin decisions actually read
            registry.record("search.step2_rounds", [
                {str(m): r for m, r in round_.items()}
                for round_ in s.r_rounds
            ])
        registry.count("search.leaves_total", s.leaves_total)
        registry.count("search.leaves_evaluated", s.leaves_evaluated)
        registry.count("search.subtrees_pruned", s.subtrees_pruned)
        registry.count("search.leaves_pruned", s.leaves_pruned)
        registry.count("search.budget_exhausted", int(s.budget_exhausted))
        registry.count("search.flips_to_recompute", len(s.flips_to_recompute))
        registry.count("search.predictor_cache_hits",
                       self.predictor.cache_hits)
        registry.gauge("search.wall_s", s.wall_time_s)
        registry.gauge("search.time_all_swap", s.time_all_swap)
        registry.gauge("search.time_after_step1", s.time_after_step1)
        registry.gauge("search.time_after_step2", s.time_after_step2)

    def _make_executor(self) -> ProcessPoolExecutor | None:
        if self.config.workers <= 1:
            return None
        # the baseline timeline is only read parent-side (overlap analysis);
        # dropping it keeps the per-worker pickle payload small
        profile = replace(self.profile, baseline=None)
        return ProcessPoolExecutor(
            max_workers=self.config.workers,
            initializer=_init_search_worker,
            initargs=(self.graph, profile, self.machine, self.config),
        )

    # -- step 1 -------------------------------------------------------------------

    def _step1_keep_vs_swap(
        self, executor: ProcessPoolExecutor | None = None
    ) -> Classification:
        cfg = self.config
        all_swap = Classification.all_swap(self.graph)
        base_outcome = self.predictor.predict(all_swap)
        if not base_outcome.feasible:
            raise OutOfMemoryError(
                "even the all-swap plan does not fit this machine "
                f"({base_outcome.oom_context}); the network is too large for "
                "out-of-core execution at this granularity"
            )
        self.stats.time_all_swap = base_outcome.time

        if self.profile.baseline is None:
            raise OutOfMemoryError("profile is missing its baseline timeline")
        overlap = analyze_overlap(
            self.profile.baseline,
            abs_tolerance=cfg.abs_tolerance,
            rel_tolerance=cfg.rel_tolerance,
        )
        self.stats.overlap = overlap

        # maps eligible for KEEP consideration; everything else stays swap
        candidates = overlap.candidates & set(all_swap.classes)
        li = sorted(
            overlap.L_I & candidates,
            key=lambda m: overlap.overhead.get(m, 0.0),
            reverse=True,
        )
        exact_li = li[: cfg.max_exact_li]
        # the greedy scan covers L_O \ L_I plus any L_I overflow, walked from
        # the output layer toward the input (descending map index)
        scan = sorted(candidates - set(exact_li), reverse=True)
        self.stats.exact_li = list(exact_li)
        self.stats.scan_order = list(scan)

        # conservative keep-budget prune: keeps beyond this certainly OOM
        keep_budget = (
            self.machine.usable_gpu_memory - cfg.capacity_margin
            - 2 * round_size(self.graph.total_param_bytes)
        )
        map_bytes = {m: round_size(self.graph[m].out_spec.nbytes) for m in candidates}

        best_cls = all_swap
        best_time = base_outcome.time
        sims_at_start = self.predictor.simulations

        def budget_left() -> bool:
            used = self.predictor.simulations - sims_at_start
            if used >= cfg.step1_sim_budget:
                self.stats.budget_exhausted = True
                return False
            return True

        # staged-outcome plumbing for the serial vectorized driver (below);
        # stays None on the worker path, where ``pre`` outcomes come from
        # processes and count as fallback (event-engine) simulations
        stager: _VectorLeafStager | None = None

        def absorb_staged(key: tuple, out: PredictedOutcome | None) -> None:
            if out is None:
                return  # nothing staged: the serial predictor takes over
            if self.predictor.absorb(key, out) and stager is not None:
                self.stats.sims_vectorized += 1

        def consume_leaf(
            keeps: tuple[int, ...],
            pre: tuple[PredictedOutcome, list[PredictedOutcome | None]] | None,
        ) -> bool:
            """Evaluate one leaf: the exact L_I subset ``keeps``, then the
            greedy scan.  With ``pre`` (a worker's outcomes) the evaluation
            *replays* — each outcome is absorbed into the shared predictor
            cache right before the lookup the serial search would make, so
            state, accounting and budget truncation are identical.  Returns
            False when the simulation budget ran out mid-leaf."""
            nonlocal best_cls, best_time
            cls = all_swap.with_classes({m: MapClass.KEEP for m in keeps})
            if pre is not None:
                absorb_staged(cls.key(), pre[0])
            outcome = self.predictor.predict(cls)
            if not outcome.feasible:
                return True  # keeping this L_I subset over-commits memory
            cur_cls, cur_time = cls, outcome.time
            if cur_time < best_time:
                best_cls, best_time = cur_cls, cur_time
            kept_bytes = sum(map_bytes[m] for m in keeps)
            for idx, m in enumerate(scan):
                if not budget_left():
                    return False
                if kept_bytes + map_bytes[m] > keep_budget:
                    continue
                trial = cur_cls.with_class(m, MapClass.KEEP)
                if pre is not None:
                    absorb_staged(trial.key(), pre[1][idx])
                out = self.predictor.predict(trial)
                if out.feasible and out.time <= cur_time + cfg.time_epsilon:
                    cur_cls, cur_time = trial, out.time
                    kept_bytes += map_bytes[m]
                    if cur_time < best_time:
                        best_cls, best_time = cur_cls, cur_time
            return True

        # Enumerate the exact-tree leaves in DFS order, KEEP branch first
        # (high-overhead maps are kept in the best plans, so good leaves are
        # found early under a simulation budget).  Enumeration depends only
        # on the byte prune, never on simulation results, so the leaf list —
        # and therefore the evaluation order — is identical for any number
        # of workers.
        leaves: list[tuple[int, ...]] = []

        def enumerate_leaves(idx: int, keeps: list[int], kept_bytes: int) -> None:
            if idx == len(exact_li):
                leaves.append(tuple(keeps))
                return
            m = exact_li[idx]
            if kept_bytes + map_bytes[m] <= keep_budget:
                keeps.append(m)
                enumerate_leaves(idx + 1, keeps, kept_bytes + map_bytes[m])
                keeps.pop()
            enumerate_leaves(idx + 1, keeps, kept_bytes)

        enumerate_leaves(0, [], 0)
        self.stats.leaves_total = len(leaves)

        # Branch-and-bound over the same leaf list: subtrees whose admissible
        # lower bound cannot strictly beat the incumbent are skipped without
        # simulating.  Bounds never read simulation results, and the best
        # plan only ever improves on strict <, so the surviving evaluations
        # — and the chosen plan — match the exhaustive scan exactly (as long
        # as neither run exhausts the simulation budget; see PoochConfig).
        bounds = (
            _StepOneBounds(self.predictor, all_swap, candidates)
            if cfg.prune else None
        )
        cursor = _LeafCursor(leaves, exact_li, bounds, self.stats)

        if executor is None:
            if cfg.vectorize:
                # speculative lockstep sweeps stage worker-shaped outcome
                # streams per leaf; the loop below remains the *definitive*
                # serial walk (same cursor, pruning, budget truncation and
                # accounting), it just replays staged outcomes instead of
                # running the event engine candidate by candidate
                stager = _VectorLeafStager(
                    self.predictor, leaves, scan, map_bytes, keep_budget,
                    cfg.time_epsilon,
                    lambda: (cfg.step1_sim_budget
                             - (self.predictor.simulations - sims_at_start)),
                )
            while True:
                nxt = cursor.next(best_time)
                if nxt is None or not budget_left():
                    break
                pre = stager.get(nxt[0]) if stager is not None else None
                self.stats.leaves_evaluated += 1
                if not consume_leaf(nxt[1], pre):
                    break
        else:
            # keep a small window of leaves in flight; submission is
            # speculative (pruning decisions arrive later, stale futures
            # are discarded), but results are consumed strictly in the
            # pruned-serial order, so accounting matches workers=1 exactly
            window = 2 * self.config.workers
            pending: deque = deque()
            submit_idx = 0

            def top_up() -> None:
                nonlocal submit_idx
                while len(pending) < window and submit_idx < len(leaves):
                    keeps = leaves[submit_idx]
                    args = (keeps, scan, map_bytes, keep_budget)
                    pending.append(
                        (submit_idx, executor.submit(_eval_leaf, args))
                    )
                    submit_idx += 1

            top_up()
            while True:
                nxt = cursor.next(best_time)
                if nxt is None or not budget_left():
                    break
                idx, keeps = nxt
                while pending and pending[0][0] < idx:
                    pending.popleft()[1].cancel()
                if not pending:
                    submit_idx = max(submit_idx, idx)
                    top_up()
                pre = None
                if pending and pending[0][0] == idx:
                    pre = pending.popleft()[1].result()
                self.stats.leaves_evaluated += 1
                ok = consume_leaf(keeps, pre)
                top_up()
                if not ok:
                    break

        self.stats.sims_step1 = self.predictor.simulations - sims_at_start
        self.stats.time_after_step1 = best_time
        return best_cls

    # -- step 2 ----------------------------------------------------------------------

    def _r_value(
        self, current: Classification, x: int, t_swap: float
    ) -> float:
        """The paper's r(X) with classes of other maps fixed.

        Overheads are measured against the plan with X kept (no transfer, no
        recompute); when keeping X is itself infeasible, the cheaper of the
        two alternatives serves as the zero point, which preserves the
        comparison r(X) < 1 ⇔ recompute beats swap.
        """
        t_rec = self.predictor.predict(
            current.with_class(x, MapClass.RECOMPUTE)
        ).time
        keep_candidate = current.with_class(x, MapClass.KEEP)
        if (self.config.incremental_step2
                and self.predictor.provably_infeasible(keep_candidate)):
            # probe elision: the keep draft's liveness floor already exceeds
            # capacity, so the simulation could only confirm infeasibility
            self.stats.keep_probes_elided += 1
            t0 = min(t_swap, t_rec)
        else:
            keep_outcome = self.predictor.predict(keep_candidate)
            t0 = (keep_outcome.time if keep_outcome.feasible
                  else min(t_swap, t_rec))
        rec_overhead = max(0.0, t_rec - t0)
        swap_overhead = max(0.0, t_swap - t0)
        if swap_overhead <= 0.0:
            return float("inf")
        if rec_overhead == float("inf"):
            return float("inf")
        return rec_overhead / swap_overhead

    def _vector_keep_probes(self, current: Classification, fresh: list[int],
                            memo: bool) -> None:
        """Answer a step-2 round's uncached keep probes ("X kept, everything
        else as in ``current``") with one lockstep sweep.

        Expressible only while ``current`` is pure keep/swap — i.e. the
        first round, and every round following a rejected flip; once a
        recompute flip is accepted the candidates leave the keep-flip
        family and the serial predictor takes over.  The recompute probes
        of :meth:`_r_value` are never expressible and always run serially
        (they are the ``sims_fallback`` share of step 2).  Mirrors the
        process-pool fan-out: outcomes are absorbed before the serial round
        reads them, so r-values, caches and simulation counts are exactly
        those of the unvectorized search."""
        keeps = []
        for m, c in current.classes.items():
            if c is MapClass.KEEP:
                keeps.append(m)
            elif c is not MapClass.SWAP:
                return
        fi = self.predictor.vector_flip_index()
        if fi is None:
            return
        todo: list[tuple[Classification, int]] = []
        for x in fresh:
            keep_c = current.with_class(x, MapClass.KEEP)
            if memo and self.predictor.provably_infeasible(keep_c):
                continue  # _r_value elides this probe: don't sweep it
            if self.predictor.cached(keep_c) is None:
                todo.append((keep_c, x))
        if not todo:
            return
        rows = np.zeros((len(todo), len(fi)), bool)
        if keeps:
            rows[:, [fi[m] for m in keeps]] = True
        for r, (_, x) in enumerate(todo):
            rows[r, fi[x]] = True
        outs = self.predictor.predict_keep_batch(rows)
        if outs is None:
            return
        for (keep_c, _), out in zip(todo, outs):
            if out is not None and self.predictor.absorb(keep_c.key(), out):
                self.stats.sims_vectorized += 1

    def _step2_swap_vs_recompute(
        self, step1: Classification,
        executor: ProcessPoolExecutor | None = None,
    ) -> Classification:
        cfg = self.config
        sims_at_start = self.predictor.simulations
        full_at_start = self.predictor.full_simulations
        resumed_at_start = self.predictor.resumed_simulations
        current = step1
        pool = [
            m for m in step1.maps_of(MapClass.SWAP)
            if self.graph[m].op.recomputable
        ]
        current_time = self.predictor.predict(current).time

        # Cross-round r-value memoization (incremental_step2): a round only
        # re-evaluates the maps whose perturbation window overlaps the last
        # accepted flip's — everything else reads last round's value.  A
        # rejected flip leaves `current` untouched, so *no* value is stale
        # then (re-evaluating would hit the predictor's memo cache anyway).
        # Acceptance still always re-predicts the trial plan end to end.
        # The same knob also elides keep probes whose infeasibility the
        # draft's liveness floor already proves (see _r_value) — on
        # memory-tight configurations that is half the step-2 simulations.
        memo = cfg.incremental_step2
        windows = self.predictor.step2_windows(pool) if memo and pool else {}
        r_cache: dict[int, float] = {}
        dirty = set(pool)
        first_round = True
        while pool:
            fresh = [x for x in pool if x in dirty]
            if executor is not None:
                # Every stale r(X) of a round reads two candidates (X
                # recompute / X kept) against the frozen `current` —
                # embarrassingly parallel.  Fan out the uncached ones, then
                # absorb in the serial evaluation order so cache contents
                # and simulation counts match workers=1 exactly.
                needed = []
                for x in fresh:
                    rec_c = current.with_class(x, MapClass.RECOMPUTE)
                    if self.predictor.cached(rec_c) is None:
                        needed.append(rec_c)
                    keep_c = current.with_class(x, MapClass.KEEP)
                    if memo and self.predictor.provably_infeasible(keep_c):
                        continue  # _r_value elides this probe: don't fan out
                    if self.predictor.cached(keep_c) is None:
                        needed.append(keep_c)
                for c, outcome in zip(needed, executor.map(_predict_one, needed)):
                    self.predictor.absorb(c.key(), outcome)
            elif cfg.vectorize and fresh:
                self._vector_keep_probes(current, fresh, memo)
            for x in fresh:
                r_cache[x] = self._r_value(current, x, current_time)
            self.stats.r_recomputed += len(fresh)
            self.stats.r_reused += len(pool) - len(fresh)
            self.stats.step2_rounds += 1
            r_values = {x: r_cache[x] for x in pool}
            if len(self.stats.r_rounds) < R_ROUNDS_LIMIT:
                self.stats.r_rounds.append(dict(r_values))
            if first_round:
                self.stats.r_values = dict(r_values)
                first_round = False
            pool = [x for x in pool if r_values[x] < 1.0]
            if not pool:
                break
            x = min(pool, key=lambda m: r_values[m])
            trial = current.with_class(x, MapClass.RECOMPUTE)
            outcome = self.predictor.predict(trial)
            accept = outcome.feasible
            if accept and cfg.verify_flips:
                accept = outcome.time <= current_time + cfg.time_epsilon
            pool.remove(x)
            if accept:
                current = trial
                current_time = outcome.time
                self.stats.flips_to_recompute.append(x)
                if memo:
                    ws, we = windows[x]
                    dirty = {y for y in pool
                             if windows[y][0] <= we and ws <= windows[y][1]}
                else:
                    dirty = set(pool)
            elif memo:
                dirty = set()
            else:
                dirty = set(pool)

        self.stats.sims_step2 = self.predictor.simulations - sims_at_start
        self.stats.sims_step2_full = (
            self.predictor.full_simulations - full_at_start
        )
        self.stats.sims_step2_resumed = (
            self.predictor.resumed_simulations - resumed_at_start
        )
        self.stats.time_after_step2 = current_time
        return current
