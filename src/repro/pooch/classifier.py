"""The two-step classification search (§4.4).

Step 1 — keep vs swap (§4.4.2):
  * simulate the all-swap baseline, extract ``L_O`` / ``L_I``;
  * maps outside ``L_O ∪ L_I`` are classified ``swap`` immediately;
  * a binary search tree enumerates keep/swap for the maps of ``L_I``
    (the set for which the paper found no reliable greedy order);
  * at each leaf, the maps of ``L_O \\ L_I`` are scanned from the output
    layer toward the input, greedily switched ``swap → keep`` while the
    simulated plan stays feasible and does not slow down (the paper's
    observation: un-hidden swap-outs cluster at the end of forward, so
    keeping from the back strictly removes them);
  * every candidate is scored by the timeline predictor.

Step 2 — swap vs recompute (§4.4.3):
  * for every map still ``swap``, compute
    ``r(X) = recompute_overhead(X) / swap_overhead(X)`` with other classes
    fixed, both overheads measured by simulation against the "X kept"
    baseline;
  * discard ``r ≥ 1`` maps from consideration (they stay ``swap``), flip the
    smallest ``r < 1`` to ``recompute``, and repeat until the pool is empty.

Scalability deviations from the poster (documented in DESIGN.md §5): the
exact tree is bounded at ``max_exact_li`` variables (the highest-overhead
members of ``L_I``; the rest join the greedy scan), subtrees whose committed
keep-bytes already exceed capacity are pruned, and a total simulation budget
caps the search while keeping the best plan found.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import OutOfMemoryError
from repro.graph import NNGraph
from repro.gpusim.allocator import round_size
from repro.hw import MachineSpec
from repro.pooch.overlap import OverlapAnalysis, analyze_overlap
from repro.pooch.predictor import TimelinePredictor
from repro.runtime.plan import Classification, MapClass, SwapInPolicy
from repro.runtime.profiler import Profile


@dataclass(frozen=True)
class PoochConfig:
    """Classifier knobs; defaults follow the paper where it specifies them."""

    #: swap-in schedule used for every simulation and for execution (§4.3)
    policy: SwapInPolicy = SwapInPolicy.EAGER
    #: hidden-swap tolerances for the L_O/L_I extraction
    abs_tolerance: float = 2e-6
    rel_tolerance: float = 0.02
    #: exact-search width: at most this many L_I maps get true binary-tree
    #: enumeration; the rest fall back to the greedy scan
    max_exact_li: int = 8
    #: hard cap on step-1 predictor simulations (best plan so far is kept)
    step1_sim_budget: int = 1200
    #: accept a keep-switch when it does not slow the plan by more than this
    time_epsilon: float = 1e-12
    #: re-verify each r(X)<1 flip end-to-end and revert if it slowed the plan
    #: (safety net on top of the paper's rule)
    verify_flips: bool = True
    #: bytes of device capacity the chosen plan must leave free — slack for
    #: allocator fragmentation that the counting memory model cannot see
    #: (0 reproduces the paper; see the fragmentation ablation benchmark)
    capacity_margin: int = 0
    #: forward re-fetch gap for long skip connections (extension; see
    #: ScheduleOptions.forward_refetch_gap; None reproduces the paper)
    forward_refetch_gap: int | None = None


@dataclass
class SearchStats:
    """Bookkeeping the benchmarks and EXPERIMENTS.md report."""

    overlap: OverlapAnalysis | None = None
    exact_li: list[int] = field(default_factory=list)
    scan_order: list[int] = field(default_factory=list)
    sims_step1: int = 0
    sims_step2: int = 0
    budget_exhausted: bool = False
    time_all_swap: float = float("inf")
    time_after_step1: float = float("inf")
    time_after_step2: float = float("inf")
    flips_to_recompute: list[int] = field(default_factory=list)
    #: the paper's r(X) ratio per map, from the first step-2 round (the
    #: round where every step-1 swap map is evaluated)
    r_values: dict[int, float] = field(default_factory=dict)


class PoochClassifier:
    """Runs the two-step search; one instance per (graph, profile, machine)."""

    def __init__(
        self,
        graph: NNGraph,
        profile: Profile,
        machine: MachineSpec,
        config: PoochConfig | None = None,
        predictor: TimelinePredictor | None = None,
    ) -> None:
        self.graph = graph
        self.profile = profile
        self.machine = machine
        self.config = config or PoochConfig()
        self.predictor = predictor or TimelinePredictor(
            graph, profile, machine, policy=self.config.policy,
            capacity_margin=self.config.capacity_margin,
            forward_refetch_gap=self.config.forward_refetch_gap,
        )
        self.stats = SearchStats()

    # -- public -------------------------------------------------------------------

    def classify(self, steps: int = 2) -> tuple[Classification, SearchStats]:
        """Run the search and return the chosen classification.

        ``steps=1`` stops after the keep/swap step — the paper's "swap-opt"
        ablation configuration (§5.1); ``steps=2`` (default) is full PoocH.
        """
        if steps not in (1, 2):
            raise ValueError(f"steps must be 1 or 2, got {steps}")
        step1 = self._step1_keep_vs_swap()
        if steps == 1:
            self.stats.time_after_step2 = self.stats.time_after_step1
            return step1, self.stats
        step2 = self._step2_swap_vs_recompute(step1)
        return step2, self.stats

    # -- step 1 -------------------------------------------------------------------

    def _step1_keep_vs_swap(self) -> Classification:
        cfg = self.config
        all_swap = Classification.all_swap(self.graph)
        base_outcome = self.predictor.predict(all_swap)
        if not base_outcome.feasible:
            raise OutOfMemoryError(
                "even the all-swap plan does not fit this machine "
                f"({base_outcome.oom_context}); the network is too large for "
                "out-of-core execution at this granularity"
            )
        self.stats.time_all_swap = base_outcome.time

        if self.profile.baseline is None:
            raise OutOfMemoryError("profile is missing its baseline timeline")
        overlap = analyze_overlap(
            self.profile.baseline,
            abs_tolerance=cfg.abs_tolerance,
            rel_tolerance=cfg.rel_tolerance,
        )
        self.stats.overlap = overlap

        # maps eligible for KEEP consideration; everything else stays swap
        candidates = overlap.candidates & set(all_swap.classes)
        li = sorted(
            overlap.L_I & candidates,
            key=lambda m: overlap.overhead.get(m, 0.0),
            reverse=True,
        )
        exact_li = li[: cfg.max_exact_li]
        # the greedy scan covers L_O \ L_I plus any L_I overflow, walked from
        # the output layer toward the input (descending map index)
        scan = sorted(candidates - set(exact_li), reverse=True)
        self.stats.exact_li = list(exact_li)
        self.stats.scan_order = list(scan)

        # conservative keep-budget prune: keeps beyond this certainly OOM
        keep_budget = (
            self.machine.usable_gpu_memory - cfg.capacity_margin
            - 2 * round_size(self.graph.total_param_bytes)
        )
        map_bytes = {m: round_size(self.graph[m].out_spec.nbytes) for m in candidates}

        best_cls = all_swap
        best_time = base_outcome.time
        sims_at_start = self.predictor.simulations

        def budget_left() -> bool:
            used = self.predictor.simulations - sims_at_start
            if used >= cfg.step1_sim_budget:
                self.stats.budget_exhausted = True
                return False
            return True

        def evaluate_leaf(keeps: set[int]) -> None:
            nonlocal best_cls, best_time
            cls = all_swap.with_classes({m: MapClass.KEEP for m in keeps})
            outcome = self.predictor.predict(cls)
            if not outcome.feasible:
                return  # keeping this L_I subset already over-commits memory
            cur_cls, cur_time = cls, outcome.time
            if cur_time < best_time:
                best_cls, best_time = cur_cls, cur_time
            kept_bytes = sum(map_bytes[m] for m in keeps)
            for m in scan:
                if not budget_left():
                    return
                if kept_bytes + map_bytes[m] > keep_budget:
                    continue
                trial = cur_cls.with_class(m, MapClass.KEEP)
                out = self.predictor.predict(trial)
                if out.feasible and out.time <= cur_time + cfg.time_epsilon:
                    cur_cls, cur_time = trial, out.time
                    kept_bytes += map_bytes[m]
                    if cur_time < best_time:
                        best_cls, best_time = cur_cls, cur_time

        # DFS over the exact L_I variables, KEEP branch first (high-overhead
        # maps are kept in the best plans, so good leaves are found early
        # under a simulation budget)
        def dfs(idx: int, keeps: set[int], kept_bytes: int) -> None:
            if not budget_left():
                return
            if idx == len(exact_li):
                evaluate_leaf(keeps)
                return
            m = exact_li[idx]
            if kept_bytes + map_bytes[m] <= keep_budget:
                keeps.add(m)
                dfs(idx + 1, keeps, kept_bytes + map_bytes[m])
                keeps.discard(m)
            dfs(idx + 1, keeps, kept_bytes)

        dfs(0, set(), 0)
        self.stats.sims_step1 = self.predictor.simulations - sims_at_start
        self.stats.time_after_step1 = best_time
        return best_cls

    # -- step 2 ----------------------------------------------------------------------

    def _r_value(
        self, current: Classification, x: int, t_swap: float
    ) -> float:
        """The paper's r(X) with classes of other maps fixed.

        Overheads are measured against the plan with X kept (no transfer, no
        recompute); when keeping X is itself infeasible, the cheaper of the
        two alternatives serves as the zero point, which preserves the
        comparison r(X) < 1 ⇔ recompute beats swap.
        """
        t_rec = self.predictor.predict(
            current.with_class(x, MapClass.RECOMPUTE)
        ).time
        keep_outcome = self.predictor.predict(current.with_class(x, MapClass.KEEP))
        t0 = keep_outcome.time if keep_outcome.feasible else min(t_swap, t_rec)
        rec_overhead = max(0.0, t_rec - t0)
        swap_overhead = max(0.0, t_swap - t0)
        if swap_overhead <= 0.0:
            return float("inf")
        if rec_overhead == float("inf"):
            return float("inf")
        return rec_overhead / swap_overhead

    def _step2_swap_vs_recompute(self, step1: Classification) -> Classification:
        cfg = self.config
        sims_at_start = self.predictor.simulations
        current = step1
        pool = [
            m for m in step1.maps_of(MapClass.SWAP)
            if self.graph[m].op.recomputable
        ]
        current_time = self.predictor.predict(current).time

        first_round = True
        while pool:
            r_values = {x: self._r_value(current, x, current_time) for x in pool}
            if first_round:
                self.stats.r_values = dict(r_values)
                first_round = False
            pool = [x for x in pool if r_values[x] < 1.0]
            if not pool:
                break
            x = min(pool, key=lambda m: r_values[m])
            trial = current.with_class(x, MapClass.RECOMPUTE)
            outcome = self.predictor.predict(trial)
            accept = outcome.feasible
            if accept and cfg.verify_flips:
                accept = outcome.time <= current_time + cfg.time_epsilon
            pool.remove(x)
            if accept:
                current = trial
                current_time = outcome.time
                self.stats.flips_to_recompute.append(x)

        self.stats.sims_step2 = self.predictor.simulations - sims_at_start
        self.stats.time_after_step2 = current_time
        return current
