"""The two-step classification search (§4.4).

Step 1 — keep vs swap (§4.4.2):
  * simulate the all-swap baseline, extract ``L_O`` / ``L_I``;
  * maps outside ``L_O ∪ L_I`` are classified ``swap`` immediately;
  * a binary search tree enumerates keep/swap for the maps of ``L_I``
    (the set for which the paper found no reliable greedy order);
  * at each leaf, the maps of ``L_O \\ L_I`` are scanned from the output
    layer toward the input, greedily switched ``swap → keep`` while the
    simulated plan stays feasible and does not slow down (the paper's
    observation: un-hidden swap-outs cluster at the end of forward, so
    keeping from the back strictly removes them);
  * every candidate is scored by the timeline predictor.

Step 2 — swap vs recompute (§4.4.3):
  * for every map still ``swap``, compute
    ``r(X) = recompute_overhead(X) / swap_overhead(X)`` with other classes
    fixed, both overheads measured by simulation against the "X kept"
    baseline;
  * discard ``r ≥ 1`` maps from consideration (they stay ``swap``), flip the
    smallest ``r < 1`` to ``recompute``, and repeat until the pool is empty.

Scalability deviations from the poster (documented in DESIGN.md §5): the
exact tree is bounded at ``max_exact_li`` variables (the highest-overhead
members of ``L_I``; the rest join the greedy scan), subtrees whose committed
keep-bytes already exceed capacity are pruned, and a total simulation budget
caps the search while keeping the best plan found.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace

from repro.common.errors import OutOfMemoryError
from repro.graph import NNGraph
from repro.gpusim.allocator import round_size
from repro.hw import MachineSpec
from repro.pooch.overlap import OverlapAnalysis, analyze_overlap
from repro.pooch.predictor import PredictedOutcome, TimelinePredictor
from repro.runtime.plan import Classification, MapClass, SwapInPolicy
from repro.runtime.profiler import Profile


@dataclass(frozen=True)
class PoochConfig:
    """Classifier knobs; defaults follow the paper where it specifies them."""

    #: swap-in schedule used for every simulation and for execution (§4.3)
    policy: SwapInPolicy = SwapInPolicy.EAGER
    #: hidden-swap tolerances for the L_O/L_I extraction
    abs_tolerance: float = 2e-6
    rel_tolerance: float = 0.02
    #: exact-search width: at most this many L_I maps get true binary-tree
    #: enumeration; the rest fall back to the greedy scan
    max_exact_li: int = 8
    #: hard cap on step-1 predictor simulations (best plan so far is kept)
    step1_sim_budget: int = 1200
    #: accept a keep-switch when it does not slow the plan by more than this
    time_epsilon: float = 1e-12
    #: re-verify each r(X)<1 flip end-to-end and revert if it slowed the plan
    #: (safety net on top of the paper's rule)
    verify_flips: bool = True
    #: bytes of device capacity the chosen plan must leave free — slack for
    #: allocator fragmentation that the counting memory model cannot see
    #: (0 reproduces the paper; see the fragmentation ablation benchmark)
    capacity_margin: int = 0
    #: forward re-fetch gap for long skip connections (extension; see
    #: ScheduleOptions.forward_refetch_gap; None reproduces the paper)
    forward_refetch_gap: int | None = None
    #: simulation parallelism: >1 fans step-1 leaf evaluations and step-2
    #: r(X) rounds over a process pool.  Results — chosen classification,
    #: SearchStats times and simulation counts — are bit-identical to
    #: ``workers=1``; see DESIGN.md §5 for the replay argument.
    workers: int = 1

    def signature(self) -> str:
        """Stable identity of every knob that affects the *chosen plan*
        (``workers`` excluded: it changes wall-clock, never results).
        Plan caches key on this."""
        return (
            f"policy={self.policy.value};abs={self.abs_tolerance!r};"
            f"rel={self.rel_tolerance!r};li={self.max_exact_li};"
            f"budget={self.step1_sim_budget};eps={self.time_epsilon!r};"
            f"verify={self.verify_flips};margin={self.capacity_margin};"
            f"gap={self.forward_refetch_gap}"
        )


@dataclass
class SearchStats:
    """Bookkeeping the benchmarks and EXPERIMENTS.md report."""

    overlap: OverlapAnalysis | None = None
    exact_li: list[int] = field(default_factory=list)
    scan_order: list[int] = field(default_factory=list)
    sims_step1: int = 0
    sims_step2: int = 0
    budget_exhausted: bool = False
    time_all_swap: float = float("inf")
    time_after_step1: float = float("inf")
    time_after_step2: float = float("inf")
    flips_to_recompute: list[int] = field(default_factory=list)
    #: the paper's r(X) ratio per map, from the first step-2 round (the
    #: round where every step-1 swap map is evaluated)
    r_values: dict[int, float] = field(default_factory=dict)
    #: True when the plan came from a PlanCache (verified by simulation)
    #: instead of a fresh search — search fields above are then empty
    plan_cache_hit: bool = False


# -- worker-process side of the parallel search ----------------------------------
#
# Each pool worker builds its own TimelinePredictor once (initializer) and
# then evaluates work items independently; the parent *replays* the returned
# outcomes in serial order, so caches, budget accounting and tie-breaking
# are exactly those of the serial search (DESIGN.md §5).

_worker_predictor: TimelinePredictor | None = None
_worker_all_swap: Classification | None = None
_worker_epsilon: float = 0.0


def _init_search_worker(graph: NNGraph, profile: Profile,
                        machine: MachineSpec, config: PoochConfig) -> None:
    global _worker_predictor, _worker_all_swap, _worker_epsilon
    _worker_predictor = TimelinePredictor(
        graph, profile, machine, policy=config.policy,
        capacity_margin=config.capacity_margin,
        forward_refetch_gap=config.forward_refetch_gap,
    )
    _worker_all_swap = Classification.all_swap(graph)
    _worker_epsilon = config.time_epsilon


def _eval_leaf(
    args: tuple[tuple[int, ...], list[int], dict[int, int], int],
) -> tuple[PredictedOutcome, list[PredictedOutcome | None]]:
    """Evaluate one step-1 leaf to completion (no budget — the parent
    truncates during replay).  Returns the leaf-base outcome plus one event
    per scan position: ``None`` for a byte-budget skip, else the trial's
    outcome."""
    keeps, scan, map_bytes, keep_budget = args
    pred, all_swap = _worker_predictor, _worker_all_swap
    cls = all_swap.with_classes({m: MapClass.KEEP for m in keeps})
    base = pred.predict(cls)
    events: list[PredictedOutcome | None] = []
    if not base.feasible:
        return base, events
    cur_cls, cur_time = cls, base.time
    kept_bytes = sum(map_bytes[m] for m in keeps)
    for m in scan:
        if kept_bytes + map_bytes[m] > keep_budget:
            events.append(None)
            continue
        trial = cur_cls.with_class(m, MapClass.KEEP)
        out = pred.predict(trial)
        events.append(out)
        if out.feasible and out.time <= cur_time + _worker_epsilon:
            cur_cls, cur_time = trial, out.time
            kept_bytes += map_bytes[m]
    return base, events


def _predict_one(classification: Classification) -> PredictedOutcome:
    """Simulate a single candidate in a pool worker (step-2 rounds)."""
    return _worker_predictor.predict(classification)


class PoochClassifier:
    """Runs the two-step search; one instance per (graph, profile, machine)."""

    def __init__(
        self,
        graph: NNGraph,
        profile: Profile,
        machine: MachineSpec,
        config: PoochConfig | None = None,
        predictor: TimelinePredictor | None = None,
    ) -> None:
        self.graph = graph
        self.profile = profile
        self.machine = machine
        self.config = config or PoochConfig()
        self.predictor = predictor or TimelinePredictor(
            graph, profile, machine, policy=self.config.policy,
            capacity_margin=self.config.capacity_margin,
            forward_refetch_gap=self.config.forward_refetch_gap,
        )
        self.stats = SearchStats()

    # -- public -------------------------------------------------------------------

    def classify(self, steps: int = 2) -> tuple[Classification, SearchStats]:
        """Run the search and return the chosen classification.

        ``steps=1`` stops after the keep/swap step — the paper's "swap-opt"
        ablation configuration (§5.1); ``steps=2`` (default) is full PoocH.
        """
        if steps not in (1, 2):
            raise ValueError(f"steps must be 1 or 2, got {steps}")
        executor = self._make_executor()
        try:
            step1 = self._step1_keep_vs_swap(executor)
            if steps == 1:
                self.stats.time_after_step2 = self.stats.time_after_step1
                return step1, self.stats
            step2 = self._step2_swap_vs_recompute(step1, executor)
            return step2, self.stats
        finally:
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)

    def _make_executor(self) -> ProcessPoolExecutor | None:
        if self.config.workers <= 1:
            return None
        # the baseline timeline is only read parent-side (overlap analysis);
        # dropping it keeps the per-worker pickle payload small
        profile = replace(self.profile, baseline=None)
        return ProcessPoolExecutor(
            max_workers=self.config.workers,
            initializer=_init_search_worker,
            initargs=(self.graph, profile, self.machine, self.config),
        )

    # -- step 1 -------------------------------------------------------------------

    def _step1_keep_vs_swap(
        self, executor: ProcessPoolExecutor | None = None
    ) -> Classification:
        cfg = self.config
        all_swap = Classification.all_swap(self.graph)
        base_outcome = self.predictor.predict(all_swap)
        if not base_outcome.feasible:
            raise OutOfMemoryError(
                "even the all-swap plan does not fit this machine "
                f"({base_outcome.oom_context}); the network is too large for "
                "out-of-core execution at this granularity"
            )
        self.stats.time_all_swap = base_outcome.time

        if self.profile.baseline is None:
            raise OutOfMemoryError("profile is missing its baseline timeline")
        overlap = analyze_overlap(
            self.profile.baseline,
            abs_tolerance=cfg.abs_tolerance,
            rel_tolerance=cfg.rel_tolerance,
        )
        self.stats.overlap = overlap

        # maps eligible for KEEP consideration; everything else stays swap
        candidates = overlap.candidates & set(all_swap.classes)
        li = sorted(
            overlap.L_I & candidates,
            key=lambda m: overlap.overhead.get(m, 0.0),
            reverse=True,
        )
        exact_li = li[: cfg.max_exact_li]
        # the greedy scan covers L_O \ L_I plus any L_I overflow, walked from
        # the output layer toward the input (descending map index)
        scan = sorted(candidates - set(exact_li), reverse=True)
        self.stats.exact_li = list(exact_li)
        self.stats.scan_order = list(scan)

        # conservative keep-budget prune: keeps beyond this certainly OOM
        keep_budget = (
            self.machine.usable_gpu_memory - cfg.capacity_margin
            - 2 * round_size(self.graph.total_param_bytes)
        )
        map_bytes = {m: round_size(self.graph[m].out_spec.nbytes) for m in candidates}

        best_cls = all_swap
        best_time = base_outcome.time
        sims_at_start = self.predictor.simulations

        def budget_left() -> bool:
            used = self.predictor.simulations - sims_at_start
            if used >= cfg.step1_sim_budget:
                self.stats.budget_exhausted = True
                return False
            return True

        def consume_leaf(
            keeps: tuple[int, ...],
            pre: tuple[PredictedOutcome, list[PredictedOutcome | None]] | None,
        ) -> bool:
            """Evaluate one leaf: the exact L_I subset ``keeps``, then the
            greedy scan.  With ``pre`` (a worker's outcomes) the evaluation
            *replays* — each outcome is absorbed into the shared predictor
            cache right before the lookup the serial search would make, so
            state, accounting and budget truncation are identical.  Returns
            False when the simulation budget ran out mid-leaf."""
            nonlocal best_cls, best_time
            cls = all_swap.with_classes({m: MapClass.KEEP for m in keeps})
            if pre is not None:
                self.predictor.absorb(cls.key(), pre[0])
            outcome = self.predictor.predict(cls)
            if not outcome.feasible:
                return True  # keeping this L_I subset over-commits memory
            cur_cls, cur_time = cls, outcome.time
            if cur_time < best_time:
                best_cls, best_time = cur_cls, cur_time
            kept_bytes = sum(map_bytes[m] for m in keeps)
            for idx, m in enumerate(scan):
                if not budget_left():
                    return False
                if kept_bytes + map_bytes[m] > keep_budget:
                    continue
                trial = cur_cls.with_class(m, MapClass.KEEP)
                if pre is not None:
                    self.predictor.absorb(trial.key(), pre[1][idx])
                out = self.predictor.predict(trial)
                if out.feasible and out.time <= cur_time + cfg.time_epsilon:
                    cur_cls, cur_time = trial, out.time
                    kept_bytes += map_bytes[m]
                    if cur_time < best_time:
                        best_cls, best_time = cur_cls, cur_time
            return True

        # Enumerate the exact-tree leaves in DFS order, KEEP branch first
        # (high-overhead maps are kept in the best plans, so good leaves are
        # found early under a simulation budget).  Enumeration depends only
        # on the byte prune, never on simulation results, so the leaf list —
        # and therefore the evaluation order — is identical for any number
        # of workers.
        leaves: list[tuple[int, ...]] = []

        def enumerate_leaves(idx: int, keeps: list[int], kept_bytes: int) -> None:
            if idx == len(exact_li):
                leaves.append(tuple(keeps))
                return
            m = exact_li[idx]
            if kept_bytes + map_bytes[m] <= keep_budget:
                keeps.append(m)
                enumerate_leaves(idx + 1, keeps, kept_bytes + map_bytes[m])
                keeps.pop()
            enumerate_leaves(idx + 1, keeps, kept_bytes)

        enumerate_leaves(0, [], 0)

        if executor is None:
            for keeps in leaves:
                if not budget_left() or not consume_leaf(keeps, None):
                    break
        else:
            # keep a small window of leaves in flight; results are consumed
            # strictly in leaf order, and the window bounds wasted work when
            # the budget truncates the search
            window = 2 * self.config.workers
            pending: deque = deque()
            leaf_iter = iter(leaves)

            def top_up() -> None:
                while len(pending) < window:
                    keeps = next(leaf_iter, None)
                    if keeps is None:
                        return
                    args = (keeps, scan, map_bytes, keep_budget)
                    pending.append((keeps, executor.submit(_eval_leaf, args)))

            top_up()
            while pending:
                if not budget_left():
                    break
                keeps, future = pending.popleft()
                if not consume_leaf(keeps, future.result()):
                    break
                top_up()

        self.stats.sims_step1 = self.predictor.simulations - sims_at_start
        self.stats.time_after_step1 = best_time
        return best_cls

    # -- step 2 ----------------------------------------------------------------------

    def _r_value(
        self, current: Classification, x: int, t_swap: float
    ) -> float:
        """The paper's r(X) with classes of other maps fixed.

        Overheads are measured against the plan with X kept (no transfer, no
        recompute); when keeping X is itself infeasible, the cheaper of the
        two alternatives serves as the zero point, which preserves the
        comparison r(X) < 1 ⇔ recompute beats swap.
        """
        t_rec = self.predictor.predict(
            current.with_class(x, MapClass.RECOMPUTE)
        ).time
        keep_outcome = self.predictor.predict(current.with_class(x, MapClass.KEEP))
        t0 = keep_outcome.time if keep_outcome.feasible else min(t_swap, t_rec)
        rec_overhead = max(0.0, t_rec - t0)
        swap_overhead = max(0.0, t_swap - t0)
        if swap_overhead <= 0.0:
            return float("inf")
        if rec_overhead == float("inf"):
            return float("inf")
        return rec_overhead / swap_overhead

    def _step2_swap_vs_recompute(
        self, step1: Classification,
        executor: ProcessPoolExecutor | None = None,
    ) -> Classification:
        cfg = self.config
        sims_at_start = self.predictor.simulations
        current = step1
        pool = [
            m for m in step1.maps_of(MapClass.SWAP)
            if self.graph[m].op.recomputable
        ]
        current_time = self.predictor.predict(current).time

        first_round = True
        while pool:
            if executor is not None:
                # Every r(X) of a round reads two candidates (X recompute /
                # X kept) against the frozen `current` — embarrassingly
                # parallel.  Fan out the uncached ones, then absorb in the
                # serial evaluation order so cache contents and simulation
                # counts match workers=1 exactly.
                needed = [
                    c for x in pool
                    for c in (current.with_class(x, MapClass.RECOMPUTE),
                              current.with_class(x, MapClass.KEEP))
                    if self.predictor.cached(c) is None
                ]
                for c, outcome in zip(needed, executor.map(_predict_one, needed)):
                    self.predictor.absorb(c.key(), outcome)
            r_values = {x: self._r_value(current, x, current_time) for x in pool}
            if first_round:
                self.stats.r_values = dict(r_values)
                first_round = False
            pool = [x for x in pool if r_values[x] < 1.0]
            if not pool:
                break
            x = min(pool, key=lambda m: r_values[m])
            trial = current.with_class(x, MapClass.RECOMPUTE)
            outcome = self.predictor.predict(trial)
            accept = outcome.feasible
            if accept and cfg.verify_flips:
                accept = outcome.time <= current_time + cfg.time_epsilon
            pool.remove(x)
            if accept:
                current = trial
                current_time = outcome.time
                self.stats.flips_to_recompute.append(x)

        self.stats.sims_step2 = self.predictor.simulations - sims_at_start
        self.stats.time_after_step2 = current_time
        return current
