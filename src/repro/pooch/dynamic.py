"""Dynamic problem sizes — the paper's stated future work (§7).

"The current version of PoocH targets only NNs that compute the same problem
size in each learning iteration.  As future work, we will extend PoocH in
order to deal with NNs whose problem sizes change for each iteration."

This module implements that extension.  :class:`DynamicPoocH` handles a
training stream whose per-iteration size (batch, or 3D input volume) varies:

* ``strategy="exact"`` — profile + classify once per *distinct* size and
  cache the plan; every optimization is amortised over all iterations that
  reuse its size (the natural extension of the paper's amortisation
  argument).
* ``strategy="nearest"`` — reuse the plan of the nearest already-optimized
  *larger* size (plans are structurally transferable because the graph
  topology is size-independent; a plan that fits a larger problem is
  memory-safe for a smaller one).  This trades plan quality for far fewer
  optimizations — the interesting knob when sizes are long-tailed.

Both strategies validate a transferred plan through the timeline predictor
of the target size before executing it and fall back to a fresh optimization
when it is predicted infeasible — the same simulate-before-running discipline
that lets PoocH avoid superneurons' memory failures.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.common.errors import ScheduleError
from repro.faults import FaultInjector, FaultSpec, FaultyDurations, RetryPolicy
from repro.faults.resilient import execute_resilient
from repro.graph import NNGraph
from repro.gpusim import RunResult
from repro.hw import CostModel, MachineSpec
from repro.obs import get_logger, metrics
from repro.pooch.classifier import PoochClassifier, PoochConfig
from repro.pooch.predictor import TimelinePredictor
from repro.runtime.durations import CostModelDurations
from repro.runtime.executor import execute
from repro.runtime.plan import Classification
from repro.runtime.plan_io import PlanCache
from repro.runtime.profiler import Profile, run_profiling
from repro.runtime.schedule import ScheduleOptions

log = get_logger(__name__)

#: a problem size is any hashable key with a total order (batch int,
#: (T, H, W) tuple, ...)
Size = Hashable


@dataclass
class DynamicStats:
    """Bookkeeping for one :meth:`DynamicPoocH.run_stream` call."""

    iterations: int = 0
    optimizations: int = 0
    #: actual profiling runs — exactly one per distinct size (profiles are
    #: cached and reused across optimization, donor checks and verification)
    profilings: int = 0
    plan_reuses: int = 0
    transfers: int = 0  # nearest-plan reuses across different sizes
    transfer_rejections: int = 0  # transferred plans predicted infeasible
    #: drift-triggered re-profile + re-plan events (at most one per size)
    replans: int = 0
    #: in-place retries of transiently faulted DMA transfers
    transfer_retries: int = 0
    #: degradation steps taken along the fallback chain
    fallbacks: int = 0
    iteration_times: list[float] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return sum(self.iteration_times)


class DynamicPoocH:
    """Per-iteration-size out-of-core planning.

    Args:
        machine: execution environment.
        build_graph: maps a size key to the (freshly built) graph for it.
            All sizes must produce structurally identical graphs (same layer
            names/indices) — only shapes may differ.
        config: search configuration shared by every optimization.
        strategy: ``"exact"`` or ``"nearest"`` (see module docstring).
        plan_cache: optional :class:`~repro.runtime.plan_io.PlanCache` (or a
            directory path) — plans and simulation outcomes then persist
            across streams *and* across processes, so a restarted training
            run skips the searches entirely.
        faults: optional :class:`~repro.faults.FaultInjector` (or a
            :class:`~repro.faults.FaultSpec` / CLI spec string built with
            ``fault_seed``) — iterations then execute resiliently under the
            injected faults, and a drift-triggered re-plan re-profiles under
            the faulted ground truth.
        fault_seed: seed for an injector built from a spec/string.
        replan_tolerance: relative deviation of measured iteration time from
            the predicted makespan that triggers one re-profile + re-plan per
            size (``None`` disables drift tracking).
        retry: bounds on transfer retries / plan attempts when executing
            resiliently.
        cost_model: ground-truth cost model shared by profiling and
            execution.
    """

    def __init__(
        self,
        machine: MachineSpec,
        build_graph: Callable[[Size], NNGraph],
        config: PoochConfig | None = None,
        strategy: str = "exact",
        plan_cache: PlanCache | str | pathlib.Path | None = None,
        faults: FaultInjector | FaultSpec | str | None = None,
        fault_seed: int = 0,
        replan_tolerance: float | None = 0.25,
        retry: RetryPolicy | None = None,
        cost_model: CostModel | None = None,
    ) -> None:
        if strategy not in ("exact", "nearest"):
            raise ScheduleError(f"unknown strategy {strategy!r}")
        if replan_tolerance is not None and replan_tolerance <= 0:
            raise ScheduleError(
                f"replan_tolerance must be positive, got {replan_tolerance!r}")
        self.machine = machine
        self.build_graph = build_graph
        self.config = config or PoochConfig()
        self.strategy = strategy
        if plan_cache is not None and not isinstance(plan_cache, PlanCache):
            plan_cache = PlanCache(plan_cache)
        self.plan_cache = plan_cache
        if faults is not None and not isinstance(faults, FaultInjector):
            faults = FaultInjector(faults, seed=fault_seed)
        self.faults = faults
        self.replan_tolerance = replan_tolerance
        self.retry = retry or RetryPolicy()
        self.cost_model = cost_model
        self._replanned: set[Size] = set()
        self._plans: dict[Size, Classification] = {}
        self._graphs: dict[Size, NNGraph] = {}
        self._profiles: dict[Size, Profile] = {}
        self._predictors: dict[Size, TimelinePredictor] = {}
        #: one options object per stream — verification and execution MUST
        #: agree on it (simulate-before-running is void otherwise)
        self._options = ScheduleOptions(
            policy=self.config.policy,
            forward_refetch_gap=self.config.forward_refetch_gap,
        )
        self.stats = DynamicStats()

    # -- internals -------------------------------------------------------------

    def _graph(self, size: Size) -> NNGraph:
        if size not in self._graphs:
            graph = self.build_graph(size)
            if self._graphs:
                ref = next(iter(self._graphs.values()))
                if len(graph) != len(ref):
                    raise ScheduleError(
                        "dynamic sizes must share the graph structure "
                        f"({len(graph)} layers vs {len(ref)})"
                    )
            self._graphs[size] = graph
        return self._graphs[size]

    def _profile(self, size: Size, faulted: bool = False) -> Profile:
        """Exactly one profiling run per distinct size, shared by
        optimization, donor feasibility checks and transfer verification.

        The initial profile models the paper's short clean measurement
        window: fault-free ground truth, then ``profile_noise`` perturbation.
        A drift-triggered re-profile (``faulted=True``) instead measures
        *through* the injector's duration faults — the very conditions that
        caused the drift — so the new plan fits what execution actually
        sees."""
        if size not in self._profiles:
            graph = self._graph(size)
            durations = None
            if faulted and self.faults is not None:
                durations = FaultyDurations(
                    CostModelDurations(
                        graph, self.cost_model or CostModel(self.machine)),
                    self.faults,
                )
            profile = run_profiling(
                graph, self.machine,
                cost_model=self.cost_model,
                policy=self.config.policy,
                forward_refetch_gap=self.config.forward_refetch_gap,
                durations=durations,
            )
            if not faulted and self.faults is not None:
                profile = self.faults.perturb_profile(
                    profile, graph, self.machine, options=self._options)
            self._profiles[size] = profile
            self.stats.profilings += 1
        return self._profiles[size]

    def _predictor(self, size: Size) -> TimelinePredictor:
        """Per-size predictor under the *full* search config — the same
        capacity margin and re-fetch gap the plans were chosen with."""
        if size not in self._predictors:
            self._predictors[size] = TimelinePredictor(
                self._graph(size), self._profile(size), self.machine,
                policy=self.config.policy,
                capacity_margin=self.config.capacity_margin,
                forward_refetch_gap=self.config.forward_refetch_gap,
                incremental=self.config.incremental,
                incremental_step2=self.config.incremental_step2,
                vectorize=self.config.vectorize,
            )
        return self._predictors[size]

    def _optimize(self, size: Size, use_plan_cache: bool = True) -> Classification:
        graph = self._graph(size)
        profile = self._profile(size)
        predictor = self._predictor(size)
        cache = self.plan_cache
        if cache is not None:
            predictor.preload_outcomes(
                cache.load_outcomes(graph, self.machine,
                                    predictor.sim_signature())
            )
            hit = (cache.load_plan(graph, self.machine, self.config.signature())
                   if use_plan_cache else None)
            if hit is not None:
                classification, _meta = hit
                if predictor.predict(classification).feasible:
                    self.stats.optimizations += 1
                    return classification
        classifier = PoochClassifier(
            graph, profile, self.machine, self.config, predictor
        )
        classification, _ = classifier.classify()
        if cache is not None:
            cache.store_plan(
                graph, self.machine, self.config.signature(), classification,
                predicted_time=predictor.predict(classification).time,
            )
            cache.merge_outcomes(graph, self.machine,
                                 predictor.sim_signature(),
                                 predictor.export_outcomes())
        self.stats.optimizations += 1
        return classification

    def _transferable_plan(self, size: Size) -> Classification | None:
        """nearest strategy: the plan of the smallest already-planned size
        that is >= ``size`` (memory-safe direction), verified by simulation."""
        candidates = sorted(
            (s for s in self._plans if s >= size), key=lambda s: s
        )
        graph = self._graph(size)
        for donor in candidates:
            plan = self._plans[donor]
            try:
                remapped = Classification(dict(plan.classes))
                remapped.validate(graph)
            except ScheduleError:
                continue
            if self._predictor(size).predict(remapped).feasible:
                self.stats.transfers += 1
                return remapped
            self.stats.transfer_rejections += 1
        return None

    # -- public ------------------------------------------------------------------

    def plan_for(self, size: Size) -> Classification:
        """The classification used for iterations of ``size`` (cached)."""
        if size in self._plans:
            self.stats.plan_reuses += 1
            return self._plans[size]
        plan: Classification | None = None
        if self.strategy == "nearest" and self._plans:
            plan = self._transferable_plan(size)
        if plan is None:
            plan = self._optimize(size)
        self._plans[size] = plan
        return plan

    def _replan(self, size: Size) -> None:
        """Drift response: throw away the stale profile, measure again under
        the faulted ground truth, search again.  Bounded to once per size —
        drift past that means the environment itself is unstable, and
        re-planning every iteration would cost more than it saves."""
        self._replanned.add(size)
        self._profiles.pop(size, None)
        self._predictors.pop(size, None)
        self._plans.pop(size, None)
        self._profile(size, faulted=True)
        # bypass the plan cache: it would hand back the very plan that
        # drifted (cache keys ignore the profile)
        self._plans[size] = self._optimize(size, use_plan_cache=False)
        self.stats.replans += 1
        metrics.count("resilience.replans")
        log.info("re-planned size %r after drift beyond tolerance", size)

    def run_iteration(self, size: Size) -> RunResult:
        """Execute one iteration of the given size under its plan.

        With a fault injector installed the iteration runs resiliently —
        transfer retries and fallback-chain steps land in :attr:`stats` —
        and a measured makespan drifting beyond ``replan_tolerance`` from
        the predicted one triggers one re-profile + re-plan for this size
        (the paper's profile-predicts-the-future premise, re-armed)."""
        plan = self.plan_for(size)
        graph = self._graph(size)
        if self.faults is not None:
            robust = execute_resilient(
                graph, plan, self.machine,
                faults=self.faults,
                retry=self.retry,
                options=self._options,
                cost_model=self.cost_model,
            )
            result = robust.result
            self.stats.transfer_retries += robust.transfer_retries
            self.stats.fallbacks += len(robust.fallbacks)
            degraded = robust.degraded
        else:
            result = execute(graph, plan, self.machine, options=self._options,
                             cost_model=self.cost_model)
            degraded = False
        self.stats.iterations += 1
        self.stats.iteration_times.append(result.makespan)
        if (self.replan_tolerance is not None
                and size not in self._replanned
                and (degraded
                     or self._predictor(size).drift(plan, result.makespan)
                     > self.replan_tolerance)):
            self._replan(size)
        return result

    def run_stream(self, sizes: list[Size]) -> DynamicStats:
        """Run a whole stream of per-iteration sizes; returns the stats."""
        for size in sizes:
            self.run_iteration(size)
        return self.stats
