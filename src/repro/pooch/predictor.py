"""PoocH's internal timeline simulation (§4.1.2).

Given the profile and a candidate classification, the predictor builds the
exact task schedule the runtime would execute and replays it through the
event engine using the *profiled* durations.  The paper motivates this with
the observation that execution time cannot be expressed as a simple linear
formula because of pipelining and data dependencies — so PoocH predicts by
simulation instead.  Because our ground truth is itself the same engine (with
cost-model durations), a jitter-free profile makes predictions exact; the
extensive tests rely on that property, and the jitter knob restores the
realistic predicted≈measured gap.

Predictions are memoized on the classification key — the classifier's
searches re-visit many identical candidates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import OutOfMemoryError
from repro.graph import NNGraph
from repro.gpusim import Engine, RunResult
from repro.hw import MachineSpec
from repro.runtime.plan import Classification, SwapInPolicy
from repro.runtime.profiler import Profile
from repro.runtime.schedule import ScheduleOptions, build_schedule


@dataclass(frozen=True)
class PredictedOutcome:
    """Result of simulating one candidate classification."""

    feasible: bool
    time: float  # predicted iteration time; +inf when infeasible
    peak_memory: int  # predicted GPU peak (0 when infeasible)
    oom_context: str = ""  # which task hit the wall, for diagnostics

    @property
    def infeasible(self) -> bool:
        return not self.feasible


class TimelinePredictor:
    """Simulates candidate classifications from a :class:`Profile`."""

    def __init__(
        self,
        graph: NNGraph,
        profile: Profile,
        machine: MachineSpec,
        policy: SwapInPolicy = SwapInPolicy.EAGER,
        capacity_margin: int = 0,
        forward_refetch_gap: int | None = None,
    ) -> None:
        self.graph = graph
        self.profile = profile
        self.machine = machine
        #: bytes subtracted from the device capacity during prediction —
        #: plans are then chosen to leave this much slack, which buys
        #: robustness against allocator fragmentation the counting model
        #: does not see (see the fragmentation ablation benchmark)
        self.capacity_margin = capacity_margin
        self.options = ScheduleOptions(policy=policy,
                                       forward_refetch_gap=forward_refetch_gap)
        self._durations = profile.durations()
        self._cache: dict[tuple, PredictedOutcome] = {}
        self._full_cache: dict[tuple, RunResult] = {}
        #: simulations actually executed (cache misses) — the classifier's
        #: search-cost metric
        self.simulations = 0

    def predict(self, classification: Classification) -> PredictedOutcome:
        """Predicted iteration time and feasibility for a candidate plan."""
        key = classification.key()
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        self.simulations += 1
        try:
            result = self._run(classification)
            outcome = PredictedOutcome(
                feasible=True, time=result.makespan, peak_memory=result.device_peak
            )
            self._full_cache[key] = result
        except OutOfMemoryError as e:
            outcome = PredictedOutcome(
                feasible=False, time=float("inf"), peak_memory=0,
                oom_context=e.context,
            )
        self._cache[key] = outcome
        return outcome

    def timeline(self, classification: Classification) -> RunResult:
        """Full predicted timeline (records, memory trace) for a feasible
        plan; used by the overlap analysis and the examples."""
        key = classification.key()
        if key not in self._full_cache:
            outcome = self.predict(classification)
            if not outcome.feasible:
                raise OutOfMemoryError(
                    f"classification is predicted infeasible ({outcome.oom_context})"
                )
        return self._full_cache[key]

    def _run(self, classification: Classification) -> RunResult:
        schedule = build_schedule(
            self.graph, classification, self._durations, self.options
        )
        engine = Engine(
            schedule,
            device_capacity=self.machine.usable_gpu_memory - self.capacity_margin,
            host_capacity=self.machine.cpu_mem_capacity,
            validate=False,  # builder output is structurally valid; skip the
            # O(tasks) re-check in the search hot loop
        )
        return engine.run()
