"""PoocH's internal timeline simulation (§4.1.2).

Given the profile and a candidate classification, the predictor builds the
exact task schedule the runtime would execute and replays it through the
event engine using the *profiled* durations.  The paper motivates this with
the observation that execution time cannot be expressed as a simple linear
formula because of pipelining and data dependencies — so PoocH predicts by
simulation instead.  Because our ground truth is itself the same engine (with
cost-model durations), a jitter-free profile makes predictions exact; the
extensive tests rely on that property, and the jitter knob restores the
realistic predicted≈measured gap.

Predictions are memoized on the classification key — the classifier's
searches re-visit many identical candidates.  The hot path replays draft
schedules through :class:`~repro.gpusim.fastengine.FastEngine` (bit-identical
makespans, no timeline records); :meth:`TimelinePredictor.timeline` re-runs
the full engine on demand when records or memory traces are actually needed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import OutOfMemoryError
from repro.graph import NNGraph
from repro.gpusim import Engine, RunResult
from repro.gpusim.fastengine import FastEngine
from repro.hw import MachineSpec
from repro.runtime.plan import Classification, SwapInPolicy
from repro.runtime.profiler import Profile
from repro.runtime.schedule import ScheduleBuilder, ScheduleOptions, build_schedule


@dataclass(frozen=True)
class PredictedOutcome:
    """Result of simulating one candidate classification."""

    feasible: bool
    time: float  # predicted iteration time; +inf when infeasible
    peak_memory: int  # predicted GPU peak (0 when infeasible)
    oom_context: str = ""  # which task hit the wall, for diagnostics

    @property
    def infeasible(self) -> bool:
        return not self.feasible


class TimelinePredictor:
    """Simulates candidate classifications from a :class:`Profile`."""

    def __init__(
        self,
        graph: NNGraph,
        profile: Profile,
        machine: MachineSpec,
        policy: SwapInPolicy = SwapInPolicy.EAGER,
        capacity_margin: int = 0,
        forward_refetch_gap: int | None = None,
    ) -> None:
        self.graph = graph
        self.profile = profile
        self.machine = machine
        #: bytes subtracted from the device capacity during prediction —
        #: plans are then chosen to leave this much slack, which buys
        #: robustness against allocator fragmentation the counting model
        #: does not see (see the fragmentation ablation benchmark)
        self.capacity_margin = capacity_margin
        self.policy = policy
        self.forward_refetch_gap = forward_refetch_gap
        self.options = ScheduleOptions(policy=policy,
                                       forward_refetch_gap=forward_refetch_gap)
        self._durations = profile.durations()
        self._cache: dict[tuple, PredictedOutcome] = {}
        self._full_cache: dict[tuple, RunResult] = {}
        #: simulations actually executed (cache misses) — the classifier's
        #: search-cost metric.  Outcomes absorbed from worker processes via
        #: :meth:`absorb` count too: the simulation ran, just elsewhere.
        self.simulations = 0

    def predict(self, classification: Classification) -> PredictedOutcome:
        """Predicted iteration time and feasibility for a candidate plan."""
        key = classification.key()
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        self.simulations += 1
        outcome = self._simulate(classification)
        self._cache[key] = outcome
        return outcome

    def cached(self, classification: Classification) -> PredictedOutcome | None:
        """Cache lookup without simulating (and without counting a miss)."""
        return self._cache.get(classification.key())

    def drift(self, classification: Classification, measured: float) -> float:
        """Relative deviation of a *measured* makespan from this predictor's
        prediction for the plan — the signal :class:`~repro.pooch.dynamic.
        DynamicPoocH` watches to decide the profile has gone stale."""
        predicted = self.predict(classification).time
        if predicted <= 0.0:
            return 0.0
        return abs(measured - predicted) / predicted

    def absorb(self, key: tuple, outcome: PredictedOutcome) -> None:
        """Install an outcome computed elsewhere (a worker process) under
        ``key``, with the same miss accounting as a local simulation."""
        if key not in self._cache:
            self.simulations += 1
            self._cache[key] = outcome

    def sim_signature(self) -> str:
        """Identity of everything (besides graph and machine) an outcome of
        this predictor depends on — the :class:`~repro.runtime.plan_io.PlanCache`
        key for sharing outcomes across runs."""
        from repro.runtime.plan_io import profile_signature

        return (
            f"{profile_signature(self.profile)};policy={self.policy.value};"
            f"margin={self.capacity_margin};gap={self.forward_refetch_gap}"
        )

    def export_outcomes(self) -> dict[tuple, dict]:
        """The memo cache as JSON-ready dicts (for :class:`PlanCache`)."""
        return {
            k: {
                "feasible": o.feasible,
                "time": o.time,
                "peak_memory": o.peak_memory,
                "oom_context": o.oom_context,
            }
            for k, o in self._cache.items()
        }

    def preload_outcomes(self, entries: dict[tuple, dict]) -> int:
        """Warm-start the memo cache from exported entries; returns how many
        were new.  Preloaded entries are cache hits — they do not count as
        simulations."""
        loaded = 0
        for k, d in entries.items():
            if k in self._cache:
                continue
            self._cache[k] = PredictedOutcome(
                feasible=bool(d["feasible"]),
                time=float(d["time"]),
                peak_memory=int(d["peak_memory"]),
                oom_context=str(d.get("oom_context", "")),
            )
            loaded += 1
        return loaded

    def timeline(self, classification: Classification) -> RunResult:
        """Full predicted timeline (records, memory trace) for a feasible
        plan; used by the overlap analysis and the examples.

        Runs the *full* engine (the fast path keeps no records), caching the
        result per classification key.
        """
        key = classification.key()
        hit = self._full_cache.get(key)
        if hit is not None:
            return hit
        outcome = self.predict(classification)
        if not outcome.feasible:
            raise OutOfMemoryError(
                f"classification is predicted infeasible ({outcome.oom_context})"
            )
        schedule = build_schedule(
            self.graph, classification, self._durations, self.options
        )
        engine = Engine(
            schedule,
            device_capacity=self.machine.usable_gpu_memory - self.capacity_margin,
            host_capacity=self.machine.cpu_mem_capacity,
            validate=False,
        )
        result = engine.run()
        self._full_cache[key] = result
        return result

    def _simulate(self, classification: Classification) -> PredictedOutcome:
        """One uncached simulation through the fast draft-replay path."""
        builder = ScheduleBuilder(
            self.graph, classification, self._durations, self.options,
            validate=False,  # the search only proposes structurally valid
            # classifications; skip the O(maps) re-check per candidate
        )
        tasks, queues, buffers = builder.build_raw()
        engine = FastEngine(
            tasks, queues, buffers,
            device_capacity=self.machine.usable_gpu_memory - self.capacity_margin,
            host_capacity=self.machine.cpu_mem_capacity,
        )
        try:
            makespan, device_peak, _host_peak = engine.run()
        except OutOfMemoryError as e:
            return PredictedOutcome(
                feasible=False, time=float("inf"), peak_memory=0,
                oom_context=e.context,
            )
        return PredictedOutcome(
            feasible=True, time=makespan, peak_memory=device_peak
        )
