"""PoocH's internal timeline simulation (§4.1.2).

Given the profile and a candidate classification, the predictor builds the
exact task schedule the runtime would execute and replays it through the
event engine using the *profiled* durations.  The paper motivates this with
the observation that execution time cannot be expressed as a simple linear
formula because of pipelining and data dependencies — so PoocH predicts by
simulation instead.  Because our ground truth is itself the same engine (with
cost-model durations), a jitter-free profile makes predictions exact; the
extensive tests rely on that property, and the jitter knob restores the
realistic predicted≈measured gap.

Predictions are memoized on the classification key — the classifier's
searches re-visit many identical candidates.  The hot path replays draft
schedules through :class:`~repro.gpusim.fastengine.FastEngine` (bit-identical
makespans, no timeline records); :meth:`TimelinePredictor.timeline` re-runs
the full engine on demand when records or memory traces are actually needed.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from dataclasses import dataclass

from repro.common.errors import OutOfMemoryError
from repro.graph import NNGraph
from repro.gpusim import Engine, RunResult
from repro.gpusim.fastengine import _STREAM_ORDER, EngineCheckpoint, FastEngine
from repro.hw import MachineSpec
from repro.runtime.plan import Classification, MapClass, SwapInPolicy
from repro.runtime.profiler import Profile
from repro.runtime.schedule import (
    ScheduleBuilder,
    ScheduleOptions,
    apply_keep_delta,
    build_schedule,
)


def _buffers_equal(a, b) -> bool:
    """Engine-visible equality of two buffer drafts (identity, placement,
    and the writers|readers union that drives the free countdown).  Test
    validator: ``tests/test_search_pruning.py`` uses it to assert delta
    drafts equal freshly built ones."""
    return (
        a.bid == b.bid and a.nbytes == b.nbytes and a.host == b.host
        and a.alloc_by == b.alloc_by and a.writers == b.writers
        and a.readers == b.readers
    )


def _tasks_equal(a, b, allocs_a, allocs_b) -> bool:
    """Engine-visible equality of two task drafts at the same queue position
    (kind/layer/io are ignored: the replay engine never reads them).  Test
    validator, like :func:`_buffers_equal`."""
    if (
        a.duration != b.duration
        or a.scratch_bytes != b.scratch_bytes
        or a.memory_gated != b.memory_gated
        or a.headroom != b.headroom
        or a.alloc_on_ready != b.alloc_on_ready
        or a.deps != b.deps
        or a.start_deps != b.start_deps
        or len(allocs_a) != len(allocs_b)
    ):
        return False
    for x, y in zip(allocs_a, allocs_b):
        if not _buffers_equal(x, y):
            return False
    return True


class _Reference:
    """One previously simulated keep/swap candidate plus the checkpoints its
    replay recorded — the prefix future candidates try to resume from.

    Only the keep-set and the base-coordinate removal positions are stored:
    divergence against a new candidate is derived from the shared all-swap
    base draft in O(flipped maps), never by comparing schedules."""

    __slots__ = ("keeps", "rm_d", "rm_h", "checkpoints")

    def __init__(self, keeps: frozenset, rm_d: list[int], rm_h: list[int],
                 checkpoints: list[EngineCheckpoint]) -> None:
        self.keeps = keeps
        #: sorted base-draft positions of the removed SO / SI tasks — the
        #: offsets that translate base D2H/H2D positions into this
        #: reference's own queue coordinates
        self.rm_d = rm_d
        self.rm_h = rm_h
        self.checkpoints = checkpoints


_EMPTY: list = []
_NO_DIVERGENCE = 1 << 60  # sentinel: streams agree on the whole queue


@dataclass(frozen=True)
class PredictedOutcome:
    """Result of simulating one candidate classification."""

    feasible: bool
    time: float  # predicted iteration time; +inf when infeasible
    peak_memory: int  # predicted GPU peak (0 when infeasible)
    oom_context: str = ""  # which task hit the wall, for diagnostics

    @property
    def infeasible(self) -> bool:
        return not self.feasible


class TimelinePredictor:
    """Simulates candidate classifications from a :class:`Profile`."""

    def __init__(
        self,
        graph: NNGraph,
        profile: Profile,
        machine: MachineSpec,
        policy: SwapInPolicy = SwapInPolicy.EAGER,
        capacity_margin: int = 0,
        forward_refetch_gap: int | None = None,
        incremental: bool = True,
    ) -> None:
        self.graph = graph
        self.profile = profile
        self.machine = machine
        #: bytes subtracted from the device capacity during prediction —
        #: plans are then chosen to leave this much slack, which buys
        #: robustness against allocator fragmentation the counting model
        #: does not see (see the fragmentation ablation benchmark)
        self.capacity_margin = capacity_margin
        self.policy = policy
        self.forward_refetch_gap = forward_refetch_gap
        self.options = ScheduleOptions(policy=policy,
                                       forward_refetch_gap=forward_refetch_gap)
        self._durations = profile.durations()
        self._cache: dict[tuple, PredictedOutcome] = {}
        self._full_cache: dict[tuple, RunResult] = {}
        #: simulations actually executed (cache misses) — the classifier's
        #: search-cost metric.  Outcomes absorbed from worker processes via
        #: :meth:`absorb` count too: the simulation ran, just elsewhere.
        #: Resumed replays count exactly like full ones, so this number —
        #: and therefore budget truncation and the chosen plan — is
        #: independent of ``incremental``.
        self.simulations = 0
        #: share the simulated prefix between candidates whose schedules
        #: agree on it (checkpoint/resume through FastEngine); results stay
        #: bit-identical, only wall-clock changes
        self.incremental = incremental
        #: of the local (non-absorbed) simulations, how many replayed from
        #: time zero vs. resumed from a shared-prefix checkpoint
        self.full_simulations = 0
        self.resumed_simulations = 0
        #: memo-cache hits inside :meth:`predict` — with the search's
        #: revisit-heavy candidate streams this dwarfs ``simulations``
        self.cache_hits = 0
        #: references are a frozenset + two int lists each, and matching is
        #: O(flipped maps), so a deeper window costs almost nothing
        self._refs: deque[_Reference] = deque(maxlen=16)
        #: all-swap base draft and per-map divergence positions, built
        #: lazily on the first delta-eligible simulation
        self._base: tuple | None = None
        self._div: dict[int, tuple[int, int, int]] = {}

    def predict(self, classification: Classification) -> PredictedOutcome:
        """Predicted iteration time and feasibility for a candidate plan."""
        key = classification.key()
        hit = self._cache.get(key)
        if hit is not None:
            self.cache_hits += 1
            return hit
        self.simulations += 1
        outcome = self._simulate(classification)
        self._cache[key] = outcome
        return outcome

    def cached(self, classification: Classification) -> PredictedOutcome | None:
        """Cache lookup without simulating (and without counting a miss)."""
        return self._cache.get(classification.key())

    def drift(self, classification: Classification, measured: float) -> float:
        """Relative deviation of a *measured* makespan from this predictor's
        prediction for the plan — the signal :class:`~repro.pooch.dynamic.
        DynamicPoocH` watches to decide the profile has gone stale."""
        predicted = self.predict(classification).time
        if predicted <= 0.0:
            return 0.0
        return abs(measured - predicted) / predicted

    def absorb(self, key: tuple, outcome: PredictedOutcome) -> None:
        """Install an outcome computed elsewhere (a worker process) under
        ``key``, with the same miss accounting as a local simulation."""
        if key not in self._cache:
            self.simulations += 1
            self._cache[key] = outcome

    def sim_signature(self) -> str:
        """Identity of everything (besides graph and machine) an outcome of
        this predictor depends on — the :class:`~repro.runtime.plan_io.PlanCache`
        key for sharing outcomes across runs."""
        from repro.runtime.plan_io import profile_signature

        return (
            f"{profile_signature(self.profile)};policy={self.policy.value};"
            f"margin={self.capacity_margin};gap={self.forward_refetch_gap}"
        )

    def export_outcomes(self) -> dict[tuple, dict]:
        """The memo cache as JSON-ready dicts (for :class:`PlanCache`)."""
        return {
            k: {
                "feasible": o.feasible,
                "time": o.time,
                "peak_memory": o.peak_memory,
                "oom_context": o.oom_context,
            }
            for k, o in self._cache.items()
        }

    def preload_outcomes(self, entries: dict[tuple, dict]) -> int:
        """Warm-start the memo cache from exported entries; returns how many
        were new.  Preloaded entries are cache hits — they do not count as
        simulations."""
        loaded = 0
        for k, d in entries.items():
            if k in self._cache:
                continue
            self._cache[k] = PredictedOutcome(
                feasible=bool(d["feasible"]),
                time=float(d["time"]),
                peak_memory=int(d["peak_memory"]),
                oom_context=str(d.get("oom_context", "")),
            )
            loaded += 1
        return loaded

    def timeline(self, classification: Classification) -> RunResult:
        """Full predicted timeline (records, memory trace) for a feasible
        plan; used by the overlap analysis and the examples.

        Runs the *full* engine (the fast path keeps no records), caching the
        result per classification key.
        """
        key = classification.key()
        hit = self._full_cache.get(key)
        if hit is not None:
            return hit
        outcome = self.predict(classification)
        if not outcome.feasible:
            raise OutOfMemoryError(
                f"classification is predicted infeasible ({outcome.oom_context})"
            )
        schedule = build_schedule(
            self.graph, classification, self._durations, self.options
        )
        engine = Engine(
            schedule,
            device_capacity=self.machine.usable_gpu_memory - self.capacity_margin,
            host_capacity=self.machine.cpu_mem_capacity,
            validate=False,
        )
        result = engine.run()
        self._full_cache[key] = result
        return result

    def draft(self, classification: Classification) -> tuple[dict, dict, dict]:
        """Raw (tasks, queues, buffers) draft for a candidate — the
        classifier's lower-bound precomputation reads queue orders,
        durations and dependencies from it."""
        builder = ScheduleBuilder(
            self.graph, classification, self._durations, self.options,
            validate=False,
        )
        return builder.build_raw()

    # -- incremental replay -------------------------------------------------------
    #
    # Candidates in the classifier's searches differ from one another only
    # in which maps they keep, so both the *draft* and the *replay* of a
    # candidate are mostly shared work:
    #
    # * drafts are produced by patching the all-swap base draft
    #   (:func:`apply_keep_delta`) in O(flipped maps) instead of rebuilding
    #   the whole schedule;
    # * replays resume from a checkpoint of a recent reference run.  Where
    #   the two schedules first diverge is *derived*, not discovered: each
    #   map's flip perturbs the base queues at precomputed positions
    #   (``_ensure_base``), so the divergence front of any candidate/
    #   reference pair is the minimum of those positions over the symmetric
    #   difference of their keep-sets — O(|difference|) per reference, no
    #   queue comparison at all.
    #
    # Budget accounting is untouched — a resumed replay is still one
    # simulation — so plans are bit-identical with incremental on or off.

    def _ensure_base(self) -> None:
        """Build the all-swap base draft once, plus the per-map divergence
        positions ``_div[m] = (compute, d2h, h2d)``: the earliest queue
        position on each stream at which a schedule that keeps ``m``
        becomes distinguishable from one that swaps it (task removed,
        dependency rewired, or a buffer's free time moved)."""
        if self._base is not None:
            return
        base = ScheduleBuilder(
            self.graph, Classification.all_swap(self.graph),
            self._durations, self.options, validate=False,
        ).build_raw()
        tasks, queues, buffers = base
        pos_c, pos_d, pos_h = (
            {tid: i for i, tid in enumerate(queues.get(s, _EMPTY))}
            for s in _STREAM_ORDER
        )
        div: dict[int, tuple[int, int, int]] = {}
        for m in self.graph.classifiable_maps():
            so, si = f"SO{m}", f"SI{m}"
            d_pos = pos_d[so]
            if si in tasks:
                # keeping m rewires the backward readers of fm{m}@b onto
                # the forward instance: first such reader is the compute
                # divergence
                c_pos = min(pos_c[r] for r in buffers[f"fm{m}@b"].readers)
                h_pos = pos_h[si]
            else:  # no backward consumer: the flip only moves the *free*
                # of fm{m}@f, observable after its last forward accessor
                ids = [f"F{m}"] + [f"F{k}" for k in self.graph.consumers[m]]
                c_pos = max((pos_c[t] for t in ids if t in pos_c), default=0)
                h_pos = _NO_DIVERGENCE
            div[m] = (c_pos, d_pos, h_pos)
        self._base = base
        self._div = div

    def _sim_draft(self, classification: Classification):
        """(tasks, queues, buffers, keeps) draft for one simulation.

        Pure keep/swap candidates (the entire step-1 tree and most of
        step 2) go through the delta path: ``keeps`` is their frozen
        keep-set and the draft is the patched base.  Everything else —
        recompute classes, forward re-fetch, incremental off — falls back
        to a full build with ``keeps`` None, which also opts the replay
        out of checkpoint/resume (recompute flips are not prefix-local)."""
        if self.incremental and self.forward_refetch_gap is None:
            keeps: list[int] = []
            pure = True
            for m, cls in classification.classes.items():
                if cls is MapClass.KEEP:
                    keeps.append(m)
                elif cls is not MapClass.SWAP:
                    pure = False
                    break
            if pure:
                self._ensure_base()
                tasks, queues, buffers = apply_keep_delta(
                    self._base[0], self._base[1], self._base[2], keeps
                )
                return tasks, queues, buffers, frozenset(keeps)
        tasks, queues, buffers = self.draft(classification)
        return tasks, queues, buffers, None

    def _divergence(self, ref: _Reference, keeps: frozenset):
        """First-divergence position per stream between a candidate keep-set
        and ``ref``, in the *reference's* queue coordinates (compute queues
        are shared with the base; D2H/H2D positions shift down by the
        reference's own removals before them)."""
        div = self._div
        pc = pd = ph = _NO_DIVERGENCE
        for m in keeps ^ ref.keeps:
            c, d, h = div[m]
            if c < pc:
                pc = c
            if d < pd:
                pd = d
            if h < ph:
                ph = h
        if pd < _NO_DIVERGENCE:
            pd -= bisect_left(ref.rm_d, pd)
        if ph < _NO_DIVERGENCE:
            ph -= bisect_left(ref.rm_h, ph)
        return pc, pd, ph

    @staticmethod
    def _checkpoint_valid(cp: EngineCheckpoint, front, tasks,
                          cand_queues) -> bool:
        """Whether ``cp`` is a state the candidate's own run would also have
        reached: every cursor inside the shared prefix, and a cursor parked
        exactly at the divergence only if the candidate's task there was
        genuinely blocked at the checkpoint (else the candidate would have
        issued it earlier)."""
        for s, c in enumerate(cp.cursors):
            if c < front[s]:
                continue
            if c > front[s]:
                return False
            q = cand_queues[s]
            if c >= len(q):
                continue  # candidate stream exhausted at the divergence
            head = tasks[q[c]]
            if head.deps <= cp.completed_set() and (
                not head.start_deps or head.start_deps <= cp.started_set()
            ):
                return False  # head could have issued before the checkpoint
        return True

    def _best_resume(self, keeps: frozenset, tasks, cand_queues):
        """Deepest valid checkpoint across recent references, plus every
        shallower valid checkpoint of the same reference (those are genuine
        states of *this* candidate's run, so the new reference inherits
        them).  Matching is O(|keep-set difference|) per reference, so all
        retained references are tried."""
        best: list[EngineCheckpoint] = []
        for ref in self._refs:
            if not ref.checkpoints:
                continue
            front = self._divergence(ref, keeps)
            valid = [cp for cp in ref.checkpoints
                     if self._checkpoint_valid(cp, front, tasks, cand_queues)]
            if valid and (not best
                          or valid[-1].progress > best[-1].progress):
                best = valid
        return best

    def _record_ref(self, keeps: frozenset,
                    checkpoints: list[EngineCheckpoint]) -> None:
        if not checkpoints:
            return
        div = self._div
        rm_d = sorted(div[m][1] for m in keeps)
        rm_h = sorted(h for m in keeps if (h := div[m][2]) < _NO_DIVERGENCE)
        self._refs.appendleft(_Reference(keeps, rm_d, rm_h, checkpoints))

    def _simulate(self, classification: Classification) -> PredictedOutcome:
        """One uncached simulation through the fast draft-replay path,
        resuming from a shared-prefix checkpoint when one is valid."""
        tasks, queues, buffers, keeps = self._sim_draft(classification)
        engine = FastEngine(
            tasks, queues, buffers,
            device_capacity=self.machine.usable_gpu_memory - self.capacity_margin,
            host_capacity=self.machine.cpu_mem_capacity,
        )
        resume: EngineCheckpoint | None = None
        inherited: list[EngineCheckpoint] = []
        checkpoint_every = 0
        if keeps is not None and engine.checkpointable:
            # fine grid: capture is O(in-flight), so dense marks are cheap
            # and let siblings resume right at their divergence front
            checkpoint_every = max(8, len(tasks) // 24)
            cand_queues = [queues.get(s, _EMPTY) for s in _STREAM_ORDER]
            inherited = self._best_resume(keeps, tasks, cand_queues)
            if inherited:
                resume = inherited[-1]
        if resume is not None:
            self.resumed_simulations += 1
        else:
            self.full_simulations += 1
        try:
            makespan, device_peak, _host_peak = engine.run(
                checkpoint_every=checkpoint_every, resume_from=resume
            )
        except OutOfMemoryError as e:
            if checkpoint_every:
                self._record_ref(keeps, inherited + engine.checkpoints)
            return PredictedOutcome(
                feasible=False, time=float("inf"), peak_memory=0,
                oom_context=e.context,
            )
        if checkpoint_every:
            self._record_ref(keeps, inherited + engine.checkpoints)
        return PredictedOutcome(
            feasible=True, time=makespan, peak_memory=device_peak
        )
