"""PoocH's internal timeline simulation (§4.1.2).

Given the profile and a candidate classification, the predictor builds the
exact task schedule the runtime would execute and replays it through the
event engine using the *profiled* durations.  The paper motivates this with
the observation that execution time cannot be expressed as a simple linear
formula because of pipelining and data dependencies — so PoocH predicts by
simulation instead.  Because our ground truth is itself the same engine (with
cost-model durations), a jitter-free profile makes predictions exact; the
extensive tests rely on that property, and the jitter knob restores the
realistic predicted≈measured gap.

Predictions are memoized on the classification key — the classifier's
searches re-visit many identical candidates.  The hot path replays draft
schedules through :class:`~repro.gpusim.fastengine.FastEngine` (bit-identical
makespans, no timeline records); :meth:`TimelinePredictor.timeline` re-runs
the full engine on demand when records or memory traces are actually needed.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.common.errors import OutOfMemoryError, ScheduleError
from repro.graph import NNGraph
from repro.gpusim import Engine, RunResult
from repro.gpusim.fastengine import _STREAM_ORDER, EngineCheckpoint, FastEngine
from repro.gpusim.vecengine import VectorEngine, VectorTables, VectorUnsupported
from repro.hw import MachineSpec
from repro.runtime.plan import Classification, MapClass, SwapInPolicy
from repro.runtime.profiler import Profile
from repro.runtime.schedule import (
    ScheduleBuilder,
    ScheduleOptions,
    apply_keep_delta,
    apply_recompute_delta,
    build_schedule,
    keep_flip_specs,
    liveness_floor,
)


def _buffers_equal(a, b) -> bool:
    """Engine-visible equality of two buffer drafts (identity, placement,
    and the writers|readers union that drives the free countdown).  Test
    validator: ``tests/test_search_pruning.py`` uses it to assert delta
    drafts equal freshly built ones."""
    return (
        a.bid == b.bid and a.nbytes == b.nbytes and a.host == b.host
        and a.alloc_by == b.alloc_by and a.writers == b.writers
        and a.readers == b.readers
    )


def _tasks_equal(a, b, allocs_a, allocs_b) -> bool:
    """Engine-visible equality of two task drafts at the same queue position
    (kind/layer/io are ignored: the replay engine never reads them).  Test
    validator, like :func:`_buffers_equal`."""
    if (
        a.duration != b.duration
        or a.scratch_bytes != b.scratch_bytes
        or a.memory_gated != b.memory_gated
        or a.headroom != b.headroom
        or a.alloc_on_ready != b.alloc_on_ready
        or a.deps != b.deps
        or a.start_deps != b.start_deps
        or len(allocs_a) != len(allocs_b)
    ):
        return False
    for x, y in zip(allocs_a, allocs_b):
        if not _buffers_equal(x, y):
            return False
    return True


class _Reference:
    """One previously simulated keep/swap/recompute candidate plus the
    checkpoints its replay recorded — the prefix future candidates try to
    resume from.

    The compute divergence against a new candidate is derived from the
    shared all-swap base draft in O(flipped maps); the transfer queues
    (order-perturbed by recompute chains) are compared directly by longest
    common prefix, which is exact because every same-id transfer task has
    identical engine-visible effects in both schedules (swap-in headroom,
    the one exception, is guarded by :attr:`hr`)."""

    __slots__ = ("keeps", "recs", "hr", "ins_c", "queues", "checkpoints")

    def __init__(self, keeps: frozenset, recs: frozenset, hr: int,
                 ins_c: list[int], queues: list[list[str]],
                 checkpoints: list[EngineCheckpoint]) -> None:
        self.keeps = keeps
        self.recs = recs
        #: the swap-in headroom this reference's draft carries (EAGER
        #: auto-headroom grows when recompute tasks allocate more than any
        #: backward task); candidates with a different value never share a
        #: prefix because every swap-in's issue decision differs
        self.hr = hr
        #: sorted base-coordinate insertion points of the recompute tasks
        #: this reference spliced into the compute queue — the offsets that
        #: translate base compute positions into its own coordinates
        self.ins_c = ins_c
        #: the reference's own per-stream queues (shared with its draft,
        #: treated immutable) in ``_STREAM_ORDER`` — the LCP operands
        self.queues = queues
        self.checkpoints = checkpoints


_EMPTY: list = []
_NO_DIVERGENCE = 1 << 60  # sentinel: streams agree on the whole queue


@dataclass(frozen=True)
class PredictedOutcome:
    """Result of simulating one candidate classification."""

    feasible: bool
    time: float  # predicted iteration time; +inf when infeasible
    peak_memory: int  # predicted GPU peak (0 when infeasible)
    oom_context: str = ""  # which task hit the wall, for diagnostics

    @property
    def infeasible(self) -> bool:
        return not self.feasible


class TimelinePredictor:
    """Simulates candidate classifications from a :class:`Profile`."""

    def __init__(
        self,
        graph: NNGraph,
        profile: Profile,
        machine: MachineSpec,
        policy: SwapInPolicy = SwapInPolicy.EAGER,
        capacity_margin: int = 0,
        forward_refetch_gap: int | None = None,
        incremental: bool = True,
        incremental_step2: bool = True,
        vectorize: bool = True,
    ) -> None:
        self.graph = graph
        self.profile = profile
        self.machine = machine
        #: bytes subtracted from the device capacity during prediction —
        #: plans are then chosen to leave this much slack, which buys
        #: robustness against allocator fragmentation the counting model
        #: does not see (see the fragmentation ablation benchmark)
        self.capacity_margin = capacity_margin
        self.policy = policy
        self.forward_refetch_gap = forward_refetch_gap
        self.options = ScheduleOptions(policy=policy,
                                       forward_refetch_gap=forward_refetch_gap)
        self._durations = profile.durations()
        self._cache: dict[tuple, PredictedOutcome] = {}
        self._full_cache: dict[tuple, RunResult] = {}
        #: simulations actually executed (cache misses) — the classifier's
        #: search-cost metric.  Outcomes absorbed from worker processes via
        #: :meth:`absorb` count too: the simulation ran, just elsewhere.
        #: Resumed replays count exactly like full ones, so this number —
        #: and therefore budget truncation and the chosen plan — is
        #: independent of ``incremental``.
        self.simulations = 0
        #: share the simulated prefix between candidates whose schedules
        #: agree on it (checkpoint/resume through FastEngine); results stay
        #: bit-identical, only wall-clock changes
        self.incremental = incremental
        #: extend the delta-draft/resume machinery to recompute candidates
        #: (step 2 of the search): keep+recompute drafts are patched from
        #: the base via :func:`apply_recompute_delta` and resumed from
        #: recompute-aware divergence fronts.  Only effective together with
        #: ``incremental``; like it, never changes results
        self.incremental_step2 = incremental_step2
        #: of the local (non-absorbed) simulations, how many replayed from
        #: time zero vs. resumed from a shared-prefix checkpoint
        self.full_simulations = 0
        self.resumed_simulations = 0
        #: memo-cache hits inside :meth:`predict` — with the search's
        #: revisit-heavy candidate streams this dwarfs ``simulations``
        self.cache_hits = 0
        #: references share their queue lists with the drafts they came
        #: from, and compute-front matching is O(flipped maps), so a deeper
        #: window costs almost nothing
        self._refs: deque[_Reference] = deque(maxlen=16)
        #: all-swap base draft and per-map divergence positions, built
        #: lazily on the first delta-eligible simulation
        self._base: tuple | None = None
        self._div: dict[int, tuple[int, int, int]] = {}
        #: earliest compute position at which *recomputing* a map becomes
        #: engine-visible (its forward buffer now dies mid-forward, and its
        #: chain touches producer buffers), plus the reverse chain-closure
        #: index used to detect when a flip elsewhere re-shapes the chain
        #: of a recompute both schedules share
        self._rdiv_c: dict[int, int] = {}
        self._rev: dict[int, list[int]] = {}
        #: conservative [start, end] compute-position window a map's
        #: swap→recompute flip perturbs — the classifier's dirty-set test
        self._rwin: dict[int, tuple[int, int]] = {}
        #: memoized liveness-floor verdicts (see :meth:`provably_infeasible`)
        self._floor_verdicts: dict[tuple, bool] = {}
        #: evaluate pure keep/swap candidate *batches* on the lockstep
        #: vector engine (:meth:`predict_keep_batch`); outcomes are
        #: bit-identical to the event engines, so this only changes
        #: wall-clock — never results
        self.vectorize = vectorize
        #: lockstep sweeps run and candidate rows swept (includes rows the
        #: caller speculated on and discarded; absorbed-sim accounting is
        #: the classifier's ``SearchStats.sims_vectorized``)
        self.vector_sweeps = 0
        self.vector_candidates = 0
        self._vec_engine: VectorEngine | None = None
        self._flip_index: dict[int, int] | None = None
        #: the draft family proved inexpressible (non-EAGER triggers,
        #: forward re-fetch, host+device allocating tasks, ...) — every
        #: later batch request falls back to the event engine
        self._vec_failed = False

    def predict(self, classification: Classification) -> PredictedOutcome:
        """Predicted iteration time and feasibility for a candidate plan."""
        key = classification.key()
        hit = self._cache.get(key)
        if hit is not None:
            self.cache_hits += 1
            return hit
        self.simulations += 1
        outcome = self._simulate(classification)
        self._cache[key] = outcome
        return outcome

    def cached(self, classification: Classification) -> PredictedOutcome | None:
        """Cache lookup without simulating (and without counting a miss)."""
        return self._cache.get(classification.key())

    def provably_infeasible(self, classification: Classification) -> bool:
        """True when the candidate's draft alone proves the plan cannot run:
        its compute-stream liveness floor (:func:`liveness_floor`) exceeds
        device capacity, so every simulation of it ends in OOM and
        :meth:`predict` could only return an infeasible outcome.  Building
        the draft costs a delta-patch, not a replay — step 2 uses this to
        skip keep probes whose only possible answer is "infeasible"."""
        key = classification.key()
        verdict = self._floor_verdicts.get(key)
        if verdict is None:
            tasks, queues, buffers, _keeps, _recs = (
                self._sim_draft(classification))
            floor = liveness_floor(tasks, queues, buffers)
            capacity = self.machine.usable_gpu_memory - self.capacity_margin
            verdict = floor > capacity
            self._floor_verdicts[key] = verdict
        return verdict

    def drift(self, classification: Classification, measured: float) -> float:
        """Relative deviation of a *measured* makespan from this predictor's
        prediction for the plan — the signal :class:`~repro.pooch.dynamic.
        DynamicPoocH` watches to decide the profile has gone stale."""
        predicted = self.predict(classification).time
        if predicted <= 0.0:
            return 0.0
        return abs(measured - predicted) / predicted

    def absorb(self, key: tuple, outcome: PredictedOutcome) -> bool:
        """Install an outcome computed elsewhere (a worker process or a
        vectorized sweep) under ``key``, with the same miss accounting as a
        local simulation.  Returns True when the outcome was new (and was
        therefore counted as a simulation)."""
        if key not in self._cache:
            self.simulations += 1
            self._cache[key] = outcome
            return True
        return False

    # -- vectorized batch prediction ---------------------------------------------
    #
    # Every step-1 candidate (and step 2's keep probes while no recompute
    # flip has been accepted yet) is "all-swap plus a keep set" — exactly
    # the flip family the lockstep vector engine expresses.  One compile of
    # the all-swap base draft serves every sweep; outcomes are bit-identical
    # to FastEngine replays of the same candidates (tests/test_vecengine.py
    # fuzzes that), so callers may install them in the memo cache via
    # :meth:`absorb` without changing any result.

    def _ensure_vec(self) -> VectorEngine | None:
        """Compile the keep-flip vector family once; None when vectorization
        is off or the draft family is not expressible (the caller then uses
        the serial event-engine path, candidate by candidate)."""
        if self._vec_engine is not None:
            return self._vec_engine
        if not self.vectorize or self._vec_failed:
            return None
        if self.forward_refetch_gap is not None:
            # re-fetch swap-ins read the host instance a keep flip deletes —
            # not a pure edge condition (keep_flip_specs would refuse too)
            self._vec_failed = True
            return None
        try:
            self._ensure_base()
            tasks, queues, buffers = self._base
            maps = sorted(self.graph.classifiable_maps())
            flips = keep_flip_specs(tasks, buffers, maps)
            tables = VectorTables(
                tasks, queues, buffers,
                self.machine.usable_gpu_memory - self.capacity_margin,
                self.machine.host_swap_capacity, flips,
            )
        except (VectorUnsupported, ScheduleError):
            self._vec_failed = True
            return None
        self._flip_index = {f.map_id: i for i, f in enumerate(flips)}
        self._vec_engine = VectorEngine(tables)
        return self._vec_engine

    def vector_flip_index(self) -> dict[int, int] | None:
        """Map id → keep-matrix column of the compiled flip family, or None
        when vectorization is unavailable for this predictor."""
        if self._ensure_vec() is None:
            return None
        return self._flip_index

    def predict_keep_batch(
        self, keep: np.ndarray
    ) -> list[PredictedOutcome | None] | None:
        """Simulate K pure keep/swap candidates in one lockstep sweep.

        ``keep`` is a (K, n_flips) bool matrix over :meth:`vector_flip_index`
        columns.  Returns one outcome per row, positionally — the memo cache
        and simulation counters are *not* touched, so callers can speculate
        freely and :meth:`absorb` only the outcomes they actually consume.
        A row is None when its replay ended in a non-OOM engine error (the
        serial path raises those; the caller must re-predict serially so the
        exception propagates identically).  The whole call returns None when
        vectorization is unavailable.
        """
        engine = self._ensure_vec()
        if engine is None:
            return None
        outs = engine.run_batch(keep)
        self.vector_sweeps += 1
        self.vector_candidates += len(outs)
        results: list[PredictedOutcome | None] = []
        for o in outs:
            if o.error is None:
                results.append(PredictedOutcome(
                    feasible=True, time=o.makespan,
                    peak_memory=o.device_peak,
                ))
            elif isinstance(o.error, OutOfMemoryError):
                results.append(PredictedOutcome(
                    feasible=False, time=float("inf"), peak_memory=0,
                    oom_context=o.error.context,
                ))
            else:
                results.append(None)
        return results

    def sim_signature(self) -> str:
        """Identity of everything (besides graph and machine) an outcome of
        this predictor depends on — the :class:`~repro.runtime.plan_io.PlanCache`
        key for sharing outcomes across runs."""
        from repro.runtime.plan_io import profile_signature

        return (
            f"{profile_signature(self.profile)};policy={self.policy.value};"
            f"margin={self.capacity_margin};gap={self.forward_refetch_gap}"
        )

    def export_outcomes(self) -> dict[tuple, dict]:
        """The memo cache as JSON-ready dicts (for :class:`PlanCache`)."""
        return {
            k: {
                "feasible": o.feasible,
                "time": o.time,
                "peak_memory": o.peak_memory,
                "oom_context": o.oom_context,
            }
            for k, o in self._cache.items()
        }

    def preload_outcomes(self, entries: dict[tuple, dict]) -> int:
        """Warm-start the memo cache from exported entries; returns how many
        were new.  Preloaded entries are cache hits — they do not count as
        simulations."""
        loaded = 0
        for k, d in entries.items():
            if k in self._cache:
                continue
            self._cache[k] = PredictedOutcome(
                feasible=bool(d["feasible"]),
                time=float(d["time"]),
                peak_memory=int(d["peak_memory"]),
                oom_context=str(d.get("oom_context", "")),
            )
            loaded += 1
        return loaded

    def timeline(self, classification: Classification) -> RunResult:
        """Full predicted timeline (records, memory trace) for a feasible
        plan; used by the overlap analysis and the examples.

        Runs the *full* engine (the fast path keeps no records), caching the
        result per classification key.
        """
        key = classification.key()
        hit = self._full_cache.get(key)
        if hit is not None:
            return hit
        outcome = self.predict(classification)
        if not outcome.feasible:
            raise OutOfMemoryError(
                f"classification is predicted infeasible ({outcome.oom_context})"
            )
        schedule = build_schedule(
            self.graph, classification, self._durations, self.options
        )
        engine = Engine(
            schedule,
            device_capacity=self.machine.usable_gpu_memory - self.capacity_margin,
            host_capacity=self.machine.host_swap_capacity,
            validate=False,
        )
        result = engine.run()
        self._full_cache[key] = result
        return result

    def step2_windows(self, maps) -> dict[int, tuple[int, int]]:
        """Conservative ``[start, end]`` compute-position window each map's
        swap→recompute flip perturbs (its own forward-buffer lifetime plus
        everything its recompute chain can touch, transitively).  The
        classifier's dirty-set invalidation treats two maps as interacting
        only when their windows overlap."""
        self._ensure_base()
        return {m: self._rwin[m] for m in maps}

    def draft(self, classification: Classification) -> tuple[dict, dict, dict]:
        """Raw (tasks, queues, buffers) draft for a candidate — the
        classifier's lower-bound precomputation reads queue orders,
        durations and dependencies from it."""
        builder = ScheduleBuilder(
            self.graph, classification, self._durations, self.options,
            validate=False,
        )
        return builder.build_raw()

    # -- incremental replay -------------------------------------------------------
    #
    # Candidates in the classifier's searches differ from one another only
    # in which maps they keep (step 1) or additionally recompute (step 2),
    # so both the *draft* and the *replay* of a candidate are mostly shared
    # work:
    #
    # * drafts are produced by patching the all-swap base draft
    #   (:func:`apply_keep_delta`, then :func:`apply_recompute_delta`) in
    #   O(affected region) instead of rebuilding the whole schedule;
    # * replays resume from a checkpoint of a recent reference run.  Where
    #   the two schedules first diverge on the compute stream is *derived*,
    #   not discovered: each map's flip perturbs the base queue at
    #   precomputed positions (``_ensure_base``), so the front of any
    #   candidate/reference pair is the minimum of those positions over the
    #   flips distinguishing them — O(|difference|) per reference.  The
    #   transfer queues, which recompute chains reorder, are compared by
    #   exact longest common prefix instead.
    #
    # Budget accounting is untouched — a resumed replay is still one
    # simulation — so plans are bit-identical with incremental on or off.

    def _ensure_base(self) -> None:
        """Build the all-swap base draft once, plus the per-map divergence
        positions ``_div[m] = (compute, d2h, h2d)``: the earliest queue
        position on each stream at which a schedule that keeps ``m``
        becomes distinguishable from one that swaps it (task removed,
        dependency rewired, or a buffer's free time moved)."""
        if self._base is not None:
            return
        base = ScheduleBuilder(
            self.graph, Classification.all_swap(self.graph),
            self._durations, self.options, validate=False,
        ).build_raw()
        tasks, queues, buffers = base
        pos_c, pos_d, pos_h = (
            {tid: i for i, tid in enumerate(queues.get(s, _EMPTY))}
            for s in _STREAM_ORDER
        )
        div: dict[int, tuple[int, int, int]] = {}
        for m in self.graph.classifiable_maps():
            so, si = f"SO{m}", f"SI{m}"
            d_pos = pos_d[so]
            if si in tasks:
                # keeping m rewires the backward readers of fm{m}@b onto
                # the forward instance: first such reader is the compute
                # divergence
                c_pos = min(pos_c[r] for r in buffers[f"fm{m}@b"].readers)
                h_pos = pos_h[si]
            else:  # no backward consumer: the flip only moves the *free*
                # of fm{m}@f, observable after its last forward accessor
                c_pos = self._max_fwd(pos_c, m)
                h_pos = _NO_DIVERGENCE
            div[m] = (c_pos, d_pos, h_pos)
        # -- recompute divergence fronts -------------------------------------
        # Recomputing m perturbs the timeline much earlier than keeping it:
        # fm{m}@f loses its swap-out reader and dies right after its last
        # forward accessor, so the device-memory state diverges mid-forward.
        # The chain R{m} splices also re-touch producer buffers — transitively
        # through every recomputable producer the chain may re-run — moving
        # their frees and swap-ins.  ``rdiv_c[m]`` is the conservative
        # earliest compute position over all of that; ``rev[j]`` lists the
        # recomputable maps whose chain *may* contain j, so a flip of j
        # invalidates the shared region of any schedule pair that recomputes
        # one of them on both sides (the chain shape depends on j's class).
        def last_read(j: int) -> int:
            buf = buffers.get(f"fm{j}@b")
            if buf is None:
                return self._max_fwd(pos_c, j)
            return max((pos_c[r] for r in buf.readers if r in pos_c),
                       default=0)

        rdiv_c: dict[int, int] = {}
        rev: dict[int, list[int]] = {}
        rwin: dict[int, tuple[int, int]] = {}
        for m in div:
            if not self.graph[m].op.recomputable:
                continue
            front = min(self._max_fwd(pos_c, m), div[m][0])
            end = last_read(m)
            seen = {m}
            stack = list(self.graph[m].preds)
            while stack:
                j = stack.pop()
                if j in seen:
                    continue
                seen.add(j)
                if j in div:  # classifiable producer: chain stops here, but
                    # its buffer gains a reader (its free moves later)
                    front = min(front, div[j][0])
                    end = max(end, last_read(j))
                    rev.setdefault(j, []).append(m)
                    if self.graph[j].op.recomputable:
                        # ...unless j is itself classified RECOMPUTE, in
                        # which case the chain recurses through it
                        stack.extend(self.graph[j].preds)
                elif self.graph[j].op.recomputable:
                    # unclassified regenerable producer: always re-run by
                    # the chain, contributes only through its own inputs
                    stack.extend(self.graph[j].preds)
                else:  # unclassified, not regenerable: the chain extends
                    # the lifetime of a forward buffer the base frees
                    # mid-forward
                    front = min(front, self._max_fwd(pos_c, j))
            rdiv_c[m] = front
            rwin[m] = (front, end)
        self._base = base
        self._div = div
        self._rdiv_c = rdiv_c
        self._rev = rev
        self._rwin = rwin

    def _max_fwd(self, pos_c: dict[str, int], m: int) -> int:
        """Compute position of the last forward accessor of ``fm{m}`` — the
        point at which the base frees the buffer when nothing later reads
        it."""
        ids = [f"F{m}"] + [f"F{k}" for k in self.graph.consumers[m]]
        return max((pos_c[t] for t in ids if t in pos_c), default=0)

    def _sim_draft(self, classification: Classification):
        """(tasks, queues, buffers, keeps, recs) draft for one simulation.

        Pure keep/swap candidates (the entire step-1 tree) go through the
        keep-delta path; keep/swap/recompute candidates (step 2's r(X)
        probes) additionally run :func:`apply_recompute_delta` when
        ``incremental_step2`` is on and the swap-in policy is EAGER (the
        only policy whose swap-in issue logic is position-free, which the
        recompute-aware resume fronts rely on — it is also the only
        checkpointable one in practice).  Everything else — forward
        re-fetch, incremental off, non-EAGER recompute — falls back to a
        full build with ``keeps``/``recs`` None, which also opts the
        replay out of checkpoint/resume."""
        if self.incremental and self.forward_refetch_gap is None:
            keeps: list[int] = []
            recs: list[int] = []
            pure = True
            for m, cls in classification.classes.items():
                if cls is MapClass.KEEP:
                    keeps.append(m)
                elif cls is MapClass.RECOMPUTE:
                    recs.append(m)
                elif cls is not MapClass.SWAP:
                    pure = False
                    break
            if pure and recs and not (
                self.incremental_step2
                and self.policy is SwapInPolicy.EAGER
            ):
                pure = False
            if pure:
                self._ensure_base()
                tasks, queues, buffers = apply_keep_delta(
                    self._base[0], self._base[1], self._base[2], keeps
                )
                if recs:
                    tasks, queues, buffers = apply_recompute_delta(
                        tasks, queues, buffers,
                        self.graph, self._durations, self.options,
                        keeps, recs,
                    )
                return (tasks, queues, buffers,
                        frozenset(keeps), frozenset(recs))
        tasks, queues, buffers = self.draft(classification)
        return tasks, queues, buffers, None, None

    @staticmethod
    def _lcp(a: list[str], b: list[str]) -> int:
        """Longest-common-prefix front of two task-id queues: the first
        position whose task differs (a missing tail counts as differing),
        or the no-divergence sentinel when the queues are identical."""
        n = min(len(a), len(b))
        i = 0
        while i < n and a[i] == b[i]:
            i += 1
        if i == len(a) == len(b):
            return _NO_DIVERGENCE
        return i

    def _divergence(self, ref: _Reference, keeps: frozenset,
                    recs: frozenset, cand_queues):
        """First-divergence position per stream between a candidate and
        ``ref``, in the *reference's* queue coordinates.

        The compute front is derived from the precomputed per-map
        positions: keep flips perturb at their first backward reader,
        recompute flips at their (much earlier) ``_rdiv_c`` front, and a
        recompute *shared* by both schedules still perturbs when some
        flipped map sits inside its chain closure (the chain resolves that
        map differently on each side).  Base positions translate into the
        reference's coordinates by counting its recompute-task insertions.
        The transfer-queue fronts are exact longest common prefixes —
        recompute chains reorder swap-ins, so positional translation no
        longer applies there."""
        div = self._div
        rdiv = self._rdiv_c
        f = _NO_DIVERGENCE
        keep_flips = keeps ^ ref.keeps
        rec_flips = recs ^ ref.recs
        for m in keep_flips:
            c = div[m][0]
            if c < f:
                f = c
        for m in rec_flips:
            c = rdiv[m]
            if c < f:
                f = c
        shared = recs & ref.recs
        if shared:
            rev = self._rev
            for j in keep_flips | rec_flips:
                for x in rev.get(j, _EMPTY):
                    if x in shared and rdiv[x] < f:
                        f = rdiv[x]
        if f < _NO_DIVERGENCE:
            f += bisect_left(ref.ins_c, f)
        pd = self._lcp(ref.queues[1], cand_queues[1])
        ph = self._lcp(ref.queues[2], cand_queues[2])
        return f, pd, ph

    @staticmethod
    def _checkpoint_valid(cp: EngineCheckpoint, front, tasks,
                          cand_queues) -> bool:
        """Whether ``cp`` is a state the candidate's own run would also have
        reached: every cursor inside the shared prefix, and a cursor parked
        exactly at the divergence only if the candidate's task there was
        genuinely blocked at the checkpoint (else the candidate would have
        issued it earlier)."""
        for s, c in enumerate(cp.cursors):
            if c < front[s]:
                continue
            if c > front[s]:
                return False
            q = cand_queues[s]
            if c >= len(q):
                continue  # candidate stream exhausted at the divergence
            head = tasks[q[c]]
            if head.deps <= cp.completed_set() and (
                not head.start_deps or head.start_deps <= cp.started_set()
            ):
                return False  # head could have issued before the checkpoint
        return True

    def _best_resume(self, keeps: frozenset, recs: frozenset, hr: int,
                     tasks, cand_queues):
        """Deepest valid checkpoint across recent references, plus every
        shallower valid checkpoint of the same reference (those are genuine
        states of *this* candidate's run, so the new reference inherits
        them).  References whose swap-in headroom differs share no prefix
        at all (every swap-in's issue decision changes) and are skipped."""
        best: list[EngineCheckpoint] = []
        for ref in self._refs:
            if not ref.checkpoints or ref.hr != hr:
                continue
            front = self._divergence(ref, keeps, recs, cand_queues)
            valid = [cp for cp in ref.checkpoints
                     if self._checkpoint_valid(cp, front, tasks, cand_queues)]
            if valid and (not best
                          or valid[-1].progress > best[-1].progress):
                best = valid
        return best

    def _record_ref(self, keeps: frozenset, recs: frozenset, hr: int,
                    queues: list[list[str]],
                    checkpoints: list[EngineCheckpoint]) -> None:
        if not checkpoints:
            return
        # base-coordinate insertion points of the candidate's recompute
        # tasks: a single pointer walk, since the delta only ever *inserts*
        # into the base compute order, never removes or reorders
        ins_c: list[int] = []
        if recs:
            base_c = self._base[1].get(_STREAM_ORDER[0], _EMPTY)
            i = 0
            for tid in queues[0]:
                if i < len(base_c) and tid == base_c[i]:
                    i += 1
                else:
                    ins_c.append(i)
        self._refs.appendleft(
            _Reference(keeps, recs, hr, ins_c, queues, checkpoints)
        )

    def _simulate(self, classification: Classification) -> PredictedOutcome:
        """One uncached simulation through the fast draft-replay path,
        resuming from a shared-prefix checkpoint when one is valid."""
        tasks, queues, buffers, keeps, recs = self._sim_draft(classification)
        engine = FastEngine(
            tasks, queues, buffers,
            device_capacity=self.machine.usable_gpu_memory - self.capacity_margin,
            host_capacity=self.machine.host_swap_capacity,
        )
        resume: EngineCheckpoint | None = None
        inherited: list[EngineCheckpoint] = []
        checkpoint_every = 0
        cand_queues: list[list[str]] = []
        hr = 0
        if keeps is not None and engine.checkpointable:
            # fine grid: capture is O(in-flight), so dense marks are cheap
            # and let siblings resume right at their divergence front
            checkpoint_every = max(8, len(tasks) // 24)
            cand_queues = [queues.get(s, _EMPTY) for s in _STREAM_ORDER]
            # the auto-headroom every swap-in carries (recompute scratch can
            # raise it above the base's) — part of the resume-compatibility
            # key, see _Reference.hr
            hr = max((t.headroom for t in tasks.values() if t.headroom),
                     default=0)
            inherited = self._best_resume(keeps, recs, hr, tasks, cand_queues)
            if inherited:
                resume = inherited[-1]
        if resume is not None:
            self.resumed_simulations += 1
        else:
            self.full_simulations += 1
        try:
            makespan, device_peak, _host_peak = engine.run(
                checkpoint_every=checkpoint_every, resume_from=resume
            )
        except OutOfMemoryError as e:
            if checkpoint_every:
                self._record_ref(keeps, recs, hr, cand_queues,
                                 inherited + engine.checkpoints)
            return PredictedOutcome(
                feasible=False, time=float("inf"), peak_memory=0,
                oom_context=e.context,
            )
        if checkpoint_every:
            self._record_ref(keeps, recs, hr, cand_queues,
                             inherited + engine.checkpoints)
        return PredictedOutcome(
            feasible=True, time=makespan, peak_memory=device_peak
        )
