"""PoocH — Profiling-based out-of-core Hybrid method (the paper's §4).

The pipeline mirrors the paper's three phases:

1. :func:`repro.runtime.run_profiling` — measure per-layer compute and swap
   times plus the malloc/free trace under the all-swap plan.
2. :class:`~repro.pooch.classifier.PoochClassifier` — choose keep / swap /
   recompute per feature map, scoring every candidate with the
   :class:`~repro.pooch.predictor.TimelinePredictor` (a replay of the task
   schedule from profiled durations).
3. Execution — run the remaining iterations under the chosen plan with the
   eager ("when there is room") swap-in schedule of §4.3.

:class:`PoocH` wraps all three; see ``examples/quickstart.py``.
"""

from repro.pooch.classifier import PoochClassifier, PoochConfig, SearchStats
from repro.pooch.dynamic import DynamicPoocH, DynamicStats
from repro.pooch.multidevice import (
    MultiDevicePlan,
    plan_staggered,
    stagger_candidates,
)
from repro.pooch.overlap import OverlapAnalysis, analyze_overlap
from repro.pooch.pipeline import PoocH, PoochResult
from repro.pooch.predictor import PredictedOutcome, TimelinePredictor

__all__ = [
    "PoocH",
    "PoochResult",
    "PoochConfig",
    "PoochClassifier",
    "SearchStats",
    "MultiDevicePlan",
    "plan_staggered",
    "stagger_candidates",
    "TimelinePredictor",
    "PredictedOutcome",
    "OverlapAnalysis",
    "analyze_overlap",
    "DynamicPoocH",
    "DynamicStats",
]
