"""KARMA-style multi-device planning: stagger the replicas' swap windows.

KARMA's observation (arXiv 2008.11421) is that out-of-core data-parallel
replicas lose their overlap not to *aggregate* link bandwidth but to
*synchronized* demand: N identical plans request the same swap window at
the same instant, so everyone queues behind device 0 and the carefully
hidden transfers become exposed.  Deliberately offsetting each replica's
start *interleaves* the windows — the link serves the same total traffic,
but each device's transfers land in the gaps of its neighbours'.

The planner here keeps PoocH's per-device classification untouched (every
replica runs the same plan over its batch shard) and searches the one
remaining knob: the per-device start offset.  Candidates are derived from
the plan's own transfer-window statistics (mean/max window length and the
link-busy quantum) and scored by the deterministic multi-device simulation
(:func:`repro.gpusim.simulate_multi_device`); all-zeros — the naive
contention plan — is always a candidate, so the chosen plan can only tie
or beat it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.engine import RunResult, StreamName
from repro.gpusim.multidevice import MultiDeviceResult, simulate_multi_device
from repro.obs import get_logger, metrics

log = get_logger(__name__)

#: makespan improvements below this are noise; prefer the smaller stagger
_TIE_EPSILON = 1e-12


@dataclass
class MultiDevicePlan:
    """Chosen stagger plus the naive baseline it was scored against."""

    devices: int
    stagger: tuple[float, ...]
    #: all replicas start together — the synchronized contention scenario
    naive: MultiDeviceResult
    #: the chosen (possibly zero) stagger's simulation
    chosen: MultiDeviceResult
    candidates_evaluated: int = 0

    @property
    def makespan(self) -> float:
        return self.chosen.makespan

    @property
    def contention_avoided(self) -> float:
        """Seconds of link queueing the stagger removed (across devices)."""
        return (self.naive.contention_delay_total
                - self.chosen.contention_delay_total)

    def summary(self) -> str:
        naive, chosen = self.naive.makespan, self.chosen.makespan
        gain = (naive / chosen - 1.0) if chosen > 0 else 0.0
        lines = [
            f"multi-device plan for {self.devices} devices:",
            f"  naive (synchronized) iteration: {naive * 1e3:.2f} ms, "
            f"contention {self.naive.contention_delay_total * 1e3:.2f} ms",
            f"  staggered iteration: {chosen * 1e3:.2f} ms "
            f"({gain:+.1%} vs naive), contention "
            f"{self.chosen.contention_delay_total * 1e3:.2f} ms",
            "  stagger offsets: "
            + " ".join(f"{s * 1e3:.2f}ms" for s in self.stagger),
            f"  gradient exchange: {self.chosen.allreduce_time * 1e3:.2f} ms "
            f"(overlapped)",
        ]
        return "\n".join(lines)


def stagger_candidates(base: RunResult, devices: int) -> list[float]:
    """Candidate per-device offset deltas, from transfer-window statistics.

    Device ``d`` starts at ``d * delta``; good deltas are comparable to one
    transfer window (each replica slips into the previous one's gap) — far
    smaller offsets leave the windows overlapping, far larger ones pay pure
    latency.  Deterministic and cheap: a handful of values around the mean
    and max window, plus the link-busy quantum ``busy / (windows * N)``.
    """
    windows = [r for r in base.records
               if r.stream in (StreamName.H2D, StreamName.D2H)
               and r.duration > 0]
    if not windows:
        return [0.0]
    durations = [r.duration for r in windows]
    mean = sum(durations) / len(durations)
    longest = max(durations)
    quantum = sum(durations) / (len(durations) * max(devices - 1, 1))
    raw = [
        0.5 * mean, mean, 2.0 * mean,
        longest, 2.0 * longest,
        quantum,
    ]
    # dedupe while keeping deterministic ascending order
    out: list[float] = []
    for v in sorted(raw):
        if v > 0 and (not out or v > out[-1] * (1 + 1e-9)):
            out.append(v)
    return out


def plan_staggered(
    base: RunResult,
    machine,
    *,
    grad_bytes: int = 0,
    deltas: list[float] | None = None,
) -> MultiDevicePlan:
    """Choose per-device start offsets for ``machine.devices`` replicas.

    Scores the naive all-zeros stagger and one candidate per delta
    (device ``d`` offset by ``d * delta``), all via the deterministic
    multi-device simulation, and keeps the earliest-finishing candidate
    (ties resolve toward the smaller total offset, naive first).
    """
    n = machine.devices
    naive = simulate_multi_device(base, machine, grad_bytes=grad_bytes)
    best = naive
    best_stagger = (0.0,) * n
    evaluated = 1
    if n > 1:
        if deltas is None:
            deltas = stagger_candidates(base, n)
        for delta in deltas:
            if delta <= 0:
                continue
            stagger = tuple(d * delta for d in range(n))
            candidate = simulate_multi_device(
                base, machine, stagger=stagger, grad_bytes=grad_bytes)
            evaluated += 1
            if candidate.makespan < best.makespan - _TIE_EPSILON:
                best = candidate
                best_stagger = stagger
    plan = MultiDevicePlan(
        devices=n,
        stagger=best_stagger,
        naive=naive,
        chosen=best,
        candidates_evaluated=evaluated,
    )
    log.info(
        "multi-device stagger for %d devices: naive %.3f ms -> chosen "
        "%.3f ms (%d candidates)", n, naive.makespan * 1e3,
        best.makespan * 1e3, evaluated,
    )
    metrics.gauge("devices.count", n)
    metrics.gauge("devices.makespan_naive_s", naive.makespan)
    metrics.gauge("devices.makespan_staggered_s", best.makespan)
    metrics.gauge("devices.contention_naive_s",
                  naive.contention_delay_total)
    metrics.gauge("devices.contention_staggered_s",
                  best.contention_delay_total)
    metrics.gauge("devices.allreduce_s", best.allreduce_time)
    metrics.count("devices.stagger_candidates", evaluated)
    metrics.record("devices.stagger_s", list(best_stagger))
    return plan
