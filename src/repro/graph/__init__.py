"""Neural-network graph intermediate representation.

A network is an :class:`~repro.graph.graph.NNGraph`: a DAG of
:class:`~repro.graph.graph.Layer` objects in topological order, each holding
an :class:`~repro.graph.ops.Op` (the computation) and the
:class:`~repro.graph.tensor_spec.TensorSpec` of the *feature map* it
produces.  "Feature map i" throughout the code base means "the output tensor
of layer i", matching the paper's unit of classification.
"""

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Layer, NNGraph
from repro.graph.ops import Op, OpKind
from repro.graph.splitting import auto_split, max_layer_working_set, split_batch
from repro.graph.tensor_spec import DTYPE_SIZES, TensorSpec

__all__ = [
    "TensorSpec",
    "DTYPE_SIZES",
    "Op",
    "OpKind",
    "Layer",
    "NNGraph",
    "GraphBuilder",
    "split_batch",
    "auto_split",
    "max_layer_working_set",
]
