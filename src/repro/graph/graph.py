"""The NN computation graph: layers, dependencies, liveness queries.

Layers are stored in topological order (construction through
:class:`~repro.graph.builder.GraphBuilder` guarantees this; :meth:`NNGraph.validate`
re-checks).  The *feature map* of layer ``i`` is the output tensor of layer
``i`` — the paper's unit of keep/swap/recompute classification.

The liveness queries defined here are the ground truth used by both the
runtime schedule builder and the PoocH classifier:

* ``last_forward_use(i)`` — index of the last layer whose *forward* reads map
  ``i`` (or ``i`` itself if nothing does).  Swap-out / recompute-free can only
  happen after it.
* ``backward_users(i)`` — indices of layers whose *backward* task reads map
  ``i`` (consumers that need their input, plus ``i`` itself if its op needs
  its own output).  A map with no backward users never needs to be preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.common.errors import GraphError
from repro.graph.ops import Op, OpKind
from repro.graph.tensor_spec import TensorSpec


@dataclass(frozen=True)
class Layer:
    """One node of the graph.

    Attributes:
        index: position in topological order (== feature-map id).
        name: unique human-readable name.
        op: the bound operator.
        preds: indices of the layers whose feature maps this layer's forward
            reads (empty only for INPUT layers).
        out_spec: spec of the produced feature map.
    """

    index: int
    name: str
    op: Op
    preds: tuple[int, ...]
    out_spec: TensorSpec

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.index}] {self.name} {self.op} -> {self.out_spec}"


class NNGraph:
    """A validated, topologically-ordered DAG of layers."""

    def __init__(self, layers: list[Layer], name: str = "net") -> None:
        self.name = name
        self.layers: list[Layer] = list(layers)
        self._by_name: dict[str, int] = {}
        self.validate()

    # -- construction / validation -----------------------------------------

    def validate(self) -> None:
        """Check topological order, name uniqueness, pred arity and specs."""
        self._by_name.clear()
        for i, layer in enumerate(self.layers):
            if layer.index != i:
                raise GraphError(
                    f"layer {layer.name}: index {layer.index} != position {i}"
                )
            if layer.name in self._by_name:
                raise GraphError(f"duplicate layer name {layer.name!r}")
            self._by_name[layer.name] = i
            for p in layer.preds:
                if not 0 <= p < i:
                    raise GraphError(
                        f"layer {layer.name}: pred {p} not earlier in topo order"
                    )
            if layer.op.kind is OpKind.INPUT and layer.preds:
                raise GraphError(f"INPUT layer {layer.name} must have no preds")
            if layer.op.kind is not OpKind.INPUT and not layer.preds:
                raise GraphError(f"layer {layer.name} has no inputs")
        if not self.layers:
            raise GraphError("graph has no layers")
        # invalidate caches after (re)validation (the structural signature
        # memoized by repro.runtime.plan_io.graph_signature included)
        for attr in ("consumers", "_backward_users", "_last_forward_use",
                     "_graph_signature"):
            self.__dict__.pop(attr, None)

    # -- basic accessors ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)

    def __getitem__(self, i: int) -> Layer:
        return self.layers[i]

    def by_name(self, name: str) -> Layer:
        """Look a layer up by its unique name."""
        try:
            return self.layers[self._by_name[name]]
        except KeyError:
            raise GraphError(f"no layer named {name!r}") from None

    @cached_property
    def consumers(self) -> list[list[int]]:
        """``consumers[i]`` — layers whose forward reads feature map ``i``,
        ascending."""
        cons: list[list[int]] = [[] for _ in self.layers]
        for layer in self.layers:
            for p in layer.preds:
                cons[p].append(layer.index)
        return cons

    # -- liveness -----------------------------------------------------------

    @cached_property
    def _last_forward_use(self) -> list[int]:
        return [
            max(cons) if cons else i
            for i, cons in enumerate(self.consumers)
        ]

    def last_forward_use(self, i: int) -> int:
        """Index of the last layer whose forward reads map ``i`` (``i`` if
        none).  Map ``i`` may not leave the GPU before this layer's forward
        completes."""
        return self._last_forward_use[i]

    @cached_property
    def _backward_users(self) -> list[tuple[int, ...]]:
        users: list[set[int]] = [set() for _ in self.layers]
        for layer in self.layers:
            if layer.op.bwd_needs_input:
                for p in layer.preds:
                    users[p].add(layer.index)
            if layer.op.bwd_needs_output and layer.op.has_backward:
                users[layer.index].add(layer.index)
        return [tuple(sorted(u)) for u in users]

    def backward_users(self, i: int) -> tuple[int, ...]:
        """Layers whose *backward* task reads feature map ``i``, ascending.

        Backward runs in descending layer order, so the first backward use of
        map ``i`` is ``max(backward_users(i))`` and the last is ``min(...)``.
        """
        return self._backward_users[i]

    def classifiable_maps(self) -> list[int]:
        """Feature maps the out-of-core problem is about: maps some backward
        task will read.  Maps outside this list are freed right after their
        last forward use regardless of classification."""
        return [i for i in range(len(self.layers)) if self._backward_users[i]]

    # -- aggregate statistics ------------------------------------------------

    @property
    def total_param_bytes(self) -> int:
        """Persistent parameter storage (weights + biases + BN affine)."""
        return sum(l.op.param_bytes for l in self.layers)

    @property
    def total_feature_bytes(self) -> int:
        """Sum of all feature-map sizes (the quantity Figs. 3/4 plot the bulk
        of)."""
        return sum(l.out_spec.nbytes for l in self.layers)

    @property
    def total_fwd_flops(self) -> float:
        return sum(l.op.fwd_flops for l in self.layers)

    @property
    def total_bwd_flops(self) -> float:
        return sum(l.op.bwd_flops for l in self.layers)

    def training_memory_bytes(self, optimizer_state_factor: float = 1.0) -> int:
        """Estimate of total training memory: all live feature maps + params
        + parameter gradients (+ optimizer state as a factor of params).

        This is the in-core requirement the paper's Figs. 3 and 4 report —
        every feature map with a backward user must be resident simultaneously
        in the worst case (just before backward begins), alongside parameters
        and their gradients.
        """
        feature = sum(
            self.layers[i].out_spec.nbytes for i in self.classifiable_maps()
        )
        params = self.total_param_bytes
        grads = params
        opt = int(params * optimizer_state_factor)
        workspace = max((l.op.workspace_bytes for l in self.layers), default=0)
        return feature + params + grads + opt + workspace

    def summary(self) -> str:
        """Multi-line human-readable description."""
        from repro.common.units import format_bytes

        kinds: dict[str, int] = {}
        for l in self.layers:
            kinds[l.op.kind.value] = kinds.get(l.op.kind.value, 0) + 1
        lines = [
            f"NNGraph {self.name!r}: {len(self.layers)} layers, "
            f"{len(self.classifiable_maps())} classifiable feature maps",
            f"  params: {format_bytes(self.total_param_bytes)}  "
            f"features: {format_bytes(self.total_feature_bytes)}  "
            f"fwd flops: {self.total_fwd_flops:.3g}",
            "  layer kinds: "
            + ", ".join(f"{k}={v}" for k, v in sorted(kinds.items())),
        ]
        return "\n".join(lines)
