"""ooc_cuDNN-style layer splitting: run one layer as batch tiles.

The paper's §6 points at Ito's ooc_cuDNN as the complementary system for
networks where *a single layer's* working set (input + output + workspace +
backward transient) exceeds GPU memory, and names "integrating PoocH and
ooc_cuDNN" as the way to support wider ranges of networks.  This module
implements that integration at the graph level:

:func:`split_batch` rewrites one layer into ``parts`` independent sub-layers
over batch tiles::

    x ──► op ──► y        becomes        x ─► slice₀ ─► op₀ ─┐
                                         x ─► slice₁ ─► op₁ ─┴► concat ─► y

Each tile's feature maps are separate, individually *classifiable* maps —
PoocH can then swap/recompute/keep tiles independently, so the per-tile
working set replaces the whole-layer working set in every memory bound.
Weights are shared between the sub-layers (``param_share_with``), so the
numeric backend still produces gradients equivalent to the unsplit layer
(bitwise up to float summation order across tiles).

Batch splitting is exact for batch-independent ops (conv, linear, relu,
pooling, LRN, layernorm, softmax, slice).  It is *rejected* for batch-norm
(statistics are batch-wide — splitting would change semantics), multi-input
ops, dropout, and loss heads.
"""

from __future__ import annotations

from repro.common.errors import GraphError
from repro.graph import ops
from repro.graph.graph import Layer, NNGraph
from repro.graph.ops import Op, OpKind
from repro.graph.tensor_spec import TensorSpec

#: single-input, batch-independent kinds eligible for splitting
_SPLITTABLE = frozenset({
    OpKind.CONV, OpKind.LINEAR, OpKind.RELU, OpKind.POOL_MAX,
    OpKind.POOL_AVG, OpKind.GLOBAL_AVG_POOL, OpKind.LRN, OpKind.SOFTMAX,
    OpKind.LAYERNORM,
})


def rebind_op(op: Op, in_spec: TensorSpec) -> tuple[Op, TensorSpec]:
    """Re-instantiate ``op`` for a new (single) input spec, reusing its
    hyper-parameters; used to build the per-tile clones."""
    a = op.attrs
    act = op.fused_activation
    if op.kind is OpKind.CONV:
        return ops.conv(in_spec, a["out_channels"], a["ksize"], a["stride"],
                        a["pad"], a["groups"], a["bias"], act)
    if op.kind is OpKind.LINEAR:
        if a.get("token_wise"):
            return ops.token_linear(in_spec, a["out_features"], a["bias"], act)
        return ops.linear(in_spec, a["out_features"], a["bias"], act)
    if op.kind is OpKind.RELU:
        return ops.relu(in_spec)
    if op.kind in (OpKind.POOL_MAX, OpKind.POOL_AVG):
        return ops.pool(in_spec, a["ksize"], a["stride"], a["pad"], a["mode"])
    if op.kind is OpKind.GLOBAL_AVG_POOL:
        return ops.global_avg_pool(in_spec)
    if op.kind is OpKind.LRN:
        return ops.lrn(in_spec, a["size"])
    if op.kind is OpKind.SOFTMAX:
        return ops.softmax(in_spec)
    if op.kind is OpKind.LAYERNORM:
        return ops.layernorm(in_spec, act)
    raise GraphError(f"cannot rebind op kind {op.kind}")


def split_batch(graph: NNGraph, layer_name: str, parts: int) -> NNGraph:
    """Return a new graph with ``layer_name`` executed as ``parts`` batch
    tiles.

    The split layer's output map is replaced by the concat output of the
    tiles; downstream layers are untouched (the concat restores the original
    shape).  Multiple layers can be split by applying this repeatedly.
    """
    target = graph.by_name(layer_name)
    if parts < 2:
        raise GraphError("parts must be >= 2")
    if target.op.kind not in _SPLITTABLE:
        raise GraphError(
            f"layer {layer_name!r} ({target.op.kind.value}) cannot be batch-"
            "split (multi-input, batch-coupled like batch-norm, or stateful)"
        )
    if len(target.preds) != 1:
        raise GraphError(f"layer {layer_name!r} must have exactly one input")
    batch = graph[target.preds[0]].out_spec.batch
    if batch % parts:
        raise GraphError(f"batch {batch} not divisible into {parts} tiles")
    tile = batch // parts

    new_layers: list[Layer] = []
    #: old layer index -> new index of the layer producing its feature map
    remap: dict[int, int] = {}

    def add(name: str, op: Op, preds: tuple[int, ...],
            out_spec: TensorSpec) -> int:
        idx = len(new_layers)
        new_layers.append(Layer(idx, name, op, preds, out_spec))
        return idx

    for layer in graph:
        preds = tuple(remap[p] for p in layer.preds)
        if layer.index != target.index:
            remap[layer.index] = add(layer.name, layer.op, preds,
                                     layer.out_spec)
            continue
        # expand the target into slices -> tile ops -> concat
        src = preds[0]
        src_spec = new_layers[src].out_spec
        tile_outputs: list[int] = []
        share_with: int | None = None
        for t in range(parts):
            s_op, s_spec = ops.slice_op(src_spec, t * tile, tile, axis=0)
            s_idx = add(f"{layer.name}#slice{t}", s_op, (src,), s_spec)
            t_op, t_spec = rebind_op(layer.op, s_spec)
            if share_with is None:
                # tile 0 carries the (shared) parameters
                t_op.attrs["split_master"] = True
            else:
                t_op.param_bytes = 0
                t_op.attrs["param_share_with"] = share_with
            t_idx = add(f"{layer.name}#tile{t}", t_op, (s_idx,), t_spec)
            if share_with is None:
                share_with = t_idx
            tile_outputs.append(t_idx)
        c_op, c_spec = ops.concat(
            [new_layers[i].out_spec for i in tile_outputs], axis=0
        )
        if c_spec.shape != layer.out_spec.shape:
            raise GraphError(
                f"split of {layer_name!r} changed the output shape "
                f"({c_spec.shape} vs {layer.out_spec.shape}) — op not "
                "batch-separable"
            )
        remap[layer.index] = add(f"{layer.name}#join", c_op,
                                 tuple(tile_outputs), c_spec)

    return NNGraph(new_layers, f"{graph.name}+split[{layer_name}x{parts}]")


def max_layer_working_set(graph: NNGraph) -> tuple[int, str]:
    """(bytes, layer name) of the largest single-layer transient — the
    quantity that decides whether splitting is needed at all (forward:
    inputs + output + workspace; backward adds gradients and the restored
    feature maps)."""
    worst, worst_name = 0, ""
    for layer in graph:
        out = layer.out_spec.nbytes
        ins = sum(graph[j].out_spec.nbytes for j in layer.preds)
        ws = layer.op.workspace_bytes
        fwd = out + ins + ws
        bwd = out + ins + ws  # grad(out) + grads(ins) + workspace
        if layer.op.bwd_needs_input:
            bwd += ins
        if layer.op.bwd_needs_output:
            bwd += out
        need = max(fwd, bwd)
        if need > worst:
            worst, worst_name = need, layer.name
    return worst, worst_name


def auto_split(
    graph: NNGraph,
    capacity: int,
    *,
    max_parts: int = 16,
    safety: float = 0.9,
) -> NNGraph:
    """Split every layer whose single-layer transient exceeds
    ``safety * capacity`` into just enough batch tiles to fit.

    The transient bound used is the same as :func:`max_layer_working_set`
    (forward inputs+output+workspace; backward adds gradients and restored
    maps).  Layers that exceed the budget but cannot be batch-split
    (batch-norm, joins, batch of 1, non-divisible parts) are left alone and
    reported in the raised error only if *nothing* could be done.

    Returns a (possibly unchanged) graph.  Raises
    :class:`~repro.common.errors.GraphError` when a layer exceeds the budget
    and no legal split brings it under.
    """
    budget = int(capacity * safety)
    g = graph
    # iterate to fixpoint: splitting renames layers and shifts indices
    progress = True
    while progress:
        progress = False
        for layer in list(g):
            out = layer.out_spec.nbytes
            ins = sum(g[j].out_spec.nbytes for j in layer.preds)
            ws = layer.op.workspace_bytes
            need = out + ins + ws
            if layer.op.bwd_needs_input:
                need += ins
            if layer.op.bwd_needs_output:
                need += out
            need += out + ins  # gradients
            if need <= budget:
                continue
            if layer.op.kind not in _SPLITTABLE or len(layer.preds) != 1:
                continue
            batch = g[layer.preds[0]].out_spec.batch
            parts = 2
            while parts <= max_parts:
                if batch % parts == 0 and need / parts <= budget:
                    break
                parts += 1
            if parts > max_parts or batch % parts:
                continue
            g = split_batch(g, layer.name, parts)
            progress = True
            break  # indices changed; rescan
    worst, name = max_layer_working_set(g)
    if worst > capacity:
        raise GraphError(
            f"auto_split could not fit layer {name!r} "
            f"({worst} bytes transient > {capacity} capacity); it is either "
            "not batch-splittable or needs more than max_parts tiles"
        )
    return g
