"""Fluent construction of :class:`~repro.graph.graph.NNGraph` instances.

The builder hands out integer *handles* (layer indices) so model definitions
read naturally::

    b = GraphBuilder("toy")
    x = b.input((batch, 3, 224, 224))
    h = b.conv(x, 64, ksize=7, stride=2, pad=3, activation="relu")
    h = b.pool(h, ksize=3, stride=2, pad=1)
    h = b.linear(h, 1000)
    b.loss(h)
    graph = b.build()

Every method returns the handle of the layer it created.  Names are
auto-generated (``conv0``, ``bn3``, ...) unless given explicitly.
"""

from __future__ import annotations

from repro.common.errors import GraphError
from repro.graph import ops
from repro.graph.graph import Layer, NNGraph
from repro.graph.tensor_spec import TensorSpec


class GraphBuilder:
    """Incremental graph constructor; see module docstring for usage."""

    def __init__(self, name: str = "net", fuse_activations: bool = True) -> None:
        self.name = name
        #: when False, ``activation=`` arguments materialise standalone ReLU
        #: layers instead of fusing into the producing op (Chainer-faithful
        #: map counts; default True matches the paper's Table 3 scale).
        self.fuse_activations = fuse_activations
        self._layers: list[Layer] = []
        self._names: set[str] = set()
        self._counters: dict[str, int] = {}

    # -- internals -----------------------------------------------------------

    def _auto_name(self, prefix: str) -> str:
        n = self._counters.get(prefix, 0)
        self._counters[prefix] = n + 1
        return f"{prefix}{n}"

    def _add(self, name: str | None, prefix: str, op: ops.Op,
             preds: tuple[int, ...], out_spec: TensorSpec) -> int:
        if name is None:
            name = self._auto_name(prefix)
        if name in self._names:
            raise GraphError(f"duplicate layer name {name!r}")
        self._names.add(name)
        idx = len(self._layers)
        self._layers.append(Layer(idx, name, op, preds, out_spec))
        return idx

    def spec(self, handle: int) -> TensorSpec:
        """Output spec of an already-added layer."""
        return self._layers[handle].out_spec

    def _maybe_relu(self, handle: int, activation: str | None) -> int:
        """When fusing is disabled, append a standalone activation layer."""
        if activation is None or self.fuse_activations:
            return handle
        return self.relu(handle)

    # -- layer constructors ---------------------------------------------------

    def input(self, shape: tuple[int, ...], dtype: str = "float32",
              name: str | None = None) -> int:
        op, spec = ops.input_op(TensorSpec(shape, dtype))
        return self._add(name, "input", op, (), spec)

    def conv(self, x: int, out_channels: int, ksize, stride=1, pad=0,
             groups: int = 1, bias: bool = True,
             activation: str | None = None, name: str | None = None) -> int:
        fused = activation if self.fuse_activations else None
        op, spec = ops.conv(self.spec(x), out_channels, ksize, stride, pad,
                            groups, bias, fused)
        h = self._add(name, "conv", op, (x,), spec)
        return self._maybe_relu(h, activation)

    def linear(self, x: int, out_features: int, bias: bool = True,
               activation: str | None = None, name: str | None = None) -> int:
        fused = activation if self.fuse_activations else None
        op, spec = ops.linear(self.spec(x), out_features, bias, fused)
        h = self._add(name, "fc", op, (x,), spec)
        return self._maybe_relu(h, activation)

    def batchnorm(self, x: int, activation: str | None = None,
                  name: str | None = None) -> int:
        fused = activation if self.fuse_activations else None
        op, spec = ops.batchnorm(self.spec(x), fused)
        h = self._add(name, "bn", op, (x,), spec)
        return self._maybe_relu(h, activation)

    def relu(self, x: int, name: str | None = None) -> int:
        op, spec = ops.relu(self.spec(x))
        return self._add(name, "relu", op, (x,), spec)

    def pool(self, x: int, ksize, stride=None, pad=0, mode: str = "max",
             name: str | None = None) -> int:
        op, spec = ops.pool(self.spec(x), ksize, stride, pad, mode)
        return self._add(name, "pool", op, (x,), spec)

    def global_avg_pool(self, x: int, name: str | None = None) -> int:
        op, spec = ops.global_avg_pool(self.spec(x))
        return self._add(name, "gap", op, (x,), spec)

    def add(self, xs: list[int], activation: str | None = None,
            name: str | None = None) -> int:
        fused = activation if self.fuse_activations else None
        op, spec = ops.add([self.spec(x) for x in xs], fused)
        h = self._add(name, "add", op, tuple(xs), spec)
        return self._maybe_relu(h, activation)

    def concat(self, xs: list[int], axis: int = 1,
               name: str | None = None) -> int:
        op, spec = ops.concat([self.spec(x) for x in xs], axis)
        return self._add(name, "concat", op, tuple(xs), spec)

    def dropout(self, x: int, p: float = 0.5, name: str | None = None) -> int:
        op, spec = ops.dropout(self.spec(x), p)
        return self._add(name, "dropout", op, (x,), spec)

    def lrn(self, x: int, size: int = 5, name: str | None = None) -> int:
        op, spec = ops.lrn(self.spec(x), size)
        return self._add(name, "lrn", op, (x,), spec)

    def upsample(self, x: int, scale: int = 2, name: str | None = None) -> int:
        op, spec = ops.upsample(self.spec(x), scale)
        return self._add(name, "up", op, (x,), spec)

    def loss(self, x: int, name: str | None = None) -> int:
        op, spec = ops.softmax_cross_entropy(self.spec(x))
        return self._add(name, "loss", op, (x,), spec)

    # -- sequence-model layers (Transformer support) ----------------------------

    def token_linear(self, x: int, out_features: int, bias: bool = True,
                     activation: str | None = None,
                     name: str | None = None) -> int:
        fused = activation if self.fuse_activations else None
        op, spec = ops.token_linear(self.spec(x), out_features, bias, fused)
        h = self._add(name, "tfc", op, (x,), spec)
        return self._maybe_relu(h, activation)

    def attention_scores(self, q: int, k: int, heads: int = 1,
                         name: str | None = None) -> int:
        op, spec = ops.attention_scores(self.spec(q), self.spec(k), heads)
        return self._add(name, "attn_qk", op, (q, k), spec)

    def attention_apply(self, scores: int, v: int,
                        name: str | None = None) -> int:
        op, spec = ops.attention_apply(self.spec(scores), self.spec(v))
        return self._add(name, "attn_av", op, (scores, v), spec)

    def softmax(self, x: int, name: str | None = None) -> int:
        op, spec = ops.softmax(self.spec(x))
        return self._add(name, "softmax", op, (x,), spec)

    def layernorm(self, x: int, activation: str | None = None,
                  name: str | None = None) -> int:
        fused = activation if self.fuse_activations else None
        op, spec = ops.layernorm(self.spec(x), fused)
        h = self._add(name, "ln", op, (x,), spec)
        return self._maybe_relu(h, activation)

    # -- finalisation ----------------------------------------------------------

    def build(self) -> NNGraph:
        """Validate and return the finished graph."""
        return NNGraph(self._layers, self.name)
