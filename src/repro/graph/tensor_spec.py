"""Shape/dtype descriptors for feature maps and parameters.

The simulator never materialises large tensors; a :class:`TensorSpec` carries
just enough information (shape, dtype) to derive byte sizes and FLOP counts.
The numeric validation backend (:mod:`repro.runtime.numeric`) materialises
real numpy arrays from the same specs for small graphs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import GraphError

#: bytes per element for each supported dtype
DTYPE_SIZES: dict[str, int] = {
    "float64": 8,
    "float32": 4,
    "float16": 2,
    "int64": 8,
    "int32": 4,
    "int8": 1,
}


@dataclass(frozen=True)
class TensorSpec:
    """An immutable tensor descriptor.

    Attributes:
        shape: tensor dimensions; by convention activations are
            ``(N, C, *spatial)`` with batch first.
        dtype: numpy-style dtype name; must be a key of :data:`DTYPE_SIZES`.
    """

    shape: tuple[int, ...]
    dtype: str = "float32"

    def __post_init__(self) -> None:
        if not self.shape:
            raise GraphError("TensorSpec shape must be non-empty")
        if any((not isinstance(d, int)) or d <= 0 for d in self.shape):
            raise GraphError(f"TensorSpec shape must be positive ints, got {self.shape}")
        if self.dtype not in DTYPE_SIZES:
            raise GraphError(f"unsupported dtype {self.dtype!r}")

    @property
    def numel(self) -> int:
        """Number of elements."""
        return math.prod(self.shape)

    @property
    def itemsize(self) -> int:
        """Bytes per element."""
        return DTYPE_SIZES[self.dtype]

    @property
    def nbytes(self) -> int:
        """Total size in bytes."""
        return self.numel * self.itemsize

    @property
    def batch(self) -> int:
        """Leading (batch) dimension."""
        return self.shape[0]

    @property
    def channels(self) -> int:
        """Second (channel) dimension; errors for 1-D tensors."""
        if len(self.shape) < 2:
            raise GraphError(f"TensorSpec {self.shape} has no channel dimension")
        return self.shape[1]

    @property
    def spatial(self) -> tuple[int, ...]:
        """Trailing spatial dimensions (may be empty)."""
        return self.shape[2:]

    def with_batch(self, batch: int) -> "TensorSpec":
        """Return a copy with a different leading dimension."""
        return TensorSpec((batch, *self.shape[1:]), self.dtype)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(d) for d in self.shape)
        return f"{dims}:{self.dtype}"
