"""repro — a full reproduction of PoocH (Profiling-based Out-of-core Hybrid
method for large neural networks, PPoPP 2019 poster) on a simulated-GPU
substrate.

Quickstart::

    from repro import PoocH, X86_V100, resnet50, images_per_second

    graph = resnet50(batch=512)          # needs ~40 GiB; the V100 has 16 GB
    result = PoocH(X86_V100).optimize(graph)
    print(result.summary())              # keep/swap/recompute plan + prediction
    timeline = result.execute()          # ground-truth simulated iteration
    print(images_per_second(timeline, 512), "img/s")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.baselines import (
    plan_incore,
    plan_recompute_all,
    plan_superneurons,
    plan_swap_all,
    plan_swap_all_unscheduled,
    plan_swap_opt,
    plan_vdnn,
)
from repro.common.errors import (
    GraphError,
    NumericError,
    OutOfMemoryError,
    ReproError,
    ScheduleError,
    SimulationError,
)
from repro.graph import (
    GraphBuilder,
    NNGraph,
    TensorSpec,
    max_layer_working_set,
    split_batch,
)
from repro.hw import CostModel, MachineSpec, POWER9_V100, X86_V100
from repro.models import (
    alexnet,
    build_model,
    googlenet,
    resnet50,
    resnet101,
    resnext101_3d,
    vgg16,
)
from repro.pooch import (
    DynamicPoocH,
    PoocH,
    PoochConfig,
    PoochResult,
    TimelinePredictor,
)
from repro.runtime import (
    Classification,
    MapClass,
    MomentumSGD,
    Profile,
    SGD,
    SwapInPolicy,
    Trainer,
    execute,
    images_per_second,
    run_profiling,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError", "GraphError", "ScheduleError", "SimulationError",
    "OutOfMemoryError", "NumericError",
    # graph & models
    "TensorSpec", "NNGraph", "GraphBuilder", "split_batch",
    "max_layer_working_set",
    "alexnet", "vgg16", "googlenet", "resnet50", "resnet101",
    "resnext101_3d", "build_model",
    # hardware
    "MachineSpec", "X86_V100", "POWER9_V100", "CostModel",
    # runtime
    "Classification", "MapClass", "SwapInPolicy", "execute",
    "images_per_second", "run_profiling", "Profile",
    # runtime extensions
    "Trainer", "SGD", "MomentumSGD",
    # PoocH
    "PoocH", "PoochConfig", "PoochResult", "TimelinePredictor",
    "DynamicPoocH",
    # baselines
    "plan_incore", "plan_swap_all", "plan_swap_all_unscheduled",
    "plan_swap_opt", "plan_superneurons", "plan_vdnn", "plan_recompute_all",
]
