"""Declarative fault specifications.

A :class:`FaultSpec` names *what* can go wrong and how often; the
:class:`~repro.faults.injector.FaultInjector` turns it into deterministic,
seed-driven decisions.  Specs parse from the CLI's compact
``key=value,key=value`` syntax::

    --faults "duration_noise=0.1,stall_prob=0.05,oom_prob=0.01"

Every knob defaults to "off", so an empty spec is the identity: a run under
``FaultSpec()`` is bit-identical to a run with no fault layer at all.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.common.errors import FaultError


@dataclass(frozen=True)
class FaultSpec:
    """What the fault injector is allowed to break, and how hard.

    Attributes:
        duration_noise: relative stddev of multiplicative noise applied to
            every executed task duration (compute and transfers) — models
            interference on a shared node.  0 disables.
        profile_noise: relative stddev of multiplicative noise applied to
            the *profiled* durations fed to the classifier — models the
            paper's few-iteration profile mispredicting the rest of
            training.  0 disables.
        bandwidth_factor: fraction of nominal H2D/D2H bandwidth actually
            delivered (a degraded PCIe link); transfer durations are divided
            by it.  1.0 disables, must be in (0, 1].
        stall_prob: per-attempt probability that a DMA transfer transiently
            fails and must be retried (after wasting ``stall_time`` plus
            backoff).  0 disables.
        stall_time: seconds one failed transfer attempt wastes before the
            failure is detected.
        oom_prob: per-allocation probability that a *device* allocation
            spuriously fails even though memory is available.  0 disables.
        host_oom_prob: same for *host* (pinned-memory) allocations.
        host_capacity_factor: fraction of host DRAM actually available for
            swap space (pinned-memory exhaustion by other tenants); must be
            in (0, 1].  1.0 disables.
    """

    duration_noise: float = 0.0
    profile_noise: float = 0.0
    bandwidth_factor: float = 1.0
    stall_prob: float = 0.0
    stall_time: float = 1e-3
    oom_prob: float = 0.0
    host_oom_prob: float = 0.0
    host_capacity_factor: float = 1.0

    def __post_init__(self) -> None:
        for name in ("duration_noise", "profile_noise", "stall_prob",
                     "oom_prob", "host_oom_prob"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise FaultError(f"{name} must be in [0, 1], got {v!r}")
        for name in ("bandwidth_factor", "host_capacity_factor"):
            v = getattr(self, name)
            if not 0.0 < v <= 1.0:
                raise FaultError(f"{name} must be in (0, 1], got {v!r}")
        if self.stall_time < 0:
            raise FaultError(f"stall_time must be >= 0, got {self.stall_time!r}")

    @property
    def active(self) -> bool:
        """Whether any fault is actually enabled."""
        return self != FaultSpec()

    @staticmethod
    def parse(text: str) -> "FaultSpec":
        """Parse the CLI syntax: comma-separated ``key=value`` pairs.

        ``"none"`` / ``""`` yield the inert spec.  Unknown keys, duplicated
        keys and unparseable values raise
        :class:`~repro.common.errors.FaultError`.
        """
        text = text.strip()
        if not text or text == "none":
            return FaultSpec()
        known = {f.name for f in fields(FaultSpec)}
        seen: set[str] = set()
        spec = FaultSpec()
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise FaultError(
                    f"bad fault spec item {item!r} (expected key=value; "
                    f"known keys: {sorted(known)})"
                )
            key, _, value = item.partition("=")
            key = key.strip()
            if key not in known:
                raise FaultError(
                    f"unknown fault spec key {key!r} (known: {sorted(known)})"
                )
            if key in seen:
                raise FaultError(
                    f"duplicate fault spec key {key!r} (each key may appear "
                    "at most once)"
                )
            seen.add(key)
            try:
                spec = replace(spec, **{key: float(value)})
            except ValueError:
                raise FaultError(
                    f"bad value for fault spec key {key!r}: {value!r}"
                ) from None
        return spec

    def describe(self) -> str:
        """Compact non-default ``key=value`` rendering (inverse of parse)."""
        default = FaultSpec()
        parts = [
            f"{f.name}={getattr(self, f.name):g}"
            for f in fields(FaultSpec)
            if getattr(self, f.name) != getattr(default, f.name)
        ]
        return ",".join(parts) if parts else "none"
