"""Monte-Carlo fault-seed sweeps: K seeds in lockstep over one plan.

``robustness_report`` needs tail statistics — P95/P99 slowdown, OOM and
fallback rates — which means executing the *same* chosen plan under many
fault seeds.  Run serially that costs one schedule build plus one event
simulation per seed; this module batches it.

The trick is the injector's keyed RNG: every duration draw is a pure
function of ``(seed, task identity)`` — :meth:`FaultInjector.duration_factor`
keys on ``("dur", kind, layer)``, never on execution order — so a seed's
entire duration table is computable *up front*.  And the schedule builder's
structure is duration-independent (durations only fill ``_TaskDraft``
fields; queue orders and headrooms derive from sizes and positions), so one
clean draft compiled once into :class:`~repro.gpusim.vecengine.VectorTables`
serves every seed: :func:`seed_duration_matrix` precomputes a ``(K, n)``
matrix of per-task durations — bit-identical to what a per-seed
:class:`FaultyDurations` rebuild would produce — and
:meth:`VectorEngine.run_batch` replays all K rows in lockstep.

Specs whose draws are *event-order dependent* cannot be precomputed:
transfer stalls consume a variable number of draws per epoch, spurious OOMs
key on the attempt index, and host faults interleave with the fallback
chain.  :func:`vectorizable` gates on that; non-vectorizable specs (and the
few vectorized rows that genuinely fail, e.g. noise pushing a tight plan
over capacity) fall back to the serial resilient path —
:func:`~repro.faults.resilient.execute_resilient`, optionally batched
across a process pool.  Every vectorized row is bit-identical (makespan,
per-task times, pool high-water marks, OOM diagnosis) to a serial
``FaultInjector`` + ``FastEngine`` run with the same seed —
``tests/test_fault_sweep.py`` asserts exactly that across the model zoo.
"""

from __future__ import annotations

import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.common.errors import (
    OutOfMemoryError,
    ReproError,
    SpuriousOOMError,
)
from repro.faults.injector import _MIN_FACTOR, FaultInjector
from repro.faults.resilient import RetryPolicy, execute_resilient
from repro.faults.spec import FaultSpec
from repro.graph import NNGraph
from repro.gpusim.engine import StreamName, TaskKind
from repro.gpusim.vecengine import VectorEngine, VectorTables, VectorUnsupported
from repro.hw import CostModel, MachineSpec
from repro.obs import get_logger, metrics
from repro.runtime.durations import CostModelDurations, DurationProvider
from repro.runtime.plan import Classification
from repro.runtime.schedule import ScheduleBuilder, ScheduleOptions

log = get_logger(__name__)


def vectorizable(spec: FaultSpec) -> bool:
    """Whether a spec's execution-side draws are precomputable per task.

    ``duration_noise`` and ``bandwidth_factor`` multiply per-task durations
    (keyed per task identity), ``host_capacity_factor`` statically shrinks
    the host pool, and ``profile_noise`` only perturbs *planning* (done once
    per scenario) — all expressible as per-row duration tables over one
    compiled draft.  Stalls, spurious OOMs and host allocation faults draw
    per attempt/epoch, i.e. depend on simulated event order, and need the
    serial resilient path.
    """
    return (spec.stall_prob == 0.0 and spec.oom_prob == 0.0
            and spec.host_oom_prob == 0.0)


def _task_key(task) -> tuple[str, int, bool]:
    """(duration-factor kind, key layer, is-transfer) of one draft task —
    mirrors which :class:`FaultyDurations` method priced it."""
    kind = task.kind
    if kind is TaskKind.FWD:
        if task.stream is StreamName.H2D:  # the mini-batch upload
            return ("input_load", task.layer, True)
        return ("fwd", task.layer, False)
    if kind is TaskKind.RECOMPUTE:  # recompute shares the forward's key
        return ("fwd", task.layer, False)
    if kind is TaskKind.BWD:
        return ("bwd", task.layer, False)
    if kind is TaskKind.UPDATE:
        return ("update", -1, False)
    if kind is TaskKind.SWAP_OUT:
        return ("swap_out", task.layer, True)
    if kind is TaskKind.SWAP_IN:
        return ("swap_in", task.layer, True)
    raise VectorUnsupported(f"task kind {kind!r} has no duration-fault key")


# -- fast keyed draws ----------------------------------------------------------
#
# A sweep needs K seeds x U duration keys independent draws, each defined as
# ``default_rng((seed, digest)).standard_normal()``.  Constructing K*U
# generators through ``default_rng`` costs ~15us each — it dominates the
# whole lockstep sweep.  The SeedSequence entropy-pool hash (O'Neill's
# seed_seq: pure uint32 arithmetic) vectorizes over all pairs at once, and
# PCG64's seeding from the four output words is two 128-bit affine steps we
# can do in Python ints and install via the bit generator's state setter —
# reusing ONE generator object for every draw.  ``_keyed_normals``
# cross-checks its first draw against ``default_rng`` at runtime and the
# caller falls back to the per-seed injector loop on any mismatch, so
# bit-identity never rests on this reimplementation alone.

_SS_XSHIFT = np.uint32(16)
_SS_INIT_A = np.uint32(0x43B0D7E5)
_SS_MULT_A = np.uint32(0x931E8875)
_SS_INIT_B = np.uint32(0x8B51F9DD)
_SS_MULT_B = np.uint32(0x58F38DED)
_SS_MIX_L = np.uint32(0xCA01F9DD)
_SS_MIX_R = np.uint32(0x4973F715)
_PCG_MULT = 0x2360ED051FC65DA44385DF649FCCF645
_PCG_MASK = (1 << 128) - 1


def _seedseq_words(seeds32: np.ndarray, digests32: np.ndarray) -> np.ndarray:
    """``SeedSequence((seed, digest)).generate_state(4, uint64)`` for every
    pair, vectorized — both entropy values must each fit in one uint32 word."""
    old = np.seterr(over="ignore")  # uint32 wraparound is the algorithm
    try:
        entropy = (seeds32, digests32)
        hash_const = _SS_INIT_A

        def hashmix(value: np.ndarray) -> np.ndarray:
            nonlocal hash_const
            value = value ^ hash_const
            hash_const = hash_const * _SS_MULT_A
            value = value * hash_const
            return value ^ (value >> _SS_XSHIFT)

        def mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
            r = (_SS_MIX_L * x) - (_SS_MIX_R * y)
            return r ^ (r >> _SS_XSHIFT)

        zero = np.zeros_like(seeds32)
        pool = [hashmix(entropy[i] if i < len(entropy) else zero)
                for i in range(4)]
        for i_src in range(4):
            for i_dst in range(4):
                if i_src != i_dst:
                    pool[i_dst] = mix(pool[i_dst], hashmix(pool[i_src]))

        hash_const = _SS_INIT_B

        def hashmix_out(value: np.ndarray) -> np.ndarray:
            nonlocal hash_const
            value = value ^ hash_const
            hash_const = hash_const * _SS_MULT_B
            value = value * hash_const
            return value ^ (value >> _SS_XSHIFT)

        out32 = [hashmix_out(pool[i % 4]) for i in range(8)]
        words = np.empty((len(seeds32), 4), np.uint64)
        for i in range(4):
            words[:, i] = (out32[2 * i].astype(np.uint64)
                           | (out32[2 * i + 1].astype(np.uint64)
                              << np.uint64(32)))
        return words
    finally:
        np.seterr(**old)


def _keyed_normals(seeds: list[int], digests: list[int]) -> np.ndarray | None:
    """The ``(K, U)`` matrix of ``default_rng((seed, digest)).
    standard_normal()`` draws, or ``None`` when the fast path cannot
    guarantee bit-identity (exotic seeds, or the runtime cross-check fails).
    """
    if not all(0 <= s < 2**32 for s in seeds):
        return None  # multi-word entropy: let the injector handle it
    n_k, n_u = len(seeds), len(digests)
    words = _seedseq_words(
        np.repeat(np.asarray(seeds, np.uint32), n_u),
        np.tile(np.asarray(digests, np.uint32), n_k),
    )
    bg = np.random.PCG64(0)
    gen = np.random.Generator(bg)
    state = bg.state
    inner = state["state"]
    normal = gen.standard_normal
    out = np.empty(n_k * n_u, np.float64)
    for i, (w0, w1, w2, w3) in enumerate(words.tolist()):
        # pcg_setseq_128_srandom: state=0; step; state+=initstate; step
        inc = (((w2 << 64) | w3) << 1 | 1) & _PCG_MASK
        inner["inc"] = inc
        inner["state"] = ((inc + ((w0 << 64) | w1)) * _PCG_MULT
                          + inc) & _PCG_MASK
        bg.state = state
        out[i] = normal()
    ref = float(np.random.default_rng((seeds[0], digests[0]))
                .standard_normal())
    if out[0] != ref:  # pragma: no cover - numpy stream drift guard
        return None
    return out.reshape(n_k, n_u)


def seed_duration_matrix(tasks, tids, spec: FaultSpec,
                         seeds) -> np.ndarray:
    """Precompute the ``(K, n)`` faulted duration table for ``seeds``.

    Row k holds, for every task of the *clean* draft (in ``tids`` order),
    the duration a schedule rebuilt under ``FaultyDurations(base,
    FaultInjector(spec, seed=seeds[k]))`` would carry — bit-identical,
    because the multiply order matches the provider's left fold:
    ``(clean * duration_factor) * transfer_slowdown``.  Tasks sharing a
    duration key (a recompute and its forward) share one draw per seed.
    """
    n = len(tids)
    base = np.array([tasks[t].duration for t in tids], np.float64)
    keys = [_task_key(tasks[t]) for t in tids]
    uniq: list[tuple[str, int]] = []
    index: dict[tuple[str, int], int] = {}
    col_of = np.empty(n, np.int64)
    for i, (what, layer, _) in enumerate(keys):
        k = (what, layer)
        if k not in index:
            index[k] = len(uniq)
            uniq.append(k)
        col_of[i] = index[k]
    transfer = np.array([is_t for (_, _, is_t) in keys], bool)

    seeds = [int(s) for s in seeds]
    stddev = spec.duration_noise
    if stddev <= 0.0:
        fac = np.ones((len(seeds), len(uniq)), np.float64)
    else:
        # the injector keys each draw on repr(("dur", what, layer))
        digests = [zlib.crc32(repr(("dur", w, l)).encode()) for w, l in uniq]
        draws = _keyed_normals(seeds, digests)
        if draws is not None:
            fac = np.maximum(_MIN_FACTOR, 1.0 + stddev * draws)
        else:
            fac = np.empty((len(seeds), len(uniq)), np.float64)
            for r, seed in enumerate(seeds):
                inj = FaultInjector(spec, seed=seed)
                fac[r] = [inj.duration_factor(w, l) for w, l in uniq]

    mat = base * fac[:, col_of]
    slow = 1.0 / spec.bandwidth_factor  # FaultInjector.transfer_slowdown
    if slow != 1.0:
        mat[:, transfer] *= slow
    return mat


@dataclass(frozen=True)
class SweepOutcome:
    """One seed's execution outcome within a fault sweep.

    ``vectorized`` rows ran in lockstep under the chosen plan; the rest
    went through :func:`~repro.faults.resilient.execute_resilient` (whose
    retry/fallback accounting they carry).  ``failed`` marks a seed whose
    fallback chain was exhausted — its makespan is ``inf`` so percentile
    statistics honestly blow up instead of silently dropping the seed.
    """

    seed: int
    makespan: float
    plan_used: str
    vectorized: bool
    attempts: int = 1
    transfer_retries: int = 0
    fallbacks: int = 0
    fallback_path: str = ""
    oom: bool = False
    failed: bool = False
    device_peak: int = 0
    host_peak: int = 0

    @property
    def degraded(self) -> bool:
        """True when the chosen plan was abandoned for a fallback."""
        return self.fallbacks > 0

    @property
    def ok(self) -> bool:
        return not self.failed


def _serial_outcome(graph: NNGraph, classification: Classification,
                    machine: MachineSpec, spec: FaultSpec, seed: int,
                    retry: RetryPolicy | None,
                    options: ScheduleOptions | None,
                    cost_model: CostModel | None,
                    durations: DurationProvider | None) -> SweepOutcome:
    """One seed through the full serial resilient path."""
    injector = FaultInjector(spec, seed=seed)
    try:
        robust = execute_resilient(
            graph, classification, machine,
            faults=injector, retry=retry, options=options,
            cost_model=cost_model, durations=durations,
        )
    except ReproError as e:
        genuine_oom = (isinstance(e, OutOfMemoryError)
                       and not isinstance(e, SpuriousOOMError))
        return SweepOutcome(
            seed=seed, makespan=float("inf"), plan_used="",
            vectorized=False, oom=genuine_oom, failed=True,
            fallback_path="chain exhausted",
        )
    return SweepOutcome(
        seed=seed,
        makespan=robust.makespan,
        plan_used=robust.plan_used,
        vectorized=False,
        attempts=robust.attempts,
        transfer_retries=robust.transfer_retries,
        fallbacks=len(robust.fallbacks),
        fallback_path=" -> ".join(s.to_plan for s in robust.fallbacks),
        oom=any(s.reason_kind == "oom" for s in robust.fallbacks),
        device_peak=robust.result.device_peak,
        host_peak=robust.result.host_peak,
    )


def _serial_star(packed) -> SweepOutcome:
    return _serial_outcome(*packed)


def fault_seed_sweep(
    graph: NNGraph,
    classification: Classification,
    machine: MachineSpec,
    spec: FaultSpec | str,
    seeds,
    *,
    retry: RetryPolicy | None = None,
    options: ScheduleOptions | None = None,
    cost_model: CostModel | None = None,
    durations: DurationProvider | None = None,
    vectorize: bool = True,
    workers: int = 1,
) -> list[SweepOutcome]:
    """Execute one plan under every seed of ``seeds``; one outcome per seed.

    Vectorizable specs run all seeds in one lockstep batch over the clean
    draft (compiled once); rows that fail under their per-seed durations —
    and every seed of a non-vectorizable spec — take the serial resilient
    path, fanned across a process pool when ``workers > 1``.  Emits
    ``faults.rows_vectorized`` / ``faults.rows_fallback`` counters.

    ``durations`` overrides the clean duration provider (default: the
    machine's deterministic cost model); ``vectorize=False`` forces the
    serial path for every seed — the differential tests' control arm.
    """
    if isinstance(spec, str):
        spec = FaultSpec.parse(spec)
    seeds = [int(s) for s in seeds]
    opts = options or ScheduleOptions()
    outcomes: dict[int, SweepOutcome] = {}
    serial_idx = list(range(len(seeds)))

    if vectorize and seeds and vectorizable(spec):
        try:
            base = durations
            if base is None:
                base = CostModelDurations(graph,
                                          cost_model or CostModel(machine))
            tasks, queues, buffers = ScheduleBuilder(
                graph, classification, base, opts).build_raw()
            host_capacity = int(machine.host_swap_capacity
                                * spec.host_capacity_factor)
            tables = VectorTables(
                tasks, queues, buffers,
                device_capacity=machine.usable_gpu_memory,
                host_capacity=host_capacity,
            )
            matrix = seed_duration_matrix(tasks, tables.tids, spec, seeds)
            rows = VectorEngine(tables).run_batch(durations=matrix)
        except VectorUnsupported as e:
            log.debug("fault sweep falls back to the serial path: %s", e)
        else:
            serial_idx = []
            for i, row in enumerate(rows):
                if row.ok:
                    outcomes[i] = SweepOutcome(
                        seed=seeds[i],
                        makespan=row.makespan,
                        plan_used="chosen-plan",
                        vectorized=True,
                        device_peak=row.device_peak,
                        host_peak=row.host_peak,
                    )
                else:
                    # per-seed noise broke the plan (e.g. re-timed issues
                    # overflow a tight pool): replay the whole fallback
                    # chain serially for an honest degradation record
                    serial_idx.append(i)

    metrics.count("faults.sweeps")
    metrics.count("faults.rows_vectorized", len(outcomes))
    metrics.count("faults.rows_fallback", len(serial_idx))

    if serial_idx:
        jobs = [(graph, classification, machine, spec, seeds[i],
                 retry, opts, cost_model, durations) for i in serial_idx]
        if workers > 1 and len(serial_idx) > 1:
            with ProcessPoolExecutor(
                    max_workers=min(workers, len(serial_idx))) as pool:
                results = list(pool.map(_serial_star, jobs))
        else:
            results = [_serial_star(j) for j in jobs]
        for i, out in zip(serial_idx, results):
            outcomes[i] = out

    return [outcomes[i] for i in range(len(seeds))]
