"""Graceful degradation: retries, bounded backoff, and the fallback chain.

``execute_resilient`` is the fault-tolerant counterpart of
:func:`repro.runtime.executor.execute`.  Instead of letting an
execution-time failure propagate, it degrades along a declared chain:

* **transient transfer stalls** are retried in place with bounded
  exponential backoff (the retry cost is charged to the transfer's duration,
  so the timeline honestly shows the lost time);
* **spurious allocator failures** (:class:`SpuriousOOMError`) re-run the
  iteration under the same plan — transient faults draw independently per
  attempt, so a retry can succeed;
* **genuine OOM** (the plan does not fit — e.g. a plan chosen from a noisy
  profile, or host swap space shrunk under pinned-memory pressure) and
  **exhausted transfer-retry budgets** advance to the next plan of the
  fallback chain: chosen plan → swap-all → recompute-all.

Only when the *last* chain entry fails does the error propagate — at that
point the machine genuinely cannot run the model and pretending otherwise
would be dishonest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import (
    OutOfMemoryError,
    SpuriousOOMError,
    TransferFaultError,
)
from repro.faults.injector import FaultInjector, FaultyDurations, FaultyMemoryPool
from repro.graph import NNGraph
from repro.gpusim import Engine, RunResult, Schedule, StreamName
from repro.hw import CostModel, MachineSpec
from repro.obs import get_logger, metrics
from repro.runtime.durations import CostModelDurations, DurationProvider
from repro.runtime.plan import Classification
from repro.runtime.schedule import ScheduleOptions, build_schedule

log = get_logger(__name__)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds on how hard the resilient executor tries before degrading.

    Attributes:
        max_transfer_retries: in-place retries of one faulted DMA transfer
            before the attempt is abandoned and the fallback chain engages.
        backoff_base: first retry's backoff delay, seconds; doubles per
            retry up to ``backoff_cap`` (bounded exponential backoff).
        backoff_cap: ceiling on a single backoff delay, seconds.
        max_plan_attempts: executions of the *same* plan before moving on —
            re-runs absorb transient (spurious) allocation failures.
    """

    max_transfer_retries: int = 3
    backoff_base: float = 1e-4
    backoff_cap: float = 1e-2
    max_plan_attempts: int = 3

    def backoff(self, attempt: int) -> float:
        """Backoff delay before retry number ``attempt`` (0-based)."""
        return min(self.backoff_base * (2.0 ** attempt), self.backoff_cap)


@dataclass(frozen=True)
class FallbackStep:
    """One link of the degradation chain that was actually taken.

    ``reason_kind`` is the machine-readable class of the failure that
    forced the step — ``"oom"`` (genuine capacity shortfall),
    ``"transfer"`` (retry budget exhausted) or ``"spurious"`` (transient
    allocation faults outlasted ``max_plan_attempts``) — so consumers like
    the fault-seed sweep can compute OOM/fallback rates without string
    matching on ``reason``.
    """

    from_plan: str
    to_plan: str
    reason: str
    reason_kind: str = ""


def _failure_kind(error: Exception | None) -> str:
    """Classify a plan failure for :attr:`FallbackStep.reason_kind`."""
    if isinstance(error, SpuriousOOMError):
        return "spurious"
    if isinstance(error, TransferFaultError):
        return "transfer"
    if isinstance(error, OutOfMemoryError):
        return "oom"
    return "error"


@dataclass
class RobustResult:
    """Outcome of one resilient execution.

    ``plan_used`` names the chain entry that finally ran to completion;
    ``fallbacks`` lists every degradation step taken on the way there.
    """

    result: RunResult
    plan_used: str
    classification: Classification
    transfer_retries: int = 0
    attempts: int = 1
    fallbacks: list[FallbackStep] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        return self.result.makespan

    @property
    def degraded(self) -> bool:
        """True when the chosen plan was abandoned for a fallback."""
        return bool(self.fallbacks)

    def describe(self) -> str:
        lines = [
            f"executed plan: {self.plan_used} "
            f"({self.attempts} attempt{'s' if self.attempts != 1 else ''}, "
            f"{self.transfer_retries} transfer "
            f"retr{'ies' if self.transfer_retries != 1 else 'y'})"
        ]
        for step in self.fallbacks:
            lines.append(
                f"  fallback {step.from_plan} -> {step.to_plan}: {step.reason}"
            )
        return "\n".join(lines)


def fallback_chain(
    graph: NNGraph, classification: Classification
) -> list[tuple[str, Classification]]:
    """The declared degradation order, deduplicated by plan identity."""
    chain = [
        ("chosen-plan", classification),
        ("swap-all", Classification.all_swap(graph)),
        ("recompute-all", Classification.all_recompute(graph)),
    ]
    seen: set[tuple] = set()
    unique: list[tuple[str, Classification]] = []
    for name, cls in chain:
        key = cls.key()
        if key in seen:
            continue
        seen.add(key)
        unique.append((name, cls))
    return unique


def apply_transfer_faults(
    schedule: Schedule,
    injector: FaultInjector,
    retry: RetryPolicy,
    epoch: int = 0,
) -> int:
    """Resolve transient stalls for every DMA task of ``schedule``.

    Each faulted transfer is retried in place: every failed attempt charges
    the stall time plus a bounded-exponential backoff delay to the task's
    duration.  Returns the total number of retries performed; raises
    :class:`TransferFaultError` when a transfer exceeds the retry budget.
    ``epoch`` keys the draws, so a later re-execution sees fresh transient
    conditions.
    """
    retries = 0
    for task in schedule.tasks.values():
        if task.stream is StreamName.COMPUTE:
            continue
        failures = injector.transfer_failures(task.tid, retry.max_transfer_retries,
                                              epoch=epoch)
        if failures == 0:
            continue
        if failures > retry.max_transfer_retries:
            raise TransferFaultError(
                f"transfer {task.tid!r} failed {failures} consecutive attempts "
                f"(budget: {retry.max_transfer_retries} retries)",
                tid=task.tid,
                attempts=failures,
            )
        task.duration += sum(
            injector.spec.stall_time + retry.backoff(a) for a in range(failures)
        )
        retries += failures
    return retries


def execute_resilient(
    graph: NNGraph,
    classification: Classification,
    machine: MachineSpec,
    *,
    faults: FaultInjector | None = None,
    retry: RetryPolicy | None = None,
    options: ScheduleOptions | None = None,
    cost_model: CostModel | None = None,
    durations: DurationProvider | None = None,
) -> RobustResult:
    """Execute one iteration, surviving injected faults by degradation.

    Without ``faults`` this is ``execute`` plus the fallback chain: the
    clean path builds the identical schedule and runs the identical engine,
    so results are bit-identical to the plain executor.
    """
    retry = retry or RetryPolicy()
    opts = options or ScheduleOptions()
    base = durations
    if base is None:
        base = CostModelDurations(graph, cost_model or CostModel(machine))
    if faults is not None:
        base = FaultyDurations(base, faults)
    host_nominal = machine.host_swap_capacity
    host_capacity = (faults.host_capacity(host_nominal)
                     if faults is not None else host_nominal)

    chain = fallback_chain(graph, classification)
    fallbacks: list[FallbackStep] = []
    total_retries = 0
    epoch = 0
    last_error: Exception | None = None
    for chain_pos, (name, cls) in enumerate(chain):
        plan_failed: Exception | None = None
        for _ in range(retry.max_plan_attempts):
            epoch += 1
            schedule = build_schedule(graph, cls, base, opts)
            try:
                if faults is not None:
                    total_retries += apply_transfer_faults(
                        schedule, faults, retry, epoch=epoch
                    )
                device_pool = host_pool = None
                if faults is not None:
                    device_pool = FaultyMemoryPool(
                        machine.usable_gpu_memory, "gpu", faults, attempt=epoch
                    )
                    host_pool = FaultyMemoryPool(
                        host_capacity, "host", faults, attempt=epoch
                    )
                result = Engine(
                    schedule,
                    device_capacity=machine.usable_gpu_memory,
                    host_capacity=host_capacity,
                    device_pool=device_pool,
                    host_pool=host_pool,
                ).run()
                metrics.count("resilience.executions")
                metrics.count("resilience.plan_attempts", epoch)
                if total_retries:
                    metrics.count("resilience.transfer_retries",
                                  total_retries)
                return RobustResult(
                    result=result,
                    plan_used=name,
                    classification=cls,
                    transfer_retries=total_retries,
                    attempts=epoch,
                    fallbacks=fallbacks,
                )
            except SpuriousOOMError as e:
                # transient: retry the same plan, fresh draws under a new epoch
                metrics.count("resilience.spurious_ooms")
                log.debug("spurious allocation failure under plan %s "
                          "(attempt %d): %s", name, epoch, e)
                plan_failed = e
                continue
            except TransferFaultError as e:
                plan_failed = e
                break  # retrying the same schedule cannot fix a dead link
            except OutOfMemoryError as e:
                plan_failed = e
                break  # the plan genuinely does not fit; degrade
        last_error = plan_failed
        if chain_pos + 1 < len(chain):
            metrics.count("resilience.fallbacks")
            log.warning("plan %s failed (%s); degrading to %s",
                        name, plan_failed, chain[chain_pos + 1][0])
            fallbacks.append(FallbackStep(
                from_plan=name,
                to_plan=chain[chain_pos + 1][0],
                reason=str(plan_failed),
                reason_kind=_failure_kind(plan_failed),
            ))
    assert last_error is not None
    metrics.count("resilience.chain_exhausted")
    log.error("fallback chain exhausted; last error: %s", last_error)
    raise last_error
