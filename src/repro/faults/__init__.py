"""Seeded fault injection and graceful degradation.

The paper's premise is that a short profile predicts the rest of training —
this package supplies the adversary: deterministic, seed-driven faults
(duration noise, degraded links, transient transfer stalls, spurious
allocator failures, host pinned-memory exhaustion, noisy profiles) and the
resilience machinery that survives them (bounded transfer retries, plan
re-execution, and the chosen-plan → swap-all → recompute-all fallback
chain).

Everything is keyed off a single ``seed``: a faulted run is bit-reproducible
under the same ``FaultSpec`` and seed, and an inert spec is exactly the
unfaulted system.
"""

from repro.faults.injector import FaultInjector, FaultyDurations, FaultyMemoryPool
from repro.faults.resilient import (
    FallbackStep,
    RetryPolicy,
    RobustResult,
    apply_transfer_faults,
    execute_resilient,
    fallback_chain,
)
from repro.faults.spec import FaultSpec
from repro.faults.sweep import (
    SweepOutcome,
    fault_seed_sweep,
    seed_duration_matrix,
    vectorizable,
)

__all__ = [
    "FaultSpec",
    "FaultInjector",
    "FaultyDurations",
    "FaultyMemoryPool",
    "RetryPolicy",
    "FallbackStep",
    "RobustResult",
    "SweepOutcome",
    "apply_transfer_faults",
    "execute_resilient",
    "fallback_chain",
    "fault_seed_sweep",
    "seed_duration_matrix",
    "vectorizable",
]
