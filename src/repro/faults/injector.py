"""Deterministic, seed-driven fault injection.

Every decision the :class:`FaultInjector` makes — how much noise a task's
duration gets, whether a transfer stalls, whether an allocation spuriously
fails — is a *pure function* of ``(seed, decision key)``: a keyed RNG is
derived per decision instead of consuming one shared stream.  That buys two
properties the tests lean on hard:

* **bit-reproducibility**: a faulted run with a fixed ``--fault-seed`` is
  bit-identical no matter how many times (or in what order) components ask
  the injector for decisions;
* **purity of durations**: :class:`FaultyDurations` can answer the same
  query twice with the same value, so the schedule builder may be re-run
  (e.g. by the resilient executor's fallback chain) without the fault layer
  drifting underneath it.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.common.errors import SpuriousOOMError
from repro.common.units import format_bytes
from repro.faults.spec import FaultSpec
from repro.gpusim.allocator import MemoryPool, round_size

#: hard floor on any multiplicative noise factor — matches the cost model's
#: jitter clamp so a noisy duration can never go zero or negative
_MIN_FACTOR = 0.05


class FaultInjector:
    """Turns a :class:`FaultSpec` into deterministic per-decision draws."""

    def __init__(self, spec: FaultSpec | str | None = None, seed: int = 0) -> None:
        if spec is None:
            spec = FaultSpec()
        elif isinstance(spec, str):
            spec = FaultSpec.parse(spec)
        self.spec = spec
        self.seed = int(seed)

    # -- keyed randomness ---------------------------------------------------------

    def _rng(self, *key: object) -> np.random.Generator:
        """A fresh generator keyed on (seed, key): same key → same stream."""
        digest = zlib.crc32(repr(key).encode())
        return np.random.default_rng((self.seed, digest))

    def _noise_factor(self, stddev: float, *key: object) -> float:
        if stddev <= 0.0:
            return 1.0
        draw = float(self._rng(*key).standard_normal())
        return max(_MIN_FACTOR, 1.0 + stddev * draw)

    # -- duration faults ------------------------------------------------------------

    def duration_factor(self, what: str, layer: int) -> float:
        """Multiplicative noise on one executed task's duration, keyed by
        (task kind, layer) — deterministic per task identity."""
        return self._noise_factor(self.spec.duration_noise, "dur", what, layer)

    def transfer_slowdown(self) -> float:
        """Uniform slowdown of all H2D/D2H transfers (degraded link)."""
        return 1.0 / self.spec.bandwidth_factor

    def profile_factor(self, what: str, layer: int) -> float:
        """Multiplicative noise on one *profiled* duration."""
        return self._noise_factor(self.spec.profile_noise, "prof", what, layer)

    # -- transfer stalls -------------------------------------------------------------

    def transfer_failures(self, tid: str, cap: int, epoch: int = 0) -> int:
        """How many consecutive attempts of transfer ``tid`` transiently
        fail before one succeeds; capped at ``cap + 1`` (i.e. a return value
        of ``cap + 1`` means the retry budget is exhausted).  ``epoch`` keys
        the draw so a re-executed iteration sees fresh transient
        conditions."""
        p = self.spec.stall_prob
        if p <= 0.0:
            return 0
        rng = self._rng("stall", epoch, tid)
        failures = 0
        while failures <= cap and float(rng.random()) < p:
            failures += 1
        return failures

    # -- allocation faults -----------------------------------------------------------

    def spurious_oom(self, pool: str, buffer: str, attempt: int) -> bool:
        """Whether this allocation transiently fails.  Keyed by the attempt
        index too, so a retried iteration makes an independent draw."""
        p = self.spec.host_oom_prob if pool == "host" else self.spec.oom_prob
        if p <= 0.0:
            return False
        return float(self._rng("oom", pool, buffer, attempt).random()) < p

    def host_capacity(self, nominal: int) -> int:
        """Host swap space actually available under pinned-memory pressure."""
        return int(nominal * self.spec.host_capacity_factor)

    # -- profile perturbation -----------------------------------------------------------

    def perturb_profile(self, profile, graph=None, machine=None, options=None):
        """A copy of ``profile`` with noisy durations — what the classifier
        sees when the few profiled iterations were not representative.

        When ``graph`` and ``machine`` are given, the profile's all-swap
        baseline timeline is replayed from the perturbed durations (the
        classifier's overlap analysis inspects it, so it must be consistent
        with the numbers).
        """
        from repro.gpusim import Engine
        from repro.runtime.plan import Classification
        from repro.runtime.profiler import Profile
        from repro.runtime.schedule import ScheduleOptions, build_schedule

        if self.spec.profile_noise <= 0.0:
            return profile

        def jig(table: dict[int, float], what: str) -> dict[int, float]:
            return {k: v * self.profile_factor(what, k) for k, v in table.items()}

        noisy = Profile(
            graph_name=profile.graph_name,
            machine_name=profile.machine_name,
            fwd=jig(profile.fwd, "fwd"),
            bwd=jig(profile.bwd, "bwd"),
            swap_out=jig(profile.swap_out, "swap_out"),
            swap_in=jig(profile.swap_in, "swap_in"),
            update_time=profile.update_time * self.profile_factor("update", -1),
            map_bytes=dict(profile.map_bytes),
            iterations=profile.iterations,
        )
        if graph is not None and machine is not None:
            opts = options or ScheduleOptions()
            schedule = build_schedule(graph, Classification.all_swap(graph),
                                      noisy.durations(), opts)
            noisy.baseline = Engine(
                schedule,
                device_capacity=machine.usable_gpu_memory,
                host_capacity=machine.host_swap_capacity,
            ).run()
        return noisy


class FaultyDurations:
    """A :class:`~repro.runtime.durations.DurationProvider` that wraps
    another provider with the injector's duration faults.

    Noise is keyed per (kind, layer), never per call: recompute tasks share
    the forward duration exactly as the profiler assumes, and rebuilding a
    schedule reproduces it bit-for-bit.  Faults change *time*, never data.
    """

    def __init__(self, base, injector: FaultInjector) -> None:
        self.base = base
        self.injector = injector

    def fwd(self, layer: int) -> float:
        return self.base.fwd(layer) * self.injector.duration_factor("fwd", layer)

    def bwd(self, layer: int) -> float:
        return self.base.bwd(layer) * self.injector.duration_factor("bwd", layer)

    def swap_out(self, map_id: int) -> float:
        return (self.base.swap_out(map_id)
                * self.injector.duration_factor("swap_out", map_id)
                * self.injector.transfer_slowdown())

    def swap_in(self, map_id: int) -> float:
        return (self.base.swap_in(map_id)
                * self.injector.duration_factor("swap_in", map_id)
                * self.injector.transfer_slowdown())

    def input_load(self, layer: int) -> float:
        return (self.base.input_load(layer)
                * self.injector.duration_factor("input_load", layer)
                * self.injector.transfer_slowdown())

    def update(self) -> float:
        return self.base.update() * self.injector.duration_factor("update", -1)


class FaultyMemoryPool(MemoryPool):
    """A counting pool whose allocations can *spuriously* fail.

    A spurious failure raises :class:`SpuriousOOMError` only when the
    allocation would otherwise have succeeded — a genuine capacity shortfall
    keeps raising the ordinary :class:`~repro.common.errors.OutOfMemoryError`
    so infeasibility is never mistaken for a transient fault.
    """

    def __init__(self, capacity: int, name: str, injector: FaultInjector,
                 attempt: int = 0, track: bool = True) -> None:
        super().__init__(capacity, name, track=track)
        self.injector = injector
        self.attempt = attempt

    def malloc(self, buffer: str, nbytes: int, time: float,
               context: str = "") -> None:
        if (round_size(nbytes) <= self.free_bytes
                and self.injector.spurious_oom(self.name, buffer, self.attempt)):
            raise SpuriousOOMError(
                f"{self.name} pool: injected transient allocation failure for "
                f"{buffer!r} ({format_bytes(round_size(nbytes))}) at "
                f"t={time:.6f}" + (f" while {context}" if context else ""),
                requested=round_size(nbytes),
                free=self.free_bytes,
                capacity=self.capacity,
                context=context or buffer,
            )
        super().malloc(buffer, nbytes, time, context=context)
