"""Observability: structured logging, metrics, and spans for the pipeline.

PoocH's whole premise is that measured timelines drive planning — this
package turns the same discipline on the reproduction itself.  It has two
halves, both **off by default** and both strictly read-only with respect to
planning decisions (chosen plans are bit-identical with telemetry on or
off; ``tests/test_obs.py`` enforces it):

* :mod:`repro.obs.logs` — levelled ``stdlib logging`` under the ``repro``
  namespace with an optional JSON formatter.  The library installs a
  ``NullHandler`` so importing it never writes anywhere; call
  :func:`configure_logging` (or pass ``--log-level`` to any CLI
  subcommand) to turn it on.
* :mod:`repro.obs.metrics` — a process-local :class:`MetricsRegistry` of
  counters, gauges, timers and nested wall-clock spans.  Instrumentation
  sites throughout the pipeline report into the *active* registry when one
  is installed (:func:`set_active` / :func:`use_registry`) and reduce to a
  single ``None`` check when none is — the hot paths stay hot.

:meth:`MetricsRegistry.snapshot` renders one ``RunMetrics`` JSON document
(schema :data:`RUN_METRICS_SCHEMA`, validated by
:func:`validate_run_metrics`) with ``search`` / ``engine`` / ``allocator``
/ ``resilience`` sections; the CLI writes it via ``--metrics OUT.json``.
Spans additionally unify with the Chrome-trace exporter
(:class:`repro.analysis.chrometrace.ChromeTraceBuilder`) so ``--trace``
yields a Perfetto-openable picture of the search itself, not just the
simulated timeline.
"""

from repro.obs.logs import LEVELS, JsonFormatter, configure_logging, get_logger
from repro.obs.metrics import (
    ACCEPTED_SCHEMAS,
    RUN_METRICS_SCHEMA,
    SECTIONS,
    MetricsRegistry,
    Span,
    active,
    count,
    gauge,
    gauge_max,
    record,
    set_active,
    span,
    use_registry,
    validate_run_metrics,
)

__all__ = [
    "LEVELS",
    "JsonFormatter",
    "configure_logging",
    "get_logger",
    "ACCEPTED_SCHEMAS",
    "RUN_METRICS_SCHEMA",
    "SECTIONS",
    "MetricsRegistry",
    "Span",
    "active",
    "count",
    "gauge",
    "gauge_max",
    "record",
    "set_active",
    "span",
    "use_registry",
    "validate_run_metrics",
]
