"""Structured, levelled logging for the ``repro`` namespace.

Design constraints (see the package docstring):

* **silent by default** — importing the library must never print.  The
  ``repro`` root logger gets a :class:`logging.NullHandler` and
  ``propagate=False`` at import time, so even Python's last-resort stderr
  handler stays quiet until :func:`configure_logging` opts in.
* **off the hot path** — instrumentation sites log at module level through
  plain ``logging`` calls; when logging is unconfigured those calls bottom
  out in the usual level check.  Sites inside tight loops guard with
  ``log.isEnabledFor``.
* **machine-readable** — ``json_output=True`` swaps the formatter for
  :class:`JsonFormatter`, one JSON object per line, for log shippers.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO

#: every library logger hangs under this name
ROOT = "repro"

#: accepted ``--log-level`` spellings
LEVELS = ("debug", "info", "warning", "error", "critical")


class JsonFormatter(logging.Formatter):
    """One JSON object per record: timestamp, level, logger, message, plus
    any dict passed as ``extra={"data": {...}}`` and exception text."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        data = getattr(record, "data", None)
        if data:
            payload["data"] = data
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace (``get_logger("pooch")`` and
    ``get_logger("repro.pooch")`` are the same logger)."""
    if name != ROOT and not name.startswith(ROOT + "."):
        name = f"{ROOT}.{name}"
    return logging.getLogger(name)


def configure_logging(
    level: str = "info",
    json_output: bool = False,
    stream: IO | None = None,
) -> logging.Logger:
    """Enable library logging: install one stream handler on the ``repro``
    root logger, replacing any handler a previous call installed.

    Args:
        level: one of :data:`LEVELS` (case-insensitive).
        json_output: emit :class:`JsonFormatter` lines instead of text.
        stream: destination, default ``sys.stderr``.
    """
    if level.lower() not in LEVELS:
        raise ValueError(f"unknown log level {level!r}; expected one of {LEVELS}")
    root = logging.getLogger(ROOT)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        JsonFormatter() if json_output else logging.Formatter(
            "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
        )
    )
    root.addHandler(handler)
    root.setLevel(level.upper())
    root.propagate = False
    return root


# silent-by-default: a NullHandler swallows records and propagate=False keeps
# them away from the root logger's last-resort stderr handler
_root = logging.getLogger(ROOT)
if not _root.handlers:
    _root.addHandler(logging.NullHandler())
    _root.propagate = False
