"""Process-local metrics: counters, gauges, timers, and nested spans.

One :class:`MetricsRegistry` collects everything a pipeline run reports;
:meth:`MetricsRegistry.snapshot` renders it as a single ``RunMetrics`` JSON
document.  Instrumentation sites never hold a registry — they read the
module-level *active* registry (:func:`active`) and do nothing when none is
installed, so disabled-mode overhead is one global read per site.

Naming convention: metric names are dot-namespaced, ``<section>.<metric>``.
The snapshot groups the first path component into ``sections`` so consumers
can read ``doc["sections"]["search"]["sims_step1"]`` without knowing every
metric in advance.  Wall-clock-derived values (non-deterministic across
runs) carry ``wall`` in their name; everything else — simulated times,
event counts, byte watermarks — is deterministic for a fixed seed, which
``tests/test_obs.py`` asserts under the FAULT_SEED matrix.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

#: schema identifier stamped into every RunMetrics document.  v1.1 added
#: the structured *records* instrument (e.g. ``search.step2_rounds``);
#: v1.2 added the ``faults`` section (seed-sweep row accounting); v1.3
#: added the ``devices`` section (multi-device stagger planning); v1.4
#: added the ``serve`` section (planning-server request/coalesce/cache-tier
#: accounting).  Documents remain readable by v1 consumers, and older
#: documents remain acceptable to :func:`validate_run_metrics`.
RUN_METRICS_SCHEMA = "repro.obs/run-metrics/v1.4"

#: every schema revision a document may legitimately carry
ACCEPTED_SCHEMAS = ("repro.obs/run-metrics/v1", "repro.obs/run-metrics/v1.1",
                    "repro.obs/run-metrics/v1.2", "repro.obs/run-metrics/v1.3",
                    RUN_METRICS_SCHEMA)

#: sections pre-v1.2 documents carry — validation requires only these for
#: documents that declare an older schema
SECTIONS_V1 = ("search", "engine", "allocator", "resilience")

#: sections a v1.2 document carries (pre-``devices``)
SECTIONS_V1_2 = SECTIONS_V1 + ("faults",)

#: sections a v1.3 document carries (pre-``serve``)
SECTIONS_V1_3 = SECTIONS_V1_2 + ("devices",)

#: sections every RunMetrics document carries, populated or not — consumers
#: (the CI smoke test, the bench artifact reader) rely on their presence
SECTIONS = SECTIONS_V1_3 + ("serve",)

#: required sections per declared schema revision
_REQUIRED_SECTIONS = {
    "repro.obs/run-metrics/v1": SECTIONS_V1,
    "repro.obs/run-metrics/v1.1": SECTIONS_V1,
    "repro.obs/run-metrics/v1.2": SECTIONS_V1_2,
    "repro.obs/run-metrics/v1.3": SECTIONS_V1_3,
    RUN_METRICS_SCHEMA: SECTIONS,
}


@dataclass
class Span:
    """One closed wall-clock interval, relative to the registry's epoch.

    ``depth`` is the nesting level at which the span ran (0 = outermost);
    the Chrome-trace exporter lays spans out one row per depth.
    """

    name: str
    category: str
    start_s: float
    end_s: float
    depth: int
    meta: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


def _json_safe(value):
    """JSON cannot carry inf/nan; map them to None rather than emitting
    invalid output or crashing a run that produced a degenerate metric.
    Containers (structured records) are sanitized recursively."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


class MetricsRegistry:
    """Counters, gauges, timers and spans for one run.

    Not thread-safe by design: the pipeline's parallelism is process-based
    (search workers report through the parent's replay), so a registry only
    ever sees one thread.
    """

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        #: name -> [count, total_seconds]
        self.timers: dict[str, list] = {}
        #: structured (JSON-shaped) values; last write wins, like gauges
        self.records: dict[str, object] = {}
        self.spans: list[Span] = []
        self._depth = 0

    # -- clock -------------------------------------------------------------------

    def now(self) -> float:
        """Seconds since this registry was created."""
        return time.perf_counter() - self.epoch

    # -- scalar instruments ------------------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (creates it at 0)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` (last write wins)."""
        self.gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        """Raise gauge ``name`` to ``value`` if higher (high-water marks)."""
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = value

    def record(self, name: str, value) -> None:
        """Store a structured (JSON-shaped: dicts/lists/scalars) value under
        ``name`` — e.g. the per-round r(X) history of a search.  Rendered
        into the same ``sections`` tree as counters and gauges (schema
        v1.1); last write wins."""
        self.records[name] = value

    # -- time instruments -------------------------------------------------------

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate wall time under ``name`` (count + total seconds)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            bucket = self.timers.setdefault(name, [0, 0.0])
            bucket[0] += 1
            bucket[1] += elapsed

    @contextmanager
    def span(self, name: str, category: str = "phase", **meta) -> Iterator["MetricsRegistry"]:
        """Record a nested span (and a timer entry of the same name)."""
        start = self.now()
        self._depth += 1
        try:
            yield self
        finally:
            self._depth -= 1
            end = self.now()
            self.spans.append(Span(name, category, start, end, self._depth, meta))
            bucket = self.timers.setdefault(name, [0, 0.0])
            bucket[0] += 1
            bucket[1] += end - start

    # -- export -------------------------------------------------------------------

    def sections(self) -> dict[str, dict]:
        """Counters and gauges grouped by their first name component; the
        canonical :data:`SECTIONS` are always present."""
        grouped: dict[str, dict] = {name: {} for name in SECTIONS}
        for source in (self.counters, self.gauges, self.records):
            for name, value in source.items():
                head, _, rest = name.partition(".")
                if rest:
                    grouped.setdefault(head, {})[rest] = _json_safe(value)
        return grouped

    def snapshot(self, meta: dict | None = None) -> dict:
        """The RunMetrics document (JSON-ready, deterministically ordered)."""
        return {
            "schema": RUN_METRICS_SCHEMA,
            "meta": dict(meta or {}),
            "counters": {k: _json_safe(v) for k, v in sorted(self.counters.items())},
            "gauges": {k: _json_safe(v) for k, v in sorted(self.gauges.items())},
            "timers": {
                k: {"count": c, "total_wall_s": t}
                for k, (c, t) in sorted(self.timers.items())
            },
            "records": {k: _json_safe(v) for k, v in sorted(self.records.items())},
            "spans": [
                {
                    "name": sp.name,
                    "category": sp.category,
                    "start_s": sp.start_s,
                    "duration_s": sp.duration_s,
                    "depth": sp.depth,
                    "meta": dict(sp.meta),
                }
                for sp in self.spans
            ],
            "sections": self.sections(),
        }


def validate_run_metrics(doc: dict) -> list[str]:
    """Structural validation of a RunMetrics document.

    Returns a list of human-readable problems; an empty list means the
    document conforms.  The CI smoke test and ``tests/test_obs.py`` both
    call this, so the documented schema and the emitted one cannot drift
    apart silently.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, expected object"]
    if doc.get("schema") not in ACCEPTED_SCHEMAS:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected one of "
            f"{ACCEPTED_SCHEMAS!r}")
    for key, kind in (("meta", dict), ("counters", dict), ("gauges", dict),
                      ("timers", dict), ("spans", list), ("sections", dict)):
        if not isinstance(doc.get(key), kind):
            problems.append(f"{key!r} missing or not a {kind.__name__}")
    # v1 documents predate structured records; when present (v1.1) the
    # block must at least be an object
    if "records" in doc and not isinstance(doc["records"], dict):
        problems.append("'records' present but not an object")
    if isinstance(doc.get("sections"), dict):
        # older documents predate the "faults" (v1.2) and "devices" (v1.3)
        # sections; require only what the declared revision promises
        required = _REQUIRED_SECTIONS.get(doc.get("schema"), SECTIONS_V1)
        for name in required:
            if not isinstance(doc["sections"].get(name), dict):
                problems.append(f"sections.{name} missing or not an object")
    if isinstance(doc.get("counters"), dict):
        for name, value in doc["counters"].items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"counter {name!r} is not a number")
    if isinstance(doc.get("timers"), dict):
        for name, entry in doc["timers"].items():
            if (not isinstance(entry, dict) or "count" not in entry
                    or "total_wall_s" not in entry):
                problems.append(f"timer {name!r} lacks count/total_wall_s")
    if isinstance(doc.get("spans"), list):
        for i, sp in enumerate(doc["spans"]):
            if not isinstance(sp, dict) or not {
                "name", "category", "start_s", "duration_s", "depth"
            } <= set(sp):
                problems.append(f"span #{i} lacks required fields")
    return problems


# -- active-registry plumbing -------------------------------------------------------
#
# Instrumentation sites call the module-level helpers below; each reduces to
# one global read plus a None check when telemetry is off.  The CLI installs
# a registry for the duration of a command; tests use `use_registry`.

_ACTIVE: MetricsRegistry | None = None


def active() -> MetricsRegistry | None:
    """The currently installed registry, or None when telemetry is off."""
    return _ACTIVE


def set_active(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install ``registry`` as the process-local active one; returns the
    previous registry so callers can restore it."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scoped :func:`set_active` (restores the previous registry on exit)."""
    previous = set_active(registry)
    try:
        yield registry
    finally:
        set_active(previous)


def count(name: str, value: float = 1) -> None:
    registry = _ACTIVE
    if registry is not None:
        registry.count(name, value)


def gauge(name: str, value: float) -> None:
    registry = _ACTIVE
    if registry is not None:
        registry.gauge(name, value)


def gauge_max(name: str, value: float) -> None:
    registry = _ACTIVE
    if registry is not None:
        registry.gauge_max(name, value)


def record(name: str, value) -> None:
    registry = _ACTIVE
    if registry is not None:
        registry.record(name, value)


@contextmanager
def span(name: str, category: str = "phase", **meta) -> Iterator[MetricsRegistry | None]:
    """Span on the active registry; a cheap no-op when telemetry is off."""
    registry = _ACTIVE
    if registry is None:
        yield None
        return
    with registry.span(name, category, **meta):
        yield registry
