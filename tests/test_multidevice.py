"""Multi-device simulation: N=1 bit-identity, contention windows, planning.

Three layers of guarantees:

* **N=1 pass-through.**  A single device routed *through* the link arbiter
  (not around it) must reproduce the plain engine bit-for-bit, zoo-wide and
  under seeded duration noise — the multi-device machinery may not perturb
  any existing single-device result.
* **Contention windows.**  Hand-built two-device timelines pin down the
  arbiter's semantics: overlapping same-direction windows serialize,
  opposite directions never cross-block (full duplex), a sufficient stagger
  removes all queueing, and a private (non-shared) link never contends.
* **Planning.**  ``plan_staggered`` always scores the naive all-zeros
  stagger, so its choice can only tie or beat synchronized replicas; the
  aggregate host bound rejects plans whose N-replica swap footprint
  exceeds CPU DRAM, naming the overflowing bytes.
"""

from __future__ import annotations

import os

import pytest

from repro.common.errors import OutOfMemoryError, SimulationError
from repro.common.units import GB, MiB
from repro.faults import FaultInjector, FaultSpec, FaultyDurations
from repro.gpusim import (
    Engine,
    LinkArbiter,
    RunResult,
    StreamName,
    TaskKind,
    TaskRecord,
    ring_allreduce_time,
    simulate_multi_device,
)
from repro.gpusim.fastengine import FastEngine
from repro.gpusim.multidevice import check_host_fit
from repro.hw import CostModel, X86_V100, multi_gpu, scaled_machine
from repro.models import poster_example
from repro.models.zoo import MODEL_ZOO
from repro.pooch import plan_staggered, stagger_candidates
from repro.runtime.durations import CostModelDurations
from repro.runtime.plan import Classification
from repro.runtime.schedule import ScheduleBuilder, ScheduleOptions, build_schedule
from tests.conftest import tiny_machine

#: CI pins a seed matrix through this env var; locally it defaults to 0
FAULT_SEED = int(os.environ.get("FAULT_SEED", "0"))


def _rec(tid, stream, start, end, kind=TaskKind.SWAP_OUT, layer=0):
    return TaskRecord(tid=tid, kind=kind, stream=stream, layer=layer,
                      start=start, end=end)


def _run(records, makespan=None, host_peak=0):
    """A minimal RunResult around hand-built records."""
    return RunResult(
        makespan=makespan if makespan is not None
        else max((r.end for r in records), default=0.0),
        records=list(records),
        device_peak=0,
        host_peak=host_peak,
        device_trace=[],
    )


class TestLinkArbiter:
    def test_overlapping_same_direction_serializes(self):
        # both devices want H2D [0, 1): device 0 wins the tie, device 1
        # waits the full window and carries that slip forward
        win = [_rec("t", StreamName.H2D, 0.0, 1.0, kind=TaskKind.SWAP_IN)]
        arb = LinkArbiter()
        bp = arb.arbitrate([win, win], stagger=(0.0, 0.0))
        assert bp[0] == []
        assert bp[1] == [(0.0, 1.0)]
        d1 = next(g for g in arb.grants if g.device == 1)
        assert d1.granted == 1.0 and d1.delay == 1.0

    def test_opposite_directions_full_duplex(self):
        # H2D on device 0 vs D2H on device 1 at the same instant: the link
        # is full duplex, so neither waits
        w0 = [_rec("out", StreamName.D2H, 0.0, 1.0)]
        w1 = [_rec("in", StreamName.H2D, 0.0, 1.0, kind=TaskKind.SWAP_IN)]
        arb = LinkArbiter()
        bp = arb.arbitrate([w0, w1], stagger=(0.0, 0.0))
        assert bp == [[], []]
        assert all(g.delay == 0.0 for g in arb.grants)

    def test_sufficient_stagger_removes_queueing(self):
        win = [_rec("t", StreamName.D2H, 0.0, 1.0)]
        arb = LinkArbiter()
        bp = arb.arbitrate([win, win], stagger=(0.0, 1.0))
        assert bp == [[], []]

    def test_slip_cascades_within_a_device(self):
        # device 1's first window waits behind device 0; its second window
        # (after a base-timeline gap larger than the slip) is re-requested
        # at start+slip and must wait again for device 0's second window
        w = [
            _rec("a", StreamName.D2H, 0.0, 1.0),
            _rec("b", StreamName.D2H, 2.0, 3.0),
        ]
        arb = LinkArbiter()
        bp = arb.arbitrate([w, w], stagger=(0.0, 0.0))
        assert bp[0] == []
        # first collision: slip 1.  Re-timed "b" requests at 3.0, but the
        # link is busy with device 0's [2,3) then device 1 got it at 3.. wait
        # device0 b runs [2,3), device1 b requests at 2+1=3 -> link free at 3
        # for D2H? device1 a ran [1,2), device0 b ran [2,3): granted 3, no
        # extra slip
        assert bp[1] == [(0.0, 1.0)]

    def test_private_link_never_contends(self):
        win = [_rec("t", StreamName.H2D, 0.0, 1.0, kind=TaskKind.SWAP_IN)]
        arb = LinkArbiter(link_shared=False)
        bp = arb.arbitrate([win, win, win], stagger=(0.0, 0.0, 0.0))
        assert bp == [[], [], []]
        assert all(g.delay == 0.0 for g in arb.grants)

    def test_negative_stagger_rejected(self):
        arb = LinkArbiter()
        with pytest.raises(SimulationError, match="stagger"):
            arb.arbitrate([[], []], stagger=(0.0, -0.5))


class TestTwoDeviceWindows:
    MACHINE2 = multi_gpu(tiny_machine(mem_mib=224), 2)

    def test_contention_extends_makespan(self):
        # two replicas, one overlapping D2H window each: the loser's whole
        # timeline slips by the window length
        base = _run([
            _rec("c", StreamName.COMPUTE, 0.0, 0.5, kind=TaskKind.FWD),
            _rec("o", StreamName.D2H, 0.5, 1.5),
        ])
        res = simulate_multi_device(base, self.MACHINE2)
        assert res.makespan == base.makespan + 1.0
        assert res.per_device[0].contention_delay == 0.0
        assert res.per_device[1].contention_delay == 1.0
        assert res.contention_delay_total == 1.0

    def test_stagger_hides_contention(self):
        base = _run([
            _rec("c", StreamName.COMPUTE, 0.0, 0.5, kind=TaskKind.FWD),
            _rec("o", StreamName.D2H, 0.5, 1.5),
        ])
        res = simulate_multi_device(base, self.MACHINE2, stagger=(0.0, 1.0))
        assert res.contention_delay_total == 0.0
        # device 1 pays only its deliberate offset, not a queueing delay
        assert res.makespan == base.makespan + 1.0
        assert res.per_device[1].done == base.makespan + 1.0

    def test_compute_never_touches_the_link(self):
        base = _run([
            _rec("c", StreamName.COMPUTE, 0.0, 2.0, kind=TaskKind.FWD),
        ])
        res = simulate_multi_device(base, self.MACHINE2)
        assert res.makespan == base.makespan
        assert res.grants == []

    def test_device_records_are_shifted(self):
        base = _run([
            _rec("c", StreamName.COMPUTE, 0.0, 0.5, kind=TaskKind.FWD),
            _rec("o", StreamName.D2H, 0.5, 1.5),
        ])
        res = simulate_multi_device(base, self.MACHINE2)
        d0 = {r.tid: r for r in res.device_records(0)}
        d1 = {r.tid: r for r in res.device_records(1)}
        assert d0["o"].start == 0.5 and d0["o"].end == 1.5
        assert d1["o"].start == 1.5 and d1["o"].end == 2.5
        # the compute task predates the slip breakpoint and stays put
        assert d1["c"].start == 0.0

    def test_allreduce_extends_past_backward(self):
        base = _run([
            _rec("f", StreamName.COMPUTE, 0.0, 1.0, kind=TaskKind.FWD),
            _rec("b", StreamName.COMPUTE, 1.0, 2.0, kind=TaskKind.BWD),
        ])
        grad = 1 * MiB
        res = simulate_multi_device(base, self.MACHINE2, grad_bytes=grad)
        ar = ring_allreduce_time(grad, self.MACHINE2)
        assert ar > 0
        assert res.makespan == pytest.approx(2.0 + ar)
        assert res.per_device[0].backward_end == 2.0

    def test_ring_allreduce_vanishes_at_one_device(self):
        assert ring_allreduce_time(64 * MiB, tiny_machine()) == 0.0
        assert ring_allreduce_time(0, self.MACHINE2) == 0.0


class TestHostBound:
    def test_aggregate_overflow_is_diagnosed(self):
        machine = multi_gpu(tiny_machine(mem_mib=224), 4)
        base = _run([_rec("o", StreamName.D2H, 0.0, 1.0)],
                    host_peak=20 * GB)
        with pytest.raises(OutOfMemoryError) as e:
            check_host_fit(base, machine)
        msg = str(e.value)
        assert "4 devices" in msg and "over by" in msg
        assert e.value.context == "multi-device host swap"

    def test_fit_returns_total(self):
        machine = multi_gpu(tiny_machine(mem_mib=224), 2)
        base = _run([_rec("o", StreamName.D2H, 0.0, 1.0)], host_peak=1 * GB)
        assert check_host_fit(base, machine) == 2 * GB

    def test_simulate_enforces_the_bound(self):
        machine = multi_gpu(tiny_machine(mem_mib=224), 4)
        base = _run([_rec("o", StreamName.D2H, 0.0, 1.0)],
                    host_peak=20 * GB)
        with pytest.raises(OutOfMemoryError, match="host swap space"):
            simulate_multi_device(base, machine)

    def test_planning_share_prevents_overflow(self):
        # the per-device planning share guarantees N x share <= capacity
        machine = multi_gpu(tiny_machine(mem_mib=224), 3)
        assert machine.devices * machine.host_swap_capacity \
            <= machine.cpu_mem_capacity


def _execute(graph, cls, machine, durations=None):
    if durations is None:
        durations = CostModelDurations(graph, CostModel(machine))
    options = ScheduleOptions()
    return Engine(
        build_schedule(graph, cls, durations, options),
        device_capacity=machine.usable_gpu_memory,
        host_capacity=machine.host_swap_capacity,
        validate=False,
    ).run()


class TestSingleDevicePassThrough:
    """N=1 through the arbiter == the plain engine, bit for bit."""

    MACHINE = scaled_machine(X86_V100, mem_scale=0.25, name="x86_quarter")

    def test_poster_identity(self):
        g = poster_example()
        machine = tiny_machine(mem_mib=224)
        base = _execute(g, Classification.all_swap(g), machine)
        res = simulate_multi_device(base, machine, grad_bytes=123 * MiB)
        assert res.makespan == base.makespan  # exact, not approx
        assert res.contention_delay_total == 0.0
        assert res.allreduce_time == 0.0
        assert res.device_records(0) == base.records

    @pytest.mark.parametrize("batch", [2, 8])
    @pytest.mark.parametrize("name", sorted(MODEL_ZOO))
    def test_zoo_identity_under_noise(self, name, batch):
        """Every zoo model, seeded duration noise: the N=1 multi-device
        makespan equals both the full engine's and the fast engine's."""
        graph = MODEL_ZOO[name](batch=batch)
        injector = FaultInjector(FaultSpec(duration_noise=0.1),
                                 seed=FAULT_SEED + batch)
        durations = FaultyDurations(
            CostModelDurations(graph, CostModel(self.MACHINE)), injector
        )
        cls = Classification.all_swap(graph)
        options = ScheduleOptions()
        try:
            base = Engine(
                build_schedule(graph, cls, durations, options),
                device_capacity=self.MACHINE.usable_gpu_memory,
                host_capacity=self.MACHINE.host_swap_capacity,
                validate=False,
            ).run()
        except OutOfMemoryError:
            pytest.skip("all-swap infeasible on the quarter machine")
        res = simulate_multi_device(base, self.MACHINE)
        assert res.makespan == base.makespan  # exact, not approx
        assert res.contention_delay_total == 0.0
        tasks, queues, buffers = ScheduleBuilder(
            graph, cls, durations, options, validate=False
        ).build_raw()
        fast_makespan, _, _ = FastEngine(
            tasks, queues, buffers,
            device_capacity=self.MACHINE.usable_gpu_memory,
            host_capacity=self.MACHINE.host_swap_capacity,
        ).run()
        assert res.makespan == fast_makespan


class TestPlanStaggered:
    MACHINE2 = multi_gpu(tiny_machine(mem_mib=224), 2)

    def _base(self):
        g = poster_example()
        return _execute(g, Classification.all_swap(g),
                        tiny_machine(mem_mib=224))

    def test_chosen_never_worse_than_naive(self):
        plan = plan_staggered(self._base(), self.MACHINE2)
        assert plan.chosen.makespan <= plan.naive.makespan
        assert plan.candidates_evaluated >= 1
        assert len(plan.stagger) == 2 and plan.stagger[0] == 0.0

    def test_deterministic(self):
        base = self._base()
        a = plan_staggered(base, self.MACHINE2)
        b = plan_staggered(base, self.MACHINE2)
        assert a.stagger == b.stagger
        assert a.chosen.makespan == b.chosen.makespan

    def test_single_device_plan_is_identity(self):
        base = self._base()
        plan = plan_staggered(base, tiny_machine(mem_mib=224))
        assert plan.devices == 1
        assert plan.stagger == (0.0,)
        assert plan.chosen.makespan == base.makespan

    def test_candidates_come_from_transfer_windows(self):
        base = self._base()
        deltas = stagger_candidates(base, 2)
        assert deltas and all(d > 0 for d in deltas)
        assert deltas == sorted(deltas)
        longest = max(r.duration for r in base.records
                      if r.stream is not StreamName.COMPUTE)
        assert any(d == pytest.approx(2 * longest) for d in deltas)

    def test_no_transfers_yields_no_candidates(self):
        base = _run([_rec("c", StreamName.COMPUTE, 0.0, 1.0,
                          kind=TaskKind.FWD)])
        assert stagger_candidates(base, 2) == [0.0]
        plan = plan_staggered(base, self.MACHINE2)
        assert plan.chosen.makespan == plan.naive.makespan == base.makespan
