"""The two-step classification search (§4.4)."""

import pytest

from repro.common.errors import OutOfMemoryError
from repro.models import linear_chain, poster_example
from repro.pooch import PoochClassifier, PoochConfig, TimelinePredictor
from repro.runtime import Classification, MapClass, execute, run_profiling
from tests.conftest import tiny_machine


def classify(graph, machine, steps=2, config=None):
    profile = run_profiling(graph, machine)
    clf = PoochClassifier(graph, profile, machine,
                          config or PoochConfig(max_exact_li=4,
                                                step1_sim_budget=300))
    return clf.classify(steps=steps)


@pytest.fixture(scope="module")
def slow():
    return tiny_machine(mem_mib=224, link_gbps=2.0, name="tiny-slow")


@pytest.fixture(scope="module")
def fast():
    return tiny_machine(mem_mib=224, link_gbps=200.0, name="tiny-fast")


class TestStep1:
    def test_never_slower_than_all_swap(self, slow):
        g = poster_example()
        cls, stats = classify(g, slow, steps=1)
        assert stats.time_after_step1 <= stats.time_all_swap

    def test_result_is_feasible(self, slow):
        g = poster_example()
        cls, _ = classify(g, slow, steps=1)
        execute(g, cls, slow)  # must not raise

    def test_keeps_reduce_time_under_slow_link(self, slow):
        g = poster_example()
        cls, stats = classify(g, slow, steps=1)
        assert cls.counts()[MapClass.KEEP] > 0
        assert stats.time_after_step1 < stats.time_all_swap

    def test_no_recompute_after_step1(self, slow):
        g = poster_example()
        cls, _ = classify(g, slow, steps=1)
        assert cls.counts()[MapClass.RECOMPUTE] == 0

    def test_stats_populated(self, slow):
        g = poster_example()
        _, stats = classify(g, slow, steps=1)
        assert stats.overlap is not None
        assert stats.sims_step1 > 0

    def test_budget_respected(self, slow):
        g = poster_example()
        cfg = PoochConfig(max_exact_li=6, step1_sim_budget=10)
        _, stats = classify(g, slow, steps=1, config=cfg)
        # small slack: the budget is checked between simulations
        assert stats.sims_step1 <= 10 + 3

    def test_impossible_network_raises(self):
        # machine too small for even the all-swap working set: the failure
        # surfaces during the profiling iterations, before any search runs
        m = tiny_machine(mem_mib=64)
        g = poster_example()
        with pytest.raises(OutOfMemoryError):
            classify(g, m, steps=1)


class TestStep2:
    def test_full_not_slower_than_step1(self, slow):
        g = poster_example()
        _, stats1 = classify(g, slow, steps=1)
        _, stats2 = classify(g, slow, steps=2)
        assert stats2.time_after_step2 <= stats1.time_after_step1 + 1e-12

    def test_flips_recorded(self, slow):
        g = linear_chain(8, batch=32, channels=32, image=32)
        cls, stats = classify(g, slow)
        assert len(stats.flips_to_recompute) == cls.counts()[MapClass.RECOMPUTE]

    def test_result_feasible_and_matches_prediction(self, slow):
        g = poster_example()
        profile = run_profiling(g, slow)
        pred = TimelinePredictor(g, profile, slow)
        clf = PoochClassifier(g, profile, slow,
                              PoochConfig(max_exact_li=4, step1_sim_budget=300),
                              predictor=pred)
        cls, stats = clf.classify()
        gt = execute(g, cls, slow)
        assert gt.makespan == pytest.approx(stats.time_after_step2, rel=1e-9)

    def test_input_and_dropout_never_recompute(self, slow):
        g = poster_example()
        cls, _ = classify(g, slow)
        for i, c in cls.classes.items():
            if not g[i].op.recomputable:
                assert c is not MapClass.RECOMPUTE


class TestMachineSensitivity:
    def test_slow_link_prefers_recompute(self, slow, fast):
        """The paper's Table 3 effect: the slower the interconnect, the more
        maps flip from swap to recompute."""
        g = linear_chain(10, batch=32, channels=32, image=32)
        cls_slow, _ = classify(g, slow)
        cls_fast, _ = classify(g, fast)
        n_slow = cls_slow.counts()[MapClass.RECOMPUTE]
        n_fast = cls_fast.counts()[MapClass.RECOMPUTE]
        assert n_slow >= n_fast

    def test_fast_link_time_closer_to_ideal(self, slow, fast):
        g = poster_example()
        _, stats_slow = classify(g, slow)
        _, stats_fast = classify(g, fast)
        # overhead that classification must remove is smaller on fast links
        slow_gain = stats_slow.time_all_swap / stats_slow.time_after_step2
        fast_gain = stats_fast.time_all_swap / stats_fast.time_after_step2
        assert slow_gain >= fast_gain * 0.9
