"""VectorEngine == FastEngine == Engine: the lockstep sweep is *bit-identical*.

The vectorized search path (``PoochConfig.vectorize``) rests on the lockstep
replay agreeing with both event engines float-for-float — same makespans,
same per-task start/end times, same allocator high-water marks, and the same
OOM attribution for infeasible plans (the stall diagnosis).  This harness
checks that three ways:

* a three-way differential on fixed plans, random mixed plans, and the
  whole model zoo under seeded duration noise (``FAULT_SEED`` shifts the
  interleavings like the fault property harness);
* the conditional keep-flip tables: a ``run_batch`` row for keep-set S must
  equal a from-scratch ``ScheduleBuilder`` draft for the classification
  that keeps S, replayed on ``FastEngine`` — the compiled family and the
  rebuilt schedule are two independent constructions of the same plan;
* the fallback matrix: draft families the lockstep formulation cannot
  express must refuse at compile time (``VectorUnsupported``), never
  silently diverge.

End-to-end plan identity (``vectorize`` on/off through the full search) is
covered zoo-wide in ``TestSearchPlanIdentity``.
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest

from repro.common.errors import OutOfMemoryError, SimulationError
from repro.faults import FaultInjector, FaultSpec, FaultyDurations
from repro.gpusim import Engine
from repro.gpusim.fastengine import FastEngine
from repro.gpusim.vecengine import (
    VectorEngine,
    VectorTables,
    VectorUnsupported,
    simulate_draft,
)
from repro.hw import CostModel, POWER9_V100, X86_V100, scaled_machine
from repro.models import linear_chain, poster_example, small_cnn
from repro.models.zoo import MODEL_ZOO
from repro.pooch import PoocH, PoochConfig
from repro.runtime.durations import CostModelDurations
from repro.runtime.plan import Classification, MapClass, SwapInPolicy
from repro.runtime.profiler import run_profiling
from repro.runtime.schedule import (
    ScheduleBuilder,
    ScheduleOptions,
    build_schedule,
    keep_flip_specs,
)
from tests.conftest import tiny_machine

#: CI pins a seed matrix through this env var; locally it defaults to 0
FAULT_SEED = int(os.environ.get("FAULT_SEED", "0"))


def _raw_draft(graph, cls, machine, durations=None, *, gap=None, margin=0):
    """EAGER raw draft plus the capacities both engine families use."""
    if durations is None:
        durations = run_profiling(
            graph, machine, forward_refetch_gap=gap
        ).durations()
    options = ScheduleOptions(policy=SwapInPolicy.EAGER,
                              forward_refetch_gap=gap)
    tasks, queues, buffers = ScheduleBuilder(
        graph, cls, durations, options, validate=False
    ).build_raw()
    capacity = machine.usable_gpu_memory - margin
    return (tasks, queues, buffers, capacity, machine.cpu_mem_capacity,
            durations, options)


def assert_three_way(graph, cls, machine, durations=None, **kw):
    """Engine, FastEngine and VectorEngine on one draft: identical makespan,
    per-task start/end times, high-water marks — or identical OOM blame."""
    (tasks, queues, buffers, capacity, host_cap,
     durations, options) = _raw_draft(graph, cls, machine, durations, **kw)
    vec = simulate_draft(tasks, queues, buffers, capacity, host_cap,
                         record_times=True)
    full = Engine(
        build_schedule(graph, cls, durations, options),
        device_capacity=capacity, host_capacity=host_cap, validate=False,
    )
    fast = FastEngine(tasks, queues, buffers, device_capacity=capacity,
                      host_capacity=host_cap)
    try:
        want = full.run()
    except OutOfMemoryError as e:
        with pytest.raises(OutOfMemoryError) as caught:
            fast.run()
        assert caught.value.context == e.context
        assert isinstance(vec.error, OutOfMemoryError)
        assert vec.error.context == e.context
        return
    makespan, device_peak, host_peak = fast.run()
    assert vec.ok, vec.error
    # exact equality throughout — never approx
    assert vec.makespan == want.makespan == makespan
    assert vec.device_peak == want.device_peak == device_peak
    assert vec.host_peak == want.host_peak == host_peak
    assert len(vec.starts) == len(want.records)
    for rec in want.records:
        assert vec.starts[rec.tid] == rec.start
        assert vec.ends[rec.tid] == rec.end


def _random_classification(graph, rng):
    classes = {}
    for m in graph.classifiable_maps():
        options = [MapClass.SWAP, MapClass.KEEP]
        if graph[m].op.recomputable:
            options.append(MapClass.RECOMPUTE)
        classes[m] = rng.choice(options)
    return Classification(classes)


class TestThreeWayEquivalence:
    def test_poster_all_swap(self):
        g = poster_example()
        assert_three_way(g, Classification.all_swap(g),
                         tiny_machine(mem_mib=224))

    def test_poster_all_recompute(self):
        g = poster_example()
        assert_three_way(g, Classification.all_recompute(g),
                         tiny_machine(mem_mib=224))

    def test_in_core_plan(self):
        g = poster_example()
        assert_three_way(g, Classification.all_keep(g), X86_V100)

    def test_all_keep_oom_matches(self):
        # infeasible plans must fail the same way, blaming the same task
        g = poster_example()
        assert_three_way(g, Classification.all_keep(g),
                         tiny_machine(mem_mib=224))

    def test_forward_refetch_gap(self):
        g = linear_chain(6, batch=16, channels=32, image=64)
        assert_three_way(g, Classification.all_swap(g),
                         tiny_machine(mem_mib=224), gap=2)

    def test_random_mixed_plans(self):
        g = small_cnn()
        machine = tiny_machine(mem_mib=160)
        rng = random.Random(7)
        for _ in range(12):
            assert_three_way(g, _random_classification(g, rng), machine)

    def test_random_mixed_plans_near_capacity(self):
        # tighter memory: exercise the OOM/stall-diagnosis branch too
        g = small_cnn()
        machine = tiny_machine(mem_mib=96)
        rng = random.Random(11)
        for _ in range(12):
            assert_three_way(g, _random_classification(g, rng), machine)


class TestZooEquivalenceUnderNoise:
    """Three-way differential for *every* zoo model, at two batch sizes,
    with seeded duration noise on every task."""

    MACHINE = scaled_machine(X86_V100, mem_scale=0.25, name="x86_quarter")

    @pytest.mark.parametrize("batch", [2, 8])
    @pytest.mark.parametrize("name", sorted(MODEL_ZOO))
    def test_zoo_model_equivalence(self, name, batch):
        graph = MODEL_ZOO[name](batch=batch)
        injector = FaultInjector(FaultSpec(duration_noise=0.1),
                                 seed=FAULT_SEED + batch)
        durations = FaultyDurations(
            CostModelDurations(graph, CostModel(self.MACHINE)), injector
        )
        for cls in (Classification.all_swap(graph),
                    Classification.all_recompute(graph),
                    Classification.all_keep(graph)):
            assert_three_way(graph, cls, self.MACHINE, durations)


class TestKeepFlipFamily:
    """A ``run_batch`` row must equal an independent from-scratch draft for
    the classification it encodes — compiled conditional tables vs a fresh
    ``ScheduleBuilder`` build, agreeing feasible-for-feasible and
    OOM-context-for-OOM-context."""

    def _family(self, graph, machine):
        base = Classification.all_swap(graph)
        (tasks, queues, buffers, capacity, host_cap,
         durations, options) = _raw_draft(graph, base, machine)
        maps = sorted(graph.classifiable_maps())
        flips = keep_flip_specs(tasks, buffers, maps)
        tables = VectorTables(tasks, queues, buffers, capacity, host_cap,
                              flips)
        return (VectorEngine(tables), [f.map_id for f in flips], base,
                durations, capacity, host_cap)

    def _check(self, graph, machine, seed, rows=16):
        engine, maps, base, durations, capacity, host_cap = self._family(
            graph, machine)
        rng = random.Random(seed)
        keep = np.zeros((rows, len(maps)), bool)
        for r in range(rows):
            for c in range(len(maps)):
                keep[r, c] = rng.random() < 0.5
        outs = engine.run_batch(keep)
        options = ScheduleOptions(policy=SwapInPolicy.EAGER)
        for r, out in enumerate(outs):
            cls = base.with_classes(
                {m: MapClass.KEEP for c, m in enumerate(maps) if keep[r, c]})
            tasks, queues, buffers = ScheduleBuilder(
                graph, cls, durations, options, validate=False
            ).build_raw()
            fast = FastEngine(tasks, queues, buffers,
                              device_capacity=capacity,
                              host_capacity=host_cap)
            try:
                makespan, device_peak, host_peak = fast.run()
            except OutOfMemoryError as e:
                assert isinstance(out.error, OutOfMemoryError)
                assert out.error.context == e.context
                continue
            assert out.ok, out.error
            assert out.makespan == makespan
            assert out.device_peak == device_peak
            assert out.host_peak == host_peak

    def test_small_cnn_family(self):
        self._check(small_cnn(), tiny_machine(mem_mib=160), FAULT_SEED + 1)

    def test_small_cnn_family_near_capacity(self):
        self._check(small_cnn(), tiny_machine(mem_mib=96), FAULT_SEED + 2)

    def test_poster_family(self):
        self._check(poster_example(), tiny_machine(mem_mib=224),
                    FAULT_SEED + 3)

    def test_resnet18_family(self):
        self._check(MODEL_ZOO["resnet18"](batch=4),
                    scaled_machine(X86_V100, mem_scale=0.25),
                    FAULT_SEED + 4, rows=8)


class TestFallbackMatrix:
    """Inexpressible draft families must refuse at compile time."""

    def _draft(self, policy):
        g = poster_example()
        machine = tiny_machine(mem_mib=224)
        durations = run_profiling(g, machine, policy=policy).durations()
        options = ScheduleOptions(policy=policy)
        return ScheduleBuilder(
            g, Classification.all_swap(g), durations, options,
            validate=False,
        ).build_raw(), machine

    def test_naive_policy_unsupported(self):
        (tasks, queues, buffers), machine = self._draft(SwapInPolicy.NAIVE)
        with pytest.raises(VectorUnsupported):
            VectorTables(tasks, queues, buffers,
                         machine.usable_gpu_memory)

    def test_superneurons_policy_unsupported(self):
        (tasks, queues, buffers), machine = self._draft(
            SwapInPolicy.SUPERNEURONS)
        with pytest.raises(VectorUnsupported):
            VectorTables(tasks, queues, buffers,
                         machine.usable_gpu_memory)

    def test_nonpositive_capacity_rejected(self):
        (tasks, queues, buffers), _machine = self._draft(SwapInPolicy.EAGER)
        with pytest.raises(SimulationError):
            VectorTables(tasks, queues, buffers, 0)

    def test_predictor_gates_on_refetch_gap(self):
        # the integration layer must not even try to vectorize drafts the
        # flip family cannot describe (forward re-fetch reads the host
        # instance a keep flip deletes)
        from repro.pooch.predictor import TimelinePredictor

        g = poster_example()
        machine = tiny_machine(mem_mib=224)
        profile = run_profiling(g, machine, forward_refetch_gap=2)
        predictor = TimelinePredictor(g, profile, machine,
                                      forward_refetch_gap=2, vectorize=True)
        assert predictor.vector_flip_index() is None


class TestSearchPlanIdentity:
    """``vectorize`` flips how step-1/step-2 outcomes are *computed*, never
    what the search returns: zoo-wide, the chosen plan, its predicted time
    and the full search accounting must be bit-identical on/off."""

    MACHINES = [
        scaled_machine(X86_V100, mem_scale=0.25, name="x86_quarter"),
        scaled_machine(POWER9_V100, mem_scale=0.25, name="p9_quarter"),
    ]

    @pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
    @pytest.mark.parametrize("name", sorted(MODEL_ZOO))
    def test_zoo_plan_identity(self, name, machine):
        graph = MODEL_ZOO[name](batch=2)
        try:
            profile = run_profiling(graph, machine)
        except OutOfMemoryError:
            pytest.skip("all-swap profiling infeasible at this scale")
        results = {}
        for vec in (True, False):
            cfg = PoochConfig(vectorize=vec)
            res = PoocH(machine, cfg).optimize(graph, profile)
            s = res.stats
            results[vec] = (
                res.classification.key(), res.predicted.time,
                res.predicted.peak_memory, s.sims_step1, s.sims_step2,
                s.time_after_step1, s.time_after_step2, s.leaves_evaluated,
                tuple(sorted(s.r_values.items())),
                tuple(s.flips_to_recompute),
            )
        assert results[True] == results[False]

    def test_vectorized_search_actually_vectorizes(self):
        machine = self.MACHINES[0]
        graph = MODEL_ZOO["resnet18"](batch=2)
        res = PoocH(machine, PoochConfig()).optimize(graph)
        assert res.stats.sims_vectorized > 0
        assert res.stats.vector_sweeps > 0
