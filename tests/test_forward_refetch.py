"""Forward re-fetch (extension): long skip connections leave the GPU between
distant forward consumers instead of staying pinned (the paper's §3.1 rule
keeps a swapped map resident until its last forward consumer)."""

import numpy as np
import pytest

from repro.common.errors import OutOfMemoryError
from repro.common.units import MiB
from repro.graph import GraphBuilder
from repro.gpusim import StreamName, TaskKind
from repro.hw import CostModel, X86_V100
from repro.models import unet
from repro.pooch import PoocH, PoochConfig
from repro.runtime import (
    Classification,
    CostModelDurations,
    MapClass,
    ScheduleOptions,
    build_schedule,
    execute,
)
from repro.runtime.numeric import run_numeric
from tests.conftest import tiny_machine


def skip_net(batch=8, channels=16, image=32, middle=6):
    """input -> stem -> [middle cheap layers] -> concat(stem, tail): the stem
    output is consumed once early and once ``middle`` layers later."""
    b = GraphBuilder("skipnet")
    x = b.input((batch, 3, image, image))
    stem = b.conv(x, channels, ksize=3, pad=1, activation="relu", name="stem")
    h = stem
    for i in range(middle):
        h = b.conv(h, channels, ksize=3, pad=1, activation="relu",
                   name=f"mid{i}")
    h = b.concat([stem, h], name="join")
    h = b.global_avg_pool(h, name="gap")
    h = b.linear(h, 4, name="head")
    b.loss(h)
    return b.build()


def build(graph, cls, gap=None):
    dur = CostModelDurations(graph, CostModel(X86_V100))
    return build_schedule(graph, cls, dur,
                          ScheduleOptions(forward_refetch_gap=gap))


class TestScheduleStructure:
    def test_no_refetch_by_default(self):
        g = skip_net()
        sched = build(g, Classification.all_swap(g))
        assert not any("~f" in tid for tid in sched.tasks)

    def test_refetch_task_created(self):
        g = skip_net()
        sched = build(g, Classification.all_swap(g), gap=3)
        stem = g.by_name("stem").index
        assert f"SI{stem}~f1" in sched.tasks
        si = sched.tasks[f"SI{stem}~f1"]
        assert si.kind is TaskKind.SWAP_IN and si.stream is StreamName.H2D
        assert f"SO{stem}" in si.deps

    def test_late_consumer_reads_refetched_instance(self):
        g = skip_net()
        sched = build(g, Classification.all_swap(g), gap=3)
        stem = g.by_name("stem").index
        join = g.by_name("join").index
        assert f"fm{stem}@f1" in sched.tasks[f"F{join}"].reads
        assert f"fm{stem}@f" not in sched.tasks[f"F{join}"].reads

    def test_swap_out_no_longer_waits_for_late_consumer(self):
        g = skip_net()
        stem = g.by_name("stem").index
        join = g.by_name("join").index
        plain = build(g, Classification.all_swap(g))
        assert f"F{join}" in plain.tasks[f"SO{stem}"].deps
        refetch = build(g, Classification.all_swap(g), gap=3)
        assert f"F{join}" not in refetch.tasks[f"SO{stem}"].deps

    def test_close_consumers_not_segmented(self):
        g = skip_net(middle=2)  # gap of 3 never exceeded
        sched = build(g, Classification.all_swap(g), gap=3)
        assert not any("~f" in tid for tid in sched.tasks)

    def test_keep_maps_unaffected(self):
        g = skip_net()
        sched = build(g, Classification.all_keep(g), gap=2)
        assert not any("~f" in tid for tid in sched.tasks)


class TestSemantics:
    def test_numeric_bit_exact_with_refetch(self):
        g = skip_net(batch=2, channels=4, image=8, middle=4)
        _, ref = run_numeric(g, Classification.all_keep(g), X86_V100)
        from repro.gpusim import Engine
        from repro.runtime.numeric import NumericExecutor
        ex = NumericExecutor(g, seed=0)
        sched = build(g, Classification.all_swap(g), gap=2)
        ex.attach(sched)
        Engine(sched, X86_V100.usable_gpu_memory,
               X86_V100.cpu_mem_capacity, free_hook=ex.on_free).run()
        for l, gr in ref.weight_grads.items():
            for n, v in gr.items():
                assert np.array_equal(v, ex.weight_grads[l][n])

    def test_forward_peak_drops(self):
        """The headline effect: skips leave the GPU mid-forward."""
        g = skip_net(batch=64, channels=64, image=64, middle=8)
        cls = Classification.all_swap(g)
        plain = execute(g, cls, X86_V100)
        refetch = execute(g, cls, X86_V100,
                          options=ScheduleOptions(forward_refetch_gap=3))
        assert refetch.device_peak < plain.device_peak

    def test_refetch_adds_a_transfer_but_unblocks_the_d2h_queue(self):
        g = skip_net(batch=64, channels=64, image=64, middle=8)
        cls = Classification.all_swap(g)
        plain = execute(g, cls, X86_V100)
        refetch = execute(g, cls, X86_V100,
                          options=ScheduleOptions(forward_refetch_gap=3))
        # one extra H2D transfer (the mid-forward restore) ...
        assert (len(refetch.records_by_kind(TaskKind.SWAP_IN))
                == len(plain.records_by_kind(TaskKind.SWAP_IN)) + 1)
        # ... yet it can even be *faster*: under the paper's rule the stem's
        # swap-out waits for the late consumer at the head of the FIFO D2H
        # queue, delaying every later swap-out behind it
        assert refetch.makespan <= plain.makespan * 1.1


@pytest.fixture(scope="module")
def unet_floor():
    """(graph, plain all-swap floor in MiB) found empirically."""
    g = unet(16, image=128, base_channels=16, depth=3, num_classes=4)
    cls = Classification.all_swap(g)
    hi = int(g.training_memory_bytes() / MiB)
    floor = hi
    for mem in range(hi, 32, -16):
        try:
            execute(g, cls, tiny_machine(mem_mib=mem, link_gbps=4.0))
            floor = mem
        except OutOfMemoryError:
            break
    return g, floor


class TestUnetEnablement:
    def test_unet_below_skip_floor(self, unet_floor):
        """A machine below the skip-sum forward floor: infeasible under the
        paper's rule, feasible with forward re-fetch."""
        g, floor = unet_floor
        cls = Classification.all_swap(g)
        m = tiny_machine(mem_mib=int(floor * 0.9), link_gbps=4.0)
        with pytest.raises(OutOfMemoryError):
            execute(g, cls, m)
        r = execute(g, cls, m, options=ScheduleOptions(forward_refetch_gap=8))
        assert r.device_peak <= m.usable_gpu_memory

    def test_pooch_with_refetch(self, unet_floor):
        g, floor = unet_floor
        m = tiny_machine(mem_mib=int(floor * 0.9), link_gbps=4.0)
        cfg = PoochConfig(max_exact_li=3, step1_sim_budget=150,
                          forward_refetch_gap=8)
        res = PoocH(m, cfg).optimize(g)
        gt = res.execute(m)
        assert gt.device_peak <= m.usable_gpu_memory
        assert gt.makespan == pytest.approx(res.predicted.time, rel=1e-9)
