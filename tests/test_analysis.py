"""Timeline analysis: interval math, idle extraction, ASCII rendering,
report tables."""

import pytest

from repro.analysis import (
    Table,
    format_table,
    hidden_fraction,
    idle_intervals,
    idle_overlap,
    interval_overlap,
    render_timeline,
    total_idle,
)
from repro.gpusim import RunResult, StreamName, TaskKind, TaskRecord


def rec(tid, kind, stream, layer, start, end):
    return TaskRecord(tid, kind, stream, layer, start, end)


@pytest.fixture
def simple_result():
    records = [
        rec("F0", TaskKind.FWD, StreamName.COMPUTE, 0, 0.0, 1.0),
        rec("F1", TaskKind.FWD, StreamName.COMPUTE, 1, 2.0, 3.0),
        rec("SO0", TaskKind.SWAP_OUT, StreamName.D2H, 0, 0.5, 2.5),
        rec("SI0", TaskKind.SWAP_IN, StreamName.H2D, 0, 3.0, 4.0),
    ]
    return RunResult(makespan=4.0, records=records, device_peak=0,
                     host_peak=0, device_trace=[])


class TestIntervalMath:
    def test_overlap_basic(self):
        assert interval_overlap((0.0, 2.0), [(1.0, 3.0)]) == 1.0

    def test_overlap_disjoint(self):
        assert interval_overlap((0.0, 1.0), [(2.0, 3.0)]) == 0.0

    def test_overlap_multiple(self):
        assert interval_overlap((0.0, 10.0), [(1.0, 2.0), (3.0, 5.0)]) == 3.0

    def test_overlap_contained(self):
        assert interval_overlap((1.0, 2.0), [(0.0, 10.0)]) == 1.0


class TestIdle:
    def test_idle_intervals(self, simple_result):
        gaps = idle_intervals(simple_result, StreamName.COMPUTE)
        assert gaps == [(1.0, 2.0), (3.0, 4.0)]

    def test_total_idle(self, simple_result):
        assert total_idle(simple_result, StreamName.COMPUTE) == 2.0

    def test_idle_with_span(self, simple_result):
        gaps = idle_intervals(simple_result, StreamName.COMPUTE,
                              span=(0.0, 3.0))
        assert gaps == [(1.0, 2.0)]

    def test_idle_empty_stream(self):
        r = RunResult(makespan=1.0, records=[], device_peak=0, host_peak=0,
                      device_trace=[])
        assert idle_intervals(r, StreamName.D2H, span=(0.0, 1.0)) == [(0.0, 1.0)]


class TestHiding:
    def test_fully_hidden_swap(self, simple_result):
        busy = simple_result.busy_intervals(StreamName.COMPUTE)
        so = simple_result.record_of("SO0")
        # SO0 spans 0.5..2.5; compute busy 0..1 and 2..3 => 1.0s hidden of 2.0
        assert interval_overlap((so.start, so.end), busy) == 1.0
        assert idle_overlap(so, busy) == 1.0
        assert hidden_fraction(so, busy) == 0.5

    def test_unhidden_swap_in(self, simple_result):
        busy = simple_result.busy_intervals(StreamName.COMPUTE)
        si = simple_result.record_of("SI0")
        assert hidden_fraction(si, busy) == 0.0

    def test_zero_duration_counts_hidden(self):
        r = rec("x", TaskKind.SWAP_IN, StreamName.H2D, 0, 1.0, 1.0)
        assert hidden_fraction(r, []) == 1.0


class TestRender:
    def test_render_contains_streams(self, simple_result):
        art = render_timeline(simple_result, width=40)
        assert "compute" in art and "d2h" in art and "h2d" in art

    def test_render_glyphs(self, simple_result):
        art = render_timeline(simple_result, width=40, label_layers=False)
        assert "F" in art and "o" in art and "i" in art

    def test_render_empty(self):
        r = RunResult(makespan=0.0, records=[], device_peak=0, host_peak=0,
                      device_trace=[])
        assert "empty" in render_timeline(r)

    def test_render_real_run(self, poster, x86):
        from repro.runtime import Classification, execute
        result = execute(poster, Classification.all_swap(poster), x86)
        art = render_timeline(result, width=100)
        assert len(art.splitlines()) == 4


class TestReportTable:
    def test_alignment(self):
        t = Table("demo", ["name", "value"])
        t.add("a", 1.0)
        t.add("longer-name", 123456.0)
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "== demo =="
        assert len({len(l) for l in lines[1:]}) <= 2  # header/body aligned

    def test_wrong_arity(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_float_formatting(self):
        t = Table("demo", ["v"])
        t.add(0.123456)
        t.add(12.3456)
        t.add(1234.56)
        body = t.render().splitlines()[3:]
        assert body[0].strip() == "0.123"
        assert body[2].strip() == "1235"

    def test_format_table_direct(self):
        out = format_table("t", ["x"], [["1"], ["2"]])
        assert out.count("\n") == 4


class TestChromeTrace:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.models import poster_example
        from repro.runtime import Classification, execute
        from repro.hw import X86_V100
        g = poster_example()
        return execute(g, Classification.all_swap(g), X86_V100)

    def test_event_structure(self, result):
        from repro.analysis import to_chrome_trace
        trace = to_chrome_trace(result, name="t")
        events = trace["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == len(result.records)
        # microsecond timestamps, non-negative durations
        assert all(e["dur"] >= 0 for e in slices)
        # all three stream rows named
        names = [e for e in events if e["ph"] == "M"
                 and e["name"] == "thread_name"]
        assert len(names) == 3

    def test_memory_counter_track(self, result):
        from repro.analysis import to_chrome_trace
        counters = [e for e in to_chrome_trace(result)["traceEvents"]
                    if e["ph"] == "C"]
        assert counters
        assert all("bytes_in_use" in e["args"] for e in counters)

    def test_write_valid_json(self, result, tmp_path):
        import json
        from repro.analysis import write_chrome_trace
        path = tmp_path / "trace.json"
        write_chrome_trace(result, path)
        data = json.loads(path.read_text())
        assert "traceEvents" in data

    def test_cli_trace_flag(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "t.json"
        assert main(["timeline", "mlp", "--batch", "8", "--plan", "swap",
                     "--trace", str(path)]) == 0
        assert path.exists()
