"""Unit tests for the fault-injection & graceful-degradation subsystem."""

import pytest

from repro.common.errors import (
    FaultError,
    OutOfMemoryError,
    SpuriousOOMError,
    TransferFaultError,
)
from repro.common.units import MiB
from repro.faults import (
    FaultInjector,
    FaultSpec,
    FaultyDurations,
    FaultyMemoryPool,
    RetryPolicy,
    apply_transfer_faults,
    execute_resilient,
    fallback_chain,
)
from repro.hw import CostModel, X86_V100, degraded_machine
from repro.models import poster_example, small_cnn
from repro.pooch import PoocH
from repro.runtime import Classification, MapClass, execute
from repro.runtime.durations import CostModelDurations
from repro.runtime.schedule import ScheduleOptions, build_schedule
from tests.conftest import tiny_machine


class ScriptedInjector(FaultInjector):
    """Deterministic test double: faults fire exactly where scripted."""

    def __init__(self, fail_transfers=None, fail_allocs=None,
                 spec=None) -> None:
        super().__init__(spec or FaultSpec(), seed=0)
        self.fail_transfers = fail_transfers or {}  # (epoch, tid) -> failures
        self.fail_allocs = fail_allocs or set()     # (attempt, pool, buffer)

    def transfer_failures(self, tid, cap, epoch=0):
        return self.fail_transfers.get((epoch, tid), 0)

    def spurious_oom(self, pool, buffer, attempt):
        return (attempt, pool, buffer) in self.fail_allocs


class TestFaultSpec:
    def test_defaults_are_inert(self):
        assert not FaultSpec().active
        assert FaultSpec.parse("").describe() == "none"
        assert not FaultSpec.parse("none").active

    def test_parse_roundtrip(self):
        spec = FaultSpec.parse("duration_noise=0.1,stall_prob=0.05")
        assert spec.duration_noise == 0.1
        assert spec.stall_prob == 0.05
        assert spec.active
        assert FaultSpec.parse(spec.describe()) == spec

    @pytest.mark.parametrize("text", [
        "bogus=1", "duration_noise", "duration_noise=abc",
        "duration_noise=1.5", "bandwidth_factor=0", "stall_prob=-0.1",
        "duration_noise=0.1,duration_noise=0.2",
    ])
    def test_bad_specs_rejected(self, text):
        with pytest.raises(FaultError):
            FaultSpec.parse(text)

    def test_duplicate_key_names_the_key(self):
        # a silent last-wins would make "duration_noise=0.1,duration_noise=0"
        # quietly disable the fault the user thought they enabled
        with pytest.raises(FaultError, match="duplicate.*'stall_prob'"):
            FaultSpec.parse("stall_prob=0.1,oom_prob=0.01,stall_prob=0.2")


class TestInjectorDeterminism:
    def test_keyed_draws_are_pure(self):
        inj = FaultInjector("duration_noise=0.2", seed=9)
        assert inj.duration_factor("fwd", 3) == inj.duration_factor("fwd", 3)
        assert inj.duration_factor("fwd", 3) != inj.duration_factor("fwd", 4)
        assert inj.duration_factor("fwd", 3) != inj.duration_factor("bwd", 3)

    def test_seed_changes_draws(self):
        a = FaultInjector("duration_noise=0.2", seed=1)
        b = FaultInjector("duration_noise=0.2", seed=2)
        assert a.duration_factor("fwd", 3) != b.duration_factor("fwd", 3)

    def test_epoch_rekeys_transfer_draws(self):
        inj = FaultInjector("stall_prob=0.5", seed=4)
        draws = {inj.transfer_failures("T1", 10, epoch=e) for e in range(20)}
        assert len(draws) > 1  # transient conditions vary per epoch

    def test_inert_spec_is_identity(self):
        inj = FaultInjector(None, seed=123)
        assert inj.duration_factor("fwd", 0) == 1.0
        assert inj.transfer_slowdown() == 1.0
        assert inj.transfer_failures("T", 3) == 0
        assert not inj.spurious_oom("gpu", "b", 0)
        assert inj.host_capacity(1000) == 1000


class TestFaultyDurations:
    def test_noise_applied_and_pure(self):
        g = small_cnn()
        base = CostModelDurations(g, CostModel(X86_V100))
        noisy = FaultyDurations(base, FaultInjector("duration_noise=0.3", 7))
        assert noisy.fwd(1) == noisy.fwd(1)  # pure: schedule rebuilds agree
        factors = {noisy.fwd(l.index) / base.fwd(l.index) for l in g
                   if base.fwd(l.index) > 0}
        assert len(factors) > 1  # per-layer, not global

    def test_bandwidth_factor_slows_transfers_only(self):
        g = small_cnn()
        base = CostModelDurations(g, CostModel(X86_V100))
        slow = FaultyDurations(base, FaultInjector("bandwidth_factor=0.5", 0))
        m = next(iter(Classification.all_swap(g).classes))
        assert slow.swap_out(m) == pytest.approx(2 * base.swap_out(m))
        assert slow.swap_in(m) == pytest.approx(2 * base.swap_in(m))
        assert slow.fwd(1) == base.fwd(1)


class TestFaultyMemoryPool:
    def test_spurious_only_when_it_would_fit(self):
        inj = ScriptedInjector(fail_allocs={(0, "gpu", "a"), (0, "gpu", "big")})
        pool = FaultyMemoryPool(1 * MiB, "gpu", inj, attempt=0)
        with pytest.raises(SpuriousOOMError):
            pool.malloc("a", 1024, 0.0)
        # a genuine shortfall is NOT reported as spurious
        with pytest.raises(OutOfMemoryError) as e:
            pool.malloc("big", 2 * MiB, 0.0)
        assert not isinstance(e.value, SpuriousOOMError)

    def test_unscripted_allocations_succeed(self):
        pool = FaultyMemoryPool(1 * MiB, "gpu", ScriptedInjector(), attempt=0)
        pool.malloc("a", 1024, 0.0)
        assert pool.in_use > 0


class TestTransferFaults:
    def _schedule(self, graph, machine):
        return build_schedule(
            graph, Classification.all_swap(graph),
            CostModelDurations(graph, CostModel(machine)), ScheduleOptions())

    def test_retries_charge_stall_and_backoff(self):
        g = small_cnn()
        sched = self._schedule(g, X86_V100)
        tid = next(t.tid for t in sched.tasks.values()
                   if t.stream.value != "compute")
        before = sched.tasks[tid].duration
        inj = ScriptedInjector(fail_transfers={(1, tid): 2},
                               spec=FaultSpec(stall_prob=0.5, stall_time=1e-3))
        retry = RetryPolicy(max_transfer_retries=3)
        retries = apply_transfer_faults(sched, inj, retry, epoch=1)
        assert retries == 2
        expected = before + 2 * 1e-3 + retry.backoff(0) + retry.backoff(1)
        assert sched.tasks[tid].duration == pytest.approx(expected)

    def test_budget_exhausted_raises(self):
        g = small_cnn()
        sched = self._schedule(g, X86_V100)
        tid = next(t.tid for t in sched.tasks.values()
                   if t.stream.value != "compute")
        inj = ScriptedInjector(fail_transfers={(1, tid): 4})
        with pytest.raises(TransferFaultError) as e:
            apply_transfer_faults(sched, inj,
                                  RetryPolicy(max_transfer_retries=3), epoch=1)
        assert e.value.tid == tid
        assert e.value.attempts == 4


class TestFallbackChain:
    def test_declared_order(self):
        g = poster_example()
        cls = Classification.all_keep(g)
        chain = fallback_chain(g, cls)
        assert [name for name, _ in chain] == [
            "chosen-plan", "swap-all", "recompute-all"]

    def test_deduplicates_identical_plans(self):
        g = poster_example()
        chain = fallback_chain(g, Classification.all_swap(g))
        assert [name for name, _ in chain] == ["chosen-plan", "recompute-all"]


class TestExecuteResilient:
    def test_clean_path_bit_identical_to_execute(self):
        g = poster_example()
        machine = tiny_machine(mem_mib=224)
        cls = Classification.all_swap(g)
        plain = execute(g, cls, machine)
        robust = execute_resilient(g, cls, machine)
        assert robust.makespan == plain.makespan
        assert robust.plan_used == "chosen-plan"
        assert not robust.degraded

    def test_spurious_oom_retried_then_succeeds(self):
        g = poster_example()
        machine = tiny_machine(mem_mib=224)
        # epoch 1's very first allocation transiently fails; epoch 2 is clean
        inj = ScriptedInjector(fail_allocs={(1, "gpu", "params")})
        robust = execute_resilient(g, Classification.all_swap(g), machine,
                                   faults=inj)
        assert robust.plan_used == "chosen-plan"
        assert robust.attempts == 2
        assert not robust.degraded

    def test_transfer_budget_exhausted_engages_fallback(self):
        from repro.gpusim import TaskKind

        g = poster_example()
        # big enough that the recompute-all fallback is actually feasible
        machine = tiny_machine(mem_mib=512)
        cls = Classification.all_swap(g).with_class(1, MapClass.KEEP)
        sched = build_schedule(g, cls,
                               CostModelDurations(g, CostModel(machine)),
                               ScheduleOptions())
        # permanently kill the swap-out of a *recomputable* map: the chosen
        # plan and swap-all both need it, recompute-all does not
        tid = next(t.tid for t in sched.tasks.values()
                   if t.kind is TaskKind.SWAP_OUT
                   and g[t.layer].op.recomputable)
        inj = ScriptedInjector(fail_transfers={(e, tid): 99
                                               for e in range(1, 10)})
        robust = execute_resilient(g, cls, machine, faults=inj)
        assert robust.degraded
        assert robust.fallbacks[0].from_plan == "chosen-plan"
        assert robust.plan_used == "recompute-all"
        assert "failed" in robust.fallbacks[0].reason

    def test_real_oom_degrades_to_swap_all(self):
        g = poster_example()
        machine = tiny_machine(mem_mib=224)
        robust = execute_resilient(g, Classification.all_keep(g), machine)
        assert robust.degraded
        assert robust.plan_used == "swap-all"
        assert robust.fallbacks[0].from_plan == "chosen-plan"

    def test_chain_exhaustion_propagates(self):
        g = poster_example()
        # 16 MiB fits nothing: every chain entry genuinely OOMs
        machine = tiny_machine(mem_mib=16)
        with pytest.raises(OutOfMemoryError):
            execute_resilient(g, Classification.all_keep(g), machine)

    def test_host_capacity_pressure_respected(self):
        g = poster_example()
        machine = tiny_machine(mem_mib=224)
        inj = FaultInjector(FaultSpec(host_capacity_factor=0.5), seed=0)
        robust = execute_resilient(g, Classification.all_swap(g), machine,
                                   faults=inj)
        assert robust.result.host_peak <= inj.host_capacity(
            machine.cpu_mem_capacity)

    def test_describe_mentions_fallbacks(self):
        g = poster_example()
        machine = tiny_machine(mem_mib=224)
        robust = execute_resilient(g, Classification.all_keep(g), machine)
        text = robust.describe()
        assert "swap-all" in text and "fallback" in text


class TestDegradedMachine:
    def test_scales_link_and_host(self):
        m = degraded_machine(X86_V100, bandwidth_factor=0.5,
                             host_capacity_factor=0.25)
        assert m.h2d_bandwidth == X86_V100.h2d_bandwidth * 0.5
        assert m.d2h_bandwidth == X86_V100.d2h_bandwidth * 0.5
        assert m.cpu_mem_capacity == X86_V100.cpu_mem_capacity // 4
        assert m.gpu_mem_capacity == X86_V100.gpu_mem_capacity

    @pytest.mark.parametrize("kw", [
        {"bandwidth_factor": 0.0}, {"bandwidth_factor": 1.5},
        {"host_capacity_factor": -1.0},
    ])
    def test_rejects_bad_factors(self, kw):
        with pytest.raises(ValueError):
            degraded_machine(X86_V100, **kw)


class TestRobustnessReport:
    def test_report_records_degradation_and_renders(self):
        from repro.analysis import robustness_report

        machine = tiny_machine(mem_mib=224)
        report = robustness_report(small_cnn(batch=64), machine,
                                   noise_levels=(0.05, 0.10), seed=1)
        assert len(report.rows) == 2
        assert report.clean_makespan > 0
        for row in report.rows:
            assert row.makespan > 0
            assert row.throughput == pytest.approx(
                report.batch / row.makespan)
        text = report.render()
        assert "robustness" in text
        assert "degradation" in text


class TestPipelineFaults:
    def test_profile_noise_changes_profile_not_truth(self):
        machine = tiny_machine(mem_mib=224)
        g = poster_example()
        clean = PoocH(machine).optimize(g)
        noisy = PoocH(machine, faults="profile_noise=0.2",
                      fault_seed=3).optimize(g)
        assert noisy.profile.fwd != clean.profile.fwd  # classifier misled...
        # ...but ground truth is unchanged: both plans run on the same machine
        assert clean.execute().makespan > 0
        assert noisy.execute_resilient().makespan > 0

    def test_inert_faults_do_not_change_the_plan(self):
        machine = tiny_machine(mem_mib=224)
        g = poster_example()
        a = PoocH(machine).optimize(g)
        b = PoocH(machine, faults=FaultInjector(None, seed=5)).optimize(g)
        assert a.classification.key() == b.classification.key()
