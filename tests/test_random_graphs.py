"""Randomized branchy-graph fuzzing through the whole pipeline.

Generates small random DAGs (conv/BN/pool chains with residual adds between
equal-shape points and optional concat joins), random classifications and
policies, then checks the invariants that hold for *any* graph:

* the schedule builder output validates and executes,
* the predictor agrees exactly with ground truth,
* the numeric backend produces bit-identical gradients to in-core,
* the lockstep vector engine replays the draft bit-identically to both
  event engines (makespan, per-task times, high-water marks, OOM blame).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.errors import OutOfMemoryError
from repro.graph import GraphBuilder
from repro.hw import X86_V100
from repro.pooch import TimelinePredictor
from repro.runtime import (
    Classification,
    MapClass,
    SwapInPolicy,
    execute,
    run_profiling,
)
from repro.runtime.numeric import verify_against_incore
from tests.conftest import tiny_machine


def build_random_graph(layer_picks: list[int], branch_picks: list[int]):
    """A deterministic function of the draw: chain of ops with optional
    residual adds back to earlier equal-shape layers."""
    b = GraphBuilder("fuzz")
    x = b.input((2, 4, 8, 8))
    h = b.conv(x, 4, ksize=3, pad=1, bias=False)  # normalise channel count
    same_shape: list[int] = [h]  # handles with shape (2,4,8,8)
    for n, pick in enumerate(layer_picks):
        kind = pick % 5
        if kind == 0:
            h = b.conv(h, 4, ksize=3, pad=1, bias=False, name=f"c{n}")
        elif kind == 1:
            h = b.batchnorm(h, activation="relu", name=f"b{n}")
        elif kind == 2:
            h = b.relu(h, name=f"r{n}")
        elif kind == 3:
            h = b.conv(h, 4, ksize=1, activation="relu", name=f"k{n}")
        else:
            # residual add back to a random earlier same-shape point
            if same_shape:
                partner = same_shape[branch_picks[n % len(branch_picks)]
                                     % len(same_shape)]
                if partner != h:
                    h = b.add([h, partner], name=f"a{n}")
        if b.spec(h).shape == (2, 4, 8, 8):
            same_shape.append(h)
    h = b.global_avg_pool(h)
    b.loss(b.linear(h, 3))
    return b.build()


def random_classification(graph, class_picks: list[int]) -> Classification:
    maps = sorted(Classification.all_swap(graph).classes)
    classes = {}
    for m, pick in zip(maps, class_picks * (len(maps) // len(class_picks) + 1)):
        options = [MapClass.SWAP, MapClass.KEEP]
        if graph[m].op.recomputable:
            options.append(MapClass.RECOMPUTE)
        classes[m] = options[pick % len(options)]
    return Classification(classes)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(st.integers(0, 4), min_size=4, max_size=12),
    st.lists(st.integers(0, 7), min_size=4, max_size=4),
    st.lists(st.integers(0, 2), min_size=6, max_size=6),
    st.sampled_from(list(SwapInPolicy)),
)
def test_random_graph_executes_and_predicts(layer_picks, branch_picks,
                                            class_picks, policy):
    graph = build_random_graph(layer_picks, branch_picks)
    cls = random_classification(graph, class_picks)
    machine = tiny_machine(mem_mib=64, link_gbps=4.0)
    try:
        gt = execute(graph, cls, machine, policy=policy)
    except OutOfMemoryError:
        gt = None
    profile = run_profiling(graph, machine, policy=policy)
    predictor = TimelinePredictor(graph, profile, machine, policy=policy)
    outcome = predictor.predict(cls)
    if gt is None:
        assert not outcome.feasible
    else:
        assert outcome.feasible
        assert outcome.time == pytest.approx(gt.makespan, rel=1e-12)
        assert outcome.peak_memory == gt.device_peak


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(st.integers(0, 4), min_size=4, max_size=8),
    st.lists(st.integers(0, 7), min_size=4, max_size=4),
    st.lists(st.integers(0, 2), min_size=6, max_size=6),
)
def test_random_graph_gradients_bit_identical(layer_picks, branch_picks,
                                              class_picks):
    graph = build_random_graph(layer_picks, branch_picks)
    cls = random_classification(graph, class_picks)
    verify_against_incore(graph, cls, X86_V100)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(st.integers(0, 4), min_size=4, max_size=12),
    st.lists(st.integers(0, 7), min_size=4, max_size=4),
    st.lists(st.integers(0, 2), min_size=6, max_size=6),
    st.integers(0, 2),
)
def test_random_graph_vector_engine_bit_identical(layer_picks, branch_picks,
                                                  class_picks, mem_pick):
    """Three-way engine differential on random DAGs: the lockstep replay
    must match Engine and FastEngine exactly, including the OOM branch
    (``mem_pick`` shrinks the pool to push some draws out of core)."""
    from tests.test_vecengine import assert_three_way

    graph = build_random_graph(layer_picks, branch_picks)
    cls = random_classification(graph, class_picks)
    machine = tiny_machine(mem_mib=(64, 24, 12)[mem_pick], link_gbps=4.0)
    assert_three_way(graph, cls, machine)
