"""FastEngine == Engine: the search's replay path must be *bit-identical*.

The parallel classifier's determinism argument (DESIGN.md §5) and the
predictor's memo cache both rest on the fast draft-replay engine agreeing
with the full engine float-for-float — same makespans, same peaks, and the
same OOM attribution for infeasible plans.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.common.errors import OutOfMemoryError
from repro.common.units import MiB
from repro.faults import FaultInjector, FaultSpec, FaultyDurations
from repro.gpusim import Engine
from repro.gpusim.fastengine import FastEngine
from repro.hw import CostModel, X86_V100, scaled_machine
from repro.models import linear_chain, poster_example, small_cnn
from repro.models.zoo import MODEL_ZOO
from repro.pooch.predictor import TimelinePredictor
from repro.runtime.durations import CostModelDurations
from repro.runtime.plan import Classification, MapClass, SwapInPolicy
from repro.runtime.profiler import run_profiling
from repro.runtime.schedule import ScheduleBuilder, ScheduleOptions, build_schedule
from tests.conftest import tiny_machine

#: CI pins a seed matrix through this env var; locally it defaults to 0
FAULT_SEED = int(os.environ.get("FAULT_SEED", "0"))


def _engines(graph, cls, machine, *, policy=SwapInPolicy.EAGER, gap=None,
             margin=0):
    """Both engines set up for the same (graph, classification, machine)."""
    durations = run_profiling(
        graph, machine, policy=policy, forward_refetch_gap=gap
    ).durations()
    options = ScheduleOptions(policy=policy, forward_refetch_gap=gap)
    capacity = machine.usable_gpu_memory - margin
    tasks, queues, buffers = ScheduleBuilder(
        graph, cls, durations, options, validate=False
    ).build_raw()
    fast = FastEngine(tasks, queues, buffers, device_capacity=capacity,
                      host_capacity=machine.cpu_mem_capacity)
    full = Engine(
        build_schedule(graph, cls, durations, options),
        device_capacity=capacity,
        host_capacity=machine.cpu_mem_capacity,
        validate=False,
    )
    return fast, full


def assert_equivalent(graph, cls, machine, **kw):
    fast, full = _engines(graph, cls, machine, **kw)
    try:
        want = full.run()
    except OutOfMemoryError as e:
        with pytest.raises(OutOfMemoryError) as caught:
            fast.run()
        assert caught.value.context == e.context
        return
    makespan, device_peak, host_peak = fast.run()
    assert makespan == want.makespan  # exact, not approx
    assert device_peak == want.device_peak
    assert host_peak == want.host_peak


def _random_classification(graph, rng):
    classes = {}
    for m in graph.classifiable_maps():
        options = [MapClass.SWAP, MapClass.KEEP]
        if graph[m].op.recomputable:
            options.append(MapClass.RECOMPUTE)
        classes[m] = rng.choice(options)
    return Classification(classes)


class TestEquivalence:
    @pytest.mark.parametrize("policy", list(SwapInPolicy))
    def test_poster_all_swap(self, policy):
        g = poster_example()
        assert_equivalent(g, Classification.all_swap(g),
                          tiny_machine(mem_mib=224), policy=policy)

    def test_poster_all_recompute(self):
        g = poster_example()
        assert_equivalent(g, Classification.all_recompute(g),
                          tiny_machine(mem_mib=224))

    def test_in_core_plan(self):
        g = poster_example()
        assert_equivalent(g, Classification.all_keep(g), X86_V100)

    def test_all_keep_oom_matches(self):
        # infeasible plans must fail the same way, blaming the same task
        g = poster_example()
        assert_equivalent(g, Classification.all_keep(g),
                          tiny_machine(mem_mib=224))

    def test_capacity_margin(self):
        g = poster_example()
        assert_equivalent(g, Classification.all_swap(g),
                          tiny_machine(mem_mib=224), margin=16 * MiB)

    def test_forward_refetch_gap(self):
        g = linear_chain(6, batch=16, channels=32, image=64)
        assert_equivalent(g, Classification.all_swap(g),
                          tiny_machine(mem_mib=224), gap=2)

    def test_random_mixed_plans(self):
        g = small_cnn()
        machine = tiny_machine(mem_mib=160)
        rng = random.Random(7)
        for _ in range(12):
            assert_equivalent(g, _random_classification(g, rng), machine)

    def test_random_mixed_plans_near_capacity(self):
        # tighter memory: exercise the OOM branch of the comparison too
        g = small_cnn()
        machine = tiny_machine(mem_mib=96)
        rng = random.Random(11)
        for _ in range(12):
            assert_equivalent(g, _random_classification(g, rng), machine)


def assert_equivalent_durations(graph, cls, machine, durations,
                                policy=SwapInPolicy.EAGER):
    """Equivalence check on a caller-supplied duration source (the zoo sweep
    injects noisy durations without paying for a profiling run)."""
    options = ScheduleOptions(policy=policy)
    capacity = machine.usable_gpu_memory
    tasks, queues, buffers = ScheduleBuilder(
        graph, cls, durations, options, validate=False
    ).build_raw()
    fast = FastEngine(tasks, queues, buffers, device_capacity=capacity,
                      host_capacity=machine.cpu_mem_capacity)
    full = Engine(
        build_schedule(graph, cls, durations, options),
        device_capacity=capacity,
        host_capacity=machine.cpu_mem_capacity,
        validate=False,
    )
    try:
        want = full.run()
    except OutOfMemoryError as e:
        with pytest.raises(OutOfMemoryError) as caught:
            fast.run()
        assert caught.value.context == e.context
        return
    makespan, device_peak, host_peak = fast.run()
    assert makespan == want.makespan  # exact, not approx
    assert device_peak == want.device_peak
    assert host_peak == want.host_peak


class TestZooEquivalenceUnderNoise:
    """Differential sweep: FastEngine == Engine for *every* zoo model, at two
    batch sizes, with seeded duration noise on every task.  The noise shifts
    all the interleavings — equivalence must survive arbitrary timings, and
    infeasible plans must OOM with identical attribution."""

    #: quarter-memory V100: big zoo models genuinely out-of-core, toys fit
    MACHINE = scaled_machine(X86_V100, mem_scale=0.25, name="x86_quarter")

    @pytest.mark.parametrize("batch", [2, 8])
    @pytest.mark.parametrize("name", sorted(MODEL_ZOO))
    def test_zoo_model_equivalence(self, name, batch):
        graph = MODEL_ZOO[name](batch=batch)
        injector = FaultInjector(FaultSpec(duration_noise=0.1),
                                 seed=FAULT_SEED + batch)
        durations = FaultyDurations(
            CostModelDurations(graph, CostModel(self.MACHINE)), injector
        )
        for cls in (Classification.all_swap(graph),
                    Classification.all_recompute(graph),
                    Classification.all_keep(graph)):
            assert_equivalent_durations(graph, cls, self.MACHINE, durations)


class TestPredictorIntegration:
    def test_predict_matches_full_engine(self):
        g = poster_example()
        machine = tiny_machine(mem_mib=224)
        profile = run_profiling(g, machine)
        predictor = TimelinePredictor(g, profile, machine)
        cls = Classification.all_swap(g)
        outcome = predictor.predict(cls)
        full = Engine(
            build_schedule(g, cls, profile.durations(), predictor.options),
            device_capacity=machine.usable_gpu_memory,
            host_capacity=machine.cpu_mem_capacity,
            validate=False,
        ).run()
        assert outcome.feasible
        assert outcome.time == full.makespan
        assert outcome.peak_memory == full.device_peak

    def test_timeline_without_prior_predict(self):
        # regression: timeline() used to assume predict() had populated a
        # full-engine cache; it must work standalone
        g = poster_example()
        machine = tiny_machine(mem_mib=224)
        predictor = TimelinePredictor(g, run_profiling(g, machine), machine)
        result = predictor.timeline(Classification.all_swap(g))
        assert result.makespan == predictor.predict(Classification.all_swap(g)).time
        assert result.records  # the full engine keeps the timeline

    def test_timeline_infeasible_raises(self):
        g = poster_example()
        machine = tiny_machine(mem_mib=224)
        predictor = TimelinePredictor(g, run_profiling(g, machine), machine)
        with pytest.raises(OutOfMemoryError, match="infeasible"):
            predictor.timeline(Classification.all_keep(g))

    def test_infeasible_outcome_carries_context(self):
        g = poster_example()
        machine = tiny_machine(mem_mib=224)
        predictor = TimelinePredictor(g, run_profiling(g, machine), machine)
        outcome = predictor.predict(Classification.all_keep(g))
        assert outcome.infeasible
        assert outcome.time == float("inf")
        assert outcome.oom_context
