"""Extension workloads beyond the paper: DenseNet and Transformer."""

import pytest

from repro.common.errors import GraphError
from repro.common.units import GiB
from repro.graph import GraphBuilder, TensorSpec
from repro.graph import ops
from repro.graph.ops import OpKind
from repro.hw import X86_V100
from repro.models import densenet121, densenet169, transformer_encoder
from repro.runtime import Classification
from repro.runtime.numeric import verify_against_incore


class TestDenseNet:
    def test_builds_and_validates(self):
        g = densenet121(2)
        g.validate()
        assert sum(1 for l in g if l.op.kind is OpKind.CONCAT) > 50

    def test_param_count(self):
        # DenseNet-121 has ~8M parameters
        n = densenet121(1).total_param_bytes / 4
        assert 7e6 < n < 10e6

    def test_dense_connectivity_fanout(self):
        g = densenet121(2)
        # inside a dense block, concats are consumed by later layers
        # repeatedly: some map has many consumers
        assert max(len(c) for c in g.consumers) >= 2

    def test_deeper_variant_bigger(self):
        assert len(densenet169(1)) > len(densenet121(1))

    def test_invalid_depth(self):
        from repro.models.densenet import densenet
        with pytest.raises(GraphError):
            densenet(99, 1)

    def test_activation_memory_exceeds_gpu_at_large_batch(self):
        g = densenet121(256)
        assert g.training_memory_bytes() > 16 * GiB

    def test_out_of_core_numerics_tiny(self):
        # a miniature dense block through the numeric backend
        b = GraphBuilder("mini_dense")
        x = b.input((2, 4, 8, 8))
        feats = b.conv(x, 4, ksize=3, pad=1, bias=False)
        for i in range(2):
            h = b.batchnorm(feats, activation="relu", name=f"bn{i}")
            new = b.conv(h, 4, ksize=3, pad=1, bias=False, name=f"c{i}")
            feats = b.concat([feats, new], name=f"cat{i}")
        b.loss(b.linear(b.global_avg_pool(feats), 3))
        g = b.build()
        verify_against_incore(g, Classification.all_swap(g), X86_V100)
        verify_against_incore(g, Classification.all_recompute(g), X86_V100)


class TestTransformerOps:
    def test_token_linear_shapes(self):
        op, out = ops.token_linear(TensorSpec((2, 8, 16)), 32)
        assert out.shape == (2, 8, 32)
        assert op.attrs["token_wise"]

    def test_token_linear_rejects_2d(self):
        with pytest.raises(GraphError):
            ops.token_linear(TensorSpec((2, 8)), 4)

    def test_attention_scores_shape_and_flops(self):
        q = TensorSpec((2, 16, 32))
        op, out = ops.attention_scores(q, q, heads=4)
        assert out.shape == (2, 4, 16, 16)
        assert op.fwd_flops == 2 * 2 * 16 * 16 * 32
        assert op.bwd_needs_input

    def test_attention_scores_head_divisibility(self):
        q = TensorSpec((2, 16, 30))
        with pytest.raises(GraphError):
            ops.attention_scores(q, q, heads=4)

    def test_attention_apply_shape(self):
        scores = TensorSpec((2, 4, 16, 16))
        v = TensorSpec((2, 16, 32))
        op, out = ops.attention_apply(scores, v)
        assert out.shape == (2, 16, 32)

    def test_attention_apply_mismatch(self):
        with pytest.raises(GraphError):
            ops.attention_apply(TensorSpec((2, 4, 16, 16)), TensorSpec((2, 8, 32)))

    def test_softmax_needs_output_only(self):
        op, out = ops.softmax(TensorSpec((2, 4, 8, 8)))
        assert op.bwd_needs_output and not op.bwd_needs_input
        assert out.shape == (2, 4, 8, 8)

    def test_layernorm_params(self):
        op, _ = ops.layernorm(TensorSpec((2, 8, 16)))
        assert op.param_bytes == 2 * 16 * 4
        assert op.bwd_needs_input

    def test_matmul_is_compute_bound(self):
        q = TensorSpec((2, 16, 32))
        op, _ = ops.attention_scores(q, q)
        assert op.compute_bound
        assert op.recomputable


class TestTransformerModel:
    def test_builds(self):
        g = transformer_encoder(batch=2, seq_len=16, d_model=32, heads=4,
                                n_layers=2)
        g.validate()
        kinds = {l.op.kind for l in g}
        assert OpKind.MATMUL in kinds and OpKind.SOFTMAX in kinds
        assert OpKind.LAYERNORM in kinds

    def test_score_tensor_quadratic_in_seq_len(self):
        short = transformer_encoder(batch=1, seq_len=64, d_model=32,
                                    n_layers=1, heads=2)
        long = transformer_encoder(batch=1, seq_len=128, d_model=32,
                                   n_layers=1, heads=2)
        s = short.by_name("blk0_qk").out_spec.nbytes
        l = long.by_name("blk0_qk").out_spec.nbytes
        assert l == 4 * s

    def test_long_sequence_exceeds_gpu(self):
        g = transformer_encoder(batch=16, seq_len=4096, d_model=1024,
                                heads=16, n_layers=12)
        assert g.training_memory_bytes() > 16 * GiB

    def test_out_of_core_gradients_bit_identical(self):
        g = transformer_encoder(batch=2, seq_len=16, d_model=16, heads=2,
                                n_layers=2, num_classes=3)
        verify_against_incore(g, Classification.all_swap(g), X86_V100)
        verify_against_incore(g, Classification.all_recompute(g), X86_V100)

    def test_trains(self):
        from repro.runtime.training import SGD, Trainer
        g = transformer_encoder(batch=4, seq_len=8, d_model=16, heads=2,
                                n_layers=1, num_classes=2)
        rep = Trainer(g, Classification.all_swap(g), X86_V100,
                      optimizer=SGD(lr=0.05)).run(15)
        assert rep.final_loss < rep.losses[0]


class TestMobileNet:
    def test_builds(self):
        from repro.models import mobilenet_v1
        g = mobilenet_v1(2)
        g.validate()
        # depthwise convs present: groups == channels
        assert any(
            l.op.kind is OpKind.CONV
            and l.op.attrs["groups"] == l.out_spec.channels > 1
            for l in g
        )

    def test_param_count(self):
        # ~4.2M parameters
        from repro.models import mobilenet_v1
        n = mobilenet_v1(1).total_param_bytes / 4
        assert 3.5e6 < n < 5e6

    def test_lowest_flops_per_byte(self):
        from repro.models import mobilenet_v1, resnet50
        m = mobilenet_v1(64)
        r = resnet50(64)
        m_ratio = m.total_fwd_flops / m.total_feature_bytes
        r_ratio = r.total_fwd_flops / r.total_feature_bytes
        assert m_ratio < r_ratio  # even less compute to hide behind

    def test_width_multiplier(self):
        from repro.models import mobilenet_v1
        slim = mobilenet_v1(1, width_mult=0.5)
        full = mobilenet_v1(1, width_mult=1.0)
        assert slim.total_param_bytes < full.total_param_bytes / 2.5

    def test_out_of_core_numerics(self):
        from repro.graph import GraphBuilder
        # miniature separable block through the numeric backend
        b = GraphBuilder("mini_mobile")
        x = b.input((2, 4, 8, 8))
        h = b.conv(x, 4, ksize=3, pad=1, groups=4, bias=False, name="dw")
        h = b.batchnorm(h, activation="relu", name="dw_bn")
        h = b.conv(h, 8, ksize=1, bias=False, name="pw")
        h = b.batchnorm(h, activation="relu", name="pw_bn")
        b.loss(b.linear(b.global_avg_pool(h), 3))
        g = b.build()
        verify_against_incore(g, Classification.all_swap(g), X86_V100)
        verify_against_incore(g, Classification.all_recompute(g), X86_V100)

    def test_pooch_prefers_recompute_on_slow_link(self):
        """MobileNet's bandwidth-bound layers on PCIe: recompute share should
        be substantial when memory forces out-of-core choices."""
        from repro.models import mobilenet_v1
        from repro.pooch import PoocH, PoochConfig
        from repro.runtime import MapClass
        from repro.hw import X86_V100
        g = mobilenet_v1(512)  # ~20 GiB training memory
        assert g.training_memory_bytes() > X86_V100.usable_gpu_memory
        res = PoocH(X86_V100, PoochConfig(max_exact_li=4,
                                          step1_sim_budget=200)).optimize(g)
        counts = res.classification.counts()
        assert counts[MapClass.RECOMPUTE] > 0
