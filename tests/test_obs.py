"""Observability subsystem: registry semantics, RunMetrics schema, and the
plan-preservation guarantee (telemetry on == telemetry off, bit for bit).

Run the determinism matrix with e.g. ``FAULT_SEED=3 pytest tests/test_obs.py``.
"""

from __future__ import annotations

import json
import logging
import os

import pytest

from repro.obs import (
    ACCEPTED_SCHEMAS,
    MetricsRegistry,
    RUN_METRICS_SCHEMA,
    SECTIONS,
    configure_logging,
    get_logger,
    metrics,
    use_registry,
    validate_run_metrics,
)

FAULT_SEED = int(os.environ.get("FAULT_SEED", "0"))


class TestRegistry:
    def test_counter_accumulates(self):
        r = MetricsRegistry()
        r.count("a.hits")
        r.count("a.hits", 4)
        assert r.counters["a.hits"] == 5

    def test_gauge_last_write_wins(self):
        r = MetricsRegistry()
        r.gauge("a.level", 3.0)
        r.gauge("a.level", 1.0)
        assert r.gauges["a.level"] == 1.0

    def test_gauge_max_is_high_water(self):
        r = MetricsRegistry()
        r.gauge_max("a.peak", 3.0)
        r.gauge_max("a.peak", 1.0)
        r.gauge_max("a.peak", 7.0)
        assert r.gauges["a.peak"] == 7.0

    def test_timer_accumulates_count_and_total(self):
        r = MetricsRegistry()
        with r.timer("a.work"):
            pass
        with r.timer("a.work"):
            pass
        count, total = r.timers["a.work"]
        assert count == 2
        assert total >= 0.0

    def test_span_nesting_depths(self):
        r = MetricsRegistry()
        with r.span("outer"):
            with r.span("inner"):
                pass
        # spans close innermost-first; depth 0 is the outermost
        assert [(s.name, s.depth) for s in r.spans] == [
            ("inner", 1), ("outer", 0)]
        assert all(s.end_s >= s.start_s for s in r.spans)
        # each span also lands in the timers table
        assert r.timers["outer"][0] == 1
        assert r.timers["inner"][0] == 1

    def test_span_meta_carried(self):
        r = MetricsRegistry()
        with r.span("phase", category="search", graph="g"):
            pass
        assert r.spans[0].category == "search"
        assert r.spans[0].meta == {"graph": "g"}

    def test_sections_always_present(self):
        assert set(SECTIONS) <= set(MetricsRegistry().sections())

    def test_sections_group_by_prefix(self):
        r = MetricsRegistry()
        r.count("search.sims", 9)
        r.gauge("engine.makespan", 0.5)
        sections = r.sections()
        assert sections["search"]["sims"] == 9
        assert sections["engine"]["makespan"] == 0.5

    def test_record_last_write_wins(self):
        r = MetricsRegistry()
        r.record("search.step2_rounds", [{"3": 0.5}])
        r.record("search.step2_rounds", [{"3": 0.5}, {"5": 1.2}])
        assert r.records["search.step2_rounds"] == [{"3": 0.5}, {"5": 1.2}]

    def test_records_land_in_sections(self):
        r = MetricsRegistry()
        r.record("search.step2_rounds", [{"3": 0.5}])
        assert r.sections()["search"]["step2_rounds"] == [{"3": 0.5}]

    def test_snapshot_includes_json_safe_records(self):
        r = MetricsRegistry()
        r.record("search.step2_rounds", [{3: float("inf")}])
        doc = r.snapshot()
        # int keys become strings, non-finite floats become null
        assert doc["records"]["search.step2_rounds"] == [{"3": None}]
        json.dumps(doc)

    def test_snapshot_validates(self):
        r = MetricsRegistry()
        r.count("search.sims")
        with r.span("s", category="search"):
            pass
        doc = r.snapshot(meta={"command": "test"})
        assert doc["schema"] == RUN_METRICS_SCHEMA
        assert validate_run_metrics(doc) == []
        # and survives a JSON round trip unchanged
        assert json.loads(json.dumps(doc)) == doc

    def test_snapshot_maps_nonfinite_to_null(self):
        r = MetricsRegistry()
        r.gauge("a.bad", float("inf"))
        doc = r.snapshot()
        assert doc["gauges"]["a.bad"] is None
        json.dumps(doc)  # must stay valid JSON

    def test_validate_flags_broken_documents(self):
        assert validate_run_metrics([]) != []
        assert validate_run_metrics({"schema": "nope"}) != []
        doc = MetricsRegistry().snapshot()
        del doc["sections"]["search"]
        assert any("sections.search" in p for p in validate_run_metrics(doc))

    def test_validate_accepts_v1_documents(self):
        # a pre-records v1 writer must keep validating (forward compat)
        doc = MetricsRegistry().snapshot()
        doc["schema"] = "repro.obs/run-metrics/v1"
        del doc["records"]
        assert "repro.obs/run-metrics/v1" in ACCEPTED_SCHEMAS
        assert validate_run_metrics(doc) == []

    def test_validate_accepts_v1_2_documents(self):
        # a pre-devices v1.2 writer must keep validating without the
        # "devices" section — only the current schema requires it
        doc = MetricsRegistry().snapshot()
        doc["schema"] = "repro.obs/run-metrics/v1.2"
        del doc["sections"]["devices"]
        assert "repro.obs/run-metrics/v1.2" in ACCEPTED_SCHEMAS
        assert validate_run_metrics(doc) == []
        current = MetricsRegistry().snapshot()
        del current["sections"]["devices"]
        assert any("devices" in p for p in validate_run_metrics(current))

    def test_validate_flags_non_dict_records(self):
        doc = MetricsRegistry().snapshot()
        doc["records"] = ["not", "a", "dict"]
        assert any("records" in p for p in validate_run_metrics(doc))


class TestActiveRegistry:
    def test_module_helpers_noop_when_inactive(self):
        assert metrics.active() is None
        metrics.count("x.y")  # must not raise, must not create state
        metrics.gauge("x.y", 1.0)
        with metrics.span("x"):
            pass
        assert metrics.active() is None

    def test_use_registry_scopes_and_restores(self):
        r = MetricsRegistry()
        with use_registry(r):
            assert metrics.active() is r
            metrics.count("x.hits")
        assert metrics.active() is None
        assert r.counters["x.hits"] == 1


class TestLogging:
    def test_silent_by_default(self):
        logger = logging.getLogger("repro")
        assert logger.propagate is False

    def test_get_logger_namespaced(self):
        assert get_logger("pkg.mod").name == "repro.pkg.mod"
        assert get_logger("repro.pkg").name == "repro.pkg"

    def test_json_formatter_emits_json(self):
        import io

        root = logging.getLogger("repro")
        saved = root.handlers[:], root.level
        stream = io.StringIO()
        configure_logging(level="debug", json_output=True, stream=stream)
        try:
            get_logger("test").info("hello %s", "world")
        finally:
            root.handlers[:] = saved[0]
            root.setLevel(saved[1])
        record = json.loads(stream.getvalue().strip())
        assert record["msg"] == "hello world"
        assert record["level"] == "INFO"
        assert record["logger"] == "repro.test"


class TestPlanPreservation:
    """The acceptance criterion: telemetry must not perturb planning."""

    def _optimize(self, graph, machine, config, faults=None):
        from repro.pooch import PoocH

        return PoocH(machine, config, faults=faults,
                     fault_seed=FAULT_SEED).optimize(graph)

    def test_plans_bit_identical_with_telemetry(self, cnn,
                                                slow_link_machine,
                                                fast_config):
        baseline = self._optimize(cnn, slow_link_machine, fast_config)
        with use_registry(MetricsRegistry()):
            observed = self._optimize(cnn, slow_link_machine, fast_config)
        assert observed.classification.key() == baseline.classification.key()
        assert observed.predicted.time == baseline.predicted.time
        assert observed.stats.sims_step1 == baseline.stats.sims_step1

    def test_plans_bit_identical_under_faults(self, cnn, slow_link_machine,
                                              fast_config):
        spec = "profile_noise=0.05,stall_prob=0.1,oom_prob=0.02"
        baseline = self._optimize(cnn, slow_link_machine, fast_config,
                                  faults=spec)
        with use_registry(MetricsRegistry()):
            observed = self._optimize(cnn, slow_link_machine, fast_config,
                                      faults=spec)
        assert observed.classification.key() == baseline.classification.key()
        assert observed.predicted.time == baseline.predicted.time

    def test_search_metrics_mirror_search_stats(self, cnn, slow_link_machine,
                                                fast_config):
        reg = MetricsRegistry()
        with use_registry(reg):
            result = self._optimize(cnn, slow_link_machine, fast_config)
        s = reg.sections()["search"]
        assert s["sims_step1"] == result.stats.sims_step1
        assert s["sims_step2"] == result.stats.sims_step2
        assert s["leaves_total"] == result.stats.leaves_total
        assert s["subtrees_pruned"] == result.stats.subtrees_pruned
        assert s["time_all_swap"] == result.stats.time_all_swap
        assert s["sims_step2_full"] == result.stats.sims_step2_full
        assert s["sims_step2_resumed"] == result.stats.sims_step2_resumed
        assert s["step2_rounds_run"] == result.stats.step2_rounds
        assert s["r_recomputed"] == result.stats.r_recomputed
        assert s["r_reused"] == result.stats.r_reused
        assert s["keep_probes_elided"] == result.stats.keep_probes_elided
        if result.stats.r_rounds:
            import math

            rounds = s["step2_rounds"]
            assert len(rounds) == len(result.stats.r_rounds)
            # sections are JSON-safe: non-finite r-values render as None
            assert rounds[0] == {
                str(m): (r if math.isfinite(r) else None)
                for m, r in result.stats.r_rounds[0].items()}

    def test_engine_and_allocator_sections_populated(self, cnn,
                                                     slow_link_machine,
                                                     fast_config):
        reg = MetricsRegistry()
        with use_registry(reg):
            self._optimize(cnn, slow_link_machine, fast_config).execute()
        sections = reg.sections()
        assert sections["engine"]["runs"] >= 1
        assert sections["engine"]["tasks"] > 0
        assert sections["allocator"]["device_peak_bytes"] > 0
        assert sections["allocator"]["device_capacity_bytes"] > 0


class TestDeterminism:
    """Same seed, same faults → identical non-wall telemetry."""

    def _faulted_counters(self, graph, machine, config):
        import contextlib

        from repro.common.errors import ReproError
        from repro.pooch import PoocH

        reg = MetricsRegistry()
        with use_registry(reg):
            result = PoocH(
                machine, config,
                faults="profile_noise=0.05,stall_prob=0.2,oom_prob=0.05",
                fault_seed=FAULT_SEED,
            ).optimize(graph)
            # a fault ladder this steep may exhaust the fallback chain; the
            # telemetry must be identical either way
            with contextlib.suppress(ReproError):
                result.execute_resilient()
        gauges = {k: v for k, v in reg.gauges.items() if "wall" not in k}
        return reg.counters, gauges

    def test_telemetry_deterministic_for_fixed_seed(self, cnn,
                                                    slow_link_machine,
                                                    fast_config):
        first = self._faulted_counters(cnn, slow_link_machine, fast_config)
        second = self._faulted_counters(cnn, slow_link_machine, fast_config)
        assert first == second


class TestCliIntegration:
    def test_metrics_flag_writes_valid_document(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "m.json"
        assert main(["optimize", "mlp", "--batch", "8", "--budget", "20",
                     "--metrics", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert validate_run_metrics(doc) == []
        assert doc["meta"]["command"] == "optimize"
        assert doc["sections"]["search"]["sims_step1"] >= 1
        assert doc["sections"]["engine"]["runs"] >= 1
        assert doc["sections"]["resilience"]["fallbacks"] == 0
        assert any(s["name"] == "optimize" for s in doc["spans"])

    def test_trace_flag_unifies_spans_and_run(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "t.json"
        assert main(["optimize", "mlp", "--batch", "8", "--budget", "20",
                     "--trace", str(out)]) == 0
        events = json.loads(out.read_text())["traceEvents"]
        cats = {e.get("cat") for e in events if e["ph"] == "X"}
        # search phases AND simulated tasks coexist in one trace
        assert "search" in cats
        assert "fwd" in cats
        tids = [e["tid"] for e in events
                if e["ph"] == "M" and e["name"] == "thread_name"]
        assert len(tids) == len(set(tids))  # monotonic, no collisions

    def test_metrics_flag_available_on_every_subcommand(self, tmp_path,
                                                        capsys):
        from repro.cli import main

        out = tmp_path / "m.json"
        assert main(["summary", "mlp", "--batch", "8",
                     "--metrics", str(out)]) == 0
        assert validate_run_metrics(json.loads(out.read_text())) == []

    def test_run_subcommand_trace_and_metrics(self, tmp_path, capsys):
        from repro.cli import main

        m, t = tmp_path / "m.json", tmp_path / "t.json"
        assert main(["run", "mlp", "--batch", "8", "--method", "swap-all",
                     "--metrics", str(m), "--trace", str(t)]) == 0
        doc = json.loads(m.read_text())
        assert validate_run_metrics(doc) == []
        assert doc["sections"]["engine"]["runs"] >= 1
        assert t.exists()

    def test_disabled_by_default_leaves_no_registry(self, capsys):
        from repro.cli import main

        assert main(["summary", "mlp", "--batch", "8"]) == 0
        assert metrics.active() is None


class TestMultiRunTrace:
    def test_builder_allocates_fresh_tids_per_run(self, tiny_mlp, x86):
        from repro.analysis import ChromeTraceBuilder
        from repro.runtime import Classification, execute

        first = execute(tiny_mlp, Classification.all_swap(tiny_mlp), x86)
        second = execute(tiny_mlp, Classification.all_keep(tiny_mlp), x86)
        b = ChromeTraceBuilder("multi")
        b.add_run(first, name="swap")
        b.add_run(second, name="keep")
        events = b.build()["traceEvents"]
        names = {e["tid"]: e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert len(names) == 6  # three streams per run, no tid reuse
        slice_tids = {e["tid"] for e in events if e["ph"] == "X"}
        assert slice_tids <= set(names)
        # counter tracks are namespaced per run
        counters = {e["name"] for e in events if e["ph"] == "C"}
        assert counters == {"swap/gpu memory", "keep/gpu memory"}

    def test_legacy_single_run_layout_stable(self, tiny_mlp, x86):
        from repro.analysis import to_chrome_trace
        from repro.runtime import Classification, execute

        result = execute(tiny_mlp, Classification.all_swap(tiny_mlp), x86)
        events = to_chrome_trace(result)["traceEvents"]
        names = {e["tid"]: e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert names == {0: "compute", 1: "d2h", 2: "h2d"}
