"""Event engine semantics, exercised through hand-built schedules."""

import pytest

from repro.common.errors import OutOfMemoryError, ScheduleError
from repro.gpusim import (
    BufferSpec,
    Engine,
    Schedule,
    StreamName,
    Task,
    TaskKind,
)

C, H, D = StreamName.COMPUTE, StreamName.H2D, StreamName.D2H


def make_schedule(tasks: list[Task], buffers: list[BufferSpec] | None = None,
                  meta: dict | None = None) -> Schedule:
    queues: dict[StreamName, list[str]] = {C: [], H: [], D: []}
    for t in tasks:
        queues[t.stream].append(t.tid)
    return Schedule(
        tasks={t.tid: t for t in tasks},
        queues=queues,
        buffers={b.bid: b for b in (buffers or [])},
        meta=meta or {},
    )


def task(tid, stream=C, dur=1.0, kind=TaskKind.FWD, **kw) -> Task:
    return Task(tid=tid, kind=kind, stream=stream, duration=dur, **kw)


class TestSequencing:
    def test_single_task(self):
        r = Engine(make_schedule([task("a", dur=2.5)]), 1024).run()
        assert r.makespan == 2.5
        assert r.records[0].tid == "a"

    def test_fifo_within_stream(self):
        r = Engine(make_schedule([task("a"), task("b"), task("c")]), 1024).run()
        rec = {x.tid: x for x in r.records}
        assert rec["a"].end <= rec["b"].start
        assert rec["b"].end <= rec["c"].start
        assert r.makespan == 3.0

    def test_streams_run_concurrently(self):
        r = Engine(make_schedule([task("a", C), task("b", H), task("c", D)]),
                   1024).run()
        assert r.makespan == 1.0

    def test_deps_across_streams(self):
        r = Engine(
            make_schedule([task("a", C, 1.0), task("b", H, 1.0, deps=("a",))]),
            1024,
        ).run()
        rec = {x.tid: x for x in r.records}
        assert rec["b"].start == rec["a"].end

    def test_start_deps_allow_concurrency(self):
        # b may start when a STARTS, not when it completes
        r = Engine(
            make_schedule([task("a", C, 5.0), task("b", H, 1.0, start_deps=("a",))]),
            1024,
        ).run()
        rec = {x.tid: x for x in r.records}
        assert rec["b"].start == rec["a"].start == 0.0
        assert r.makespan == 5.0

    def test_head_of_line_blocking(self):
        # c is ready but queued behind b which waits for a
        r = Engine(
            make_schedule([
                task("a", C, 3.0),
                task("b", H, 1.0, deps=("a",)),
                task("c", H, 1.0),
            ]),
            1024,
        ).run()
        rec = {x.tid: x for x in r.records}
        assert rec["c"].start >= rec["b"].end

    def test_zero_duration_tasks(self):
        r = Engine(make_schedule([task("a", dur=0.0), task("b", dur=0.0)]),
                   1024).run()
        assert r.makespan == 0.0
        assert len(r.records) == 2


class TestMemory:
    def test_buffer_lifetime(self):
        bufs = [BufferSpec("x", 512, alloc_by="a", free_after=frozenset({"b"}))]
        sched = make_schedule(
            [task("a"), task("b", deps=("a",), reads=("x",))], bufs
        )
        eng = Engine(sched, 1024)
        r = eng.run()
        assert r.device_peak == 512
        assert eng.device.in_use == 0  # freed at the end

    def test_free_waits_for_all_readers(self):
        bufs = [BufferSpec("x", 512, alloc_by="a",
                           free_after=frozenset({"b", "c"}))]
        sched = make_schedule(
            [task("a", dur=1), task("b", deps=("a",), reads=("x",), dur=1),
             task("c", deps=("a",), reads=("x",), dur=1)],
            bufs,
        )
        eng = Engine(sched, 1024)
        eng.run()
        trace = [e for e in eng.device.trace if e.kind == "free"]
        assert trace[0].time == 3.0  # after c, not after b

    def test_memory_gating_stalls(self):
        # b needs memory that only frees when a's buffer is released
        bufs = [
            BufferSpec("x", 768, alloc_by="a", free_after=frozenset({"a"})),
            BufferSpec("y", 768, alloc_by="b", free_after=frozenset({"b"})),
        ]
        sched = make_schedule(
            [task("a", C, 2.0), task("b", H, 1.0)], bufs
        )
        r = Engine(sched, 1024).run()
        rec = {x.tid: x for x in r.records}
        assert rec["b"].start == 2.0  # waited for a's free
        assert r.makespan == 3.0

    def test_ungated_task_raises_on_shortfall(self):
        bufs = [
            BufferSpec("x", 768, alloc_by="a", free_after=frozenset({"a"})),
            BufferSpec("y", 768, alloc_by="b", free_after=frozenset({"b"})),
        ]
        sched = make_schedule(
            [task("a", C, 2.0), task("b", H, 1.0, memory_gated=False)], bufs
        )
        with pytest.raises(OutOfMemoryError, match="ungated"):
            Engine(sched, 1024).run()

    def test_headroom_delays_issue(self):
        bufs = [
            BufferSpec("x", 512, alloc_by="a", free_after=frozenset({"a"})),
            BufferSpec("y", 256, alloc_by="b", free_after=frozenset({"b"})),
        ]
        # without headroom b fits alongside a; with headroom it must wait
        sched = make_schedule(
            [task("a", C, 2.0), task("b", H, 1.0, headroom=512)], bufs
        )
        r = Engine(sched, 1024).run()
        rec = {x.tid: x for x in r.records}
        assert rec["b"].start == 2.0

    def test_scratch_freed_at_completion(self):
        sched = make_schedule([task("a", dur=1.0, scratch_bytes=512),
                               task("b", dur=1.0, scratch_bytes=512)])
        eng = Engine(sched, 600)  # only room for one scratch at a time
        r = eng.run()
        assert r.makespan == 2.0
        assert eng.device.in_use == 0

    def test_preallocated_buffers(self):
        bufs = [BufferSpec("params", 512, alloc_by=None)]
        sched = make_schedule([task("a", reads=("params",))], bufs)
        r = Engine(sched, 1024).run()
        assert r.device_peak == 512

    def test_host_buffers_do_not_consume_device(self):
        bufs = [BufferSpec("hx", 10**9, alloc_by="a", host=True,
                           free_after=frozenset({"a"}))]
        r = Engine(make_schedule([task("a")], bufs), 1024).run()
        assert r.device_peak == 0
        assert r.host_peak >= 10**9

    def test_memory_deadlock_detected(self):
        bufs = [BufferSpec("x", 1024, alloc_by="a", free_after=frozenset())]
        sched = make_schedule([task("a"), task("b", scratch_bytes=1024)], bufs)
        with pytest.raises(OutOfMemoryError, match="deadlock"):
            Engine(sched, 1024).run()

    def test_alloc_on_ready_reserves_early(self):
        # b's buffer is reserved the moment its start_dep starts, long
        # before b reaches the head of its queue
        bufs = [BufferSpec("y", 512, alloc_by="b", free_after=frozenset({"b"}))]
        sched = make_schedule(
            [task("a", C, 4.0),
             task("blocker", H, 3.0),
             task("b", H, 1.0, start_deps=("a",), alloc_on_ready=True)],
            bufs,
        )
        eng = Engine(sched, 1024)
        eng.run()
        mallocs = [e for e in eng.device.trace if e.buffer == "y"]
        assert mallocs[0].time == 0.0  # reserved at a's start, not at t=3

    def test_alloc_on_ready_ungated_can_oom(self):
        bufs = [
            BufferSpec("x", 768, alloc_by="a", free_after=frozenset({"a"})),
            BufferSpec("y", 768, alloc_by="b", free_after=frozenset({"b"})),
        ]
        sched = make_schedule(
            [task("a", C, 2.0),
             task("b", H, 1.0, start_deps=("a",), alloc_on_ready=True,
                  memory_gated=False)],
            bufs,
        )
        with pytest.raises(OutOfMemoryError):
            Engine(sched, 1024).run()


class TestValidationAndErrors:
    def test_unknown_dep_rejected(self):
        sched = make_schedule([task("a", deps=("ghost",))])
        with pytest.raises(ScheduleError, match="unknown task"):
            Engine(sched, 1024)

    def test_unknown_read_rejected(self):
        sched = make_schedule([task("a", reads=("ghost",))])
        with pytest.raises(ScheduleError, match="unknown buffer"):
            Engine(sched, 1024)

    def test_queue_stream_mismatch(self):
        t = task("a", C)
        sched = Schedule(tasks={"a": t}, queues={H: ["a"]}, buffers={})
        with pytest.raises(ScheduleError):
            sched.validate()

    def test_dependency_cycle_detected(self):
        sched = make_schedule([
            task("a", C, deps=("b",)), task("b", H, deps=("a",)),
        ])
        with pytest.raises(ScheduleError, match="deadlock"):
            Engine(sched, 1024).run()

    def test_use_after_free_detected(self):
        # b reads x but x is freed after a (no dep keeps it alive for b)
        bufs = [BufferSpec("x", 512, alloc_by="a", free_after=frozenset({"a"}))]
        sched = make_schedule(
            [task("a", C, 1.0), task("b", C, 1.0, reads=("x",))], bufs
        )
        with pytest.raises(ScheduleError, match="not resident"):
            Engine(sched, 1024).run()

    def test_task_never_queued_rejected(self):
        t = task("a")
        sched = Schedule(tasks={"a": t, "b": task("b")}, queues={C: ["a"]},
                         buffers={})
        with pytest.raises(ScheduleError, match="never queued"):
            sched.validate()


class TestRunResult:
    def test_busy_intervals_merge(self):
        r = Engine(make_schedule([task("a", C, 1.0), task("b", C, 1.0),
                                  task("c", C, 1.0)]), 1024).run()
        assert r.busy_intervals(C) == [(0.0, 3.0)]

    def test_busy_intervals_gap(self):
        r = Engine(
            make_schedule([task("a", C, 1.0), task("x", H, 2.0),
                           task("b", C, 1.0, deps=("x",))]),
            1024,
        ).run()
        assert r.busy_intervals(C) == [(0.0, 1.0), (2.0, 3.0)]

    def test_records_by_kind(self):
        r = Engine(make_schedule([task("a", kind=TaskKind.BWD)]), 1024).run()
        assert len(r.records_by_kind(TaskKind.BWD)) == 1
        assert r.records_by_kind(TaskKind.FWD) == []

    def test_record_of(self):
        r = Engine(make_schedule([task("a")]), 1024).run()
        assert r.record_of("a").tid == "a"
        with pytest.raises(KeyError):
            r.record_of("nope")

    def test_record_of_matches_linear_scan(self):
        tids = [f"t{i}" for i in range(40)]
        r = Engine(make_schedule([task(t, dur=0.5) for t in tids]),
                   1024).run()
        # the lazy index must agree with a full scan for every tid
        for tid in tids:
            expected = next(rec for rec in r.records if rec.tid == tid)
            assert r.record_of(tid) is expected

    def test_record_of_miss_is_diagnosable(self):
        from repro.common.errors import MissingKeyError

        r = Engine(make_schedule([task("fwd_1"), task("fwd_2")]), 1024).run()
        with pytest.raises(MissingKeyError) as exc:
            r.record_of("fwd_3")
        err = exc.value
        assert err.key == "fwd_3"
        assert err.table == "RunResult.records"
        assert "fwd_1" in err.nearest or "fwd_2" in err.nearest
        assert "fwd_3" in str(err)  # message, not KeyError's repr-quoting

    def test_payload_executes(self):
        hits = []
        t = task("a")
        t.payload = lambda: hits.append(1)
        Engine(make_schedule([t]), 1024).run()
        assert hits == [1]

    def test_free_hook_called(self):
        freed = []
        bufs = [BufferSpec("x", 512, alloc_by="a", free_after=frozenset({"a"}))]
        Engine(make_schedule([task("a")], bufs), 1024,
               free_hook=freed.append).run()
        assert freed == ["x"]


class TestSchedulesWithHostBuffers:
    def test_host_capacity_enforced(self):
        bufs = [BufferSpec("hx", 2048, alloc_by="a", host=True,
                           free_after=frozenset({"a"}))]
        sched = make_schedule([task("a")], bufs)
        with pytest.raises(OutOfMemoryError):
            Engine(sched, 1024, host_capacity=1024).run()

    def test_host_read_residency(self):
        bufs = [
            BufferSpec("hx", 512, alloc_by="a", host=True,
                       free_after=frozenset({"b"})),
        ]
        sched = make_schedule(
            [task("a", C, 1.0), task("b", H, 1.0, deps=("a",), reads=("hx",))],
            bufs,
        )
        r = Engine(sched, 1024).run()
        assert r.host_peak == 512


class TestDeterminismUnderTies:
    def test_simultaneous_completions_are_stable(self):
        # three equal-duration tasks across streams complete at the same
        # instant; record order must be deterministic across runs
        tasks = [task("a", C, 1.0), task("b", H, 1.0), task("c", D, 1.0),
                 task("d", C, 1.0, deps=("b", "c"))]
        orders = set()
        for _ in range(3):
            r = Engine(make_schedule(list(tasks)), 1024).run()
            orders.add(tuple(rec.tid for rec in r.records))
        assert len(orders) == 1

    def test_zero_capacity_like_conditions(self):
        # a task with no allocations runs even on a minimal pool
        r = Engine(make_schedule([task("a")]), 512).run()
        assert r.makespan == 1.0
