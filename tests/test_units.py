"""Unit-formatting helpers and constants."""

import pytest
from hypothesis import given, strategies as st

from repro.common.units import (
    GB,
    GiB,
    KB,
    KiB,
    MB,
    MiB,
    format_bytes,
    format_seconds,
)


class TestConstants:
    def test_decimal_units(self):
        assert KB == 1_000
        assert MB == 1_000_000
        assert GB == 1_000_000_000

    def test_binary_units(self):
        assert KiB == 1024
        assert MiB == 1024**2
        assert GiB == 1024**3

    def test_decimal_smaller_than_binary(self):
        assert KB < KiB and MB < MiB and GB < GiB


class TestFormatBytes:
    def test_zero(self):
        assert format_bytes(0) == "0 B"

    def test_small(self):
        assert format_bytes(511) == "511 B"

    def test_kib(self):
        assert format_bytes(1536) == "1.50 KiB"

    def test_mib(self):
        assert format_bytes(3 * MiB) == "3.00 MiB"

    def test_gib(self):
        assert format_bytes(16 * GiB) == "16.00 GiB"

    def test_negative_keeps_sign(self):
        assert format_bytes(-2 * MiB) == "-2.00 MiB"

    @given(st.integers(min_value=0, max_value=2**50))
    def test_always_has_suffix(self, n):
        out = format_bytes(n)
        assert out.endswith(("B", "KiB", "MiB", "GiB"))


class TestFormatSeconds:
    def test_zero(self):
        assert format_seconds(0.0) == "0 s"

    def test_seconds(self):
        assert format_seconds(2.5) == "2.500 s"

    def test_millis(self):
        assert format_seconds(2.5e-3) == "2.500 ms"

    def test_micros(self):
        assert format_seconds(15e-6) == "15.000 us"

    def test_nanos(self):
        assert format_seconds(3e-9) == "3.000 ns"

    def test_negative(self):
        assert format_seconds(-1e-3) == "-1.000 ms"

    @given(st.floats(min_value=1e-12, max_value=1e6, allow_nan=False))
    def test_no_crash(self, t):
        assert isinstance(format_seconds(t), str)
