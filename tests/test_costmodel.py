"""Analytic cost model: roofline behaviour, transfer times, jitter."""

import pytest

from repro.common.units import GB, MiB
from repro.graph import TensorSpec
from repro.graph import ops
from repro.hw import CostModel, POWER9_V100, X86_V100


@pytest.fixture
def cm():
    return CostModel(X86_V100)


class TestComputeTimes:
    def test_conv_is_flop_bound(self, cm):
        op, _ = ops.conv(TensorSpec((64, 64, 56, 56)), 64, ksize=3, pad=1)
        t = cm.fwd_time(op)
        flop_time = op.fwd_flops / (X86_V100.gpu_peak_flops * 0.55)
        assert t == pytest.approx(flop_time, rel=0.2)

    def test_bn_is_bandwidth_bound(self, cm):
        op, _ = ops.batchnorm(TensorSpec((64, 64, 56, 56)))
        t = cm.fwd_time(op)
        byte_time = op.fwd_bytes / (X86_V100.gpu_mem_bandwidth * 0.8)
        assert t == pytest.approx(byte_time, rel=0.2)

    def test_backward_slower_than_forward_for_conv(self, cm):
        op, _ = ops.conv(TensorSpec((64, 64, 56, 56)), 64, ksize=3, pad=1)
        assert cm.bwd_time(op) > 1.5 * cm.fwd_time(op)

    def test_input_op_free(self, cm):
        op, _ = ops.input_op(TensorSpec((4, 4)))
        assert cm.bwd_time(op) == 0.0

    def test_launch_overhead_floors_tiny_ops(self, cm):
        op, _ = ops.relu(TensorSpec((2, 2)))
        assert cm.fwd_time(op) >= cm.launch_overhead

    def test_fused_activation_adds_time(self):
        cm = CostModel(X86_V100)
        plain, _ = ops.conv(TensorSpec((8, 8, 32, 32)), 8, ksize=3, pad=1)
        fused, _ = ops.conv(TensorSpec((8, 8, 32, 32)), 8, ksize=3, pad=1,
                            activation="relu")
        assert cm.fwd_time(fused) > cm.fwd_time(plain)


class TestTransferTimes:
    def test_swap_scales_with_bytes(self, cm):
        assert cm.swap_out_time(100 * MiB) > 9 * cm.swap_out_time(10 * MiB) * 0.9

    def test_latency_floor(self, cm):
        assert cm.swap_in_time(1) >= X86_V100.copy_latency

    def test_nvlink_faster(self):
        x86, p9 = CostModel(X86_V100), CostModel(POWER9_V100)
        assert p9.swap_out_time(256 * MiB) < x86.swap_out_time(256 * MiB) / 3

    def test_effective_bandwidth_below_peak(self, cm):
        t = cm.swap_out_time(1 * GB)
        assert t > 1 * GB / X86_V100.d2h_bandwidth  # slower than raw peak

    def test_update_time_zero_for_no_params(self, cm):
        assert cm.update_time(0) == 0.0

    def test_update_time_positive(self, cm):
        assert cm.update_time(100 * MiB) > 0


class TestJitter:
    def test_deterministic_without_jitter(self):
        cm = CostModel(X86_V100)
        op, _ = ops.conv(TensorSpec((8, 8, 32, 32)), 8, ksize=3)
        assert cm.fwd_time(op) == cm.fwd_time(op)

    def test_jitter_varies_calls(self):
        cm = CostModel(X86_V100, jitter=0.1, seed=1)
        op, _ = ops.conv(TensorSpec((8, 8, 32, 32)), 8, ksize=3)
        times = {cm.fwd_time(op) for _ in range(8)}
        assert len(times) > 1

    def test_jitter_seeded_reproducible(self):
        op, _ = ops.conv(TensorSpec((8, 8, 32, 32)), 8, ksize=3)
        m1 = CostModel(X86_V100, jitter=0.1, seed=7)
        m2 = CostModel(X86_V100, jitter=0.1, seed=7)
        assert [m1.fwd_time(op) for _ in range(5)] == [
            m2.fwd_time(op) for _ in range(5)
        ]

    def test_jitter_never_negative(self):
        cm = CostModel(X86_V100, jitter=3.0, seed=3)  # absurd jitter
        op, _ = ops.relu(TensorSpec((4, 4)))
        for _ in range(50):
            assert cm.fwd_time(op) > 0

    def test_mean_roughly_preserved(self):
        cm0 = CostModel(X86_V100)
        cmj = CostModel(X86_V100, jitter=0.05, seed=11)
        op, _ = ops.conv(TensorSpec((8, 8, 32, 32)), 8, ksize=3)
        base = cm0.fwd_time(op)
        mean = sum(cmj.fwd_time(op) for _ in range(200)) / 200
        assert mean == pytest.approx(base, rel=0.05)


class TestEfficiencyOverrides:
    def test_flop_efficiency_override(self):
        from repro.graph.ops import OpKind
        fast = CostModel(X86_V100, flop_efficiency={OpKind.CONV: 1.0})
        slow = CostModel(X86_V100, flop_efficiency={OpKind.CONV: 0.25})
        op, _ = ops.conv(TensorSpec((64, 64, 56, 56)), 64, ksize=3, pad=1)
        assert fast.fwd_time(op) < slow.fwd_time(op)
