"""Baseline planners: classification shapes and execution behaviour."""

import pytest

from repro.baselines import (
    plan_incore,
    plan_recompute_all,
    plan_superneurons,
    plan_swap_all,
    plan_swap_all_unscheduled,
    plan_swap_opt,
    plan_vdnn,
)
from repro.common.errors import OutOfMemoryError
from repro.graph.ops import OpKind
from repro.hw import POWER9_V100, X86_V100
from repro.models import poster_example, small_cnn
from repro.runtime import MapClass, SwapInPolicy
from tests.conftest import tiny_machine


@pytest.fixture
def g():
    return small_cnn(with_residual=True)


class TestSimplePlans:
    def test_incore_all_keep(self, g):
        plan = plan_incore(g)
        assert all(c is MapClass.KEEP for c in plan.classification.classes.values())

    def test_swap_all_policies(self, g):
        assert plan_swap_all(g).policy is SwapInPolicy.EAGER
        assert plan_swap_all_unscheduled(g).policy is SwapInPolicy.NAIVE

    def test_recompute_all_swaps_ineligible(self, g):
        plan = plan_recompute_all(g)
        assert plan.classification.of(0) is MapClass.SWAP  # INPUT

    def test_vdnn_swaps_conv_inputs(self, g):
        plan = plan_vdnn(g)
        cls = plan.classification
        for i in g.classifiable_maps():
            feeds_conv = any(g[k].op.kind is OpKind.CONV for k in g.consumers[i])
            expected = MapClass.SWAP if feeds_conv else MapClass.KEEP
            assert cls.of(i) is expected


class TestSuperNeurons:
    def test_machine_independent(self):
        """Table 3: superneurons produces the same classification on both
        machines (its decision ignores measured times)."""
        from repro.models import resnet50
        g = resnet50(256)
        a = plan_superneurons(g, X86_V100).classification
        b = plan_superneurons(g, POWER9_V100).classification
        assert a.key() == b.key()

    def test_keeps_from_output_layer(self, g):
        m = tiny_machine(mem_mib=224)
        cls = plan_superneurons(g, m).classification
        keeps = cls.maps_of(MapClass.KEEP)
        if keeps:
            # kept maps are a suffix of the classifiable maps by index,
            # modulo size-fitting skips: the largest kept index is the last
            # classifiable map
            assert max(keeps) == max(g.classifiable_maps())

    def test_non_kept_split_by_type(self):
        from repro.models import resnet50
        g = resnet50(384)
        cls = plan_superneurons(g, X86_V100).classification
        cheap = {OpKind.BATCHNORM, OpKind.RELU, OpKind.POOL_MAX,
                 OpKind.POOL_AVG, OpKind.GLOBAL_AVG_POOL, OpKind.LRN}
        for i, c in cls.classes.items():
            if c is MapClass.RECOMPUTE:
                assert g[i].op.kind in cheap
            elif c is MapClass.SWAP:
                assert g[i].op.kind not in cheap or not g[i].op.recomputable

    def test_policy_is_superneurons(self, g):
        assert plan_superneurons(g, X86_V100).policy is SwapInPolicy.SUPERNEURONS

    def test_everything_kept_when_memory_ample(self, g):
        cls = plan_superneurons(g, X86_V100).classification
        assert cls.counts()[MapClass.KEEP] == len(g.classifiable_maps())


class TestSwapOpt:
    def test_no_recompute(self):
        m = tiny_machine(mem_mib=224, link_gbps=2.0)
        g = poster_example()
        plan = plan_swap_opt(g, m)
        assert plan.classification.counts()[MapClass.RECOMPUTE] == 0

    def test_runs_and_beats_swap_all(self):
        m = tiny_machine(mem_mib=224, link_gbps=2.0)
        g = poster_example()
        opt = plan_swap_opt(g, m).execute(g, m)
        base = plan_swap_all(g).execute(g, m)
        assert opt.makespan <= base.makespan


class TestExecution:
    def test_incore_fails_oom_on_small_machine(self):
        g = poster_example()
        m = tiny_machine(mem_mib=224)
        with pytest.raises(OutOfMemoryError):
            plan_incore(g).execute(g, m)

    def test_swap_all_succeeds_on_small_machine(self):
        g = poster_example()
        m = tiny_machine(mem_mib=224)
        r = plan_swap_all(g).execute(g, m)
        assert r.makespan > 0


class TestCheckpointing:
    def test_sqrt_n_keep_count(self):
        from repro.baselines import plan_checkpoint
        from repro.models import resnet50
        import math
        g = resnet50(64)
        cls = plan_checkpoint(g, X86_V100).classification
        n = len(g.classifiable_maps())
        keeps = cls.counts()[MapClass.KEEP]
        # keeps ~ n/sqrt(n) + joins; far below n
        assert keeps < n / 2
        assert keeps >= n // (math.isqrt(n) + 1)

    def test_joins_are_checkpoints(self):
        from repro.baselines import plan_checkpoint
        from repro.graph.ops import OpKind
        from repro.models import resnet50
        g = resnet50(64)
        cls = plan_checkpoint(g, X86_V100).classification
        for i in g.classifiable_maps():
            if g[i].op.kind is OpKind.ADD:
                assert cls.of(i) is MapClass.KEEP

    def test_no_swaps(self):
        from repro.baselines import plan_checkpoint
        g = poster_example()
        cls = plan_checkpoint(g).classification
        assert cls.counts()[MapClass.SWAP] == 0

    def test_uses_less_memory_than_incore(self):
        from repro.baselines import plan_checkpoint, plan_incore
        from repro.models import resnet18
        g = resnet18(8)
        ck = plan_checkpoint(g, X86_V100).execute(g, X86_V100)
        ic = plan_incore(g).execute(g, X86_V100)
        assert ck.device_peak < ic.device_peak
        assert ck.makespan > ic.makespan  # pays recompute time

    def test_explicit_segment_length(self):
        from repro.baselines import plan_checkpoint
        g = poster_example()
        short = plan_checkpoint(g, segment_length=2).classification
        long = plan_checkpoint(g, segment_length=6).classification
        assert short.counts()[MapClass.KEEP] > long.counts()[MapClass.KEEP]
