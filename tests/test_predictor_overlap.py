"""Timeline predictor (profile-driven replay) and L_O/L_I extraction."""

import pytest

from repro.common.errors import OutOfMemoryError
from repro.hw import CostModel
from repro.models import linear_chain, poster_example
from repro.pooch import TimelinePredictor, analyze_overlap
from repro.runtime import Classification, MapClass, execute, run_profiling
from tests.conftest import tiny_machine


@pytest.fixture
def machine():
    return tiny_machine(mem_mib=224, link_gbps=4.0)


@pytest.fixture
def setup(machine):
    g = poster_example()
    prof = run_profiling(g, machine)
    return g, prof, TimelinePredictor(g, prof, machine)


class TestPredictor:
    def test_prediction_matches_ground_truth_exactly(self, setup, machine):
        g, prof, pred = setup
        for cls in (
            Classification.all_swap(g),
            Classification.all_recompute(g),  # infeasible here: chains pile up
        ):
            outcome = pred.predict(cls)
            try:
                gt = execute(g, cls, machine)
            except OutOfMemoryError:
                # predictor and ground truth must agree on infeasibility
                assert not outcome.feasible
                continue
            assert outcome.feasible
            assert outcome.time == pytest.approx(gt.makespan, rel=1e-12)
            assert outcome.peak_memory == gt.device_peak

    def test_infeasible_detected(self, setup, machine):
        g, prof, pred = setup
        outcome = pred.predict(Classification.all_keep(g))
        assert not outcome.feasible
        assert outcome.time == float("inf")
        with pytest.raises(OutOfMemoryError):
            execute(g, Classification.all_keep(g), machine)

    def test_memoization(self, setup):
        g, prof, pred = setup
        cls = Classification.all_swap(g)
        pred.predict(cls)
        n = pred.simulations
        pred.predict(cls)
        assert pred.simulations == n

    def test_timeline_available_for_feasible(self, setup):
        g, prof, pred = setup
        cls = Classification.all_swap(g)
        tl = pred.timeline(cls)
        assert tl.makespan == pred.predict(cls).time

    def test_timeline_raises_for_infeasible(self, setup):
        g, prof, pred = setup
        with pytest.raises(OutOfMemoryError):
            pred.timeline(Classification.all_keep(g))

    def test_noisy_profile_still_close(self, machine):
        g = poster_example()
        noisy = CostModel(machine, jitter=0.05, seed=5)
        prof = run_profiling(g, machine, cost_model=noisy, iterations=20)
        pred = TimelinePredictor(g, prof, machine)
        cls = Classification.all_swap(g)
        predicted = pred.predict(cls).time
        actual = execute(g, cls, machine).makespan
        assert predicted == pytest.approx(actual, rel=0.2)


class TestOverlapAnalysis:
    def test_slow_link_has_unhidden_swaps(self):
        m = tiny_machine(mem_mib=224, link_gbps=1.0)
        g = poster_example()
        prof = run_profiling(g, m)
        ov = analyze_overlap(prof.baseline)
        assert ov.L_O or ov.L_I
        assert all(v > 0 for v in ov.overhead.values())

    def test_fast_link_hides_more(self):
        g = poster_example()
        slow = analyze_overlap(
            run_profiling(g, tiny_machine(mem_mib=224, link_gbps=1.0)).baseline
        )
        fast = analyze_overlap(
            run_profiling(g, tiny_machine(mem_mib=224, link_gbps=500.0)).baseline
        )
        assert len(fast.candidates) <= len(slow.candidates)
        assert sum(fast.overhead.values()) < sum(slow.overhead.values())

    def test_candidates_union(self, setup):
        g, prof, pred = setup
        ov = analyze_overlap(prof.baseline)
        assert ov.candidates == ov.L_O | ov.L_I

    def test_describe(self, setup):
        g, prof, _ = setup
        text = analyze_overlap(prof.baseline).describe()
        assert "L_O=" in text and "L_I=" in text

    def test_tolerances_filter_noise(self, setup):
        g, prof, _ = setup
        strict = analyze_overlap(prof.baseline, rel_tolerance=0.0,
                                 abs_tolerance=0.0)
        loose = analyze_overlap(prof.baseline, rel_tolerance=0.9)
        assert loose.candidates <= strict.candidates


class TestCapacityMargin:
    def test_margin_tightens_feasibility(self, setup, machine):
        """With a margin close to the full capacity, nothing is feasible;
        with zero margin the all-swap plan is."""
        from repro.pooch import TimelinePredictor
        g, prof, _ = setup
        cls = Classification.all_swap(g)
        loose = TimelinePredictor(g, prof, machine, capacity_margin=0)
        tight = TimelinePredictor(g, prof, machine,
                                  capacity_margin=machine.usable_gpu_memory // 2)
        assert loose.predict(cls).feasible
        assert not tight.predict(cls).feasible

    def test_margin_plan_survives_reduced_capacity(self, setup, machine):
        """The margin's contract: the chosen plan stays feasible on a machine
        with ``margin`` fewer bytes (free-running execution on the full
        machine may still use the slack — eager prefetch takes what exists)."""
        from dataclasses import replace
        from repro.pooch import PoochClassifier, PoochConfig
        from repro.common.units import MiB
        g, prof, _ = setup
        margin = 32 * MiB
        clf = PoochClassifier(
            g, prof, machine,
            PoochConfig(max_exact_li=3, step1_sim_budget=100,
                        capacity_margin=margin),
        )
        cls, _ = clf.classify()
        reduced = replace(machine,
                          gpu_mem_capacity=machine.gpu_mem_capacity - margin)
        gt = execute(g, cls, reduced)  # must not raise
        assert gt.device_peak <= reduced.usable_gpu_memory
