"""Planner-as-a-service: coalescing, cache tiers, admission, HTTP layer.

The concurrency suite is deterministic by construction: a gated planner
blocks every search on an event the test controls, so "N concurrent
identical requests" genuinely overlap and the single-search assertion is
counter-based (profiling invocations are counted at the pipeline boundary),
not timing-based.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

import repro.pooch.pipeline as pipeline_mod
from repro.models import build_model
from repro.pooch import PoocH, PoochConfig
from repro.runtime.plan_io import graph_signature, plan_to_dict
from repro.serve import (
    AuditLog,
    BadRequest,
    Coalescer,
    JobManager,
    JobState,
    LruCache,
    PlannerClient,
    PlannerServer,
    QueueFull,
    QuotaExceeded,
    ServeClientError,
    ServePlanner,
    TIER_COALESCED,
    TIER_PERSISTENT,
    TIER_SEARCH,
    TIER_WARM,
    WarmPlanCache,
)

REQ = {"model": "mlp", "batch": 8, "config": {"budget": 20}}


def small_request(batch: int = 8, **config) -> dict:
    return {"model": "mlp", "batch": batch,
            "config": {"budget": 20, **config}}


class GatedPlanner(ServePlanner):
    """A ServePlanner whose optimize() blocks until the test opens the gate
    (and counts its invocations), so submissions provably overlap."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.gate = threading.Event()
        self.optimize_calls = 0
        self._count_lock = threading.Lock()

    def optimize(self, resolved, progress=None):
        assert self.gate.wait(timeout=30), "test gate never opened"
        with self._count_lock:
            self.optimize_calls += 1
        return super().optimize(resolved, progress=progress)


def drain(manager: JobManager, *jobs, timeout: float = 30.0) -> None:
    for job in jobs:
        assert job.wait(timeout), f"{job.id} stuck in {job.state}"


def wait_until_running(job, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while job.state is not JobState.RUNNING:
        assert time.monotonic() < deadline, f"{job.id} never started"
        time.sleep(0.005)


@pytest.fixture
def manager():
    m = JobManager(ServePlanner(), workers=2, max_queue=8, tenant_quota=8)
    yield m
    m.shutdown()


# -- LRU / warm cache units -------------------------------------------------------


class TestLruCache:
    def test_bounded_with_lru_eviction(self):
        lru = LruCache(2)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == 1  # refresh a
        lru.put("c", 3)  # evicts b, the least recent
        assert "b" not in lru and "a" in lru and "c" in lru
        assert lru.stats()["evictions"] == 1

    def test_hit_miss_accounting(self):
        lru = LruCache(4)
        assert lru.get("nope") is None
        lru.put("k", "v")
        assert lru.get("k") == "v"
        stats = lru.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            LruCache(0)

    def test_thread_safety_smoke(self):
        lru = LruCache(16)

        def hammer(seed: int) -> None:
            for i in range(200):
                lru.put((seed, i % 20), i)
                lru.get((seed, (i + 7) % 20))

        threads = [threading.Thread(target=hammer, args=(s,)) for s in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(lru) <= 16


class TestWarmPlanCache:
    def test_response_stamping_copies_outer_dict(self):
        from repro.serve.cache import CachedResponse

        payload = {"plan": {"classes": {"0": "swap"}}, "x": 1}
        cached = CachedResponse(classification=None, payload=payload)
        a = cached.response_for(tier=TIER_WARM)
        b = cached.response_for(tier=TIER_COALESCED, coalesced_with="job-1")
        assert a["cache_tier"] == TIER_WARM and a["coalesced_with"] is None
        assert b["cache_tier"] == TIER_COALESCED
        assert b["coalesced_with"] == "job-1"
        assert "cache_tier" not in payload  # original never mutated
        assert a["plan"] is b["plan"]  # nested plan shared, not copied

    def test_lookup_store(self):
        from repro.serve.cache import CachedResponse

        warm = WarmPlanCache(capacity=2)
        key = ("g", "m", "c")
        assert warm.lookup(key) is None
        warm.store(key, CachedResponse(None, {}))
        assert warm.lookup(key) is not None


# -- coalescer units --------------------------------------------------------------


class TestCoalescer:
    def test_leader_then_followers(self):
        c = Coalescer()
        flight, is_leader = c.join("k", "j1")
        assert is_leader and flight.leader == "j1"
        _, second = c.join("k", "j2")
        _, third = c.join("k", "j3")
        assert not second and not third
        assert flight.members() == ["j1", "j2", "j3"]
        assert c.complete("k", result="r") == ["j2", "j3"]
        assert c.open_flights() == 0
        assert flight.done.is_set() and flight.result == "r"

    def test_distinct_keys_do_not_coalesce(self):
        c = Coalescer()
        _, a = c.join("ka", "j1")
        _, b = c.join("kb", "j2")
        assert a and b
        assert c.open_flights() == 2

    def test_concurrent_joins_elect_exactly_one_leader(self):
        c = Coalescer()
        barrier = threading.Barrier(8)
        leaders = []
        lock = threading.Lock()

        def contender(i: int) -> None:
            barrier.wait()
            _, is_leader = c.join("k", f"j{i}")
            if is_leader:
                with lock:
                    leaders.append(i)

        threads = [threading.Thread(target=contender, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(leaders) == 1
        assert c.coalesced_total == 7 and c.flights_opened == 1
        assert len(c.complete("k")) == 7

    def test_leave_follower_no_promotion(self):
        c = Coalescer()
        c.join("k", "j1")
        c.join("k", "j2")
        assert c.leave("k", "j2") is None
        assert c.flight_for("k").members() == ["j1"]

    def test_cancelled_leader_promotes_oldest_follower(self):
        c = Coalescer()
        c.join("k", "j1")
        c.join("k", "j2")
        c.join("k", "j3")
        assert c.leave("k", "j1") == "j2"
        assert c.flight_for("k").members() == ["j2", "j3"]

    def test_lone_leader_leaving_closes_the_flight(self):
        c = Coalescer()
        c.join("k", "j1")
        assert c.leave("k", "j1") is None
        assert c.open_flights() == 0
        _, is_leader = c.join("k", "j4")  # next request starts fresh
        assert is_leader


# -- request resolution -----------------------------------------------------------


class TestResolve:
    def test_identical_requests_share_a_key_and_graph(self):
        p = ServePlanner()
        a = p.resolve(small_request())
        b = p.resolve(small_request())
        assert a.key == b.key
        assert a.graph is b.graph  # graph LRU: one NNGraph instance

    def test_different_requests_differ_in_key(self):
        p = ServePlanner()
        base = p.resolve(small_request()).key
        assert p.resolve(small_request(batch=16)).key != base
        assert p.resolve(small_request(budget=40)).key != base
        other = dict(small_request())
        other["machine"] = "power9"
        assert p.resolve(other).key != base

    @pytest.mark.parametrize("broken", [
        {"batch": 8},                                   # no model
        {"model": "no-such-model"},
        {"model": "mlp", "batch": 0},
        {"model": "mlp", "batch": True},
        {"model": "mlp", "machine": "sparc"},
        {"model": "mlp", "devices": -1},
        {"model": "mlp", "config": {"warp_drive": 9}},
        {"model": "mlp", "config": ["not", "a", "dict"]},
        {"model": "mlp", "input_size": "wide"},
    ])
    def test_bad_requests_rejected(self, broken):
        with pytest.raises(BadRequest):
            ServePlanner().resolve(broken)

    def test_multi_device_request_changes_machine(self):
        p = ServePlanner()
        multi = dict(small_request())
        multi["devices"] = 4
        resolved = p.resolve(multi)
        assert resolved.machine.devices == 4
        assert resolved.key != p.resolve(small_request()).key


# -- the core acceptance test: N concurrent identical requests, one search --------


class TestCoalescedSubmission:
    def test_eight_concurrent_identical_requests_run_one_search(self):
        planner = GatedPlanner()
        manager = JobManager(planner, workers=2, max_queue=16, tenant_quota=16)
        profiles = {"n": 0}
        real_profiling = pipeline_mod.run_profiling

        def counting_profiling(*args, **kwargs):
            profiles["n"] += 1
            return real_profiling(*args, **kwargs)

        pipeline_mod.run_profiling = counting_profiling
        try:
            barrier = threading.Barrier(8)
            jobs, lock = [], threading.Lock()

            def client() -> None:
                barrier.wait()
                job = manager.submit(small_request())
                with lock:
                    jobs.append(job)

            threads = [threading.Thread(target=client) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            planner.gate.set()
            drain(manager, *jobs)
        finally:
            pipeline_mod.run_profiling = real_profiling
            manager.shutdown()

        # exactly one profiling + one search for the whole cohort
        assert profiles["n"] == 1
        assert planner.optimize_calls == 1
        assert manager.counters["searches"] == 1
        assert manager.counters["coalesced"] == 7
        assert manager.counters["completed"] == 8
        tiers = sorted(j.cache_tier for j in jobs)
        assert tiers == [TIER_COALESCED] * 7 + [TIER_SEARCH]
        # every response carries the identical plan (shared by reference)
        plans = {json.dumps(j.result["plan"], sort_keys=True) for j in jobs}
        assert len(plans) == 1
        leader = next(j for j in jobs if j.cache_tier == TIER_SEARCH)
        for j in jobs:
            if j is not leader:
                assert j.coalesced_with == leader.id

    def test_distinct_requests_do_not_coalesce(self):
        planner = GatedPlanner()
        manager = JobManager(planner, workers=2, max_queue=16, tenant_quota=16)
        try:
            a = manager.submit(small_request(batch=8))
            b = manager.submit(small_request(batch=16))
            # neither is a follower (a worker may already have picked one up)
            assert a.state in (JobState.QUEUED, JobState.RUNNING)
            assert b.state in (JobState.QUEUED, JobState.RUNNING)
            planner.gate.set()
            drain(manager, a, b)
        finally:
            manager.shutdown()
        assert planner.optimize_calls == 2
        assert manager.counters["coalesced"] == 0
        assert {a.cache_tier, b.cache_tier} == {TIER_SEARCH}


class TestCancellation:
    def test_cancelled_queued_leader_promotes_follower(self):
        planner = GatedPlanner()
        # one worker, occupied by a decoy: the real flight stays queued
        manager = JobManager(planner, workers=1, max_queue=16, tenant_quota=16)
        try:
            decoy = manager.submit(small_request(batch=4))
            # wait for the worker to pick the decoy up (it blocks on the gate)
            wait_until_running(decoy)
            leader = manager.submit(small_request())
            follower = manager.submit(small_request())
            assert leader.state is JobState.QUEUED
            assert follower.state is JobState.COALESCED
            assert follower.coalesced_with == leader.id

            assert manager.cancel(leader.id)
            assert leader.state is JobState.CANCELLED
            assert follower.state is JobState.QUEUED  # promoted, re-enqueued
            assert any(e["event"] == "coalesce:promoted"
                       for e in follower.events)

            planner.gate.set()
            drain(manager, decoy, follower)
        finally:
            manager.shutdown()
        assert follower.state is JobState.DONE
        assert follower.cache_tier in (TIER_SEARCH, TIER_PERSISTENT)
        assert manager.counters["cancelled"] == 1

    def test_cancel_running_job_aborts_at_next_checkpoint(self):
        planner = GatedPlanner()
        manager = JobManager(planner, workers=1, max_queue=16, tenant_quota=16)
        try:
            job = manager.submit(small_request())
            wait_until_running(job)
            assert manager.cancel(job.id)  # flags it; abort is cooperative
            assert job.state is JobState.RUNNING
            planner.gate.set()
            drain(manager, job)
        finally:
            manager.shutdown()
        assert job.state is JobState.CANCELLED
        assert manager.counters["cancelled"] == 1

    def test_cancel_terminal_job_returns_false(self, manager):
        job = manager.submit(small_request())
        drain(manager, job)
        assert manager.cancel(job.id) is False

    def test_cancel_unknown_job_raises(self, manager):
        with pytest.raises(KeyError):
            manager.cancel("job-999999")


class TestAdmissionControl:
    def test_tenant_quota_is_deterministic(self):
        planner = GatedPlanner()
        manager = JobManager(planner, workers=1, max_queue=16, tenant_quota=2)
        try:
            a = manager.submit(small_request(batch=4), tenant="alice")
            b = manager.submit(small_request(batch=8), tenant="alice")
            with pytest.raises(QuotaExceeded):
                manager.submit(small_request(batch=16), tenant="alice")
            # another tenant is unaffected
            c = manager.submit(small_request(batch=16), tenant="bob")
            assert manager.counters["rejected_quota"] == 1
            planner.gate.set()
            drain(manager, a, b, c)
            # quota frees up once jobs settle
            d = manager.submit(small_request(batch=32), tenant="alice")
            drain(manager, d)
        finally:
            manager.shutdown()

    def test_queue_full_fails_fast(self):
        planner = GatedPlanner()
        manager = JobManager(planner, workers=1, max_queue=1, tenant_quota=16)
        try:
            running = manager.submit(small_request(batch=4))
            wait_until_running(running)
            queued = manager.submit(small_request(batch=8))
            with pytest.raises(QueueFull):
                manager.submit(small_request(batch=16))
            assert manager.counters["rejected_queue"] == 1
            # but a *coalescible* request still gets in (no queue slot needed)
            follower = manager.submit(small_request(batch=8))
            assert follower.state is JobState.COALESCED
            planner.gate.set()
            drain(manager, running, queued, follower)
        finally:
            manager.shutdown()

    def test_rejected_leader_does_not_leak_a_flight(self):
        planner = GatedPlanner()
        manager = JobManager(planner, workers=1, max_queue=1, tenant_quota=16)
        try:
            running = manager.submit(small_request(batch=4))
            wait_until_running(running)
            manager.submit(small_request(batch=8))  # fills the queue
            with pytest.raises(QueueFull):
                manager.submit(small_request(batch=16))
            # the rejected request's flight must have been rolled back:
            # a retry becomes a leader, not a follower of a ghost flight
            assert manager.coalescer.flight_for(
                planner.resolve(small_request(batch=16)).key) is None
            planner.gate.set()
        finally:
            manager.shutdown()


# -- cache tiers + the bit-identical guarantee ------------------------------------


class TestCacheTiers:
    def test_warm_hit_skips_queue_and_quota(self, manager):
        first = manager.submit(small_request())
        drain(manager, first)
        assert first.cache_tier == TIER_SEARCH
        second = manager.submit(small_request())
        assert second.state is JobState.DONE  # terminal at submit time
        assert second.cache_tier == TIER_WARM
        assert manager.counters["warm_hits"] == 1
        # identical plan, shared by construction
        assert second.result["plan"] == first.result["plan"]

    def test_persistent_tier_across_managers(self, tmp_path):
        cache_dir = tmp_path / "cache"
        m1 = JobManager(ServePlanner(plan_cache=str(cache_dir)), workers=1)
        try:
            cold = m1.submit(small_request())
            drain(m1, cold)
            assert cold.cache_tier == TIER_SEARCH
        finally:
            m1.shutdown()
        # a fresh manager (fresh process, conceptually) shares the directory
        m2 = JobManager(ServePlanner(plan_cache=str(cache_dir)), workers=1)
        try:
            warmish = m2.submit(small_request())
            drain(m2, warmish)
            assert warmish.cache_tier == TIER_PERSISTENT
            assert m2.counters["persistent_hits"] == 1
            assert warmish.result["search"]["plan_cache_hit"] is True
            assert warmish.result["plan"] == cold.result["plan"]
        finally:
            m2.shutdown()

    def test_served_plan_bit_identical_to_direct_optimize(self, manager):
        job = manager.submit(small_request())
        drain(manager, job)
        graph = build_model("mlp", batch=8)
        direct = PoocH(job.resolved.machine,
                       PoochConfig(step1_sim_budget=20)).optimize(graph)
        expected = plan_to_dict(direct.classification, graph,
                                machine=job.resolved.machine.name,
                                predicted_time=direct.predicted.time)
        assert (json.dumps(job.result["plan"], sort_keys=True)
                == json.dumps(expected, sort_keys=True))
        assert job.result["predicted_time_s"] == direct.predicted.time


# -- audit + metrics --------------------------------------------------------------


class TestAudit:
    def test_every_settled_job_leaves_one_record(self, tmp_path):
        audit = AuditLog(tmp_path / "audit.jsonl")
        manager = JobManager(ServePlanner(), workers=2, audit=audit)
        try:
            a = manager.submit(small_request())
            drain(manager, a)
            b = manager.submit(small_request())  # warm
            drain(manager, b)
        finally:
            manager.shutdown()
        records = audit.read()
        assert [r["job_id"] for r in records] == [a.id, b.id]
        assert records[0]["cache_tier"] == TIER_SEARCH
        assert records[1]["cache_tier"] == TIER_WARM
        for r in records:
            assert r["tenant"] == "default"
            assert r["graph_signature"] == a.key[0]
            assert r["wall_s"] is not None

    def test_torn_tail_is_skipped(self, tmp_path):
        audit = AuditLog(tmp_path / "audit.jsonl")
        audit.append({"job_id": "j1"})
        with audit.path.open("a") as f:
            f.write('{"job_id": "j2", "trunc')  # crash mid-write
        assert [r["job_id"] for r in audit.read()] == ["j1"]

    def test_string_path_accepted_by_manager(self, tmp_path):
        manager = JobManager(ServePlanner(), workers=1,
                             audit=str(tmp_path / "a.jsonl"))
        try:
            drain(manager, manager.submit(small_request()))
        finally:
            manager.shutdown()
        assert manager.audit.records_written == 1


class TestServeMetrics:
    def test_publish_metrics_fills_the_serve_section(self, manager):
        from repro.obs.metrics import (
            MetricsRegistry,
            use_registry,
            validate_run_metrics,
        )

        drain(manager, manager.submit(small_request()))
        manager.submit(small_request())  # warm hit
        with use_registry(MetricsRegistry()) as registry:
            manager.publish_metrics()
            doc = registry.snapshot()
        assert validate_run_metrics(doc) == []
        serve = doc["sections"]["serve"]
        assert serve["requests"] == 2
        assert serve["warm_hits"] == 1
        assert serve["searches"] == 1
        assert "queue_depth" in serve


# -- the HTTP layer ---------------------------------------------------------------


@pytest.fixture
def server():
    manager = JobManager(ServePlanner(), workers=2, max_queue=8,
                         tenant_quota=4)
    with PlannerServer(manager, port=0) as srv:
        yield srv


class TestHTTP:
    def test_submit_wait_result_roundtrip(self, server):
        client = PlannerClient(server.url)
        assert client.health() == {"status": "ok"}
        doc = client.submit("mlp", batch=8, config={"budget": 20})
        result = client.result(doc["id"])
        assert result["plan"]["classes"]
        assert result["cache_tier"] in (TIER_SEARCH, TIER_WARM)
        # repeat: warm, terminal in the submit response itself
        again = client.submit("mlp", batch=8, config={"budget": 20})
        assert again["state"] == "done"
        assert again["result"]["cache_tier"] == TIER_WARM

    def test_event_stream_replays_the_pipeline(self, server):
        client = PlannerClient(server.url)
        doc = client.submit("mlp", batch=8, config={"budget": 20})
        client.wait(doc["id"])
        events = [e["event"] for e in client.events(doc["id"])]
        assert events[0] == "queue:admitted"
        assert "profile:start" in events and "search:done" in events
        assert events[-1] == "job:done"
        # ?from=N skips the replayed prefix
        tail = list(client.events(doc["id"], from_seq=len(events) - 1))
        assert [e["event"] for e in tail] == ["job:done"]

    def test_bad_request_maps_to_400(self, server):
        client = PlannerClient(server.url)
        with pytest.raises(ServeClientError) as e:
            client.submit("no-such-model")
        assert e.value.status == 400

    def test_unknown_job_maps_to_404(self, server):
        client = PlannerClient(server.url)
        with pytest.raises(ServeClientError) as e:
            client.job("job-424242")
        assert e.value.status == 404

    def test_quota_rejection_maps_to_429_with_reason(self):
        planner = GatedPlanner()
        manager = JobManager(planner, workers=1, max_queue=8, tenant_quota=1)
        with PlannerServer(manager, port=0) as srv:
            client = PlannerClient(srv.url)
            client.submit("mlp", batch=8, config={"budget": 20})
            with pytest.raises(ServeClientError) as e:
                client.submit("mlp", batch=16, config={"budget": 20})
            assert e.value.status == 429
            assert e.value.body["reason"] == "tenant-quota"
            planner.gate.set()

    def test_cancel_over_http(self):
        planner = GatedPlanner()
        manager = JobManager(planner, workers=1, max_queue=8, tenant_quota=8)
        with PlannerServer(manager, port=0) as srv:
            client = PlannerClient(srv.url)
            decoy = client.submit("mlp", batch=4, config={"budget": 20})
            queued = client.submit("mlp", batch=8, config={"budget": 20})
            assert client.cancel(queued["id"]) is True
            assert client.job(queued["id"])["state"] == "cancelled"
            assert client.cancel(queued["id"]) is False  # already terminal
            planner.gate.set()
            client.wait(decoy["id"])

    def test_stats_endpoint(self, server):
        client = PlannerClient(server.url)
        client.result(client.submit("mlp", batch=8,
                                    config={"budget": 20})["id"])
        stats = client.stats()
        assert stats["counters"]["requests"] >= 1
        assert stats["warm_cache"]["capacity"] > 0
        assert "queue_depth" in stats and "open_flights" in stats

    def test_remote_shutdown_can_be_disabled(self):
        manager = JobManager(ServePlanner(), workers=1)
        server = PlannerServer(manager, port=0, allow_remote_shutdown=False)
        server.start()
        try:
            client = PlannerClient(server.url)
            with pytest.raises(ServeClientError) as e:
                client.shutdown_server()
            assert e.value.status == 403
        finally:
            server.shutdown()

    def test_eight_concurrent_http_clients_one_search(self):
        planner = GatedPlanner()
        manager = JobManager(planner, workers=2, max_queue=16,
                             tenant_quota=16)
        with PlannerServer(manager, port=0) as srv:
            barrier = threading.Barrier(8)
            docs, lock = [], threading.Lock()

            def client_thread(i: int) -> None:
                client = PlannerClient(srv.url)
                barrier.wait()
                doc = client.submit("mlp", batch=8, tenant=f"t{i}",
                                    config={"budget": 20})
                with lock:
                    docs.append(doc)

            threads = [threading.Thread(target=client_thread, args=(i,))
                       for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            planner.gate.set()
            client = PlannerClient(srv.url)
            finals = [client.wait(d["id"]) for d in docs]
            tiers = sorted(f["cache_tier"] for f in finals)
            assert tiers == [TIER_COALESCED] * 7 + [TIER_SEARCH]
            assert planner.optimize_calls == 1
            plans = {json.dumps(f["result"]["plan"], sort_keys=True)
                     for f in finals}
            assert len(plans) == 1
