"""ASCII plot helpers."""

import pytest

from repro.analysis import bar_chart, memory_curve_plot
from repro.hw import X86_V100
from repro.models import poster_example
from repro.runtime import Classification, execute


class TestBarChart:
    def test_basic(self):
        out = bar_chart("t", [("a", 2.0), ("b", 1.0)])
        lines = out.splitlines()
        assert lines[0] == "== t =="
        assert lines[1].count("#") == 2 * lines[2].count("#")

    def test_failure_rendering(self):
        out = bar_chart("t", [("a", 1.0), ("b", None)])
        assert "FAIL" in out

    def test_zero_value(self):
        out = bar_chart("t", [("a", 0.0), ("b", 1.0)])
        assert "0" in out

    def test_empty(self):
        assert bar_chart("t", []) == "== t =="

    def test_unit_suffix(self):
        assert "img/s" in bar_chart("t", [("a", 1.0)], unit=" img/s")

    def test_labels_aligned(self):
        out = bar_chart("t", [("long-name", 1.0), ("x", 2.0)])
        l1, l2 = out.splitlines()[1:3]
        assert l1.index("|") == l2.index("|")


class TestMemoryCurve:
    @pytest.fixture(scope="class")
    def result(self):
        g = poster_example()
        return execute(g, Classification.all_swap(g), X86_V100)

    def test_renders_capacity_line(self, result):
        out = memory_curve_plot(result, X86_V100.usable_gpu_memory)
        assert "<- capacity" in out

    def test_has_area(self, result):
        out = memory_curve_plot(result, X86_V100.usable_gpu_memory)
        assert "█" in out

    def test_dimensions(self, result):
        out = memory_curve_plot(result, X86_V100.usable_gpu_memory,
                                height=6, width=40)
        assert len(out.splitlines()) == 7

    def test_empty_trace(self):
        from repro.gpusim import RunResult
        r = RunResult(makespan=0.0, records=[], device_peak=0, host_peak=0,
                      device_trace=[])
        assert "no memory trace" in memory_curve_plot(r, 100)

    def test_peak_visible(self, result):
        # the tallest column should correspond to the run's peak usage
        out = memory_curve_plot(result, result.device_peak)
        assert "█" in out.splitlines()[0] or "█" in out.splitlines()[1]
