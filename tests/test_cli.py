"""Command-line interface."""

import pytest

from repro.cli import main


class TestModels:
    def test_lists_zoo(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "resnet50" in out and "alexnet" in out
        assert "resnext101_3d" in out


class TestSummary:
    def test_small_model(self, capsys):
        assert main(["summary", "mlp", "--batch", "8"]) == 0
        out = capsys.readouterr().out
        assert "NNGraph" in out and "training memory estimate" in out

    def test_exceeds_marker(self, capsys):
        assert main(["summary", "resnet50", "--batch", "512"]) == 0
        assert "EXCEEDS" in capsys.readouterr().out

    def test_3d_input_size(self, capsys):
        assert main(["summary", "resnext101_3d", "--batch", "1",
                     "--input-size", "16", "112", "112"]) == 0
        assert "resnext101_3d" in capsys.readouterr().out

    def test_unknown_model_fails(self, capsys):
        assert main(["summary", "resnet9000"]) == 1
        assert "unknown model" in capsys.readouterr().err


class TestRun:
    def test_in_core_small(self, capsys):
        assert main(["run", "mlp", "--batch", "8", "--method", "in-core"]) == 0
        assert "img/s" in capsys.readouterr().out

    def test_in_core_oom_exit_code(self, capsys):
        assert main(["run", "resnet50", "--batch", "512",
                     "--method", "in-core"]) == 2
        assert "OUT OF MEMORY" in capsys.readouterr().err

    def test_swap_all_out_of_core(self, capsys):
        assert main(["run", "small_cnn", "--batch", "8",
                     "--method", "swap-all"]) == 0

    def test_superneurons(self, capsys):
        assert main(["run", "small_cnn", "--batch", "8",
                     "--method", "superneurons"]) == 0

    def test_checkpoint(self, capsys):
        assert main(["run", "linear_chain", "--batch", "4",
                     "--method", "checkpoint"]) == 0


class TestOptimizeAndTimeline:
    def test_optimize_poster(self, capsys):
        assert main(["optimize", "poster_example", "--batch", "64",
                     "--budget", "50"]) == 0
        out = capsys.readouterr().out
        assert "PoocH plan" in out and "ground-truth iteration" in out

    def test_optimize_verbose(self, capsys):
        assert main(["optimize", "mlp", "--batch", "8", "--budget", "20",
                     "--verbose"]) == 0
        assert "Classification:" in capsys.readouterr().out

    def test_timeline(self, capsys):
        assert main(["timeline", "poster_example", "--batch", "64",
                     "--plan", "swap", "--policy", "naive",
                     "--width", "60"]) == 0
        out = capsys.readouterr().out
        assert "compute" in out and "h2d" in out

    def test_timeline_keep_plan(self, capsys):
        assert main(["timeline", "mlp", "--batch", "8",
                     "--plan", "keep"]) == 0


class TestOptimizeCacheAndWorkers:
    def test_plan_cache_roundtrip(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = ["optimize", "poster_example", "--batch", "64",
                "--budget", "50", "--plan-cache", cache]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "plan reused from cache" not in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "plan reused from cache" in second
        assert "step1=0 step2=0" in second  # no re-search on the hit

    def test_workers_flag(self, capsys):
        assert main(["optimize", "mlp", "--batch", "8", "--budget", "20",
                     "--workers", "2"]) == 0
        assert "PoocH plan" in capsys.readouterr().out


class TestReport:
    def test_collates_results(self, tmp_path, capsys):
        (tmp_path / "a.txt").write_text("== A ==\nrow\n")
        (tmp_path / "b.txt").write_text("== B ==\nrow\n")
        assert main(["report", "--results-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "== A ==" in out and "== B ==" in out
        assert "2 result tables" in out

    def test_empty_dir_fails(self, tmp_path, capsys):
        assert main(["report", "--results-dir", str(tmp_path)]) == 1
        assert "no results" in capsys.readouterr().err


class TestArgValidation:
    """--workers and --budget must be rejected cleanly when non-positive."""

    @pytest.mark.parametrize("flag,value", [
        ("--workers", "0"), ("--workers", "-2"),
        ("--budget", "0"), ("--budget", "-5"), ("--budget", "abc"),
    ])
    @pytest.mark.parametrize("command", ["optimize", "run"])
    def test_non_positive_rejected(self, command, flag, value, capsys):
        with pytest.raises(SystemExit) as e:
            main([command, "mlp", flag, value])
        assert e.value.code == 2  # argparse's usage-error exit
        assert "positive integer" in capsys.readouterr().err

    def test_positive_values_accepted(self, capsys):
        assert main(["run", "mlp", "--batch", "8", "--method", "in-core",
                     "--workers", "1", "--budget", "10"]) == 0

    @pytest.mark.parametrize("value", ["0", "-8", "abc"])
    def test_bad_batch_rejected(self, value, capsys):
        # regression: --batch used to accept 0/-8 and crash deep inside
        # graph construction instead of failing at the parser
        with pytest.raises(SystemExit) as e:
            main(["summary", "mlp", "--batch", value])
        assert e.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    @pytest.mark.parametrize("size", [["0", "112", "112"],
                                      ["16", "-1", "112"]])
    def test_bad_input_size_rejected(self, size, capsys):
        with pytest.raises(SystemExit) as e:
            main(["summary", "resnext101_3d", "--input-size", *size])
        assert e.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "-2", "x"])
    def test_bad_devices_rejected(self, value, capsys):
        with pytest.raises(SystemExit) as e:
            main(["optimize", "mlp", "--devices", value])
        assert e.value.code == 2
        assert "positive integer" in capsys.readouterr().err


class TestMultiDeviceFlags:
    def test_optimize_devices(self, capsys):
        assert main(["optimize", "mlp", "--batch", "8", "--budget", "20",
                     "--devices", "2"]) == 0
        out = capsys.readouterr().out
        assert "multi-device plan for 2 devices" in out
        assert "naive (synchronized)" in out
        assert "img/s aggregate" in out

    def test_run_pooch_devices(self, capsys):
        assert main(["run", "mlp", "--batch", "8", "--budget", "20",
                     "--devices", "2"]) == 0
        assert "2-device iteration" in capsys.readouterr().out

    def test_run_baseline_devices_synchronized(self, capsys):
        assert main(["run", "small_cnn", "--batch", "8",
                     "--method", "swap-all", "--devices", "2"]) == 0
        assert "(synchronized)" in capsys.readouterr().out

    def test_single_device_output_unchanged(self, capsys):
        argv = ["run", "mlp", "--batch", "8", "--method", "in-core"]
        assert main(argv) == 0
        clean = capsys.readouterr().out
        assert main([*argv, "--devices", "1"]) == 0
        assert capsys.readouterr().out == clean

    def test_devices_metrics_section(self, tmp_path, capsys):
        import json

        out = tmp_path / "m.json"
        assert main(["optimize", "mlp", "--batch", "8", "--budget", "20",
                     "--devices", "2", "--metrics", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["meta"]["devices"] == 2
        devices = doc["sections"]["devices"]
        assert devices["count"] == 2
        assert devices["makespan_staggered_s"] <= devices["makespan_naive_s"]


class TestFaultFlags:
    def test_run_with_faults(self, capsys):
        assert main(["run", "small_cnn", "--batch", "8",
                     "--method", "swap-all",
                     "--faults", "duration_noise=0.1,stall_prob=0.2",
                     "--fault-seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "executed plan:" in out
        assert "img/s" in out

    def test_faulted_run_reproducible(self, capsys):
        argv = ["run", "small_cnn", "--batch", "8", "--method", "swap-all",
                "--faults", "duration_noise=0.1,stall_prob=0.2",
                "--fault-seed", "4"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_bad_fault_spec_fails_cleanly(self, capsys):
        assert main(["run", "mlp", "--faults", "bogus=1"]) == 1
        assert "unknown fault spec key" in capsys.readouterr().err

    def test_inert_faults_equal_no_faults(self, capsys):
        argv = ["run", "small_cnn", "--batch", "8", "--method", "swap-all"]
        assert main(argv) == 0
        clean = capsys.readouterr().out
        assert main([*argv, "--faults", "none"]) == 0
        assert capsys.readouterr().out == clean

    def test_pooch_run_with_faults(self, capsys):
        assert main(["run", "mlp", "--batch", "8", "--method", "pooch",
                     "--faults", "profile_noise=0.1", "--fault-seed", "2"]) == 0
        assert "executed plan:" in capsys.readouterr().out


class TestRobustnessCommand:
    def test_sweep_renders_table(self, capsys):
        assert main(["robustness", "small_cnn", "--batch", "8",
                     "--noise-levels", "0.05", "0.1",
                     "--fault-seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "robustness" in out
        assert "degradation" in out and "fallbacks" in out

    def test_explicit_spec_overrides_ladder(self, capsys):
        assert main(["robustness", "small_cnn", "--batch", "8",
                     "--faults", "stall_prob=0.2"]) == 0
        out = capsys.readouterr().out
        assert "stall_prob=0.2" in out

    def test_seed_distribution_sweep(self, capsys):
        assert main(["robustness", "small_cnn", "--batch", "8",
                     "--fault-seeds", "4",
                     "--faults", "duration_noise=0.1"]) == 0
        out = capsys.readouterr().out
        assert "4 fault seeds" in out
        assert "p95" in out and "p99" in out
        # a pure duration-noise spec runs every seed in lockstep
        assert "4/0" in out

    def test_negative_fault_seed_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["robustness", "small_cnn", "--fault-seed", "-1"])
        assert exc.value.code == 2
        assert "non-negative" in capsys.readouterr().err

    def test_negative_fault_seed_rejected_on_run(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "mlp", "--faults", "duration_noise=0.1",
                  "--fault-seed", "-3"])
        assert exc.value.code == 2
        assert "non-negative" in capsys.readouterr().err
