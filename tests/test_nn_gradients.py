"""Finite-difference verification of every analytic backward kernel.

Each forward is lifted to float64, a scalar objective ``sum(y * w)`` is
formed with a fixed random weighting, and the analytic gradient is compared
against central differences.  Tolerances are generous enough for float64
numerics but tight enough to catch any formula error.
"""

import numpy as np
import pytest

from repro.nn import functional as F

RNG = np.random.default_rng(42)


def numeric_grad(f, x, dy, eps=1e-5):
    """Central-difference gradient of ``sum(f(x) * dy)`` w.r.t. x."""
    g = np.zeros_like(x)
    flat_x = x.reshape(-1)
    flat_g = g.reshape(-1)
    for i in range(flat_x.size):
        orig = flat_x[i]
        flat_x[i] = orig + eps
        hi = float((f(x) * dy).sum())
        flat_x[i] = orig - eps
        lo = float((f(x) * dy).sum())
        flat_x[i] = orig
        flat_g[i] = (hi - lo) / (2 * eps)
    return g


def check(analytic, numeric, tol=1e-6):
    assert np.allclose(analytic, numeric, rtol=tol, atol=tol), (
        f"max diff {np.max(np.abs(analytic - numeric))}"
    )


class TestConv:
    @pytest.mark.parametrize("stride,pad,groups", [
        ((1, 1), (1, 1), 1),
        ((2, 2), (0, 0), 1),
        ((1, 1), (1, 1), 2),
        ((2, 1), (1, 0), 1),
    ])
    def test_conv2d_grads(self, stride, pad, groups):
        x = RNG.standard_normal((2, 4, 6, 6))
        w = RNG.standard_normal((6, 4 // groups, 3, 3))
        b = RNG.standard_normal(6)
        y = F.conv_forward(x, w, b, stride, pad, groups)
        dy = RNG.standard_normal(y.shape)
        dx, dw, db = F.conv_backward(dy, x, w, stride, pad, groups)
        check(dx, numeric_grad(
            lambda v: F.conv_forward(v, w, b, stride, pad, groups), x, dy))
        check(dw, numeric_grad(
            lambda v: F.conv_forward(x, v, b, stride, pad, groups), w, dy))
        check(db, numeric_grad(
            lambda v: F.conv_forward(x, w, v, stride, pad, groups), b, dy))

    def test_conv3d_grads(self):
        x = RNG.standard_normal((1, 2, 4, 5, 5))
        w = RNG.standard_normal((3, 2, 3, 3, 3))
        stride, pad = (1, 2, 2), (1, 1, 1)
        y = F.conv_forward(x, w, None, stride, pad)
        dy = RNG.standard_normal(y.shape)
        dx, dw, db = F.conv_backward(dy, x, w, stride, pad, with_bias=False)
        assert db is None
        check(dx, numeric_grad(
            lambda v: F.conv_forward(v, w, None, stride, pad), x, dy))
        check(dw, numeric_grad(
            lambda v: F.conv_forward(x, v, None, stride, pad), w, dy))

    def test_conv_matches_known_value(self):
        # 1x1 conv over 1 pixel is a matmul
        x = np.array([[[[2.0]], [[3.0]]]])
        w = np.array([[[[1.0]], [[10.0]]]])
        y = F.conv_forward(x, w, None, (1, 1), (0, 0))
        assert y.item() == pytest.approx(32.0)


class TestLinear:
    def test_grads(self):
        x = RNG.standard_normal((3, 7))
        w = RNG.standard_normal((5, 7))
        b = RNG.standard_normal(5)
        dy = RNG.standard_normal((3, 5))
        dx, dw, db = F.linear_backward(dy, x, w)
        check(dx, numeric_grad(lambda v: F.linear_forward(v, w, b), x, dy))
        check(dw, numeric_grad(lambda v: F.linear_forward(x, v, b), w, dy))
        check(db, numeric_grad(lambda v: F.linear_forward(x, w, v), b, dy))

    def test_flattening_input(self):
        x = RNG.standard_normal((2, 3, 2, 2))
        w = RNG.standard_normal((4, 12))
        dy = RNG.standard_normal((2, 4))
        dx, _, _ = F.linear_backward(dy, x, w)
        assert dx.shape == x.shape


class TestBatchnorm:
    def test_grads(self):
        x = RNG.standard_normal((4, 3, 5, 5))
        gamma = RNG.standard_normal(3) + 1.0
        beta = RNG.standard_normal(3)
        dy = RNG.standard_normal(x.shape)
        dx, dgamma, dbeta = F.batchnorm_backward(dy, x, gamma)
        check(dx, numeric_grad(
            lambda v: F.batchnorm_forward(v, gamma, beta), x, dy), tol=1e-5)
        check(dgamma, numeric_grad(
            lambda v: F.batchnorm_forward(x, v, beta), gamma, dy), tol=1e-5)
        check(dbeta, numeric_grad(
            lambda v: F.batchnorm_forward(x, gamma, v), beta, dy), tol=1e-5)

    def test_normalises(self):
        x = RNG.standard_normal((8, 4, 3, 3)) * 5 + 2
        y = F.batchnorm_forward(x, np.ones(4), np.zeros(4))
        assert np.abs(y.mean(axis=(0, 2, 3))).max() < 1e-6
        assert np.abs(y.var(axis=(0, 2, 3)) - 1).max() < 1e-3


class TestActivationsAndShapes:
    def test_relu_grad_from_output(self):
        x = RNG.standard_normal((4, 8))
        y = F.relu_forward(x)
        dy = RNG.standard_normal(x.shape)
        dx = F.relu_backward(dy, y)
        assert np.array_equal(dx, dy * (x > 0))

    def test_add_backward(self):
        dy = RNG.standard_normal((2, 3))
        dxs = F.add_backward(dy, 3)
        assert len(dxs) == 3
        for dx in dxs:
            assert np.array_equal(dx, dy)
        dxs[0][:] = 0  # copies, not views
        assert not np.array_equal(dxs[0], dy)

    def test_concat_roundtrip(self):
        a, b = RNG.standard_normal((2, 3, 4)), RNG.standard_normal((2, 5, 4))
        y = F.concat_forward([a, b], axis=1)
        da, db = F.concat_backward(y, [3, 5], axis=1)
        assert np.array_equal(da, a) and np.array_equal(db, b)


class TestPooling:
    def test_maxpool_grads(self):
        x = RNG.standard_normal((2, 2, 6, 6))
        args = ((2, 2), (2, 2), (0, 0))
        y = F.maxpool_forward(x, *args)
        dy = RNG.standard_normal(y.shape)
        dx = F.maxpool_backward(dy, x, y, *args)
        check(dx, numeric_grad(lambda v: F.maxpool_forward(v, *args), x, dy),
              tol=1e-4)

    def test_maxpool_overlapping_windows(self):
        x = RNG.standard_normal((1, 1, 5, 5))
        args = ((3, 3), (2, 2), (1, 1))
        y = F.maxpool_forward(x, *args)
        dy = RNG.standard_normal(y.shape)
        dx = F.maxpool_backward(dy, x, y, *args)
        check(dx, numeric_grad(lambda v: F.maxpool_forward(v, *args), x, dy),
              tol=1e-4)

    def test_avgpool_grads(self):
        x = RNG.standard_normal((2, 2, 4, 4))
        args = ((2, 2), (2, 2), (0, 0))
        y = F.avgpool_forward(x, *args)
        dy = RNG.standard_normal(y.shape)
        dx = F.avgpool_backward(dy, x.shape, *args, dtype=x.dtype)
        check(dx, numeric_grad(lambda v: F.avgpool_forward(v, *args), x, dy))

    def test_global_avg_pool_grads(self):
        x = RNG.standard_normal((2, 3, 4, 4))
        y = F.global_avg_pool_forward(x)
        dy = RNG.standard_normal(y.shape)
        dx = F.global_avg_pool_backward(dy, x.shape)
        check(dx, numeric_grad(lambda v: F.global_avg_pool_forward(v), x, dy))

    def test_maxpool_3d(self):
        x = RNG.standard_normal((1, 2, 4, 4, 4))
        args = ((2, 2, 2), (2, 2, 2), (0, 0, 0))
        y = F.maxpool_forward(x, *args)
        assert y.shape == (1, 2, 2, 2, 2)


class TestLrn:
    def test_grads(self):
        x = RNG.standard_normal((2, 8, 3, 3))
        y = F.lrn_forward(x, 5)
        dy = RNG.standard_normal(y.shape)
        dx = F.lrn_backward(dy, x, y, 5)
        check(dx, numeric_grad(lambda v: F.lrn_forward(v, 5), x, dy), tol=1e-5)


class TestSoftmaxXent:
    def test_grads(self):
        logits = RNG.standard_normal((6, 5))
        targets = RNG.integers(0, 5, size=6)
        dy = RNG.standard_normal(6)
        dx = F.softmax_xent_backward(dy, logits, targets)
        check(dx, numeric_grad(
            lambda v: F.softmax_xent_forward(v, targets), logits, dy),
            tol=1e-5)

    def test_loss_positive(self):
        logits = RNG.standard_normal((6, 5))
        targets = RNG.integers(0, 5, size=6)
        assert (F.softmax_xent_forward(logits, targets) > 0).all()

    def test_perfect_prediction_low_loss(self):
        logits = np.full((1, 3), -20.0)
        logits[0, 1] = 20.0
        loss = F.softmax_xent_forward(logits, np.array([1]))
        assert loss[0] < 1e-6


class TestSequenceKernels:
    def test_token_linear_grads(self):
        x = RNG.standard_normal((2, 5, 4))
        w = RNG.standard_normal((3, 4))
        b = RNG.standard_normal(3)
        dy = RNG.standard_normal((2, 5, 3))
        dx, dw, db = F.token_linear_backward(dy, x, w)
        check(dx, numeric_grad(lambda v: F.token_linear_forward(v, w, b), x, dy))
        check(dw, numeric_grad(lambda v: F.token_linear_forward(x, v, b), w, dy))
        check(db, numeric_grad(lambda v: F.token_linear_forward(x, w, v), b, dy))

    def test_attention_scores_grads(self):
        q = RNG.standard_normal((2, 6, 8))
        k = RNG.standard_normal((2, 6, 8))
        dy = RNG.standard_normal((2, 2, 6, 6))
        dq, dk = F.attention_scores_backward(dy, q, k, heads=2)
        check(dq, numeric_grad(
            lambda v: F.attention_scores_forward(v, k, 2), q, dy))
        check(dk, numeric_grad(
            lambda v: F.attention_scores_forward(q, v, 2), k, dy))

    def test_attention_apply_grads(self):
        scores = RNG.standard_normal((2, 2, 6, 6))
        v = RNG.standard_normal((2, 6, 8))
        dy = RNG.standard_normal((2, 6, 8))
        ds, dv = F.attention_apply_backward(dy, scores, v)
        check(ds, numeric_grad(
            lambda s: F.attention_apply_forward(s, v), scores, dy))
        check(dv, numeric_grad(
            lambda u: F.attention_apply_forward(scores, u), v, dy))

    def test_softmax_grads_from_output(self):
        x = RNG.standard_normal((3, 4, 7))
        y = F.softmax_forward(x)
        dy = RNG.standard_normal(x.shape)
        dx = F.softmax_backward(dy, y)
        check(dx, numeric_grad(lambda v: F.softmax_forward(v), x, dy), tol=1e-5)

    def test_softmax_rows_sum_to_one(self):
        y = F.softmax_forward(RNG.standard_normal((4, 9)))
        assert np.allclose(y.sum(axis=-1), 1.0)

    def test_layernorm_grads(self):
        x = RNG.standard_normal((2, 5, 6))
        gamma = RNG.standard_normal(6) + 1.0
        beta = RNG.standard_normal(6)
        dy = RNG.standard_normal(x.shape)
        dx, dgamma, dbeta = F.layernorm_backward(dy, x, gamma)
        check(dx, numeric_grad(
            lambda v: F.layernorm_forward(v, gamma, beta), x, dy), tol=1e-5)
        check(dgamma, numeric_grad(
            lambda v: F.layernorm_forward(x, v, beta), gamma, dy), tol=1e-5)
        check(dbeta, numeric_grad(
            lambda v: F.layernorm_forward(x, gamma, v), beta, dy), tol=1e-5)

    def test_layernorm_normalises_last_axis(self):
        x = RNG.standard_normal((2, 3, 16)) * 7 + 3
        y = F.layernorm_forward(x, np.ones(16), np.zeros(16))
        assert np.abs(y.mean(axis=-1)).max() < 1e-6


class TestConvEdgeGeometries:
    @pytest.mark.parametrize("stride,pad", [
        ((3, 3), (0, 0)),
        ((1, 3), (2, 0)),
        ((2, 2), (2, 2)),
    ])
    def test_asymmetric_2d(self, stride, pad):
        x = RNG.standard_normal((1, 2, 7, 9))
        w = RNG.standard_normal((3, 2, 3, 3))
        y = F.conv_forward(x, w, None, stride, pad)
        dy = RNG.standard_normal(y.shape)
        dx, dw, _ = F.conv_backward(dy, x, w, stride, pad, with_bias=False)
        check(dx, numeric_grad(
            lambda v: F.conv_forward(v, w, None, stride, pad), x, dy))
        check(dw, numeric_grad(
            lambda v: F.conv_forward(x, v, None, stride, pad), w, dy))

    def test_grouped_3d(self):
        x = RNG.standard_normal((1, 4, 3, 4, 4))
        w = RNG.standard_normal((4, 2, 1, 3, 3))
        stride, pad = (1, 1, 1), (0, 1, 1)
        y = F.conv_forward(x, w, None, stride, pad, groups=2)
        dy = RNG.standard_normal(y.shape)
        dx, dw, _ = F.conv_backward(dy, x, w, stride, pad, groups=2,
                                    with_bias=False)
        check(dx, numeric_grad(
            lambda v: F.conv_forward(v, w, None, stride, pad, 2), x, dy))
        check(dw, numeric_grad(
            lambda v: F.conv_forward(x, v, None, stride, pad, 2), w, dy))

    def test_depthwise(self):
        # groups == channels (MobileNet's depthwise stage)
        x = RNG.standard_normal((2, 4, 6, 6))
        w = RNG.standard_normal((4, 1, 3, 3))
        stride, pad = (1, 1), (1, 1)
        y = F.conv_forward(x, w, None, stride, pad, groups=4)
        dy = RNG.standard_normal(y.shape)
        dx, dw, _ = F.conv_backward(dy, x, w, stride, pad, groups=4,
                                    with_bias=False)
        check(dx, numeric_grad(
            lambda v: F.conv_forward(v, w, None, stride, pad, 4), x, dy))
        check(dw, numeric_grad(
            lambda v: F.conv_forward(x, v, None, stride, pad, 4), w, dy))


class TestPooling3D:
    def test_maxpool_3d_grads(self):
        x = RNG.standard_normal((1, 2, 4, 4, 4))
        args = ((2, 2, 2), (2, 2, 2), (0, 0, 0))
        y = F.maxpool_forward(x, *args)
        dy = RNG.standard_normal(y.shape)
        dx = F.maxpool_backward(dy, x, y, *args)
        check(dx, numeric_grad(lambda v: F.maxpool_forward(v, *args), x, dy),
              tol=1e-4)

    def test_avgpool_3d_grads(self):
        x = RNG.standard_normal((1, 2, 4, 4, 4))
        args = ((2, 2, 2), (2, 2, 2), (0, 0, 0))
        y = F.avgpool_forward(x, *args)
        dy = RNG.standard_normal(y.shape)
        dx = F.avgpool_backward(dy, x.shape, *args, dtype=x.dtype)
        check(dx, numeric_grad(lambda v: F.avgpool_forward(v, *args), x, dy))
