"""Classification objects and swap-in policies."""

import pytest

from repro.common.errors import ScheduleError
from repro.models import alexnet, small_cnn
from repro.runtime import Classification, MapClass, SwapInPolicy


@pytest.fixture
def g():
    return small_cnn(with_residual=True)


class TestConstructors:
    def test_all_keep_covers_classifiable(self, g):
        cls = Classification.all_keep(g)
        assert set(cls.classes) == set(g.classifiable_maps())
        assert all(c is MapClass.KEEP for c in cls.classes.values())

    def test_all_swap(self, g):
        cls = Classification.all_swap(g)
        assert all(c is MapClass.SWAP for c in cls.classes.values())

    def test_all_recompute_falls_back_for_ineligible(self):
        g = alexnet(2)  # has dropout + input
        cls = Classification.all_recompute(g)
        for i, c in cls.classes.items():
            if not g[i].op.recomputable:
                assert c is MapClass.SWAP
            else:
                assert c is MapClass.RECOMPUTE


class TestQueriesAndUpdates:
    def test_counts_sum(self, g):
        cls = Classification.all_swap(g)
        assert sum(cls.counts().values()) == len(g.classifiable_maps())

    def test_with_class(self, g):
        cls = Classification.all_swap(g)
        i = g.classifiable_maps()[0]
        new = cls.with_class(i, MapClass.KEEP)
        assert new.of(i) is MapClass.KEEP
        assert cls.of(i) is MapClass.SWAP  # original untouched

    def test_with_class_unknown_map(self, g):
        with pytest.raises(ScheduleError):
            Classification.all_swap(g).with_class(9999, MapClass.KEEP)

    def test_with_classes_bulk(self, g):
        cls = Classification.all_swap(g)
        ids = g.classifiable_maps()[:2]
        new = cls.with_classes({i: MapClass.KEEP for i in ids})
        assert all(new.of(i) is MapClass.KEEP for i in ids)

    def test_key_is_stable_and_order_free(self, g):
        a = Classification.all_swap(g)
        b = Classification(dict(reversed(list(a.classes.items()))))
        assert a.key() == b.key()

    def test_maps_of(self, g):
        cls = Classification.all_swap(g)
        i = g.classifiable_maps()[0]
        cls = cls.with_class(i, MapClass.KEEP)
        assert cls.maps_of(MapClass.KEEP) == [i]

    def test_describe_contains_names(self, g):
        text = Classification.all_swap(g).describe(g)
        assert "conv1" in text and "swap=" in text


class TestValidation:
    def test_missing_map_rejected(self, g):
        cls = Classification.all_swap(g)
        broken = dict(cls.classes)
        broken.pop(g.classifiable_maps()[0])
        with pytest.raises(ScheduleError, match="wrong maps"):
            Classification(broken).validate(g)

    def test_extra_map_rejected(self, g):
        cls = Classification.all_swap(g)
        extra = dict(cls.classes)
        # find a non-classifiable map
        non = next(i for i in range(len(g)) if i not in extra)
        extra[non] = MapClass.SWAP
        with pytest.raises(ScheduleError, match="wrong maps"):
            Classification(extra).validate(g)

    def test_recompute_of_input_rejected(self, g):
        cls = Classification.all_swap(g)
        broken = dict(cls.classes)
        broken[0] = MapClass.RECOMPUTE  # INPUT map
        with pytest.raises(ScheduleError, match="cannot be recomputed"):
            Classification(broken).validate(g)


class TestPolicies:
    def test_three_policies(self):
        assert {p.value for p in SwapInPolicy} == {
            "naive", "eager", "superneurons"
        }
