"""NNGraph structure, validation and liveness queries."""

import pytest

from repro.common.errors import GraphError
from repro.graph import GraphBuilder, Layer, NNGraph, TensorSpec
from repro.graph import ops
from repro.models import small_cnn


def _chain3():
    b = GraphBuilder("t")
    x = b.input((2, 4, 8, 8))
    h = b.conv(x, 4, ksize=3, pad=1)
    h = b.batchnorm(h)
    b.loss(b.linear(h, 4))
    return b.build()


class TestValidation:
    def test_valid_graph_builds(self):
        g = _chain3()
        assert len(g) == 5

    def test_duplicate_names_rejected(self):
        op, spec = ops.input_op(TensorSpec((2, 4)))
        lop, lspec = ops.linear(spec, 4)
        layers = [
            Layer(0, "a", op, (), spec),
            Layer(1, "a", lop, (0,), lspec),
        ]
        with pytest.raises(GraphError, match="duplicate"):
            NNGraph(layers)

    def test_bad_index_rejected(self):
        op, spec = ops.input_op(TensorSpec((2, 4)))
        with pytest.raises(GraphError, match="index"):
            NNGraph([Layer(1, "a", op, (), spec)])

    def test_forward_reference_rejected(self):
        op, spec = ops.input_op(TensorSpec((2, 4)))
        lop, lspec = ops.linear(spec, 4)
        with pytest.raises(GraphError, match="topo"):
            NNGraph([
                Layer(0, "a", op, (), spec),
                Layer(1, "b", lop, (1,), lspec),
            ])

    def test_non_input_needs_preds(self):
        lop, lspec = ops.linear(TensorSpec((2, 4)), 4)
        with pytest.raises(GraphError, match="no inputs"):
            NNGraph([Layer(0, "b", lop, (), lspec)])

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            NNGraph([])


class TestAccessors:
    def test_by_name(self):
        g = _chain3()
        assert g.by_name("conv0").index == 1

    def test_by_name_missing(self):
        with pytest.raises(GraphError):
            _chain3().by_name("nope")

    def test_consumers(self):
        g = _chain3()
        assert g.consumers[0] == [1]
        assert g.consumers[1] == [2]
        assert g.consumers[len(g) - 1] == []

    def test_iteration_and_indexing(self):
        g = _chain3()
        assert [l.index for l in g] == list(range(len(g)))
        assert g[2].index == 2


class TestLiveness:
    def test_last_forward_use_chain(self):
        g = _chain3()
        assert g.last_forward_use(0) == 1
        assert g.last_forward_use(len(g) - 1) == len(g) - 1

    def test_last_forward_use_branch(self):
        g = small_cnn(with_residual=True)
        bn1 = g.by_name("bn1").index
        res = g.by_name("res").index
        # bn1's output feeds conv2 AND the residual add
        assert g.last_forward_use(bn1) == res

    def test_backward_users_conv_input(self):
        g = _chain3()
        # conv backward needs its input (the INPUT map)
        assert 1 in g.backward_users(0)

    def test_backward_users_self_output(self):
        b = GraphBuilder("t", fuse_activations=False)
        x = b.input((2, 4))
        h = b.linear(x, 4, activation="relu")
        b.loss(b.linear(h, 4))
        g = b.build()
        relu = g.by_name("relu0").index
        assert relu in g.backward_users(relu)

    def test_bn_pre_add_output_has_no_backward_users(self):
        g = small_cnn(with_residual=True)
        bn2 = g.by_name("bn2").index
        assert g.backward_users(bn2) == ()
        assert bn2 not in g.classifiable_maps()

    def test_classifiable_maps_subset(self):
        g = small_cnn(with_residual=True)
        cm = g.classifiable_maps()
        assert set(cm) <= set(range(len(g)))
        # input is classifiable (conv1 wgrad reads it)
        assert 0 in cm


class TestAggregates:
    def test_param_bytes_positive(self):
        g = _chain3()
        assert g.total_param_bytes > 0

    def test_feature_bytes_sum(self):
        g = _chain3()
        assert g.total_feature_bytes == sum(l.out_spec.nbytes for l in g)

    def test_training_memory_exceeds_features_of_classifiable(self):
        g = _chain3()
        feat = sum(g[i].out_spec.nbytes for i in g.classifiable_maps())
        assert g.training_memory_bytes() >= feat + 2 * g.total_param_bytes

    def test_memory_scales_with_batch(self):
        small = small_cnn(batch=2)
        big = small_cnn(batch=8)
        assert big.training_memory_bytes() > 2 * small.training_memory_bytes() / 2

    def test_summary_mentions_counts(self):
        s = _chain3().summary()
        assert "layers" in s and "params" in s
