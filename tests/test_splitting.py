"""Layer splitting (the ooc_cuDNN integration direction from §6)."""

import numpy as np
import pytest

from repro.common.errors import GraphError, OutOfMemoryError
from repro.common.units import MiB
from repro.graph import GraphBuilder
from repro.graph.ops import OpKind
from repro.graph.splitting import max_layer_working_set, rebind_op, split_batch
from repro.hw import X86_V100
from repro.models import small_cnn
from repro.runtime import Classification, execute
from repro.runtime.numeric import run_numeric
from tests.conftest import tiny_machine


def wide_net(batch=8, channels=16, image=16):
    """One deliberately fat conv followed by slim layers (global pooling's
    backward touches no feature maps), so the fat layer's transient is the
    single binding memory constraint."""
    b = GraphBuilder("wide")
    x = b.input((batch, 3, image, image))
    h = b.conv(x, channels, ksize=3, pad=1, activation="relu", name="fat")
    h = b.global_avg_pool(h, name="pool")
    h = b.linear(h, 4, name="head")
    b.loss(h)
    return b.build()


class TestTransform:
    def test_structure(self):
        g = wide_net()
        sg = split_batch(g, "fat", 4)
        slices = [l for l in sg if l.op.kind is OpKind.SLICE]
        tiles = [l for l in sg if l.name.startswith("fat#tile")]
        assert len(slices) == 4 and len(tiles) == 4
        assert sg.by_name("fat#join").op.kind is OpKind.CONCAT
        sg.validate()

    def test_downstream_shapes_unchanged(self):
        g = wide_net()
        sg = split_batch(g, "fat", 2)
        assert sg.by_name("pool").out_spec == g.by_name("pool").out_spec
        assert sg.by_name("fat#join").out_spec == g.by_name("fat").out_spec

    def test_params_shared_once(self):
        g = wide_net()
        sg = split_batch(g, "fat", 4)
        # total parameter bytes unchanged: only tile 0 carries them
        assert sg.total_param_bytes == g.total_param_bytes

    def test_flops_preserved(self):
        g = wide_net()
        sg = split_batch(g, "fat", 4)
        assert sg.total_fwd_flops == pytest.approx(g.total_fwd_flops, rel=0.01)

    def test_working_set_shrinks(self):
        g = wide_net(batch=16, channels=64, image=32)
        before, name = max_layer_working_set(g)
        assert name == "fat"
        sg = split_batch(g, "fat", 4)
        after, _ = max_layer_working_set(sg)
        # the join still materialises the full output (tiles + concat ≈ 2x
        # the map), but the fat layer's workspace + gradient transient is
        # gone from the bound
        assert after < before * 0.75

    def test_rejects_batchnorm(self):
        g = small_cnn()
        with pytest.raises(GraphError, match="batch-split"):
            split_batch(g, "bn1", 2)

    def test_rejects_indivisible_batch(self):
        g = wide_net(batch=6)
        with pytest.raises(GraphError, match="divisible"):
            split_batch(g, "fat", 4)

    def test_rejects_single_part(self):
        with pytest.raises(GraphError):
            split_batch(wide_net(), "fat", 1)

    def test_rebind_unsupported_kind(self):
        from repro.graph import ops
        op, _ = ops.add([
            *(ops.input_op(spec)[1] for spec in ()),
        ]) if False else ops.input_op(
            __import__("repro.graph.tensor_spec", fromlist=["TensorSpec"]).TensorSpec((2, 3))
        )
        with pytest.raises(GraphError):
            rebind_op(op, None)


class TestNumericEquivalence:
    def test_split_gradients_match_unsplit(self):
        """Splitting is semantically a no-op: shared-weight gradients match
        the unsplit layer (up to float summation order across tiles)."""
        g = wide_net(batch=8)
        sg = split_batch(g, "fat", 4)
        _, ref = run_numeric(g, Classification.all_keep(g), X86_V100)
        _, got = run_numeric(sg, Classification.all_keep(sg), X86_V100)
        fat = g.by_name("fat").index
        tile0 = sg.by_name("fat#tile0").index
        for name, v in ref.weight_grads[fat].items():
            assert np.allclose(v, got.weight_grads[tile0][name],
                               rtol=1e-4, atol=1e-4)
        head = g.by_name("head").index
        head_s = sg.by_name("head").index
        assert np.allclose(ref.weight_grads[head]["w"],
                           got.weight_grads[head_s]["w"],
                           rtol=1e-4, atol=1e-4)

    def test_split_out_of_core_gradients(self):
        g = wide_net(batch=8)
        sg = split_batch(g, "fat", 2)
        _, a = run_numeric(sg, Classification.all_keep(sg), X86_V100)
        _, b = run_numeric(sg, Classification.all_swap(sg), X86_V100)
        for l, gr in a.weight_grads.items():
            for n, v in gr.items():
                assert np.array_equal(v, b.weight_grads[l][n])


class TestMemoryEnablement:
    def test_split_runs_where_unsplit_cannot(self):
        """The §6 claim: a layer whose working set exceeds GPU memory only
        runs after splitting."""
        g = wide_net(batch=32, channels=64, image=64)
        need, _ = max_layer_working_set(g)
        m = tiny_machine(mem_mib=int(need * 0.8 / MiB), reserved_mib=2)
        with pytest.raises(OutOfMemoryError):
            execute(g, Classification.all_swap(g), m)
        sg = split_batch(g, "fat", 4)
        result = execute(sg, Classification.all_swap(sg), m)
        assert result.device_peak <= m.usable_gpu_memory

    def test_pooch_classifies_tiles_independently(self):
        from repro.pooch import PoocH, PoochConfig
        g = wide_net(batch=32, channels=64, image=64)
        sg = split_batch(g, "fat", 4)
        need, _ = max_layer_working_set(g)
        m = tiny_machine(mem_mib=int(need * 0.8 / MiB), reserved_mib=2)
        res = PoocH(m, PoochConfig(max_exact_li=3, step1_sim_budget=100)
                    ).optimize(sg)
        # tile maps are individually classified
        tile_ids = [sg.by_name(f"fat#tile{t}").index for t in range(4)]
        assert all(t in res.classification.classes for t in tile_ids)
        gt = res.execute(m)
        assert gt.device_peak <= m.usable_gpu_memory


class TestRebindKinds:
    """Every splittable op kind round-trips through rebind_op."""

    @pytest.mark.parametrize("factory,kwargs", [
        ("pool", {"ksize": 2, "mode": "max"}),
        ("pool", {"ksize": 2, "mode": "avg"}),
        ("lrn", {}),
        ("global_avg_pool", {}),
        ("relu", {}),
    ])
    def test_split_various_kinds(self, factory, kwargs):
        b = GraphBuilder("rebind")
        x = b.input((4, 8, 8, 8))
        h = b.conv(x, 8, ksize=3, pad=1, name="pre")
        h = getattr(b, factory)(h, **kwargs) if kwargs else getattr(b, factory)(h)
        target = b._layers[h].name
        b.loss(b.linear(h, 3))
        g = b.build()
        sg = split_batch(g, target, 2)
        sg.validate()
        # numeric equivalence: gradients upstream of the split op match
        _, ref = run_numeric(g, Classification.all_keep(g), X86_V100)
        _, got = run_numeric(sg, Classification.all_keep(sg), X86_V100)
        pre_ref = g.by_name("pre").index
        pre_got = sg.by_name("pre").index
        assert np.allclose(ref.weight_grads[pre_ref]["w"],
                           got.weight_grads[pre_got]["w"],
                           rtol=1e-4, atol=1e-4)

    def test_split_layernorm(self):
        b = GraphBuilder("rebind_ln")
        x = b.input((4, 6, 8))
        h = b.token_linear(x, 8, name="tl")
        h = b.layernorm(h, name="ln")
        b.loss(b.linear(h, 3))
        g = b.build()
        sg = split_batch(g, "ln", 2)
        sg.validate()
        import numpy as np
        _, ref = run_numeric(g, Classification.all_keep(g), X86_V100)
        _, got = run_numeric(sg, Classification.all_keep(sg), X86_V100)
        ln_ref = g.by_name("ln").index
        ln_got = sg.by_name("ln#tile0").index
        assert np.allclose(ref.weight_grads[ln_ref]["gamma"],
                           got.weight_grads[ln_got]["gamma"],
                           rtol=1e-4, atol=1e-4)


class TestAutoSplit:
    def test_no_change_when_everything_fits(self):
        from repro.graph import auto_split
        g = wide_net()
        sg = auto_split(g, capacity=10**12)
        assert len(sg) == len(g)

    def test_splits_only_the_fat_layer(self):
        from repro.graph import auto_split, max_layer_working_set
        g = wide_net(batch=32, channels=64, image=64)
        need, _ = max_layer_working_set(g)
        # capacity must stay above the unsplittable join's 2x-map floor
        sg = auto_split(g, capacity=int(need * 0.75))
        assert any("#tile" in l.name for l in sg)
        worst, _ = max_layer_working_set(sg)
        assert worst <= int(need * 0.75)

    def test_raises_when_unsplittable(self):
        from repro.graph import auto_split
        from repro.models import small_cnn
        g = small_cnn(batch=4, image=16)
        # capacity below the batch-norm transient, which cannot be split
        with pytest.raises(GraphError, match="auto_split"):
            auto_split(g, capacity=1024)

    def test_result_trains_numerically(self):
        from repro.graph import auto_split, max_layer_working_set
        g = wide_net(batch=8, channels=16, image=16)
        need, _ = max_layer_working_set(g)
        sg = auto_split(g, capacity=int(need * 0.7))
        _, ref = run_numeric(g, Classification.all_keep(g), X86_V100)
        _, got = run_numeric(sg, Classification.all_keep(sg), X86_V100)
        head = g.by_name("head").index
        head_s = sg.by_name("head").index
        assert np.allclose(ref.weight_grads[head]["w"],
                           got.weight_grads[head_s]["w"],
                           rtol=1e-4, atol=1e-4)
