"""Numeric backend: out-of-core schedules must produce bit-identical
gradients, and data-movement bugs must fail loudly."""

import numpy as np
import pytest

from repro.common.errors import NumericError
from repro.hw import X86_V100
from repro.models import alexnet, googlenet, linear_chain, mlp, small_cnn
from repro.runtime import Classification, MapClass, SwapInPolicy
from repro.runtime.numeric import (
    NumericExecutor,
    run_numeric,
    verify_against_incore,
)
from tests.conftest import tiny_machine


class TestGradientEquivalence:
    @pytest.mark.parametrize("plan", ["swap", "recompute"])
    def test_uniform_plans_mlp(self, plan):
        g = mlp(batch=4, in_features=8, hidden=(8,), num_classes=4)
        cls = getattr(Classification, f"all_{plan}")(g)
        verify_against_incore(g, cls, X86_V100)

    @pytest.mark.parametrize("plan", ["swap", "recompute"])
    def test_uniform_plans_residual_cnn(self, plan):
        g = small_cnn(with_residual=True)
        cls = getattr(Classification, f"all_{plan}")(g)
        verify_against_incore(g, cls, X86_V100)

    @pytest.mark.parametrize("policy", list(SwapInPolicy))
    def test_all_policies(self, policy):
        g = small_cnn()
        verify_against_incore(g, Classification.all_swap(g), X86_V100,
                              policy=policy)

    def test_mixed_plan(self):
        g = linear_chain(6, batch=2, channels=4, image=8)
        rng = np.random.default_rng(7)
        classes = {}
        for i in Classification.all_swap(g).classes:
            opts = [MapClass.KEEP, MapClass.SWAP]
            if g[i].op.recomputable:
                opts.append(MapClass.RECOMPUTE)
            classes[i] = opts[rng.integers(len(opts))]
        verify_against_incore(g, Classification(classes), X86_V100)

    def test_branching_graph_googlenet_slice(self):
        # a genuinely branchy graph (inception concat) at tiny scale:
        # exercise concat gradients through the out-of-core path
        from repro.graph import GraphBuilder
        b = GraphBuilder("mini_inception")
        x = b.input((2, 4, 8, 8))
        l = b.conv(x, 4, ksize=1, activation="relu")
        r = b.conv(x, 4, ksize=3, pad=1, activation="relu")
        h = b.concat([l, r])
        h = b.global_avg_pool(h)
        b.loss(b.linear(h, 3))
        g = b.build()
        verify_against_incore(g, Classification.all_swap(g), X86_V100)
        verify_against_incore(g, Classification.all_recompute(g), X86_V100)

    def test_out_of_core_on_tiny_machine(self):
        """End-to-end: a graph that does NOT fit executes out-of-core with
        exactly the in-core gradients (in-core reference computed on a big
        machine)."""
        g = small_cnn(batch=16, image=32)
        tiny = tiny_machine(mem_mib=24)
        _, ref = run_numeric(g, Classification.all_keep(g), X86_V100)
        _, got = run_numeric(g, Classification.all_swap(g), tiny)
        for layer, grads in ref.weight_grads.items():
            for name, v in grads.items():
                assert np.array_equal(v, got.weight_grads[layer][name])

    def test_alexnet_scaled_down_with_dropout_and_lrn(self):
        # reduced-size AlexNet-like net exercising LRN + dropout + groups
        from repro.graph import GraphBuilder
        b = GraphBuilder("mini_alexnet")
        x = b.input((2, 3, 16, 16))
        h = b.conv(x, 8, ksize=3, pad=1, activation="relu")
        h = b.lrn(h)
        h = b.pool(h, ksize=2)
        h = b.conv(h, 8, ksize=3, pad=1, groups=2, activation="relu")
        h = b.dropout(h, p=0.5)
        b.loss(b.linear(h, 4))
        g = b.build()
        verify_against_incore(g, Classification.all_swap(g), X86_V100)


class TestFailureDetection:
    def test_freed_array_unreadable(self):
        ex = NumericExecutor(mlp(batch=2, in_features=4, hidden=(4,)))
        ex.device["x"] = np.zeros(3)
        ex.on_free("x")
        with pytest.raises(NumericError, match="use-after-free"):
            ex._get(ex.device, "x", "T")

    def test_gradient_mismatch_reported(self):
        g = mlp(batch=2, in_features=4, hidden=(4,), num_classes=3)
        _, ref = run_numeric(g, Classification.all_keep(g), X86_V100, seed=0)
        _, other = run_numeric(g, Classification.all_keep(g), X86_V100, seed=1)
        different = any(
            not np.array_equal(v, other.weight_grads[l][n])
            for l, gr in ref.weight_grads.items() for n, v in gr.items()
        )
        assert different  # different seeds => different data => different grads

    def test_verify_raises_on_seed_mismatch(self):
        # sanity check that verify_against_incore actually compares something:
        # corrupt one gradient via monkeypatched executor
        g = mlp(batch=2, in_features=4, hidden=(4,), num_classes=3)
        _, ref = run_numeric(g, Classification.all_keep(g), X86_V100)
        ref.weight_grads[next(iter(ref.weight_grads))]["w"] += 1.0
        # direct comparison helper path: ensure arrays now differ
        _, clean = run_numeric(g, Classification.all_keep(g), X86_V100)
        l = next(iter(ref.weight_grads))
        assert not np.array_equal(ref.weight_grads[l]["w"],
                                  clean.weight_grads[l]["w"])


class TestDeterminism:
    def test_same_seed_same_gradients(self):
        g = small_cnn()
        _, a = run_numeric(g, Classification.all_swap(g), X86_V100, seed=5)
        _, b = run_numeric(g, Classification.all_swap(g), X86_V100, seed=5)
        for l, gr in a.weight_grads.items():
            for n, v in gr.items():
                assert np.array_equal(v, b.weight_grads[l][n])

    def test_recompute_replays_forward_exactly(self):
        """The recompute path re-executes forward payloads; outputs must be
        bit-identical or gradients would drift — verified end-to-end."""
        g = linear_chain(5, batch=2, channels=4, image=8)
        verify_against_incore(g, Classification.all_recompute(g), X86_V100)


class TestFailureInjection:
    """Corrupt schedules on purpose: the engine/numeric layer must catch the
    corruption rather than produce a plausible-but-wrong result."""

    def _schedule(self, g, cls):
        from repro.hw import CostModel
        from repro.runtime import CostModelDurations, build_schedule
        return build_schedule(g, cls, CostModelDurations(g, CostModel(X86_V100)))

    def test_dropped_swap_in_dep_is_caught(self):
        from repro.common.errors import ScheduleError
        from repro.gpusim import Engine, TaskKind
        g = mlp(batch=2, in_features=4, hidden=(4,), num_classes=3)
        sched = self._schedule(g, Classification.all_swap(g))
        # sabotage: remove a backward task's dependency on its swap-in
        for tid, t in sched.tasks.items():
            if t.kind is TaskKind.BWD and any(d.startswith("SI") for d in t.deps):
                object.__setattr__(t, "deps", tuple(
                    d for d in t.deps if not d.startswith("SI")))
                break
        with pytest.raises(ScheduleError):
            Engine(sched, X86_V100.usable_gpu_memory).run()

    def test_premature_free_is_caught(self):
        from repro.common.errors import ScheduleError
        from repro.gpusim import BufferSpec, Engine
        g = mlp(batch=2, in_features=4, hidden=(4,), num_classes=3)
        sched = self._schedule(g, Classification.all_keep(g))
        # sabotage: free a kept feature map right after its producer
        victim = next(b for b in sched.buffers.values()
                      if b.bid.endswith("@f") and len(b.free_after) > 1)
        sched.buffers[victim.bid] = BufferSpec(
            victim.bid, victim.nbytes, victim.alloc_by,
            frozenset({victim.alloc_by}), victim.host,
        )
        with pytest.raises(ScheduleError, match="not resident"):
            Engine(sched, X86_V100.usable_gpu_memory).run()
