"""Batched step-2 probes: vectorized r(X) rounds == serial, composing with
the r-memo machinery and the plan cache.

The step-2 loop's keep probes ("X kept, everything else as in ``current``")
are batched into one lockstep sweep while ``current`` is pure keep/swap.
The contract mirrors the process-pool fan-out: absorbed outcomes must be
*exactly* what the serial predictor would have computed, consumed in the
serial order, so r-values, caches, simulation counts and the chosen plan
are bit-identical with ``vectorize`` on and off — in every combination with
``incremental_step2`` (probe elision + cross-round reuse).
"""

from __future__ import annotations

import os

import pytest

from repro.pooch.classifier import PoochClassifier, PoochConfig
from repro.pooch.predictor import TimelinePredictor
from repro.runtime.plan import Classification, MapClass
from repro.runtime.plan_io import PlanCache
from repro.runtime.profiler import run_profiling
from repro.models import build_model
from tests.conftest import tiny_machine

FAULT_SEED = int(os.environ.get("FAULT_SEED", "0"))

#: memory-tight machine: step 1 keeps little, leaving step 2 a real pool of
#: swap-vs-recompute decisions (and infeasible keep probes to elide)
_MACHINE = tiny_machine(mem_mib=160, link_gbps=2.0)


def _search(graph, **cfg_kw):
    prof = run_profiling(graph, _MACHINE)
    cfg = PoochConfig(**cfg_kw)
    clf = PoochClassifier(graph, prof, _MACHINE, config=cfg)
    cls, stats = clf.classify()
    return clf, cls, stats


def _fingerprint(cls, stats):
    return (
        cls.key(), stats.time_after_step1, stats.time_after_step2,
        stats.sims_step1, stats.sims_step2, stats.step2_rounds,
        stats.keep_probes_elided, stats.r_recomputed, stats.r_reused,
        tuple(sorted(stats.r_values.items())),
        tuple(tuple(sorted(r.items())) for r in stats.r_rounds),
        tuple(stats.flips_to_recompute),
    )


class TestVectorizedProbesMatchSerial:
    @pytest.mark.parametrize("name,batch",
                             [("resnet18", 4), ("mobilenet_v1", 4),
                              ("small_cnn", 16)])
    def test_r_table_and_plan_identical(self, name, batch):
        g = build_model(name, batch=batch)
        results = {}
        for vec in (True, False):
            _clf, cls, stats = _search(g, vectorize=vec)
            results[vec] = _fingerprint(cls, stats)
        assert results[True] == results[False]

    @pytest.mark.parametrize("memo", [True, False])
    def test_composes_with_r_memo(self, memo):
        """The memo's probe elision and cross-round reuse see the same
        caches whether probes were swept or simulated serially."""
        g = build_model("resnet18", 4)
        results = {}
        for vec in (True, False):
            _clf, cls, stats = _search(g, vectorize=vec,
                                       incremental_step2=memo)
            results[vec] = _fingerprint(cls, stats)
        assert results[True] == results[False]


class TestAbsorbedOutcomesExact:
    def test_swept_keep_probes_equal_fresh_serial_prediction(self):
        """White-box: every outcome `_vector_keep_probes` absorbs must equal
        a fresh, never-vectorized predictor's serial prediction exactly."""
        g = build_model("resnet18", 4)
        prof = run_profiling(g, _MACHINE)
        clf = PoochClassifier(g, prof, _MACHINE,
                              config=PoochConfig(vectorize=True))
        current = Classification.all_swap(g)
        pool = [m for m in current.classes if g[m].op.recomputable]
        probed = [current.with_class(x, MapClass.KEEP) for x in pool]
        assert all(clf.predictor.cached(c) is None for c in probed)
        clf._vector_keep_probes(current, pool, memo=False)
        serial = TimelinePredictor(g, prof, _MACHINE)
        hits = 0
        for keep_c in probed:
            got = clf.predictor.cached(keep_c)
            if got is None:
                continue  # engine-error probes stay serial by design
            hits += 1
            want = serial.predict(keep_c)
            assert got.feasible == want.feasible
            assert got.time == want.time  # exact, not approx
            assert got.peak_memory == want.peak_memory
            assert got.oom_context == want.oom_context
        assert hits > 0

    def test_elided_probes_are_not_swept(self):
        """Probes the liveness floor proves infeasible are skipped by
        `_r_value` — sweeping them would inflate the sim counters."""
        g = build_model("resnet18", 4)
        prof = run_profiling(g, _MACHINE)
        clf = PoochClassifier(g, prof, _MACHINE,
                              config=PoochConfig(vectorize=True,
                                                 incremental_step2=True))
        current = Classification.all_swap(g)
        pool = [m for m in current.classes if g[m].op.recomputable]
        elided = [x for x in pool if clf.predictor.provably_infeasible(
            current.with_class(x, MapClass.KEEP))]
        before = clf.predictor.simulations
        clf._vector_keep_probes(current, pool, memo=True)
        absorbed = clf.predictor.simulations - before
        assert absorbed <= len(pool) - len(elided)
        for x in elided:
            assert clf.predictor.cached(
                current.with_class(x, MapClass.KEEP)) is None


class TestNoStaleReuseAcrossVectorizeFlip:
    def test_vectorize_is_in_the_plan_cache_signature(self):
        on = PoochConfig(vectorize=True).signature()
        off = PoochConfig(vectorize=False).signature()
        assert on != off

    def test_plan_cached_under_one_setting_misses_the_other(self, tmp_path):
        g = build_model("small_cnn", 8)
        cache = PlanCache(tmp_path)
        on, off = PoochConfig(vectorize=True), PoochConfig(vectorize=False)
        cache.store_plan(g, _MACHINE, on.signature(),
                         Classification.all_swap(g), predicted_time=1.0)
        assert cache.load_plan(g, _MACHINE, on.signature()) is not None
        assert cache.load_plan(g, _MACHINE, off.signature()) is None

    def test_mid_run_vectorization_loss_stays_serial_exact(self):
        """If the sweep path refuses mid-search (`_vec_failed`), the rest of
        the search runs serially and still returns the identical plan."""
        g = build_model("small_cnn", 16)
        prof = run_profiling(g, _MACHINE)
        ref_clf = PoochClassifier(g, prof, _MACHINE,
                                  config=PoochConfig(vectorize=False))
        ref_cls, ref_stats = ref_clf.classify()
        clf = PoochClassifier(g, prof, _MACHINE,
                              config=PoochConfig(vectorize=True))
        clf.predictor._vec_failed = True  # simulate a mid-run refusal
        cls, stats = clf.classify()
        assert stats.sims_vectorized == 0
        assert cls.key() == ref_cls.key()
        assert stats.time_after_step2 == ref_stats.time_after_step2
        assert tuple(sorted(stats.r_values.items())) == tuple(
            sorted(ref_stats.r_values.items()))
